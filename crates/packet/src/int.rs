//! In-band Network Telemetry record stacks.
//!
//! Each P4 switch a probe packet traverses appends one [`IntRecord`] to the
//! probe's [`IntStack`] (paper §III-A, Fig. 2). A record carries:
//!
//! * the switch identity and ports the probe used,
//! * the **maximum egress-queue occupancy** (in packets) the switch observed
//!   on that egress port since the previous probe harvested it — the paper
//!   found the *maximum* (not the mean) is the signal that correlates with
//!   queuing delay,
//! * the **measured upstream link latency**: the previous hop stamps its
//!   egress time into its own record; this hop subtracts that stamp from its
//!   ingress arrival time *before enqueueing*, so queuing delay is excluded,
//! * this switch's own egress timestamp (consumed by the next hop).
//!
//! Because records are appended in path order, the scheduler can reconstruct
//! network adjacency purely from the record sequence (paper §III-B).

use crate::wire::{need, WireDecode, WireEncode};
use crate::{PacketError, Result};
use bytes::{Buf, BufMut};
use serde::{Deserialize, Serialize};

/// Telemetry appended by one switch to a probe packet. 32 bytes on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntRecord {
    /// Identifier of the switch that appended this record.
    pub switch_id: u32,
    /// Port the probe entered the switch on.
    pub ingress_port: u16,
    /// Port the probe left the switch on.
    pub egress_port: u16,
    /// Maximum egress-queue occupancy (packets) observed on `egress_port`
    /// since the register was last harvested and reset by a probe.
    pub max_qlen_pkts: u32,
    /// Instantaneous egress-queue occupancy (packets) when the probe itself
    /// was enqueued; recorded for diagnostics/ablations.
    pub qlen_at_probe_pkts: u32,
    /// Measured latency of the link the probe traversed to *reach* this
    /// switch, in nanoseconds. Zero for the first switch on the path if the
    /// origin host did not stamp an egress time.
    pub link_latency_ns: u64,
    /// Time at which the probe left this switch (egress timestamp),
    /// consumed by the next hop to compute its `link_latency_ns`.
    pub egress_ts_ns: u64,
}

impl IntRecord {
    /// Wire size of one record.
    pub const LEN: usize = 32;
}

impl WireEncode for IntRecord {
    fn encoded_len(&self) -> usize {
        Self::LEN
    }

    fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u32(self.switch_id);
        buf.put_u16(self.ingress_port);
        buf.put_u16(self.egress_port);
        buf.put_u32(self.max_qlen_pkts);
        buf.put_u32(self.qlen_at_probe_pkts);
        buf.put_u64(self.link_latency_ns);
        buf.put_u64(self.egress_ts_ns);
    }
}

impl WireDecode for IntRecord {
    fn decode<B: Buf>(buf: &mut B) -> Result<Self> {
        need(buf, "int record", Self::LEN)?;
        Ok(IntRecord {
            switch_id: buf.get_u32(),
            ingress_port: buf.get_u16(),
            egress_port: buf.get_u16(),
            max_qlen_pkts: buf.get_u32(),
            qlen_at_probe_pkts: buf.get_u32(),
            link_latency_ns: buf.get_u64(),
            egress_ts_ns: buf.get_u64(),
        })
    }
}

/// The ordered stack of per-hop telemetry records in a probe payload.
///
/// Record order is path order (first switch first): switches *append*.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct IntStack {
    /// Per-hop records, in the order the probe visited switches.
    pub records: Vec<IntRecord>,
}

impl IntStack {
    /// Maximum number of hops a single probe may record. Bounds parsing of
    /// hostile/corrupt input; generous relative to any realistic edge path.
    pub const MAX_HOPS: usize = 256;

    /// An empty stack (probe fresh from its origin host).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of hops recorded so far.
    pub fn hop_count(&self) -> usize {
        self.records.len()
    }

    /// Append one hop's telemetry (what a switch's egress deparser does).
    pub fn push(&mut self, record: IntRecord) {
        debug_assert!(self.records.len() < Self::MAX_HOPS);
        self.records.push(record);
    }

    /// The most recently appended record, if any — the previous hop from the
    /// perspective of the switch currently holding the probe.
    pub fn last(&self) -> Option<&IntRecord> {
        self.records.last()
    }

    /// Mutable access to the most recent record (used by a switch's egress
    /// stage to stamp `egress_ts_ns` into its *own* record).
    pub fn last_mut(&mut self) -> Option<&mut IntRecord> {
        self.records.last_mut()
    }

    /// Iterate over `(upstream, downstream)` switch-id pairs, i.e. the link
    /// adjacencies this probe's path reveals (paper §III-B).
    pub fn adjacencies(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.records.windows(2).map(|w| (w[0].switch_id, w[1].switch_id))
    }

    /// Sum of all recorded link latencies along the probe path, ns.
    pub fn total_link_latency_ns(&self) -> u64 {
        self.records.iter().map(|r| r.link_latency_ns).sum()
    }
}

impl WireEncode for IntStack {
    fn encoded_len(&self) -> usize {
        2 + self.records.len() * IntRecord::LEN
    }

    fn encode<B: BufMut>(&self, buf: &mut B) {
        debug_assert!(self.records.len() <= u16::MAX as usize);
        buf.put_u16(self.records.len() as u16);
        for r in &self.records {
            r.encode(buf);
        }
    }
}

impl WireDecode for IntStack {
    fn decode<B: Buf>(buf: &mut B) -> Result<Self> {
        need(buf, "int stack", 2)?;
        let count = buf.get_u16() as usize;
        if count > Self::MAX_HOPS {
            return Err(PacketError::InvalidField { field: "int.hop_count", value: count as u64 });
        }
        let mut records = Vec::with_capacity(count);
        for _ in 0..count {
            records.push(IntRecord::decode(buf)?);
        }
        Ok(IntStack { records })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(switch_id: u32, maxq: u32) -> IntRecord {
        IntRecord {
            switch_id,
            ingress_port: 1,
            egress_port: 2,
            max_qlen_pkts: maxq,
            qlen_at_probe_pkts: maxq / 2,
            link_latency_ns: 10_000_000,
            egress_ts_ns: 123_456_789,
        }
    }

    #[test]
    fn record_roundtrip() {
        let r = rec(7, 42);
        let bytes = r.to_bytes();
        assert_eq!(bytes.len(), IntRecord::LEN);
        assert_eq!(IntRecord::decode(&mut &bytes[..]).unwrap(), r);
    }

    #[test]
    fn stack_roundtrip_preserves_order() {
        let mut s = IntStack::new();
        for id in [3u32, 1, 4, 1, 5] {
            s.push(rec(id, id * 10));
        }
        let parsed = IntStack::decode(&mut &s.to_bytes()[..]).unwrap();
        assert_eq!(parsed, s);
        let ids: Vec<u32> = parsed.records.iter().map(|r| r.switch_id).collect();
        assert_eq!(ids, vec![3, 1, 4, 1, 5]);
    }

    #[test]
    fn adjacencies_follow_record_order() {
        let mut s = IntStack::new();
        for id in [1u32, 3, 4] {
            s.push(rec(id, 0));
        }
        let adj: Vec<(u32, u32)> = s.adjacencies().collect();
        assert_eq!(adj, vec![(1, 3), (3, 4)]);
    }

    #[test]
    fn empty_stack_roundtrips() {
        let s = IntStack::new();
        assert_eq!(s.hop_count(), 0);
        let parsed = IntStack::decode(&mut &s.to_bytes()[..]).unwrap();
        assert_eq!(parsed.hop_count(), 0);
        assert_eq!(s.adjacencies().count(), 0);
    }

    #[test]
    fn hop_count_bound_enforced() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(IntStack::MAX_HOPS as u16 + 1).to_be_bytes());
        let err = IntStack::decode(&mut &bytes[..]).unwrap_err();
        assert!(matches!(err, PacketError::InvalidField { field: "int.hop_count", .. }));
    }

    #[test]
    fn truncated_record_list_errors() {
        let mut s = IntStack::new();
        s.push(rec(1, 1));
        s.push(rec(2, 2));
        let bytes = s.to_bytes();
        let err = IntStack::decode(&mut &bytes[..bytes.len() - 4]).unwrap_err();
        assert!(matches!(err, PacketError::Truncated { .. }));
    }

    #[test]
    fn total_link_latency_sums() {
        let mut s = IntStack::new();
        s.push(rec(1, 0));
        s.push(rec(2, 0));
        assert_eq!(s.total_link_latency_ns(), 20_000_000);
    }
}
