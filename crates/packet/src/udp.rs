//! UDP headers.

use crate::wire::{need, WireDecode, WireEncode};
use crate::{PacketError, Result};
use bytes::{Buf, BufMut};
use serde::{Deserialize, Serialize};

/// A UDP header (8 bytes).
///
/// The simulator computes no UDP checksum (field carried as zero, which RFC
/// 768 defines as "checksum disabled"); integrity inside the simulator is
/// guaranteed by construction and the IPv4 header checksum is verified.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Length of UDP header + payload in bytes.
    pub length: u16,
}

impl UdpHeader {
    /// Wire size.
    pub const LEN: usize = 8;

    /// Header for a payload of `payload_len` bytes.
    pub fn new(src_port: u16, dst_port: u16, payload_len: usize) -> Self {
        let length = Self::LEN + payload_len;
        debug_assert!(length <= u16::MAX as usize, "UDP datagram too large: {length}");
        UdpHeader { src_port, dst_port, length: length as u16 }
    }

    /// Payload length implied by the `length` field.
    pub fn payload_len(&self) -> usize {
        (self.length as usize).saturating_sub(Self::LEN)
    }
}

impl WireEncode for UdpHeader {
    fn encoded_len(&self) -> usize {
        Self::LEN
    }

    fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u16(self.src_port);
        buf.put_u16(self.dst_port);
        buf.put_u16(self.length);
        buf.put_u16(0); // checksum disabled
    }
}

impl WireDecode for UdpHeader {
    fn decode<B: Buf>(buf: &mut B) -> Result<Self> {
        need(buf, "udp header", Self::LEN)?;
        let src_port = buf.get_u16();
        let dst_port = buf.get_u16();
        let length = buf.get_u16();
        let _checksum = buf.get_u16();
        if (length as usize) < Self::LEN {
            return Err(PacketError::InvalidField { field: "udp.length", value: length as u64 });
        }
        Ok(UdpHeader { src_port, dst_port, length })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let h = UdpHeader::new(40000, crate::PROBE_UDP_PORT, 64);
        let parsed = UdpHeader::decode(&mut &h.to_bytes()[..]).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(parsed.payload_len(), 64);
    }

    #[test]
    fn rejects_length_below_header() {
        let mut bytes = UdpHeader::new(1, 2, 0).to_bytes();
        bytes[4] = 0;
        bytes[5] = 7; // length = 7 < 8
        let err = UdpHeader::decode(&mut &bytes[..]).unwrap_err();
        assert!(matches!(err, PacketError::InvalidField { field: "udp.length", .. }));
    }

    #[test]
    fn truncated_errors() {
        let bytes = UdpHeader::new(1, 2, 0).to_bytes();
        assert!(UdpHeader::decode(&mut &bytes[..5]).is_err());
    }
}
