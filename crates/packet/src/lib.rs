//! # int-packet
//!
//! Byte-level packet formats used by the INT-based network-aware task
//! scheduler. This crate implements everything a P4 parser/deparser would
//! see on the wire:
//!
//! * [`eth`] — Ethernet II framing,
//! * [`ipv4`] — IPv4 headers with internet checksums,
//! * [`udp`] — UDP headers,
//! * [`geneve`] — the Geneve-style option header that marks probe packets so
//!   that P4 switches can distinguish them from production traffic
//!   (paper §III-A),
//! * [`int`] — the In-band Network Telemetry record stack appended to probe
//!   packets by each switch (switch id, egress port, max queue occupancy,
//!   measured link latency, egress timestamp),
//! * [`probe`] — the probe packet payload (origin, sequence, timestamps,
//!   INT stack),
//! * [`msgs`] — control-plane messages (scheduler query/response, task
//!   submission/result) carried over UDP,
//! * [`wire`] — a small big-endian wire codec shared by all of the above,
//! * [`builder`] — convenience packet composition, and
//! * [`parse`] — a zero-copy parsed view over a raw frame.
//!
//! All multi-byte fields are big-endian (network byte order). Every header
//! type round-trips: `decode(encode(h)) == h`, which the property tests
//! enforce.
//!
//! The crate is deliberately free of any simulator dependency so that the
//! scheduler core (`int-core`) can be pointed at a real INT deployment: it
//! only ever consumes bytes.

pub mod builder;
pub mod eth;
pub mod geneve;
pub mod int;
pub mod ipv4;
pub mod msgs;
pub mod parse;
pub mod probe;
pub mod tcp;
pub mod udp;
pub mod wire;

mod error;

pub use builder::PacketBuilder;
pub use error::PacketError;
pub use eth::{EtherType, EthernetHeader, MacAddr};
pub use geneve::GeneveOption;
pub use int::{IntRecord, IntStack};
pub use ipv4::{IpProtocol, Ipv4Header};
pub use parse::{L4View, ParsedPacket};
pub use probe::{ProbePayload, RelayedProbe};
pub use tcp::{TcpFlags, TcpHeader};
pub use udp::UdpHeader;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, PacketError>;

/// UDP destination port reserved for probe packets (Geneve's IANA port).
pub const PROBE_UDP_PORT: u16 = 6081;
/// UDP port the scheduler service listens on for edge-device queries.
pub const SCHEDULER_UDP_PORT: u16 = 7001;
/// UDP port edge devices receive scheduler responses on (distinct from the
/// service port so a device and the scheduler can share a host).
pub const SCHED_CLIENT_UDP_PORT: u16 = 7002;
/// UDP port edge servers listen on for task submissions.
pub const TASK_UDP_PORT: u16 = 7100;
/// UDP port the scheduler receives relayed probes on (all-pairs probing).
pub const PROBE_RELAY_UDP_PORT: u16 = 7003;
/// UDP port used by the ping (echo) responder.
pub const ECHO_UDP_PORT: u16 = 7;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_known_ports_are_distinct() {
        let ports = [
            PROBE_UDP_PORT,
            SCHEDULER_UDP_PORT,
            SCHED_CLIENT_UDP_PORT,
            PROBE_RELAY_UDP_PORT,
            TASK_UDP_PORT,
            ECHO_UDP_PORT,
        ];
        for (i, a) in ports.iter().enumerate() {
            for b in &ports[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
