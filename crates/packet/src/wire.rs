//! Minimal big-endian wire codec shared by every header and payload type.
//!
//! The traits mirror what a P4 deparser (encode) and parser (decode) do:
//! fixed-layout, network-byte-order serialization with explicit bounds
//! checking and no implicit padding.

use crate::{PacketError, Result};
use bytes::{Buf, BufMut};

/// Types that can serialize themselves onto a byte buffer in network order.
pub trait WireEncode {
    /// Exact number of bytes [`WireEncode::encode`] will write.
    fn encoded_len(&self) -> usize;

    /// Append the wire representation to `buf`.
    fn encode<B: BufMut>(&self, buf: &mut B);

    /// Convenience: encode into a fresh `Vec<u8>`.
    fn to_bytes(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(self.encoded_len());
        self.encode(&mut v);
        debug_assert_eq!(v.len(), self.encoded_len());
        v
    }
}

/// Types that can parse themselves from a byte buffer in network order.
pub trait WireDecode: Sized {
    /// Parse one value, advancing `buf` past the consumed bytes.
    fn decode<B: Buf>(buf: &mut B) -> Result<Self>;
}

/// Bounds-checked read of `n` bytes, reporting `what` on failure.
pub fn need<B: Buf>(buf: &B, what: &'static str, n: usize) -> Result<()> {
    if buf.remaining() < n {
        Err(PacketError::Truncated { what, needed: n, available: buf.remaining() })
    } else {
        Ok(())
    }
}

/// Encode a length-prefixed (u16) byte string.
pub fn put_bytes16<B: BufMut>(buf: &mut B, data: &[u8]) {
    debug_assert!(data.len() <= u16::MAX as usize);
    buf.put_u16(data.len() as u16);
    buf.put_slice(data);
}

/// Decode a length-prefixed (u16) byte string.
pub fn get_bytes16<B: Buf>(buf: &mut B, what: &'static str) -> Result<Vec<u8>> {
    need(buf, what, 2)?;
    let len = buf.get_u16() as usize;
    need(buf, what, len)?;
    let mut v = vec![0u8; len];
    buf.copy_to_slice(&mut v);
    Ok(v)
}

/// Encode a length-prefixed (u16) UTF-8 string.
pub fn put_str16<B: BufMut>(buf: &mut B, s: &str) {
    put_bytes16(buf, s.as_bytes());
}

/// Decode a length-prefixed (u16) UTF-8 string (lossy on invalid UTF-8).
pub fn get_str16<B: Buf>(buf: &mut B, what: &'static str) -> Result<String> {
    Ok(String::from_utf8_lossy(&get_bytes16(buf, what)?).into_owned())
}

/// RFC 1071 internet checksum over `data` (as used by IPv4 headers).
///
/// The checksum field itself must be zeroed in `data` before calling.
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum > 0xFFFF {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_of_zeros_is_all_ones() {
        assert_eq!(internet_checksum(&[0u8; 20]), 0xFFFF);
    }

    #[test]
    fn checksum_rfc1071_example() {
        // Example adapted from RFC 1071 §3: words 0x0001, 0xf203, 0xf4f5, 0xf6f7.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        // Sum = 0x0001 + 0xf203 + 0xf4f5 + 0xf6f7 = 0x2ddf0 -> 0xddf2 (with carry)
        assert_eq!(internet_checksum(&data), !0xddf2);
    }

    #[test]
    fn checksum_handles_odd_length() {
        // Odd trailing byte is padded with zero on the right.
        assert_eq!(internet_checksum(&[0xFF]), internet_checksum(&[0xFF, 0x00]));
    }

    #[test]
    fn checksum_verifies_to_zero_when_embedded() {
        // Standard property: inserting the checksum makes the total sum 0xFFFF,
        // i.e. re-checksumming the patched buffer yields 0.
        let mut data = vec![0x45, 0x00, 0x00, 0x28, 0x1c, 0x46, 0x40, 0x00, 0x40, 0x06, 0x00, 0x00];
        let ck = internet_checksum(&data);
        data[10] = (ck >> 8) as u8;
        data[11] = (ck & 0xFF) as u8;
        assert_eq!(internet_checksum(&data), 0);
    }

    #[test]
    fn bytes16_roundtrip() {
        let mut buf = Vec::new();
        put_bytes16(&mut buf, b"hello");
        let mut slice = &buf[..];
        assert_eq!(get_bytes16(&mut slice, "test").unwrap(), b"hello");
        assert!(slice.is_empty());
    }

    #[test]
    fn bytes16_truncated_reports_error() {
        let mut buf = Vec::new();
        put_bytes16(&mut buf, b"hello");
        buf.truncate(4);
        let mut slice = &buf[..];
        let err = get_bytes16(&mut slice, "test").unwrap_err();
        assert!(matches!(err, PacketError::Truncated { .. }));
    }

    #[test]
    fn str16_roundtrip() {
        let mut buf = Vec::new();
        put_str16(&mut buf, "edge-server-3");
        let mut slice = &buf[..];
        assert_eq!(get_str16(&mut slice, "test").unwrap(), "edge-server-3");
    }
}
