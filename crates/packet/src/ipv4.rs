//! IPv4 headers with RFC 1071 checksums.

use crate::wire::{internet_checksum, need, WireDecode, WireEncode};
use crate::{PacketError, Result};
use bytes::{Buf, BufMut};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// IP protocol numbers the data plane understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IpProtocol {
    /// ICMP (1) — used by the ping application.
    Icmp,
    /// TCP (6) — used by the reliable task-transfer transport.
    Tcp,
    /// UDP (17) — probes, scheduler control plane, iperf background traffic.
    Udp,
    /// Any other protocol number, preserved verbatim.
    Other(u8),
}

impl IpProtocol {
    /// Numeric wire value.
    pub fn value(self) -> u8 {
        match self {
            IpProtocol::Icmp => 1,
            IpProtocol::Tcp => 6,
            IpProtocol::Udp => 17,
            IpProtocol::Other(v) => v,
        }
    }

    /// Classify a wire value.
    pub fn from_value(v: u8) -> IpProtocol {
        match v {
            1 => IpProtocol::Icmp,
            6 => IpProtocol::Tcp,
            17 => IpProtocol::Udp,
            other => IpProtocol::Other(other),
        }
    }
}

/// An IPv4 header without options (IHL = 5, 20 bytes).
///
/// The simulated network never emits IP options; probe metadata rides in a
/// Geneve-style shim over UDP instead (paper §III-A), so a fixed 20-byte
/// header is faithful.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ipv4Header {
    /// Differentiated services code point (6 bits) + ECN (2 bits).
    pub dscp_ecn: u8,
    /// Total length of the IP datagram (header + payload) in bytes.
    pub total_len: u16,
    /// Identification field (used for tracing, not fragmentation — DF set).
    pub identification: u16,
    /// Time to live.
    pub ttl: u8,
    /// Payload protocol.
    pub protocol: IpProtocol,
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
}

impl Ipv4Header {
    /// Wire size (no options).
    pub const LEN: usize = 20;
    /// Default TTL for freshly generated datagrams.
    pub const DEFAULT_TTL: u8 = 64;

    /// Build a header for a payload of `payload_len` bytes.
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, protocol: IpProtocol, payload_len: usize) -> Self {
        let total = Self::LEN + payload_len;
        debug_assert!(total <= u16::MAX as usize, "IPv4 datagram too large: {total}");
        Ipv4Header {
            dscp_ecn: 0,
            total_len: total as u16,
            identification: 0,
            ttl: Self::DEFAULT_TTL,
            protocol,
            src,
            dst,
        }
    }

    /// Payload length implied by `total_len`.
    pub fn payload_len(&self) -> usize {
        (self.total_len as usize).saturating_sub(Self::LEN)
    }

    /// Encode with a freshly computed checksum.
    fn encode_with_checksum(&self) -> [u8; Self::LEN] {
        let mut b = [0u8; Self::LEN];
        b[0] = 0x45; // version 4, IHL 5
        b[1] = self.dscp_ecn;
        b[2..4].copy_from_slice(&self.total_len.to_be_bytes());
        b[4..6].copy_from_slice(&self.identification.to_be_bytes());
        b[6] = 0x40; // flags: DF
        b[7] = 0; // fragment offset 0
        b[8] = self.ttl;
        b[9] = self.protocol.value();
        // checksum at [10..12] left zero for computation
        b[12..16].copy_from_slice(&self.src.octets());
        b[16..20].copy_from_slice(&self.dst.octets());
        let ck = internet_checksum(&b);
        b[10..12].copy_from_slice(&ck.to_be_bytes());
        b
    }
}

impl WireEncode for Ipv4Header {
    fn encoded_len(&self) -> usize {
        Self::LEN
    }

    fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_slice(&self.encode_with_checksum());
    }
}

impl WireDecode for Ipv4Header {
    fn decode<B: Buf>(buf: &mut B) -> Result<Self> {
        need(buf, "ipv4 header", Self::LEN)?;
        let mut b = [0u8; Self::LEN];
        buf.copy_to_slice(&mut b);

        let version = b[0] >> 4;
        if version != 4 {
            return Err(PacketError::InvalidField { field: "ip.version", value: version as u64 });
        }
        let ihl = (b[0] & 0x0F) as usize;
        if ihl != 5 {
            // Options are never generated in this system; reject rather than
            // silently misparse the payload offset.
            return Err(PacketError::InvalidField { field: "ip.ihl", value: ihl as u64 });
        }
        let found = u16::from_be_bytes([b[10], b[11]]);
        let mut zeroed = b;
        zeroed[10] = 0;
        zeroed[11] = 0;
        let computed = internet_checksum(&zeroed);
        if found != computed {
            return Err(PacketError::BadChecksum { found, computed });
        }

        Ok(Ipv4Header {
            dscp_ecn: b[1],
            total_len: u16::from_be_bytes([b[2], b[3]]),
            identification: u16::from_be_bytes([b[4], b[5]]),
            ttl: b[8],
            protocol: IpProtocol::from_value(b[9]),
            src: Ipv4Addr::new(b[12], b[13], b[14], b[15]),
            dst: Ipv4Addr::new(b[16], b[17], b[18], b[19]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv4Header {
        Ipv4Header::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            IpProtocol::Udp,
            100,
        )
    }

    #[test]
    fn roundtrip() {
        let h = sample();
        let parsed = Ipv4Header::decode(&mut &h.to_bytes()[..]).unwrap();
        assert_eq!(parsed, h);
    }

    #[test]
    fn total_len_accounts_for_header() {
        assert_eq!(sample().total_len, 120);
        assert_eq!(sample().payload_len(), 100);
    }

    #[test]
    fn checksum_verifies() {
        let bytes = sample().to_bytes();
        assert_eq!(internet_checksum(&bytes), 0, "embedded checksum sums to zero");
    }

    #[test]
    fn corrupted_byte_fails_checksum() {
        let mut bytes = sample().to_bytes();
        bytes[15] ^= 0xFF; // flip part of src addr
        let err = Ipv4Header::decode(&mut &bytes[..]).unwrap_err();
        assert!(matches!(err, PacketError::BadChecksum { .. }), "{err}");
    }

    #[test]
    fn rejects_ipv6_version() {
        let mut bytes = sample().to_bytes();
        bytes[0] = 0x65;
        let err = Ipv4Header::decode(&mut &bytes[..]).unwrap_err();
        assert!(matches!(err, PacketError::InvalidField { field: "ip.version", .. }));
    }

    #[test]
    fn rejects_options() {
        let mut bytes = sample().to_bytes();
        bytes[0] = 0x46; // IHL 6 => options present
        let err = Ipv4Header::decode(&mut &bytes[..]).unwrap_err();
        assert!(matches!(err, PacketError::InvalidField { field: "ip.ihl", .. }));
    }

    #[test]
    fn protocol_mapping_roundtrips() {
        for p in [IpProtocol::Icmp, IpProtocol::Tcp, IpProtocol::Udp, IpProtocol::Other(89)] {
            assert_eq!(IpProtocol::from_value(p.value()), p);
        }
    }
}
