use std::fmt;

/// Errors produced while encoding or decoding packet bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PacketError {
    /// The buffer ended before the full header/payload could be read.
    Truncated {
        /// What was being parsed when the buffer ran out.
        what: &'static str,
        /// Bytes that were needed.
        needed: usize,
        /// Bytes that were available.
        available: usize,
    },
    /// A header field held a value the parser cannot accept.
    InvalidField {
        /// Which field was invalid.
        field: &'static str,
        /// The offending value (widened to u64 for display).
        value: u64,
    },
    /// The IPv4 header checksum did not verify.
    BadChecksum {
        /// Checksum found in the header.
        found: u16,
        /// Checksum computed over the header.
        computed: u16,
    },
    /// A length field disagreed with the actual buffer length.
    LengthMismatch {
        /// What was being parsed.
        what: &'static str,
        /// Length claimed by the header.
        claimed: usize,
        /// Length actually present.
        actual: usize,
    },
    /// The packet is not of the expected kind (e.g. parsing a probe payload
    /// out of a non-probe packet).
    WrongKind {
        /// Expected packet kind.
        expected: &'static str,
    },
}

impl fmt::Display for PacketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PacketError::Truncated { what, needed, available } => write!(
                f,
                "truncated {what}: needed {needed} bytes, only {available} available"
            ),
            PacketError::InvalidField { field, value } => {
                write!(f, "invalid value {value:#x} for field {field}")
            }
            PacketError::BadChecksum { found, computed } => write!(
                f,
                "bad IPv4 checksum: header has {found:#06x}, computed {computed:#06x}"
            ),
            PacketError::LengthMismatch { what, claimed, actual } => write!(
                f,
                "length mismatch in {what}: header claims {claimed}, buffer has {actual}"
            ),
            PacketError::WrongKind { expected } => {
                write!(f, "packet is not a {expected}")
            }
        }
    }
}

impl std::error::Error for PacketError {}
