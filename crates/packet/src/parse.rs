//! Parsed view over a raw Ethernet frame — the software analogue of a P4
//! parser: a fixed state machine `ethernet → ipv4 → {udp, tcp}` that
//! records header values and the payload offset without copying the payload.

use crate::eth::{EtherType, EthernetHeader};
use crate::geneve::GeneveOption;
use crate::ipv4::{IpProtocol, Ipv4Header};
use crate::probe::ProbePayload;
use crate::tcp::TcpHeader;
use crate::udp::UdpHeader;
use crate::wire::WireDecode;
use crate::{PacketError, Result, PROBE_UDP_PORT};

/// Transport-layer header view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L4View {
    /// UDP header.
    Udp(UdpHeader),
    /// TCP header.
    Tcp(TcpHeader),
}

/// Headers extracted from a frame plus the payload byte range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParsedPacket {
    /// Ethernet header (always present).
    pub eth: EthernetHeader,
    /// IPv4 header, if the EtherType was IPv4.
    pub ip: Option<Ipv4Header>,
    /// Transport header, if the IP protocol was UDP or TCP.
    pub l4: Option<L4View>,
    /// Byte offset where the L4 payload (or unparsed remainder) begins.
    pub payload_offset: usize,
}

impl ParsedPacket {
    /// Run the parser over a frame.
    ///
    /// Unknown EtherTypes and IP protocols are accepted — parsing simply
    /// stops at the deepest understood header, exactly as a P4 parser falls
    /// through to `accept`.
    pub fn parse(frame: &[u8]) -> Result<ParsedPacket> {
        let mut cursor = frame;
        let eth = EthernetHeader::decode(&mut cursor)?;
        let mut payload_offset = EthernetHeader::LEN;

        let mut ip = None;
        let mut l4 = None;

        if eth.ethertype == EtherType::Ipv4 {
            let ip_hdr = Ipv4Header::decode(&mut cursor)?;
            payload_offset += Ipv4Header::LEN;

            // Cross-check the IP length claim against reality so later
            // stages can trust `total_len`.
            let ip_payload_avail = frame.len() - payload_offset;
            if ip_hdr.payload_len() > ip_payload_avail {
                return Err(PacketError::LengthMismatch {
                    what: "ipv4 payload",
                    claimed: ip_hdr.payload_len(),
                    actual: ip_payload_avail,
                });
            }

            match ip_hdr.protocol {
                IpProtocol::Udp => {
                    let udp = UdpHeader::decode(&mut cursor)?;
                    payload_offset += UdpHeader::LEN;
                    let avail = frame.len() - payload_offset;
                    if udp.payload_len() > avail {
                        return Err(PacketError::LengthMismatch {
                            what: "udp payload",
                            claimed: udp.payload_len(),
                            actual: avail,
                        });
                    }
                    l4 = Some(L4View::Udp(udp));
                }
                IpProtocol::Tcp => {
                    let tcp = TcpHeader::decode(&mut cursor)?;
                    payload_offset += TcpHeader::LEN;
                    l4 = Some(L4View::Tcp(tcp));
                }
                _ => {}
            }
            ip = Some(ip_hdr);
        }

        Ok(ParsedPacket { eth, ip, l4, payload_offset })
    }

    /// The L4 payload bytes of `frame` (the same buffer passed to `parse`).
    pub fn payload<'f>(&self, frame: &'f [u8]) -> &'f [u8] {
        &frame[self.payload_offset..]
    }

    /// UDP header if this is a UDP packet.
    pub fn udp(&self) -> Option<UdpHeader> {
        match self.l4 {
            Some(L4View::Udp(h)) => Some(h),
            _ => None,
        }
    }

    /// TCP header if this is a TCP packet.
    pub fn tcp(&self) -> Option<TcpHeader> {
        match self.l4 {
            Some(L4View::Tcp(h)) => Some(h),
            _ => None,
        }
    }

    /// True if this frame is an INT probe: UDP to the Geneve port whose
    /// payload opens with a valid telemetry shim. This is the exact
    /// predicate the P4 parser uses to branch into INT processing.
    pub fn is_int_probe(&self, frame: &[u8]) -> bool {
        match self.udp() {
            Some(udp) if udp.dst_port == PROBE_UDP_PORT => {
                let mut payload = self.payload(frame);
                matches!(GeneveOption::decode(&mut payload), Ok(o) if o.is_int_probe())
            }
            _ => false,
        }
    }

    /// Decode the probe payload of an INT probe frame.
    pub fn probe_payload(&self, frame: &[u8]) -> Result<ProbePayload> {
        if self.udp().map(|u| u.dst_port) != Some(PROBE_UDP_PORT) {
            return Err(PacketError::WrongKind { expected: "int probe" });
        }
        let mut payload = self.payload(frame);
        ProbePayload::decode(&mut payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PacketBuilder;
    use crate::wire::WireEncode;
    use std::net::Ipv4Addr;

    fn builder() -> PacketBuilder {
        PacketBuilder::between(1, Ipv4Addr::new(10, 0, 0, 1), 9, Ipv4Addr::new(10, 0, 9, 1))
    }

    #[test]
    fn probe_frame_is_detected() {
        let probe = ProbePayload::new(1, 0, 42);
        let frame = builder().udp_msg(40000, PROBE_UDP_PORT, &probe);
        let p = ParsedPacket::parse(&frame).unwrap();
        assert!(p.is_int_probe(&frame));
        assert_eq!(p.probe_payload(&frame).unwrap(), probe);
    }

    #[test]
    fn regular_udp_is_not_probe() {
        let frame = builder().udp(40000, 5001, b"iperf data");
        let p = ParsedPacket::parse(&frame).unwrap();
        assert!(!p.is_int_probe(&frame));
        assert!(p.probe_payload(&frame).is_err());
    }

    #[test]
    fn udp_to_probe_port_without_shim_is_not_probe() {
        let frame = builder().udp(40000, PROBE_UDP_PORT, b"not a shim at all");
        let p = ParsedPacket::parse(&frame).unwrap();
        assert!(!p.is_int_probe(&frame));
    }

    #[test]
    fn ip_length_lie_is_caught() {
        let mut frame = builder().udp(1, 2, b"xxxx");
        // Inflate ip.total_len beyond the buffer and re-checksum.
        let total = u16::from_be_bytes([frame[16], frame[17]]) + 100;
        frame[16..18].copy_from_slice(&total.to_be_bytes());
        frame[24] = 0;
        frame[25] = 0;
        let ck = crate::wire::internet_checksum(&frame[14..34]);
        frame[24..26].copy_from_slice(&ck.to_be_bytes());
        let err = ParsedPacket::parse(&frame).unwrap_err();
        assert!(matches!(err, PacketError::LengthMismatch { what: "ipv4 payload", .. }));
    }

    #[test]
    fn non_ip_frame_stops_at_ethernet() {
        let eth = EthernetHeader {
            dst: crate::MacAddr::for_node(2),
            src: crate::MacAddr::for_node(1),
            ethertype: EtherType::Other(0x88CC), // LLDP
        };
        let mut frame = eth.to_bytes();
        frame.extend_from_slice(b"opaque");
        let p = ParsedPacket::parse(&frame).unwrap();
        assert!(p.ip.is_none());
        assert!(p.l4.is_none());
        assert_eq!(p.payload(&frame), b"opaque");
    }

    #[test]
    fn other_ip_protocol_stops_at_ip() {
        use crate::ipv4::{IpProtocol, Ipv4Header};
        let ip = Ipv4Header::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            IpProtocol::Other(89), // OSPF
            4,
        );
        let eth = EthernetHeader::ipv4(crate::MacAddr::for_node(1), crate::MacAddr::for_node(2));
        let mut frame = eth.to_bytes();
        frame.extend_from_slice(&ip.to_bytes());
        frame.extend_from_slice(&[1, 2, 3, 4]);
        let p = ParsedPacket::parse(&frame).unwrap();
        assert!(p.ip.is_some());
        assert!(p.l4.is_none());
        assert_eq!(p.payload(&frame), &[1, 2, 3, 4]);
    }
}
