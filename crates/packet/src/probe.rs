//! Probe packet payloads.
//!
//! A probe is sent by each edge server to the scheduler at a fixed interval
//! (100 ms by default). Its payload, carried over UDP to
//! [`crate::PROBE_UDP_PORT`], is:
//!
//! ```text
//! +-------------------+---------------------+-----------------+
//! | GeneveOption (8B) | ProbeFixed (24B)    | IntStack (2+32n)|
//! +-------------------+---------------------+-----------------+
//! ```
//!
//! The fixed part identifies the originating edge server, carries a sequence
//! number (loss/reordering detection at the collector), and the host's send
//! timestamp, which the first switch uses to measure the access-link latency
//! exactly like `egress_ts_ns` of inter-switch records.

use crate::geneve::GeneveOption;
use crate::int::IntStack;
use crate::wire::{need, WireDecode, WireEncode};
use crate::{PacketError, Result};
use bytes::{Buf, BufMut};
use serde::{Deserialize, Serialize};

/// Payload of an INT probe packet (shim + fixed fields + INT stack).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProbePayload {
    /// Node id of the edge server that originated the probe.
    pub origin_node: u32,
    /// Monotonic per-origin sequence number.
    pub seq: u64,
    /// Origin host's send timestamp (ns since simulation epoch). Doubles as
    /// the "previous egress timestamp" for the first switch on the path.
    pub sent_ts_ns: u64,
    /// Per-hop telemetry appended by switches en route.
    pub int: IntStack,
}

impl ProbePayload {
    /// Size of the fixed (non-INT) portion excluding the Geneve shim.
    pub const FIXED_LEN: usize = 4 + 8 + 8;

    /// A fresh probe as it leaves its origin host: empty INT stack.
    pub fn new(origin_node: u32, seq: u64, sent_ts_ns: u64) -> Self {
        ProbePayload { origin_node, seq, sent_ts_ns, int: IntStack::new() }
    }

    /// Timestamp the *next* switch should use as the upstream egress time:
    /// the last switch's egress stamp, or the host send time for hop one.
    pub fn upstream_egress_ts_ns(&self) -> u64 {
        self.int.last().map(|r| r.egress_ts_ns).unwrap_or(self.sent_ts_ns)
    }
}

impl WireEncode for ProbePayload {
    fn encoded_len(&self) -> usize {
        GeneveOption::LEN + Self::FIXED_LEN + self.int.encoded_len()
    }

    fn encode<B: BufMut>(&self, buf: &mut B) {
        GeneveOption::int_probe().encode(buf);
        buf.put_u32(self.origin_node);
        buf.put_u64(self.seq);
        buf.put_u64(self.sent_ts_ns);
        self.int.encode(buf);
    }
}

impl WireDecode for ProbePayload {
    fn decode<B: Buf>(buf: &mut B) -> Result<Self> {
        let shim = GeneveOption::decode(buf)?;
        if !shim.is_int_probe() {
            return Err(PacketError::WrongKind { expected: "int probe" });
        }
        need(buf, "probe fixed fields", Self::FIXED_LEN)?;
        let origin_node = buf.get_u32();
        let seq = buf.get_u64();
        let sent_ts_ns = buf.get_u64();
        let int = IntStack::decode(buf)?;
        Ok(ProbePayload { origin_node, seq, sent_ts_ns, int })
    }
}

/// A probe payload relayed from its terminal node to the central
/// collector.
///
/// The paper sends probes only edge-server → scheduler and leaves "route
/// selection optimization for probe packets" as future work; with that
/// scheme, directed links that lie on no node→scheduler shortest path are
/// never measured. The all-pairs probing mode closes the gap: every node
/// probes every other node, and the *terminal* wraps the received probe —
/// with its own identity and receive timestamp, which the collector needs
/// for final-hop latency — and forwards it to the scheduler over UDP.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RelayedProbe {
    /// Node the probe terminated at.
    pub terminal_node: u32,
    /// Receive timestamp at the terminal, ns.
    pub rx_ts_ns: u64,
    /// The probe as received (full INT stack).
    pub probe: ProbePayload,
}

impl WireEncode for RelayedProbe {
    fn encoded_len(&self) -> usize {
        4 + 8 + self.probe.encoded_len()
    }

    fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u32(self.terminal_node);
        buf.put_u64(self.rx_ts_ns);
        self.probe.encode(buf);
    }
}

impl WireDecode for RelayedProbe {
    fn decode<B: Buf>(buf: &mut B) -> Result<Self> {
        need(buf, "relayed probe fixed fields", 12)?;
        let terminal_node = buf.get_u32();
        let rx_ts_ns = buf.get_u64();
        let probe = ProbePayload::decode(buf)?;
        Ok(RelayedProbe { terminal_node, rx_ts_ns, probe })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::int::IntRecord;

    #[test]
    fn fresh_probe_roundtrips() {
        let p = ProbePayload::new(5, 17, 1_000_000);
        let parsed = ProbePayload::decode(&mut &p.to_bytes()[..]).unwrap();
        assert_eq!(parsed, p);
        assert_eq!(parsed.upstream_egress_ts_ns(), 1_000_000);
    }

    #[test]
    fn probe_with_records_roundtrips() {
        let mut p = ProbePayload::new(2, 1, 500);
        p.int.push(IntRecord {
            switch_id: 10,
            ingress_port: 0,
            egress_port: 1,
            max_qlen_pkts: 12,
            qlen_at_probe_pkts: 3,
            link_latency_ns: 10_000_000,
            egress_ts_ns: 11_000_000,
        });
        let parsed = ProbePayload::decode(&mut &p.to_bytes()[..]).unwrap();
        assert_eq!(parsed, p);
        assert_eq!(parsed.upstream_egress_ts_ns(), 11_000_000, "last switch egress stamp wins");
    }

    #[test]
    fn non_probe_shim_rejected() {
        let mut bytes = ProbePayload::new(1, 1, 1).to_bytes();
        // Corrupt the option type so it is no longer IntProbe.
        bytes[6] = 0x7F;
        let err = ProbePayload::decode(&mut &bytes[..]).unwrap_err();
        assert!(matches!(err, PacketError::WrongKind { expected: "int probe" }));
    }

    #[test]
    fn relayed_probe_roundtrips() {
        let mut p = ProbePayload::new(2, 1, 500);
        p.int.push(IntRecord {
            switch_id: 10,
            ingress_port: 0,
            egress_port: 1,
            max_qlen_pkts: 12,
            qlen_at_probe_pkts: 3,
            link_latency_ns: 10_000_000,
            egress_ts_ns: 11_000_000,
        });
        let r = RelayedProbe { terminal_node: 4, rx_ts_ns: 21_000_000, probe: p };
        let bytes = r.to_bytes();
        assert_eq!(bytes.len(), r.encoded_len());
        assert_eq!(RelayedProbe::decode(&mut &bytes[..]).unwrap(), r);
    }

    #[test]
    fn encoded_len_matches_actual() {
        let mut p = ProbePayload::new(3, 9, 42);
        for i in 0..4 {
            p.int.push(IntRecord {
                switch_id: i,
                ingress_port: 0,
                egress_port: 0,
                max_qlen_pkts: 0,
                qlen_at_probe_pkts: 0,
                link_latency_ns: 0,
                egress_ts_ns: 0,
            });
        }
        assert_eq!(p.to_bytes().len(), p.encoded_len());
    }
}
