//! Control-plane messages carried over UDP between edge devices, edge
//! servers, and the scheduler (paper Fig. 1, steps 3–6), plus the task
//! stream header used by the reliable transport and the echo payloads used
//! by the ping application.

use crate::wire::{need, WireDecode, WireEncode};
use crate::{PacketError, Result};
use bytes::{Buf, BufMut};
use serde::{Deserialize, Serialize};

/// Which ranking the edge device asks the scheduler to apply (paper §III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RankingKind {
    /// Sort candidates by estimated end-to-end delay (paper §III-C, Alg. 1).
    Delay,
    /// Sort candidates by estimated available path bandwidth (paper §III-D).
    Bandwidth,
}

impl RankingKind {
    fn value(self) -> u8 {
        match self {
            RankingKind::Delay => 0,
            RankingKind::Bandwidth => 1,
        }
    }

    fn from_value(v: u8) -> Result<Self> {
        match v {
            0 => Ok(RankingKind::Delay),
            1 => Ok(RankingKind::Bandwidth),
            other => {
                Err(PacketError::InvalidField { field: "ranking_kind", value: other as u64 })
            }
        }
    }
}

/// One candidate edge server in a scheduler response, with the network
/// performance the scheduler estimated for the path device → server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Candidate {
    /// Node id of the edge server.
    pub node: u32,
    /// Estimated one-way delay from the querying device, ns.
    pub est_delay_ns: u64,
    /// Estimated available path bandwidth, bits/s.
    pub est_bandwidth_bps: u64,
}

impl Candidate {
    const LEN: usize = 4 + 8 + 8;

    fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u32(self.node);
        buf.put_u64(self.est_delay_ns);
        buf.put_u64(self.est_bandwidth_bps);
    }

    fn decode<B: Buf>(buf: &mut B) -> Result<Self> {
        need(buf, "candidate", Self::LEN)?;
        Ok(Candidate {
            node: buf.get_u32(),
            est_delay_ns: buf.get_u64(),
            est_bandwidth_bps: buf.get_u64(),
        })
    }
}

/// Every control-plane message exchanged over UDP.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ControlMsg {
    /// Edge device → scheduler: "give me ranked candidate servers".
    SchedRequest {
        /// Node id of the querying edge device.
        requester: u32,
        /// Job this query is for (echoed in the response).
        job_id: u64,
        /// How many servers the device intends to use (1 for serverless,
        /// 3 for distributed jobs in the paper's evaluation).
        task_count: u8,
        /// Ranking metric to apply.
        ranking: RankingKind,
    },
    /// Scheduler → edge device: ranked candidate list (best first).
    SchedResponse {
        /// Job the response refers to.
        job_id: u64,
        /// Candidates sorted best-first by the requested metric.
        candidates: Vec<Candidate>,
    },
    /// Edge server → edge device: a task finished executing.
    TaskDone {
        /// Job the task belongs to.
        job_id: u64,
        /// Task within the job.
        task_id: u64,
        /// Node that executed the task.
        executed_on: u32,
        /// Server-side time at which the task's input data had fully
        /// arrived, ns — lets the submitter compute the transfer time.
        data_received_ts_ns: u64,
        /// Time the task spent in the executor's run queue waiting for a
        /// free slot, ns (0 when a slot was free on arrival).
        queue_wait_ns: u64,
    },
    /// Edge server → scheduler: outstanding-task count changed. Keeps the
    /// scheduler's [`ComputeTracker`](../../int_core/compute/struct.ComputeTracker.html)
    /// load view current for the composite (load-aware) policies.
    LoadReport {
        /// Reporting edge server.
        host: u32,
        /// Tasks currently running or queued on that server.
        outstanding: u32,
    },
    /// Ping echo request.
    EchoRequest {
        /// Sequence number.
        seq: u64,
        /// Sender timestamp, ns.
        ts_ns: u64,
    },
    /// Ping echo reply (fields copied from the request).
    EchoReply {
        /// Sequence number from the request.
        seq: u64,
        /// Sender timestamp from the request, ns.
        ts_ns: u64,
    },
}

const TAG_SCHED_REQUEST: u8 = 1;
const TAG_SCHED_RESPONSE: u8 = 2;
const TAG_TASK_DONE: u8 = 3;
const TAG_ECHO_REQUEST: u8 = 4;
const TAG_ECHO_REPLY: u8 = 5;
const TAG_LOAD_REPORT: u8 = 6;

impl WireEncode for ControlMsg {
    fn encoded_len(&self) -> usize {
        1 + match self {
            ControlMsg::SchedRequest { .. } => 4 + 8 + 1 + 1,
            ControlMsg::SchedResponse { candidates, .. } => 8 + 2 + candidates.len() * Candidate::LEN,
            ControlMsg::TaskDone { .. } => 8 + 8 + 4 + 8 + 8,
            ControlMsg::LoadReport { .. } => 4 + 4,
            ControlMsg::EchoRequest { .. } | ControlMsg::EchoReply { .. } => 8 + 8,
        }
    }

    fn encode<B: BufMut>(&self, buf: &mut B) {
        match self {
            ControlMsg::SchedRequest { requester, job_id, task_count, ranking } => {
                buf.put_u8(TAG_SCHED_REQUEST);
                buf.put_u32(*requester);
                buf.put_u64(*job_id);
                buf.put_u8(*task_count);
                buf.put_u8(ranking.value());
            }
            ControlMsg::SchedResponse { job_id, candidates } => {
                buf.put_u8(TAG_SCHED_RESPONSE);
                buf.put_u64(*job_id);
                debug_assert!(candidates.len() <= u16::MAX as usize);
                buf.put_u16(candidates.len() as u16);
                for c in candidates {
                    c.encode(buf);
                }
            }
            ControlMsg::TaskDone { job_id, task_id, executed_on, data_received_ts_ns, queue_wait_ns } => {
                buf.put_u8(TAG_TASK_DONE);
                buf.put_u64(*job_id);
                buf.put_u64(*task_id);
                buf.put_u32(*executed_on);
                buf.put_u64(*data_received_ts_ns);
                buf.put_u64(*queue_wait_ns);
            }
            ControlMsg::LoadReport { host, outstanding } => {
                buf.put_u8(TAG_LOAD_REPORT);
                buf.put_u32(*host);
                buf.put_u32(*outstanding);
            }
            ControlMsg::EchoRequest { seq, ts_ns } => {
                buf.put_u8(TAG_ECHO_REQUEST);
                buf.put_u64(*seq);
                buf.put_u64(*ts_ns);
            }
            ControlMsg::EchoReply { seq, ts_ns } => {
                buf.put_u8(TAG_ECHO_REPLY);
                buf.put_u64(*seq);
                buf.put_u64(*ts_ns);
            }
        }
    }
}

impl WireDecode for ControlMsg {
    fn decode<B: Buf>(buf: &mut B) -> Result<Self> {
        need(buf, "control msg tag", 1)?;
        let tag = buf.get_u8();
        match tag {
            TAG_SCHED_REQUEST => {
                need(buf, "sched request", 4 + 8 + 1 + 1)?;
                Ok(ControlMsg::SchedRequest {
                    requester: buf.get_u32(),
                    job_id: buf.get_u64(),
                    task_count: buf.get_u8(),
                    ranking: RankingKind::from_value(buf.get_u8())?,
                })
            }
            TAG_SCHED_RESPONSE => {
                need(buf, "sched response", 8 + 2)?;
                let job_id = buf.get_u64();
                let n = buf.get_u16() as usize;
                let mut candidates = Vec::with_capacity(n);
                for _ in 0..n {
                    candidates.push(Candidate::decode(buf)?);
                }
                Ok(ControlMsg::SchedResponse { job_id, candidates })
            }
            TAG_TASK_DONE => {
                need(buf, "task done", 8 + 8 + 4 + 8 + 8)?;
                Ok(ControlMsg::TaskDone {
                    job_id: buf.get_u64(),
                    task_id: buf.get_u64(),
                    executed_on: buf.get_u32(),
                    data_received_ts_ns: buf.get_u64(),
                    queue_wait_ns: buf.get_u64(),
                })
            }
            TAG_LOAD_REPORT => {
                need(buf, "load report", 4 + 4)?;
                Ok(ControlMsg::LoadReport { host: buf.get_u32(), outstanding: buf.get_u32() })
            }
            TAG_ECHO_REQUEST => {
                need(buf, "echo request", 16)?;
                Ok(ControlMsg::EchoRequest { seq: buf.get_u64(), ts_ns: buf.get_u64() })
            }
            TAG_ECHO_REPLY => {
                need(buf, "echo reply", 16)?;
                Ok(ControlMsg::EchoReply { seq: buf.get_u64(), ts_ns: buf.get_u64() })
            }
            other => Err(PacketError::InvalidField { field: "control.tag", value: other as u64 }),
        }
    }
}

/// Header at the front of a task-submission byte stream (over the reliable
/// transport). After this header follow exactly `data_len` payload bytes —
/// the task's input data (paper Table I sizes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskStreamHeader {
    /// Job the task belongs to.
    pub job_id: u64,
    /// Task within the job.
    pub task_id: u64,
    /// Node id of the submitting edge device (for the completion callback).
    pub origin: u32,
    /// Simulated execution duration once the data has fully arrived, ns.
    pub exec_duration_ns: u64,
    /// Absolute completion deadline, ns since simulation epoch (0 = no
    /// deadline). EDF executors order their run queues by this.
    pub deadline_ns: u64,
    /// Number of payload bytes following this header.
    pub data_len: u64,
}

impl TaskStreamHeader {
    /// Wire size.
    pub const LEN: usize = 8 + 8 + 4 + 8 + 8 + 8;
}

impl WireEncode for TaskStreamHeader {
    fn encoded_len(&self) -> usize {
        Self::LEN
    }

    fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u64(self.job_id);
        buf.put_u64(self.task_id);
        buf.put_u32(self.origin);
        buf.put_u64(self.exec_duration_ns);
        buf.put_u64(self.deadline_ns);
        buf.put_u64(self.data_len);
    }
}

impl WireDecode for TaskStreamHeader {
    fn decode<B: Buf>(buf: &mut B) -> Result<Self> {
        need(buf, "task stream header", Self::LEN)?;
        Ok(TaskStreamHeader {
            job_id: buf.get_u64(),
            task_id: buf.get_u64(),
            origin: buf.get_u32(),
            exec_duration_ns: buf.get_u64(),
            deadline_ns: buf.get_u64(),
            data_len: buf.get_u64(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: ControlMsg) {
        let bytes = msg.to_bytes();
        assert_eq!(bytes.len(), msg.encoded_len(), "encoded_len exact for {msg:?}");
        let parsed = ControlMsg::decode(&mut &bytes[..]).unwrap();
        assert_eq!(parsed, msg);
    }

    #[test]
    fn all_variants_roundtrip() {
        roundtrip(ControlMsg::SchedRequest {
            requester: 3,
            job_id: 99,
            task_count: 3,
            ranking: RankingKind::Bandwidth,
        });
        roundtrip(ControlMsg::SchedResponse {
            job_id: 99,
            candidates: vec![
                Candidate { node: 1, est_delay_ns: 30_000_000, est_bandwidth_bps: 20_000_000 },
                Candidate { node: 5, est_delay_ns: 90_000_000, est_bandwidth_bps: 5_000_000 },
            ],
        });
        roundtrip(ControlMsg::TaskDone {
            job_id: 1,
            task_id: 2,
            executed_on: 8,
            data_received_ts_ns: 123_456,
            queue_wait_ns: 42_000,
        });
        roundtrip(ControlMsg::LoadReport { host: 3, outstanding: 17 });
        roundtrip(ControlMsg::EchoRequest { seq: 7, ts_ns: 1234 });
        roundtrip(ControlMsg::EchoReply { seq: 7, ts_ns: 1234 });
    }

    #[test]
    fn empty_candidate_list_roundtrips() {
        roundtrip(ControlMsg::SchedResponse { job_id: 1, candidates: vec![] });
    }

    #[test]
    fn unknown_tag_rejected() {
        let err = ControlMsg::decode(&mut &[0xEEu8][..]).unwrap_err();
        assert!(matches!(err, PacketError::InvalidField { field: "control.tag", .. }));
    }

    #[test]
    fn unknown_ranking_rejected() {
        let mut bytes = ControlMsg::SchedRequest {
            requester: 1,
            job_id: 1,
            task_count: 1,
            ranking: RankingKind::Delay,
        }
        .to_bytes();
        *bytes.last_mut().unwrap() = 9;
        assert!(ControlMsg::decode(&mut &bytes[..]).is_err());
    }

    #[test]
    fn task_header_roundtrip() {
        let h = TaskStreamHeader {
            job_id: 11,
            task_id: 2,
            origin: 4,
            exec_duration_ns: 5_000_000_000,
            deadline_ns: 20_000_000_000,
            data_len: 3_200_000,
        };
        let bytes = h.to_bytes();
        assert_eq!(bytes.len(), TaskStreamHeader::LEN);
        assert_eq!(TaskStreamHeader::decode(&mut &bytes[..]).unwrap(), h);
    }
}
