//! Ethernet II framing.

use crate::wire::{need, WireDecode, WireEncode};
use crate::{PacketError, Result};
use bytes::{Buf, BufMut};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A 48-bit IEEE 802 MAC address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xFF; 6]);
    /// The all-zero address, used as a placeholder before ARP-like resolution.
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Deterministic MAC for a simulated node: `02:00:00:00:hi:lo`
    /// (locally administered, unicast).
    pub fn for_node(node_id: u32) -> MacAddr {
        let b = node_id.to_be_bytes();
        MacAddr([0x02, 0x00, b[0], b[1], b[2], b[3]])
    }

    /// True if this is the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// True if the I/G bit marks this address as multicast (or broadcast).
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = &self.0;
        write!(f, "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}", b[0], b[1], b[2], b[3], b[4], b[5])
    }
}

impl fmt::Debug for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// EtherType values understood by the simulated data plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EtherType {
    /// IPv4 (0x0800) — the only L3 protocol the testbed carries.
    Ipv4,
    /// Anything else, preserved verbatim.
    Other(u16),
}

impl EtherType {
    /// Numeric wire value.
    pub fn value(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Other(v) => v,
        }
    }

    /// Classify a wire value.
    pub fn from_value(v: u16) -> EtherType {
        match v {
            0x0800 => EtherType::Ipv4,
            other => EtherType::Other(other),
        }
    }
}

/// An Ethernet II header: destination, source, EtherType. 14 bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EthernetHeader {
    /// Destination MAC address.
    pub dst: MacAddr,
    /// Source MAC address.
    pub src: MacAddr,
    /// Payload protocol.
    pub ethertype: EtherType,
}

impl EthernetHeader {
    /// Wire size of an Ethernet II header.
    pub const LEN: usize = 14;

    /// Header for an IPv4 frame between two simulated nodes.
    pub fn ipv4(src: MacAddr, dst: MacAddr) -> Self {
        EthernetHeader { dst, src, ethertype: EtherType::Ipv4 }
    }
}

impl WireEncode for EthernetHeader {
    fn encoded_len(&self) -> usize {
        Self::LEN
    }

    fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_slice(&self.dst.0);
        buf.put_slice(&self.src.0);
        buf.put_u16(self.ethertype.value());
    }
}

impl WireDecode for EthernetHeader {
    fn decode<B: Buf>(buf: &mut B) -> Result<Self> {
        need(buf, "ethernet header", Self::LEN)?;
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        buf.copy_to_slice(&mut dst);
        buf.copy_to_slice(&mut src);
        let ethertype = EtherType::from_value(buf.get_u16());
        Ok(EthernetHeader { dst: MacAddr(dst), src: MacAddr(src), ethertype })
    }
}

/// Reject frames shorter than a header outright.
pub fn validate_frame_len(frame: &[u8]) -> Result<()> {
    if frame.len() < EthernetHeader::LEN {
        return Err(PacketError::Truncated {
            what: "ethernet frame",
            needed: EthernetHeader::LEN,
            available: frame.len(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_display() {
        assert_eq!(MacAddr([0xde, 0xad, 0xbe, 0xef, 0x00, 0x01]).to_string(), "de:ad:be:ef:00:01");
    }

    #[test]
    fn mac_for_node_is_unicast_local() {
        let m = MacAddr::for_node(42);
        assert!(!m.is_multicast());
        assert_eq!(m.0[0] & 0x02, 0x02, "locally administered bit set");
    }

    #[test]
    fn mac_for_node_is_injective_on_node_ids() {
        let a = MacAddr::for_node(1);
        let b = MacAddr::for_node(256);
        let c = MacAddr::for_node(1);
        assert_ne!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn broadcast_is_multicast() {
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(!MacAddr::for_node(7).is_broadcast());
    }

    #[test]
    fn header_roundtrip() {
        let h = EthernetHeader::ipv4(MacAddr::for_node(1), MacAddr::for_node(2));
        let bytes = h.to_bytes();
        assert_eq!(bytes.len(), EthernetHeader::LEN);
        let parsed = EthernetHeader::decode(&mut &bytes[..]).unwrap();
        assert_eq!(parsed, h);
    }

    #[test]
    fn ethertype_other_preserved() {
        let h = EthernetHeader {
            dst: MacAddr::BROADCAST,
            src: MacAddr::for_node(9),
            ethertype: EtherType::Other(0x86DD),
        };
        let parsed = EthernetHeader::decode(&mut &h.to_bytes()[..]).unwrap();
        assert_eq!(parsed.ethertype, EtherType::Other(0x86DD));
    }

    #[test]
    fn truncated_header_errors() {
        let h = EthernetHeader::ipv4(MacAddr::for_node(1), MacAddr::for_node(2));
        let bytes = h.to_bytes();
        let err = EthernetHeader::decode(&mut &bytes[..10]).unwrap_err();
        assert!(matches!(err, PacketError::Truncated { .. }));
    }
}
