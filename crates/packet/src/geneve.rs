//! Geneve-style option shim that marks probe packets.
//!
//! The paper (§III-A) distinguishes probe packets from production traffic by
//! sending them as "UDP with certain IP header fields set (aka Geneve
//! option)". We model that faithfully: probes are UDP datagrams to the
//! Geneve port (6081) whose payload starts with an 8-byte option shim
//! carrying a magic number, a version, and an option type. A P4 parser keys
//! on `(udp.dst_port == 6081, shim.magic, shim.opt_type)` to branch into the
//! INT processing pipeline.

use crate::wire::{need, WireDecode, WireEncode};
use crate::{PacketError, Result};
use bytes::{Buf, BufMut};
use serde::{Deserialize, Serialize};

/// Magic number identifying our telemetry shim ("IN" "T!" in ASCII).
pub const GENEVE_MAGIC: u16 = 0x494E;

/// Option class assigned to this system (experimental range).
pub const OPT_CLASS_TELEMETRY: u16 = 0xFF01;

/// Option types carried in the shim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GeneveOptType {
    /// An INT-collecting probe packet travelling edge-server → scheduler.
    IntProbe,
    /// Reserved/unknown option type, preserved verbatim.
    Other(u8),
}

impl GeneveOptType {
    /// Numeric wire value.
    pub fn value(self) -> u8 {
        match self {
            GeneveOptType::IntProbe => 0x01,
            GeneveOptType::Other(v) => v,
        }
    }

    /// Classify a wire value.
    pub fn from_value(v: u8) -> Self {
        match v {
            0x01 => GeneveOptType::IntProbe,
            other => GeneveOptType::Other(other),
        }
    }
}

/// The 8-byte option shim at the start of a probe payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GeneveOption {
    /// Shim format version; only [`GeneveOption::VERSION`] is accepted.
    pub version: u8,
    /// Option class; telemetry uses [`OPT_CLASS_TELEMETRY`].
    pub opt_class: u16,
    /// Option type; probes use [`GeneveOptType::IntProbe`].
    pub opt_type: GeneveOptType,
}

impl GeneveOption {
    /// Wire size.
    pub const LEN: usize = 8;
    /// Current shim version.
    pub const VERSION: u8 = 1;

    /// The shim placed on every INT probe packet.
    pub fn int_probe() -> Self {
        GeneveOption {
            version: Self::VERSION,
            opt_class: OPT_CLASS_TELEMETRY,
            opt_type: GeneveOptType::IntProbe,
        }
    }

    /// True if this shim marks an INT probe.
    pub fn is_int_probe(&self) -> bool {
        self.opt_class == OPT_CLASS_TELEMETRY && self.opt_type == GeneveOptType::IntProbe
    }
}

impl WireEncode for GeneveOption {
    fn encoded_len(&self) -> usize {
        Self::LEN
    }

    fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u16(GENEVE_MAGIC);
        buf.put_u8(self.version);
        buf.put_u8(0); // flags, reserved
        buf.put_u16(self.opt_class);
        buf.put_u8(self.opt_type.value());
        buf.put_u8(0); // reserved
    }
}

impl WireDecode for GeneveOption {
    fn decode<B: Buf>(buf: &mut B) -> Result<Self> {
        need(buf, "geneve option", Self::LEN)?;
        let magic = buf.get_u16();
        if magic != GENEVE_MAGIC {
            return Err(PacketError::InvalidField { field: "geneve.magic", value: magic as u64 });
        }
        let version = buf.get_u8();
        if version != Self::VERSION {
            return Err(PacketError::InvalidField {
                field: "geneve.version",
                value: version as u64,
            });
        }
        let _flags = buf.get_u8();
        let opt_class = buf.get_u16();
        let opt_type = GeneveOptType::from_value(buf.get_u8());
        let _reserved = buf.get_u8();
        Ok(GeneveOption { version, opt_class, opt_type })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_shim_roundtrips() {
        let o = GeneveOption::int_probe();
        assert!(o.is_int_probe());
        let parsed = GeneveOption::decode(&mut &o.to_bytes()[..]).unwrap();
        assert_eq!(parsed, o);
        assert!(parsed.is_int_probe());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = GeneveOption::int_probe().to_bytes();
        bytes[0] = 0x00;
        let err = GeneveOption::decode(&mut &bytes[..]).unwrap_err();
        assert!(matches!(err, PacketError::InvalidField { field: "geneve.magic", .. }));
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = GeneveOption::int_probe().to_bytes();
        bytes[2] = 99;
        let err = GeneveOption::decode(&mut &bytes[..]).unwrap_err();
        assert!(matches!(err, PacketError::InvalidField { field: "geneve.version", .. }));
    }

    #[test]
    fn other_class_is_not_probe() {
        let o = GeneveOption {
            version: GeneveOption::VERSION,
            opt_class: 0x1234,
            opt_type: GeneveOptType::IntProbe,
        };
        assert!(!o.is_int_probe());
    }
}
