//! TCP segment headers (no options), used by the reliable task-transfer
//! transport in the simulator.

use crate::wire::{need, WireDecode, WireEncode};
use crate::{PacketError, Result};
use bytes::{Buf, BufMut};
use serde::{Deserialize, Serialize};

/// TCP control flags (subset actually used by the transport).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TcpFlags {
    /// Synchronize sequence numbers (connection open).
    pub syn: bool,
    /// Acknowledgment field significant.
    pub ack: bool,
    /// No more data from sender (connection close).
    pub fin: bool,
    /// Reset the connection.
    pub rst: bool,
}

impl TcpFlags {
    /// SYN only.
    pub const SYN: TcpFlags = TcpFlags { syn: true, ack: false, fin: false, rst: false };
    /// SYN+ACK.
    pub const SYN_ACK: TcpFlags = TcpFlags { syn: true, ack: true, fin: false, rst: false };
    /// ACK only.
    pub const ACK: TcpFlags = TcpFlags { syn: false, ack: true, fin: false, rst: false };
    /// FIN+ACK.
    pub const FIN_ACK: TcpFlags = TcpFlags { syn: false, ack: true, fin: true, rst: false };

    fn to_byte(self) -> u8 {
        (self.fin as u8) | (self.syn as u8) << 1 | (self.rst as u8) << 2 | (self.ack as u8) << 4
    }

    fn from_byte(b: u8) -> TcpFlags {
        TcpFlags { fin: b & 0x01 != 0, syn: b & 0x02 != 0, rst: b & 0x04 != 0, ack: b & 0x10 != 0 }
    }
}

/// A 20-byte TCP header without options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number of the first payload byte in this segment.
    pub seq: u32,
    /// Cumulative acknowledgment number (next byte expected).
    pub ack: u32,
    /// Control flags.
    pub flags: TcpFlags,
    /// Receive window, in bytes (no window scaling).
    pub window: u16,
}

impl TcpHeader {
    /// Wire size (data offset 5, no options).
    pub const LEN: usize = 20;
}

impl WireEncode for TcpHeader {
    fn encoded_len(&self) -> usize {
        Self::LEN
    }

    fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u16(self.src_port);
        buf.put_u16(self.dst_port);
        buf.put_u32(self.seq);
        buf.put_u32(self.ack);
        buf.put_u8(5 << 4); // data offset 5 words, reserved 0
        buf.put_u8(self.flags.to_byte());
        buf.put_u16(self.window);
        buf.put_u16(0); // checksum (integrity by construction in-sim)
        buf.put_u16(0); // urgent pointer
    }
}

impl WireDecode for TcpHeader {
    fn decode<B: Buf>(buf: &mut B) -> Result<Self> {
        need(buf, "tcp header", Self::LEN)?;
        let src_port = buf.get_u16();
        let dst_port = buf.get_u16();
        let seq = buf.get_u32();
        let ack = buf.get_u32();
        let offset_words = buf.get_u8() >> 4;
        if offset_words != 5 {
            return Err(PacketError::InvalidField {
                field: "tcp.data_offset",
                value: offset_words as u64,
            });
        }
        let flags = TcpFlags::from_byte(buf.get_u8());
        let window = buf.get_u16();
        let _checksum = buf.get_u16();
        let _urgent = buf.get_u16();
        Ok(TcpHeader { src_port, dst_port, seq, ack, flags, window })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_flag_combinations() {
        for bits in 0u8..16 {
            let flags = TcpFlags {
                syn: bits & 1 != 0,
                ack: bits & 2 != 0,
                fin: bits & 4 != 0,
                rst: bits & 8 != 0,
            };
            let h = TcpHeader {
                src_port: 1000,
                dst_port: 7100,
                seq: 0xDEADBEEF,
                ack: 0x01020304,
                flags,
                window: 65535,
            };
            let parsed = TcpHeader::decode(&mut &h.to_bytes()[..]).unwrap();
            assert_eq!(parsed, h);
        }
    }

    #[test]
    fn rejects_options() {
        let h = TcpHeader {
            src_port: 1,
            dst_port: 2,
            seq: 0,
            ack: 0,
            flags: TcpFlags::SYN,
            window: 100,
        };
        let mut bytes = h.to_bytes();
        bytes[12] = 6 << 4; // data offset 6 => 4 bytes of options
        assert!(TcpHeader::decode(&mut &bytes[..]).is_err());
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // the constants ARE the subject
    fn flag_constants() {
        assert!(TcpFlags::SYN.syn && !TcpFlags::SYN.ack);
        assert!(TcpFlags::SYN_ACK.syn && TcpFlags::SYN_ACK.ack);
        assert!(TcpFlags::FIN_ACK.fin && TcpFlags::FIN_ACK.ack && !TcpFlags::FIN_ACK.syn);
    }
}
