//! Convenience composition of full Ethernet frames.
//!
//! The builder mirrors a P4 deparser: headers are emitted in order with all
//! length and checksum fields derived from the payload.

use crate::eth::{EthernetHeader, MacAddr};
use crate::ipv4::{IpProtocol, Ipv4Header};
use crate::tcp::TcpHeader;
use crate::udp::UdpHeader;
use crate::wire::WireEncode;
use bytes::BytesMut;
use std::net::Ipv4Addr;

/// L2/L3 addressing for a frame under construction.
#[derive(Debug, Clone, Copy)]
pub struct PacketBuilder {
    /// Source MAC.
    pub eth_src: MacAddr,
    /// Destination MAC.
    pub eth_dst: MacAddr,
    /// Source IPv4 address.
    pub ip_src: Ipv4Addr,
    /// Destination IPv4 address.
    pub ip_dst: Ipv4Addr,
    /// IP identification to stamp (useful for tracing).
    pub ip_id: u16,
}

impl PacketBuilder {
    /// Builder between two simulated nodes with derived MACs.
    pub fn between(src_node: u32, ip_src: Ipv4Addr, dst_node: u32, ip_dst: Ipv4Addr) -> Self {
        PacketBuilder {
            eth_src: MacAddr::for_node(src_node),
            eth_dst: MacAddr::for_node(dst_node),
            ip_src,
            ip_dst,
            ip_id: 0,
        }
    }

    /// Compose `eth / ipv4 / udp / payload`.
    pub fn udp(&self, src_port: u16, dst_port: u16, payload: &[u8]) -> BytesMut {
        let mut buf = BytesMut::with_capacity(
            EthernetHeader::LEN + Ipv4Header::LEN + UdpHeader::LEN + payload.len(),
        );
        self.udp_into(src_port, dst_port, payload, &mut buf);
        buf
    }

    /// Compose `eth / ipv4 / udp / payload` into a caller-provided buffer
    /// (cleared first), so pooled frame buffers can be refilled without a
    /// fresh allocation.
    pub fn udp_into(&self, src_port: u16, dst_port: u16, payload: &[u8], buf: &mut BytesMut) {
        let udp = UdpHeader::new(src_port, dst_port, payload.len());
        let mut ip = Ipv4Header::new(
            self.ip_src,
            self.ip_dst,
            IpProtocol::Udp,
            UdpHeader::LEN + payload.len(),
        );
        ip.identification = self.ip_id;
        let eth = EthernetHeader::ipv4(self.eth_src, self.eth_dst);

        buf.clear();
        buf.reserve(EthernetHeader::LEN + Ipv4Header::LEN + UdpHeader::LEN + payload.len());
        eth.encode(buf);
        ip.encode(buf);
        udp.encode(buf);
        buf.extend_from_slice(payload);
    }

    /// Compose `eth / ipv4 / udp / encodable-payload` (avoids an
    /// intermediate allocation for [`WireEncode`] payloads).
    pub fn udp_msg<M: WireEncode>(&self, src_port: u16, dst_port: u16, msg: &M) -> BytesMut {
        let payload_len = msg.encoded_len();
        let udp = UdpHeader::new(src_port, dst_port, payload_len);
        let mut ip = Ipv4Header::new(
            self.ip_src,
            self.ip_dst,
            IpProtocol::Udp,
            UdpHeader::LEN + payload_len,
        );
        ip.identification = self.ip_id;
        let eth = EthernetHeader::ipv4(self.eth_src, self.eth_dst);

        let mut buf = BytesMut::with_capacity(
            EthernetHeader::LEN + Ipv4Header::LEN + UdpHeader::LEN + payload_len,
        );
        eth.encode(&mut buf);
        ip.encode(&mut buf);
        udp.encode(&mut buf);
        msg.encode(&mut buf);
        buf
    }

    /// Compose `eth / ipv4 / tcp / payload`.
    pub fn tcp(&self, tcp: TcpHeader, payload: &[u8]) -> BytesMut {
        let mut buf = BytesMut::with_capacity(
            EthernetHeader::LEN + Ipv4Header::LEN + TcpHeader::LEN + payload.len(),
        );
        self.tcp_into(tcp, payload, &mut buf);
        buf
    }

    /// Compose `eth / ipv4 / tcp / payload` into a caller-provided buffer
    /// (cleared first); see [`PacketBuilder::udp_into`].
    pub fn tcp_into(&self, tcp: TcpHeader, payload: &[u8], buf: &mut BytesMut) {
        let mut ip = Ipv4Header::new(
            self.ip_src,
            self.ip_dst,
            IpProtocol::Tcp,
            TcpHeader::LEN + payload.len(),
        );
        ip.identification = self.ip_id;
        let eth = EthernetHeader::ipv4(self.eth_src, self.eth_dst);

        buf.clear();
        buf.reserve(EthernetHeader::LEN + Ipv4Header::LEN + TcpHeader::LEN + payload.len());
        eth.encode(buf);
        ip.encode(buf);
        tcp.encode(buf);
        buf.extend_from_slice(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{L4View, ParsedPacket};
    use crate::tcp::TcpFlags;

    fn builder() -> PacketBuilder {
        PacketBuilder::between(1, Ipv4Addr::new(10, 0, 0, 1), 2, Ipv4Addr::new(10, 0, 0, 2))
    }

    #[test]
    fn udp_frame_parses_back() {
        let frame = builder().udp(5555, 6081, b"probe-payload");
        let p = ParsedPacket::parse(&frame).unwrap();
        assert_eq!(p.eth.src, MacAddr::for_node(1));
        let ip = p.ip.expect("ipv4");
        assert_eq!(ip.dst, Ipv4Addr::new(10, 0, 0, 2));
        match p.l4.expect("l4") {
            L4View::Udp(h) => {
                assert_eq!(h.src_port, 5555);
                assert_eq!(h.dst_port, 6081);
            }
            other => panic!("expected UDP, got {other:?}"),
        }
        assert_eq!(p.payload(&frame), b"probe-payload");
    }

    #[test]
    fn tcp_frame_parses_back() {
        let tcp = TcpHeader {
            src_port: 40001,
            dst_port: 7100,
            seq: 1000,
            ack: 0,
            flags: TcpFlags::SYN,
            window: 65535,
        };
        let frame = builder().tcp(tcp, &[]);
        let p = ParsedPacket::parse(&frame).unwrap();
        match p.l4.expect("l4") {
            L4View::Tcp(h) => assert_eq!(h, tcp),
            other => panic!("expected TCP, got {other:?}"),
        }
        assert!(p.payload(&frame).is_empty());
    }

    #[test]
    fn udp_msg_equals_udp_of_bytes() {
        let msg = crate::msgs::ControlMsg::EchoRequest { seq: 3, ts_ns: 99 };
        let a = builder().udp_msg(10, 20, &msg);
        let b = builder().udp(10, 20, &msg.to_bytes());
        assert_eq!(a, b);
    }

    #[test]
    fn frame_length_is_sum_of_parts() {
        let frame = builder().udp(1, 2, &[0u8; 100]);
        assert_eq!(frame.len(), 14 + 20 + 8 + 100);
    }

    #[test]
    fn into_variants_reuse_a_buffer_without_residue() {
        let mut buf = BytesMut::new();
        builder().udp_into(1, 2, &[0xAA; 300], &mut buf);
        assert_eq!(buf, builder().udp(1, 2, &[0xAA; 300]));
        let cap = buf.capacity();

        // Refill with a smaller TCP segment: same bytes as the allocating
        // path, no leftovers from the previous (longer) frame, no realloc.
        let tcp = TcpHeader {
            src_port: 1,
            dst_port: 2,
            seq: 9,
            ack: 3,
            flags: TcpFlags::ACK,
            window: 1000,
        };
        builder().tcp_into(tcp, b"hi", &mut buf);
        assert_eq!(buf, builder().tcp(tcp, b"hi"));
        assert_eq!(buf.capacity(), cap, "refill reuses the allocation");
    }
}
