//! Seeded job-stream generation (paper §IV).
//!
//! "Although nodes to run background traffic and submit tasks are selected
//! randomly, we used the same order when comparing different scheduling
//! algorithms to ensure fairness" — hence everything here is a pure
//! function of the seed.

use crate::spec::{JobKind, JobSpec, TaskClass, TaskSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of a job stream.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Total number of *tasks* (the paper runs 200 per experiment).
    pub total_tasks: usize,
    /// Serverless (1 task/job) or distributed (3 tasks/job).
    pub kind: JobKind,
    /// Nodes that may submit jobs.
    pub submitters: Vec<u32>,
    /// Classes to draw from (uniformly). Restrict to one class to run a
    /// fixed-size experiment (e.g. Fig. 9 uses medium or small only).
    pub classes: Vec<TaskClass>,
    /// Job inter-arrival time range, ns (uniform).
    pub interarrival_ns: (u64, u64),
    /// First submission time, ns (lets probes warm the network map first).
    pub start_ns: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            total_tasks: 200,
            kind: JobKind::Serverless,
            submitters: Vec::new(),
            classes: TaskClass::ALL.to_vec(),
            interarrival_ns: (2_000_000_000, 4_000_000_000),
            start_ns: 2_000_000_000,
        }
    }
}

/// Deterministic job-stream generator.
#[derive(Debug)]
pub struct WorkloadGenerator {
    rng: SmallRng,
}

impl WorkloadGenerator {
    /// Generator with its own seed (independent of other streams).
    pub fn new(seed: u64) -> Self {
        WorkloadGenerator { rng: SmallRng::seed_from_u64(seed ^ 0xC0FF_EE00_D15E_A5E5) }
    }

    /// Generate the full job stream for `cfg`.
    pub fn generate(&mut self, cfg: &WorkloadConfig) -> Vec<JobSpec> {
        assert!(!cfg.submitters.is_empty(), "no submitters configured");
        assert!(!cfg.classes.is_empty(), "no task classes configured");

        let per_job = cfg.kind.task_count();
        let n_jobs = cfg.total_tasks.div_ceil(per_job);
        let mut jobs = Vec::with_capacity(n_jobs);
        let mut t = cfg.start_ns;

        for job_id in 0..n_jobs as u64 {
            let submitter = cfg.submitters[self.rng.gen_range(0..cfg.submitters.len())];
            let class = cfg.classes[self.rng.gen_range(0..cfg.classes.len())];
            let tasks = (0..per_job as u64).map(|task_id| self.task(task_id, class)).collect();
            jobs.push(JobSpec { job_id, submitter, submit_at_ns: t, kind: cfg.kind, tasks });

            let (lo, hi) = cfg.interarrival_ns;
            t += if hi > lo { self.rng.gen_range(lo..=hi) } else { lo };
        }
        jobs
    }

    fn task(&mut self, task_id: u64, class: TaskClass) -> TaskSpec {
        let (kb_lo, kb_hi) = class.data_kb_range();
        let (ms_lo, ms_hi) = class.exec_ms_range();
        // Lower-bound VS data at 1 KB so a "transfer" always moves bytes.
        let data_kb = self.rng.gen_range(kb_lo.max(1)..=kb_hi);
        let exec_ms = self.rng.gen_range(ms_lo..=ms_hi);
        TaskSpec { task_id, data_bytes: data_kb * 1000, exec_ns: exec_ms * 1_000_000, class }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(kind: JobKind) -> WorkloadConfig {
        WorkloadConfig {
            kind,
            submitters: vec![0, 1, 2, 4, 5, 6, 7],
            ..WorkloadConfig::default()
        }
    }

    #[test]
    fn serverless_produces_200_single_task_jobs() {
        let jobs = WorkloadGenerator::new(1).generate(&cfg(JobKind::Serverless));
        assert_eq!(jobs.len(), 200);
        assert!(jobs.iter().all(|j| j.tasks.len() == 1));
        let total: usize = jobs.iter().map(|j| j.tasks.len()).sum();
        assert_eq!(total, 200);
    }

    #[test]
    fn distributed_produces_200_tasks_in_triples() {
        let jobs = WorkloadGenerator::new(1).generate(&cfg(JobKind::Distributed));
        assert_eq!(jobs.len(), 67, "ceil(200/3)");
        assert!(jobs.iter().all(|j| j.tasks.len() == 3));
    }

    #[test]
    fn all_tasks_respect_table1_ranges() {
        let jobs = WorkloadGenerator::new(3).generate(&cfg(JobKind::Serverless));
        for j in &jobs {
            for t in &j.tasks {
                let (kb_lo, kb_hi) = t.class.data_kb_range();
                let (ms_lo, ms_hi) = t.class.exec_ms_range();
                let kb = t.data_bytes / 1000;
                assert!(kb >= kb_lo.max(1) && kb <= kb_hi, "{t:?}");
                let ms = t.exec_ns / 1_000_000;
                assert!(ms >= ms_lo && ms <= ms_hi, "{t:?}");
            }
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let a = WorkloadGenerator::new(9).generate(&cfg(JobKind::Serverless));
        let b = WorkloadGenerator::new(9).generate(&cfg(JobKind::Serverless));
        assert_eq!(a, b);
        let c = WorkloadGenerator::new(10).generate(&cfg(JobKind::Serverless));
        assert_ne!(a, c);
    }

    #[test]
    fn submit_times_are_monotone_and_spaced() {
        let jobs = WorkloadGenerator::new(5).generate(&cfg(JobKind::Serverless));
        for w in jobs.windows(2) {
            let gap = w[1].submit_at_ns - w[0].submit_at_ns;
            assert!((2_000_000_000..=4_000_000_000).contains(&gap), "gap {gap}");
        }
        assert_eq!(jobs[0].submit_at_ns, 2_000_000_000);
    }

    #[test]
    fn submitters_all_used_eventually() {
        let jobs = WorkloadGenerator::new(2).generate(&cfg(JobKind::Serverless));
        let used: std::collections::BTreeSet<u32> = jobs.iter().map(|j| j.submitter).collect();
        assert_eq!(used.len(), 7, "200 draws cover all 7 submitters");
    }

    #[test]
    fn single_class_restriction_respected() {
        let mut c = cfg(JobKind::Distributed);
        c.classes = vec![TaskClass::Medium];
        let jobs = WorkloadGenerator::new(1).generate(&c);
        assert!(jobs.iter().all(|j| j.class() == TaskClass::Medium));
    }

    #[test]
    #[should_panic(expected = "no submitters")]
    fn empty_submitters_panics() {
        let mut c = cfg(JobKind::Serverless);
        c.submitters.clear();
        WorkloadGenerator::new(1).generate(&c);
    }
}
