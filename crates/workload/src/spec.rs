//! Task and job specifications (paper Table I).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The four workload size classes of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TaskClass {
    /// Very small: 0–1000 KB, 0–2000 ms.
    VerySmall,
    /// Small: 1500–2500 KB, 2500–4500 ms.
    Small,
    /// Medium: 3000–4000 KB, 5000–7000 ms.
    Medium,
    /// Large: 4500–5500 KB, 7500–9500 ms.
    Large,
}

impl TaskClass {
    /// All classes in Table I order.
    pub const ALL: [TaskClass; 4] =
        [TaskClass::VerySmall, TaskClass::Small, TaskClass::Medium, TaskClass::Large];

    /// Inclusive data-size range in KB (Table I, column 2).
    pub fn data_kb_range(self) -> (u64, u64) {
        match self {
            TaskClass::VerySmall => (0, 1000),
            TaskClass::Small => (1500, 2500),
            TaskClass::Medium => (3000, 4000),
            TaskClass::Large => (4500, 5500),
        }
    }

    /// Inclusive execution-time range in ms (Table I, column 3).
    pub fn exec_ms_range(self) -> (u64, u64) {
        match self {
            TaskClass::VerySmall => (0, 2000),
            TaskClass::Small => (2500, 4500),
            TaskClass::Medium => (5000, 7000),
            TaskClass::Large => (7500, 9500),
        }
    }

    /// Short label as used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            TaskClass::VerySmall => "VS",
            TaskClass::Small => "S",
            TaskClass::Medium => "M",
            TaskClass::Large => "L",
        }
    }

    /// Classify a task by its data size, back-mapping to Table I. Sizes
    /// falling between bands map to the nearest band below: a gap size
    /// belongs to the class whose range it exceeds, up to (but not
    /// including) the next class's lower bound.
    pub fn classify_data_kb(kb: u64) -> TaskClass {
        match kb {
            0..=1499 => TaskClass::VerySmall,
            1500..=2999 => TaskClass::Small,
            3000..=4499 => TaskClass::Medium,
            _ => TaskClass::Large,
        }
    }
}

impl fmt::Display for TaskClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// How many tasks a job fans out to (paper §IV: serverless jobs submit one
/// task, distributed jobs submit three).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JobKind {
    /// Function-as-a-Service style: one task.
    Serverless,
    /// Distributed/federated style: three parallel tasks.
    Distributed,
}

impl JobKind {
    /// Tasks per job.
    pub fn task_count(self) -> usize {
        match self {
            JobKind::Serverless => 1,
            JobKind::Distributed => 3,
        }
    }
}

/// One task to be offloaded: how much data to move and how long it runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskSpec {
    /// Task index within its job.
    pub task_id: u64,
    /// Input data to transfer, bytes.
    pub data_bytes: u64,
    /// Execution time once the data has arrived, ns.
    pub exec_ns: u64,
    /// The Table I class this task was drawn from.
    pub class: TaskClass,
}

/// One job: submitted by a node at a time, fanning out to `tasks`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Globally unique job id.
    pub job_id: u64,
    /// Node that submits the job.
    pub submitter: u32,
    /// Absolute submission time, ns since simulation epoch.
    pub submit_at_ns: u64,
    /// Serverless or distributed.
    pub kind: JobKind,
    /// The tasks (length = `kind.task_count()`).
    pub tasks: Vec<TaskSpec>,
}

impl JobSpec {
    /// The class of this job (all tasks in a job share one class).
    pub fn class(&self) -> TaskClass {
        self.tasks.first().map(|t| t.class).unwrap_or(TaskClass::VerySmall)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_ranges() {
        assert_eq!(TaskClass::VerySmall.data_kb_range(), (0, 1000));
        assert_eq!(TaskClass::Small.data_kb_range(), (1500, 2500));
        assert_eq!(TaskClass::Medium.data_kb_range(), (3000, 4000));
        assert_eq!(TaskClass::Large.data_kb_range(), (4500, 5500));
        assert_eq!(TaskClass::VerySmall.exec_ms_range(), (0, 2000));
        assert_eq!(TaskClass::Small.exec_ms_range(), (2500, 4500));
        assert_eq!(TaskClass::Medium.exec_ms_range(), (5000, 7000));
        assert_eq!(TaskClass::Large.exec_ms_range(), (7500, 9500));
    }

    #[test]
    fn task_counts() {
        assert_eq!(JobKind::Serverless.task_count(), 1);
        assert_eq!(JobKind::Distributed.task_count(), 3);
    }

    #[test]
    fn classification_matches_generation_ranges() {
        for class in TaskClass::ALL {
            let (lo, hi) = class.data_kb_range();
            assert_eq!(TaskClass::classify_data_kb(lo), class);
            assert_eq!(TaskClass::classify_data_kb(hi), class);
        }
    }

    #[test]
    fn between_band_sizes_map_to_the_band_below() {
        // Inside the VS band and at its top edge.
        assert_eq!(TaskClass::classify_data_kb(1000), TaskClass::VerySmall);
        // In the 1001–1499 gap: still "nearest band below" = VS.
        assert_eq!(TaskClass::classify_data_kb(1001), TaskClass::VerySmall);
        assert_eq!(TaskClass::classify_data_kb(1499), TaskClass::VerySmall);
        // The next band starts exactly at its Table I lower bound.
        assert_eq!(TaskClass::classify_data_kb(1500), TaskClass::Small);
        // Same rule at the other gaps.
        assert_eq!(TaskClass::classify_data_kb(2999), TaskClass::Small);
        assert_eq!(TaskClass::classify_data_kb(3000), TaskClass::Medium);
        assert_eq!(TaskClass::classify_data_kb(4499), TaskClass::Medium);
        assert_eq!(TaskClass::classify_data_kb(4500), TaskClass::Large);
        assert_eq!(TaskClass::classify_data_kb(9999), TaskClass::Large);
    }

    #[test]
    fn labels_match_paper() {
        let labels: Vec<&str> = TaskClass::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels, vec!["VS", "S", "M", "L"]);
    }
}
