//! # int-workload
//!
//! Workload and background-traffic generation for the paper's evaluation
//! (§IV): Table I task classes, serverless / distributed job streams, and
//! the three background-congestion scenarios (default, Traffic 1,
//! Traffic 2). Everything is seeded: the same seed produces the same job
//! submitters, task sizes, submission times, and background flows, which
//! is what lets different scheduling policies be compared fairly.

pub mod background;
pub mod gen;
pub mod spec;
pub mod workflow;

pub use background::{BackgroundScenario, BgFlow};
pub use gen::{WorkloadConfig, WorkloadGenerator};
pub use spec::{JobKind, JobSpec, TaskClass, TaskSpec};
pub use workflow::{DagShape, WorkflowConfig, WorkflowGenerator, WorkflowSpec, WorkflowTaskSpec};
