//! Background-traffic scenario generation (paper §IV and §IV-C).
//!
//! Three scenarios:
//! * **Default** — "at any given time, one or two iperf transfers run
//!   between randomly selected nodes for 30 s or 60 s duration".
//! * **Traffic 1** (infrequent change) — three transfers of 30 s with 10 s
//!   staggered starts, followed by 30 s of silence, repeating.
//! * **Traffic 2** (frequent change) — three transfers of 5 s, 5 s of
//!   silence, repeating.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One constant-rate background flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BgFlow {
    /// Sending node.
    pub src: u32,
    /// Receiving node.
    pub dst: u32,
    /// Absolute start time, ns.
    pub start_ns: u64,
    /// Duration, ns.
    pub duration_ns: u64,
    /// Offered rate, bit/s.
    pub rate_bps: u64,
}

impl BgFlow {
    /// End time, ns.
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.duration_ns
    }

    /// Is the flow active at `t`?
    pub fn active_at(&self, t_ns: u64) -> bool {
        (self.start_ns..self.end_ns()).contains(&t_ns)
    }
}

/// A background-traffic scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BackgroundScenario {
    /// One or two concurrent 30/60 s flows at all times.
    Default,
    /// Fig. 9 "Traffic 1": 3×30 s flows, 10 s stagger, 30 s gap.
    Traffic1,
    /// Fig. 9 "Traffic 2": 3×5 s flows, 5 s gap.
    Traffic2,
}

impl BackgroundScenario {
    /// Generate the flow schedule for `[0, horizon_ns)` between `nodes`.
    /// `rate_bps` is the per-flow offered rate (the paper saturates its
    /// ~20 Mbit/s bottlenecks; 18 Mbit/s ≈ 90 % utilization is a sensible
    /// default). Deterministic in `seed`.
    pub fn generate(
        self,
        nodes: &[u32],
        horizon_ns: u64,
        rate_bps: u64,
        seed: u64,
    ) -> Vec<BgFlow> {
        assert!(nodes.len() >= 2, "need at least two nodes for background flows");
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x00BA_C600_00F1_0A75_u64);
        let mut flows = Vec::new();
        const S: u64 = 1_000_000_000;

        let pick_pair = |rng: &mut SmallRng| {
            let src = nodes[rng.gen_range(0..nodes.len())];
            loop {
                let dst = nodes[rng.gen_range(0..nodes.len())];
                if dst != src {
                    return (src, dst);
                }
            }
        };

        match self {
            BackgroundScenario::Default => {
                // Epochs: in each, 1–2 flows of 30 or 60 s; the next epoch
                // begins when the shortest-lived flow of this epoch ends so
                // 1–2 flows are active at any given time.
                let mut t = 0u64;
                while t < horizon_ns {
                    let count = rng.gen_range(1..=2);
                    let mut shortest = u64::MAX;
                    for _ in 0..count {
                        let (src, dst) = pick_pair(&mut rng);
                        let duration = if rng.gen_bool(0.5) { 30 * S } else { 60 * S };
                        shortest = shortest.min(duration);
                        flows.push(BgFlow {
                            src,
                            dst,
                            start_ns: t,
                            duration_ns: duration,
                            rate_bps,
                        });
                    }
                    t += shortest;
                }
            }
            BackgroundScenario::Traffic1 => {
                // Cycle of 60 s: flows at +0/+10/+20 s, each 30 s long.
                let mut t = 0u64;
                while t < horizon_ns {
                    for i in 0..3u64 {
                        let (src, dst) = pick_pair(&mut rng);
                        flows.push(BgFlow {
                            src,
                            dst,
                            start_ns: t + i * 10 * S,
                            duration_ns: 30 * S,
                            rate_bps,
                        });
                    }
                    t += 60 * S;
                }
            }
            BackgroundScenario::Traffic2 => {
                // Cycle of 10 s: three concurrent 5 s flows, 5 s silence.
                let mut t = 0u64;
                while t < horizon_ns {
                    for _ in 0..3 {
                        let (src, dst) = pick_pair(&mut rng);
                        flows.push(BgFlow {
                            src,
                            dst,
                            start_ns: t,
                            duration_ns: 5 * S,
                            rate_bps,
                        });
                    }
                    t += 10 * S;
                }
            }
        }
        flows.retain(|f| f.start_ns < horizon_ns);
        flows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: u64 = 1_000_000_000;
    const NODES: [u32; 8] = [0, 1, 2, 3, 4, 5, 6, 7];

    fn active_count(flows: &[BgFlow], t: u64) -> usize {
        flows.iter().filter(|f| f.active_at(t)).count()
    }

    #[test]
    fn default_keeps_one_or_two_flows_active() {
        let flows = BackgroundScenario::Default.generate(&NODES, 300 * S, 18_000_000, 1);
        // Sample interior instants (skip exact boundaries).
        for t in (1..295).map(|s| s * S + 500_000_000) {
            let n = active_count(&flows, t);
            assert!((1..=4).contains(&n), "{n} flows active at {t}");
        }
    }

    #[test]
    fn traffic1_structure() {
        let flows = BackgroundScenario::Traffic1.generate(&NODES, 120 * S, 18_000_000, 1);
        assert_eq!(flows.len(), 6, "two 60 s cycles of three flows");
        // Stagger: starts at 0, 10, 20 s within the first cycle.
        let starts: Vec<u64> = flows[..3].iter().map(|f| f.start_ns / S).collect();
        assert_eq!(starts, vec![0, 10, 20]);
        assert!(flows.iter().all(|f| f.duration_ns == 30 * S));
        // 50–60 s window is silent.
        assert_eq!(active_count(&flows, 55 * S), 0);
        // 20–30 s window has all three.
        assert_eq!(active_count(&flows, 25 * S), 3);
    }

    #[test]
    fn traffic2_structure() {
        let flows = BackgroundScenario::Traffic2.generate(&NODES, 40 * S, 18_000_000, 1);
        assert_eq!(flows.len(), 12, "four 10 s cycles of three flows");
        assert!(flows.iter().all(|f| f.duration_ns == 5 * S));
        assert_eq!(active_count(&flows, 2 * S), 3);
        assert_eq!(active_count(&flows, 7 * S), 0, "silent half of the cycle");
    }

    #[test]
    fn no_self_flows_and_deterministic() {
        for scenario in
            [BackgroundScenario::Default, BackgroundScenario::Traffic1, BackgroundScenario::Traffic2]
        {
            let a = scenario.generate(&NODES, 100 * S, 18_000_000, 42);
            assert!(a.iter().all(|f| f.src != f.dst));
            let b = scenario.generate(&NODES, 100 * S, 18_000_000, 42);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn horizon_respected() {
        let flows = BackgroundScenario::Default.generate(&NODES, 10 * S, 18_000_000, 7);
        assert!(flows.iter().all(|f| f.start_ns < 10 * S));
        assert!(!flows.is_empty());
    }
}
