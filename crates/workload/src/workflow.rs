//! DAG workflow generation (ROADMAP item 4).
//!
//! The paper's evaluation submits independent 1-task and 3-task jobs; a
//! workflow generalizes that to a task DAG with data dependencies,
//! per-task deadlines, and a release time. A task becomes *ready* when
//! every parent has completed; the submitter re-queries the scheduler for
//! each ready stage, so placement reacts to the network and load as the
//! workflow unfolds.
//!
//! Like [`crate::gen::WorkloadGenerator`], everything is a pure function
//! of the seed so different scheduling policies face byte-identical
//! workflow streams.

use crate::spec::TaskClass;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One task inside a workflow DAG.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkflowTaskSpec {
    /// Task id, unique within the workflow.
    pub task_id: u64,
    /// Input data to transfer, bytes.
    pub data_bytes: u64,
    /// Execution time once the data has arrived, ns.
    pub exec_ns: u64,
    /// The Table I class this task was drawn from.
    pub class: TaskClass,
    /// Absolute completion deadline, ns since simulation epoch (0 = none).
    pub deadline_ns: u64,
    /// Task ids that must complete before this task is released.
    pub parents: Vec<u64>,
}

/// One workflow: a task DAG released by a submitter at a point in time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkflowSpec {
    /// Globally unique workflow id.
    pub workflow_id: u64,
    /// Node that submits the workflow.
    pub submitter: u32,
    /// Absolute release time of the root tasks, ns since epoch.
    pub release_at_ns: u64,
    /// The tasks; parents always precede children in this list.
    pub tasks: Vec<WorkflowTaskSpec>,
}

impl WorkflowSpec {
    /// Root tasks (no parents) — released at `release_at_ns`.
    pub fn roots(&self) -> impl Iterator<Item = &WorkflowTaskSpec> {
        self.tasks.iter().filter(|t| t.parents.is_empty())
    }

    /// Sum of all task execution times, ns (a makespan lower bound on a
    /// single serial executor).
    pub fn total_exec_ns(&self) -> u64 {
        self.tasks.iter().map(|t| t.exec_ns).sum()
    }
}

/// The DAG shapes the generator draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DagShape {
    /// `0 → 1 → 2`: strictly sequential.
    Chain,
    /// `0 → {1, 2, 3}`: one producer fanning out to three consumers.
    FanOut,
    /// `0 → {1, 2} → 3`: fork then join.
    Diamond,
}

impl DagShape {
    /// All shapes, generation order.
    pub const ALL: [DagShape; 3] = [DagShape::Chain, DagShape::FanOut, DagShape::Diamond];

    /// `(task, parents)` adjacency of the shape.
    fn edges(self) -> &'static [(u64, &'static [u64])] {
        match self {
            DagShape::Chain => &[(0, &[]), (1, &[0]), (2, &[1])],
            DagShape::FanOut => &[(0, &[]), (1, &[0]), (2, &[0]), (3, &[0])],
            DagShape::Diamond => &[(0, &[]), (1, &[0]), (2, &[0]), (3, &[1, 2])],
        }
    }
}

/// Parameters of a workflow stream.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkflowConfig {
    /// Number of workflows to generate.
    pub total_workflows: usize,
    /// Nodes that may submit workflows.
    pub submitters: Vec<u32>,
    /// Classes tasks are drawn from (uniformly).
    pub classes: Vec<TaskClass>,
    /// DAG shapes drawn from (uniformly).
    pub shapes: Vec<DagShape>,
    /// Workflow inter-release time range, ns (uniform).
    pub interarrival_ns: (u64, u64),
    /// First release time, ns (lets probes warm the network map first).
    pub start_ns: u64,
    /// Deadline slack: each task's deadline is its critical-path budget
    /// (transfer + execution along the longest path from a root) scaled by
    /// `slack_pct / 100`. 100 = exactly the uncontended estimate (very
    /// tight); 300 = 3× slack.
    pub slack_pct: u64,
    /// Transfer-time budget used in the deadline estimate, ns per byte
    /// (e.g. 400 ns/byte ≈ 20 Mbit/s, the testbed bottleneck).
    pub transfer_ns_per_byte: u64,
    /// Fixed per-task budget for scheduling overhead (query round trip,
    /// stream setup, completion callback), ns. Without it the deadline of
    /// a near-zero-size task would be unmeetable at any slack.
    pub stage_overhead_ns: u64,
}

impl Default for WorkflowConfig {
    fn default() -> Self {
        WorkflowConfig {
            total_workflows: 20,
            submitters: Vec::new(),
            classes: vec![TaskClass::VerySmall, TaskClass::Small],
            shapes: DagShape::ALL.to_vec(),
            interarrival_ns: (2_000_000_000, 6_000_000_000),
            start_ns: 2_000_000_000,
            slack_pct: 250,
            transfer_ns_per_byte: 400,
            stage_overhead_ns: 200_000_000,
        }
    }
}

/// Deterministic workflow-stream generator.
#[derive(Debug)]
pub struct WorkflowGenerator {
    rng: SmallRng,
}

impl WorkflowGenerator {
    /// Generator with its own seed (independent of the job stream).
    pub fn new(seed: u64) -> Self {
        WorkflowGenerator { rng: SmallRng::seed_from_u64(seed ^ 0xDA60_F10E_5EED_BEEF) }
    }

    /// Generate the full workflow stream for `cfg`.
    pub fn generate(&mut self, cfg: &WorkflowConfig) -> Vec<WorkflowSpec> {
        assert!(!cfg.submitters.is_empty(), "no submitters configured");
        assert!(!cfg.classes.is_empty(), "no task classes configured");
        assert!(!cfg.shapes.is_empty(), "no DAG shapes configured");

        let mut out = Vec::with_capacity(cfg.total_workflows);
        let mut release = cfg.start_ns;
        for workflow_id in 0..cfg.total_workflows as u64 {
            let submitter = cfg.submitters[self.rng.gen_range(0..cfg.submitters.len())];
            let shape = cfg.shapes[self.rng.gen_range(0..cfg.shapes.len())];

            let mut tasks: Vec<WorkflowTaskSpec> = Vec::new();
            for &(task_id, parents) in shape.edges() {
                let class = cfg.classes[self.rng.gen_range(0..cfg.classes.len())];
                let (kb_lo, kb_hi) = class.data_kb_range();
                let (ms_lo, ms_hi) = class.exec_ms_range();
                let data_bytes = self.rng.gen_range(kb_lo.max(1)..=kb_hi) * 1000;
                let exec_ns = self.rng.gen_range(ms_lo..=ms_hi) * 1_000_000;

                // Critical-path budget: this task's own transfer + exec on
                // top of the slowest parent's budget (tasks store it inside
                // deadline_ns until the slack scaling below).
                let own_ns =
                    cfg.stage_overhead_ns + data_bytes * cfg.transfer_ns_per_byte + exec_ns;
                let parent_budget = parents
                    .iter()
                    .map(|&p| tasks[p as usize].deadline_ns)
                    .max()
                    .unwrap_or(0);
                tasks.push(WorkflowTaskSpec {
                    task_id,
                    data_bytes,
                    exec_ns,
                    class,
                    deadline_ns: parent_budget + own_ns, // budget, scaled below
                    parents: parents.to_vec(),
                });
            }
            // Convert accumulated budgets into absolute deadlines.
            for t in &mut tasks {
                t.deadline_ns = release + t.deadline_ns * cfg.slack_pct / 100;
            }

            out.push(WorkflowSpec { workflow_id, submitter, release_at_ns: release, tasks });
            let (lo, hi) = cfg.interarrival_ns;
            release += if hi > lo { self.rng.gen_range(lo..=hi) } else { lo };
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> WorkflowConfig {
        WorkflowConfig { submitters: vec![0, 1, 2, 3], ..WorkflowConfig::default() }
    }

    #[test]
    fn parents_precede_children_and_exist() {
        let wfs = WorkflowGenerator::new(1).generate(&cfg());
        assert_eq!(wfs.len(), 20);
        for wf in &wfs {
            assert!(wf.roots().count() >= 1);
            for (i, t) in wf.tasks.iter().enumerate() {
                assert_eq!(t.task_id, i as u64, "ids are list positions");
                for &p in &t.parents {
                    assert!(p < t.task_id, "parent {p} precedes task {}", t.task_id);
                }
            }
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let a = WorkflowGenerator::new(9).generate(&cfg());
        let b = WorkflowGenerator::new(9).generate(&cfg());
        assert_eq!(a, b);
        let c = WorkflowGenerator::new(10).generate(&cfg());
        assert_ne!(a, c);
    }

    #[test]
    fn deadlines_grow_along_dependency_paths() {
        let wfs = WorkflowGenerator::new(3).generate(&cfg());
        for wf in &wfs {
            for t in &wf.tasks {
                assert!(t.deadline_ns > wf.release_at_ns, "deadline after release");
                for &p in &t.parents {
                    assert!(
                        t.deadline_ns > wf.tasks[p as usize].deadline_ns,
                        "child deadline after parent's"
                    );
                }
            }
        }
    }

    #[test]
    fn tasks_respect_table1_ranges() {
        let wfs = WorkflowGenerator::new(5).generate(&cfg());
        for wf in &wfs {
            for t in &wf.tasks {
                let (kb_lo, kb_hi) = t.class.data_kb_range();
                let (ms_lo, ms_hi) = t.class.exec_ms_range();
                let kb = t.data_bytes / 1000;
                assert!(kb >= kb_lo.max(1) && kb <= kb_hi, "{t:?}");
                let ms = t.exec_ns / 1_000_000;
                assert!(ms >= ms_lo && ms <= ms_hi, "{t:?}");
            }
        }
    }

    #[test]
    fn slack_scales_deadlines() {
        let mut tight = cfg();
        tight.slack_pct = 100;
        let mut loose = cfg();
        loose.slack_pct = 400;
        let a = WorkflowGenerator::new(4).generate(&tight);
        let b = WorkflowGenerator::new(4).generate(&loose);
        for (wa, wb) in a.iter().zip(&b) {
            for (ta, tb) in wa.tasks.iter().zip(&wb.tasks) {
                let slack_a = ta.deadline_ns - wa.release_at_ns;
                let slack_b = tb.deadline_ns - wb.release_at_ns;
                assert_eq!(slack_b, slack_a * 4, "same draw, 4× slack");
            }
        }
    }

    #[test]
    fn release_times_are_monotone() {
        let wfs = WorkflowGenerator::new(7).generate(&cfg());
        for w in wfs.windows(2) {
            assert!(w[1].release_at_ns > w[0].release_at_ns);
        }
    }
}
