//! Deterministic parallel execution of experiment cells.
//!
//! Every figure harness has the same shape: a grid of independent
//! simulation cells (policy × seed × sweep point), each deterministic
//! given its config. This module runs such a grid across a scoped thread
//! pool while keeping the *output order* identical to the input order —
//! results land in pre-assigned slots, so the merge order (and therefore
//! every serialized artifact) is independent of thread count and
//! scheduling.
//!
//! Worker count comes from `INT_EXP_THREADS` when set (useful to pin CI
//! or to force serial execution), otherwise from the machine's available
//! parallelism.

use crossbeam::thread;

/// Worker-thread count: `INT_EXP_THREADS` override, else the machine's
/// available parallelism, else 1.
pub fn threads() -> usize {
    if let Ok(v) = std::env::var("INT_EXP_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Map `f` over `items` on up to [`threads`] workers, preserving order.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_with(threads(), items, f)
}

/// [`parallel_map`] with an explicit worker count.
///
/// Items are split into `workers` contiguous chunks, one scoped thread
/// per chunk, each writing into its own slice of the result vector —
/// order is preserved by construction, no result reordering or locking.
pub fn parallel_map_with<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = workers.clamp(1, items.len().max(1));
    if workers <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }

    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let chunk = items.len().div_ceil(workers);
    let f = &f;
    thread::scope(|s| {
        for (out_chunk, in_chunk) in slots.chunks_mut(chunk).zip(items.chunks(chunk)) {
            s.spawn(move |_| {
                for (slot, item) in out_chunk.iter_mut().zip(in_chunk) {
                    *slot = Some(f(item));
                }
            });
        }
    })
    .expect("parallel_map worker panicked");

    slots.into_iter().map(|r| r.expect("every slot filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        for workers in [1, 2, 3, 7, 100, 1000] {
            let out = parallel_map_with(workers, &items, |&x| x * x);
            let expected: Vec<u64> = items.iter().map(|&x| x * x).collect();
            assert_eq!(out, expected, "order broken at workers={workers}");
        }
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..37).collect();
        let serial = parallel_map_with(1, &items, |&x| x.wrapping_mul(0x9E3779B9).rotate_left(7));
        let par = parallel_map_with(4, &items, |&x| x.wrapping_mul(0x9E3779B9).rotate_left(7));
        assert_eq!(serial, par);
    }

    #[test]
    fn empty_and_single_inputs() {
        let none: Vec<u32> = vec![];
        assert!(parallel_map_with(8, &none, |&x| x).is_empty());
        assert_eq!(parallel_map_with(8, &[5u32], |&x| x + 1), vec![6]);
    }

    #[test]
    fn threads_is_at_least_one() {
        assert!(threads() >= 1);
    }
}
