//! Deterministic parallel execution of experiment cells.
//!
//! Every figure harness has the same shape: a grid of independent
//! simulation cells (policy × seed × sweep point), each deterministic
//! given its config. This module runs such a grid across a scoped thread
//! pool while keeping the *output order* identical to the input order —
//! results land in pre-assigned slots, so the merge order (and therefore
//! every serialized artifact) is independent of thread count and
//! scheduling.
//!
//! Worker count comes from `INT_EXP_THREADS` when set (useful to pin CI
//! or to force serial execution), otherwise from the machine's available
//! parallelism.

use crossbeam::thread;
use std::time::Instant;

/// Wall-clock and work profile of one grid cell.
///
/// Profiles are a side channel for humans tuning the harness: they are
/// printed to stderr (see [`report_profile`]) and must never be folded
/// into a saved artifact — wall time is nondeterministic by nature.
#[derive(Debug, Clone, Copy)]
pub struct CellProfile {
    /// Position of the cell in the input grid.
    pub index: usize,
    /// Wall-clock time the cell took, seconds.
    pub wall_s: f64,
    /// Work done by the cell, in cell-defined units (simulator events
    /// processed, typically).
    pub events: u64,
}

/// Is profile output requested? (`INT_EXP_PROFILE` set to anything but
/// `0` or empty.)
pub fn profile_enabled() -> bool {
    match std::env::var("INT_EXP_PROFILE") {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => false,
    }
}

/// Print per-cell profiles to stderr when `INT_EXP_PROFILE` is set;
/// otherwise do nothing. Never touches stdout or saved artifacts.
pub fn report_profile(label: &str, profiles: &[CellProfile]) {
    if !profile_enabled() || profiles.is_empty() {
        return;
    }
    let total_wall: f64 = profiles.iter().map(|p| p.wall_s).sum();
    let total_events: u64 = profiles.iter().map(|p| p.events).sum();
    eprintln!("[profile] {label}: {} cells, {total_wall:.2}s cpu, {total_events} events", profiles.len());
    for p in profiles {
        let rate = if p.wall_s > 0.0 { p.events as f64 / p.wall_s } else { 0.0 };
        eprintln!(
            "[profile] {label}[{}]: {:.3}s, {} events ({:.0} events/s)",
            p.index, p.wall_s, p.events, rate
        );
    }
}

/// Worker-thread count: `INT_EXP_THREADS` override, else the machine's
/// available parallelism, else 1.
pub fn threads() -> usize {
    if let Ok(v) = std::env::var("INT_EXP_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Map `f` over `items` on up to [`threads`] workers, preserving order.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_with(threads(), items, f)
}

/// [`parallel_map`] with an explicit worker count.
///
/// Items are split into `workers` contiguous chunks, one scoped thread
/// per chunk, each writing into its own slice of the result vector —
/// order is preserved by construction, no result reordering or locking.
pub fn parallel_map_with<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = workers.clamp(1, items.len().max(1));
    if workers <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }

    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let chunk = items.len().div_ceil(workers);
    let f = &f;
    thread::scope(|s| {
        for (out_chunk, in_chunk) in slots.chunks_mut(chunk).zip(items.chunks(chunk)) {
            s.spawn(move |_| {
                for (slot, item) in out_chunk.iter_mut().zip(in_chunk) {
                    *slot = Some(f(item));
                }
            });
        }
    })
    .expect("parallel_map worker panicked");

    slots.into_iter().map(|r| r.expect("every slot filled")).collect()
}

/// [`parallel_map_with`] plus per-cell profiling: `f` returns the cell
/// result and its work count (e.g. simulator events processed); each
/// cell's wall time is measured around the call. Results are in input
/// order exactly as with [`parallel_map_with`]; profiles come back in
/// the same order with `index` pre-filled.
pub fn parallel_map_profiled_with<T, R, F>(
    workers: usize,
    items: &[T],
    f: F,
) -> (Vec<R>, Vec<CellProfile>)
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> (R, u64) + Sync,
{
    let timed = parallel_map_with(workers, items, |item| {
        let started = Instant::now();
        let (result, events) = f(item);
        (result, events, started.elapsed().as_secs_f64())
    });
    let mut results = Vec::with_capacity(timed.len());
    let mut profiles = Vec::with_capacity(timed.len());
    for (index, (result, events, wall_s)) in timed.into_iter().enumerate() {
        results.push(result);
        profiles.push(CellProfile { index, wall_s, events });
    }
    (results, profiles)
}

/// [`parallel_map_profiled_with`] at the default worker count.
pub fn parallel_map_profiled<T, R, F>(items: &[T], f: F) -> (Vec<R>, Vec<CellProfile>)
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> (R, u64) + Sync,
{
    parallel_map_profiled_with(threads(), items, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        for workers in [1, 2, 3, 7, 100, 1000] {
            let out = parallel_map_with(workers, &items, |&x| x * x);
            let expected: Vec<u64> = items.iter().map(|&x| x * x).collect();
            assert_eq!(out, expected, "order broken at workers={workers}");
        }
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..37).collect();
        let serial = parallel_map_with(1, &items, |&x| x.wrapping_mul(0x9E3779B9).rotate_left(7));
        let par = parallel_map_with(4, &items, |&x| x.wrapping_mul(0x9E3779B9).rotate_left(7));
        assert_eq!(serial, par);
    }

    #[test]
    fn empty_and_single_inputs() {
        let none: Vec<u32> = vec![];
        assert!(parallel_map_with(8, &none, |&x| x).is_empty());
        assert_eq!(parallel_map_with(8, &[5u32], |&x| x + 1), vec![6]);
    }

    #[test]
    fn threads_is_at_least_one() {
        assert!(threads() >= 1);
    }

    #[test]
    fn profiled_map_preserves_results_and_profiles() {
        let items: Vec<u64> = (0..23).collect();
        for workers in [1, 4] {
            let (out, prof) = parallel_map_profiled_with(workers, &items, |&x| (x * 2, x + 100));
            let expected: Vec<u64> = items.iter().map(|&x| x * 2).collect();
            assert_eq!(out, expected, "results at workers={workers}");
            assert_eq!(prof.len(), items.len());
            for (i, p) in prof.iter().enumerate() {
                assert_eq!(p.index, i);
                assert_eq!(p.events, items[i] + 100, "event counts ride along in order");
                assert!(p.wall_s >= 0.0);
            }
        }
    }
}
