//! Ablations of the design choices DESIGN.md calls out.
//!
//! * **k sweep** — the paper fixes k = 20 ms/packet and leaves tuning as
//!   future work; [`run_k_sweep`] measures how the gain over Nearest moves
//!   as k varies.
//! * **queue signal** — the paper argues per-interval *maximum* queue
//!   occupancy is the right congestion signal and that averages are
//!   inconclusive; [`run_signal_ablation`] compares MaxQueue against the
//!   instantaneous sample a probe happens to observe.
//! * **compute-aware extension** — [`demo_compute_aware`] exercises the
//!   future-work extension: a backlogged near server loses its top rank.

use crate::compare::{CompareConfig, CompareOutput, Metric};
use crate::par;
use crate::report;
use int_core::compute::{Capabilities, ComputeTracker};
use int_core::config::HopSignal;
use int_core::rank::RankedServer;
use int_core::Policy;
use int_workload::{JobKind, TaskClass};
use serde::{Deserialize, Serialize};

/// One k-sweep cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KSweepPoint {
    /// k in ms per queued packet.
    pub k_ms: u64,
    /// Mean completion time over all classes, ms.
    pub mean_completion_ms: f64,
    /// Mean gain vs Nearest across classes.
    pub mean_gain: f64,
}

/// k-sweep output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KSweepOutput {
    /// One point per k value.
    pub points: Vec<KSweepPoint>,
}

fn overall_mean_completion(out: &CompareOutput, policy: Policy) -> f64 {
    let r = out.result(policy);
    let v: Vec<f64> = r.outcomes.iter().map(|o| o.completion_ms).collect();
    v.iter().sum::<f64>() / v.len().max(1) as f64
}

fn mean_gain(out: &CompareOutput) -> f64 {
    let gains: Vec<f64> = TaskClass::ALL
        .iter()
        .filter_map(|&c| out.gain_vs_nearest(c, Metric::Completion))
        .collect();
    gains.iter().sum::<f64>() / gains.len().max(1) as f64
}

/// Sweep the conversion factor k.
pub fn run_k_sweep(seed: u64, total_tasks: usize, k_ms_values: &[u64]) -> KSweepOutput {
    let points = par::parallel_map(k_ms_values, |&k_ms| {
        let mut cfg = CompareConfig::paper_default(seed, JobKind::Serverless, Policy::IntDelay);
        cfg.total_tasks = total_tasks;
        // Patch k into the testbed core config via the runner.
        let out = run_with_core_patch(&mut cfg, |core| {
            core.k_ns_per_pkt = k_ms * 1_000_000;
        });
        KSweepPoint {
            k_ms,
            mean_completion_ms: overall_mean_completion(&out, Policy::IntDelay),
            mean_gain: mean_gain(&out),
        }
    });
    KSweepOutput { points }
}

/// Signal-ablation output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SignalAblationOutput {
    /// Mean gain with the paper's max-queue signal.
    pub max_queue_gain: f64,
    /// Mean gain with the instantaneous-queue signal.
    pub instantaneous_gain: f64,
    /// Mean completion, max-queue, ms.
    pub max_queue_completion_ms: f64,
    /// Mean completion, instantaneous, ms.
    pub instantaneous_completion_ms: f64,
}

/// Compare MaxQueue vs InstantaneousQueue hop signals.
pub fn run_signal_ablation(seed: u64, total_tasks: usize) -> SignalAblationOutput {
    let signals = [HopSignal::MaxQueue, HopSignal::InstantaneousQueue];
    let mut outs = par::parallel_map(&signals, |&signal| {
        let mut cfg = CompareConfig::paper_default(seed, JobKind::Serverless, Policy::IntDelay);
        cfg.total_tasks = total_tasks;
        run_with_core_patch(&mut cfg, move |core| core.hop_signal = signal)
    })
    .into_iter();
    let (a, b) = (outs.next().expect("max"), outs.next().expect("inst"));
    SignalAblationOutput {
        max_queue_gain: mean_gain(&a),
        instantaneous_gain: mean_gain(&b),
        max_queue_completion_ms: overall_mean_completion(&a, Policy::IntDelay),
        instantaneous_completion_ms: overall_mean_completion(&b, Policy::IntDelay),
    }
}

/// Run a comparison with a patched core configuration.
fn run_with_core_patch(
    cfg: &mut CompareConfig,
    patch: impl Fn(&mut int_core::CoreConfig) + Copy + Send + Sync,
) -> CompareOutput {
    use crate::runner::run;
    let policies = [cfg.int_policy, Policy::Nearest, Policy::Random];
    let results = par::parallel_map(&policies, |&p| {
        let mut ecfg = cfg.experiment_for(p);
        patch(&mut ecfg.testbed.core);
        run(&ecfg)
    });
    let mut map = std::collections::BTreeMap::new();
    for r in results {
        map.insert(crate::compare::policy_key(r.policy), r);
    }
    CompareOutput { config: cfg.clone(), results: map }
}

/// Render the k sweep.
pub fn render_k_sweep(out: &KSweepOutput) -> String {
    let rows: Vec<Vec<String>> = out
        .points
        .iter()
        .map(|p| {
            vec![
                format!("{} ms", p.k_ms),
                report::ms(p.mean_completion_ms),
                report::pct(p.mean_gain),
            ]
        })
        .collect();
    report::table(&["k", "mean completion (ms)", "gain vs Nearest"], &rows)
}

/// Render the signal ablation.
pub fn render_signal(out: &SignalAblationOutput) -> String {
    report::table(
        &["signal", "mean completion (ms)", "gain vs Nearest"],
        &[
            vec![
                "max queue (paper)".into(),
                report::ms(out.max_queue_completion_ms),
                report::pct(out.max_queue_gain),
            ],
            vec![
                "instantaneous queue".into(),
                report::ms(out.instantaneous_completion_ms),
                report::pct(out.instantaneous_gain),
            ],
        ],
    )
}

/// Compute-aware extension demo: a network-preferred server with a task
/// backlog drops behind an idle alternative (paper future work, implemented
/// in `int-core::compute`). Pure and deterministic.
pub fn demo_compute_aware() -> String {
    let mut tracker = ComputeTracker::new();
    tracker.register(1, Capabilities::new().with("gpu"), 1);
    tracker.register(2, Capabilities::new().with("gpu"), 1);

    let network_ranking = vec![
        RankedServer { host: 1, est_delay_ns: 30_000_000, est_bandwidth_bps: 15_000_000 },
        RankedServer { host: 2, est_delay_ns: 50_000_000, est_bandwidth_bps: 15_000_000 },
    ];

    let mut lines = Vec::new();
    lines.push("network-only order: hosts ".to_string()
        + &network_ranking.iter().map(|s| s.host.to_string()).collect::<Vec<_>>().join(", "));

    for backlog in [0, 1, 3] {
        let mut t = tracker.clone();
        for _ in 0..backlog {
            t.on_dispatch(1);
        }
        let reranked = t.rerank(&network_ranking, 100_000_000);
        lines.push(format!(
            "backlog {backlog} on host 1 → order: hosts {}",
            reranked.iter().map(|s| s.host.to_string()).collect::<Vec<_>>().join(", ")
        ));
    }
    lines.join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_demo_flips_order_under_backlog() {
        let text = demo_compute_aware();
        assert!(text.contains("backlog 0 on host 1 → order: hosts 1, 2"), "{text}");
        assert!(text.contains("backlog 3 on host 1 → order: hosts 2, 1"), "{text}");
    }

    #[test]
    fn render_k_sweep_table() {
        let out = KSweepOutput {
            points: vec![KSweepPoint { k_ms: 20, mean_completion_ms: 5000.0, mean_gain: 0.2 }],
        };
        let text = render_k_sweep(&out);
        assert!(text.contains("20 ms"));
        assert!(text.contains("+20.0%"));
    }
}
