//! Fig. 9: impact of the probing interval on average data transfer time
//! under two background-traffic dynamics.
//!
//! Intervals: 0.1 s (INT default), 5, 10, 20, 30 s (typical SNMP).
//! *Traffic 1*: medium tasks, slowly changing background (3×30 s flows,
//! 10 s stagger, 30 s gap). *Traffic 2*: small tasks, rapidly changing
//! background (3×5 s flows, 5 s gap). Paper result: short intervals win;
//! 0.1 s ≈ 12.5 s mean transfer vs >15 s at a 30 s interval (>20 %).

use crate::compare::{CompareConfig, Metric};
use crate::par;
use crate::report;
use crate::runner::run;
use int_core::Policy;
use int_netsim::SimDuration;
use int_workload::{BackgroundScenario, JobKind, TaskClass};
use serde::{Deserialize, Serialize};

/// The probing intervals the paper evaluates.
pub fn paper_intervals() -> Vec<SimDuration> {
    vec![
        SimDuration::from_millis(100),
        SimDuration::from_secs(5),
        SimDuration::from_secs(10),
        SimDuration::from_secs(20),
        SimDuration::from_secs(30),
    ]
}

/// One measured cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig9Point {
    /// Probing interval, seconds.
    pub interval_s: f64,
    /// Scenario label ("Traffic 1" / "Traffic 2").
    pub scenario: String,
    /// Mean data transfer time across all tasks, ms.
    pub mean_transfer_ms: f64,
    /// Tasks measured.
    pub tasks: usize,
}

/// The sweep result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig9Output {
    /// All (interval × scenario) cells.
    pub points: Vec<Fig9Point>,
}

/// Run the sweep; each cell is an independent simulation (parallelized).
pub fn run_sweep(seed: u64, total_tasks: usize, intervals: &[SimDuration]) -> Fig9Output {
    let scenarios = [
        ("Traffic 1", BackgroundScenario::Traffic1, TaskClass::Medium),
        ("Traffic 2", BackgroundScenario::Traffic2, TaskClass::Small),
    ];

    let cells: Vec<(SimDuration, &str, BackgroundScenario, TaskClass)> = intervals
        .iter()
        .flat_map(|&iv| scenarios.iter().map(move |&(l, s, c)| (iv, l, s, c)))
        .collect();

    let results = par::parallel_map(&cells, |&(iv, label, scenario, class)| {
        let mut cmp = CompareConfig::paper_default(seed, JobKind::Distributed, Policy::IntDelay);
        cmp.total_tasks = total_tasks;
        cmp.scenario = scenario;
        cmp.probe_interval = iv;
        cmp.classes = vec![class];
        let mut ecfg = cmp.experiment_for(Policy::IntDelay);
        // A deployment polling at interval T treats T-old data
        // as current (the paper's SNMP comparison): scale the
        // collector's aggregation window and staleness horizon
        // with the interval instead of discarding old data.
        let iv_ns = iv.as_nanos();
        ecfg.testbed.core.qlen_window_ns =
            ecfg.testbed.core.qlen_window_ns.max(iv_ns + 100_000_000);
        ecfg.testbed.core.staleness_ns = ecfg.testbed.core.staleness_ns.max(2 * iv_ns);
        (iv, label, run(&ecfg))
    });

    let points = results
        .into_iter()
        .map(|(iv, label, res)| {
            let transfers: Vec<f64> = res.outcomes.iter().map(|o| o.transfer_ms).collect();
            let mean = if transfers.is_empty() {
                f64::NAN
            } else {
                transfers.iter().sum::<f64>() / transfers.len() as f64
            };
            Fig9Point {
                interval_s: iv.as_secs_f64(),
                scenario: label.to_string(),
                mean_transfer_ms: mean,
                tasks: transfers.len(),
            }
        })
        .collect();
    Fig9Output { points }
}

/// Render the interval × scenario table.
pub fn render(out: &Fig9Output) -> String {
    let rows: Vec<Vec<String>> = out
        .points
        .iter()
        .map(|p| {
            vec![
                format!("{}", p.scenario),
                format!("{:.1}s", p.interval_s),
                report::ms(p.mean_transfer_ms),
                p.tasks.to_string(),
            ]
        })
        .collect();
    report::table(&["scenario", "probe interval", "mean transfer (ms)", "tasks"], &rows)
}

/// The metric Fig. 9 reports (kept for symmetry with other figures).
pub const METRIC: Metric = Metric::Transfer;
