//! Deadline-aware DAG workflow scheduling (ROADMAP item 4; the paper's
//! compute-availability future work).
//!
//! A stream of DAG workflows (Table I task classes arranged as chains,
//! fan-outs, and diamonds, each task carrying a critical-path deadline) is
//! submitted from every node under background congestion and a mid-run
//! fault window on a core ring link. Executors run with a *single* slot —
//! compute is scarce, so placement that ignores server load piles tasks
//! into deep run queues and blows deadlines.
//!
//! The grid crosses the four composite policies
//! ([`CompositePolicy::ALL`]) with a tight and a loose deadline-slack
//! cell:
//!
//! * **NetworkOnly** — the paper's pure INT-delay ranking; herds every
//!   submitter onto the momentary network-best server.
//! * **LeastLoaded** — load-only ranking over static nearest distances;
//!   blind to congestion and the fault window.
//! * **IntLeastLoaded** — INT delay plus tracked queue-wait estimates.
//! * **IntEdf** — same placement, and executors drain their run queues
//!   earliest-deadline-first.
//!
//! Reported per cell: deadline-miss rate (unresolved tasks count as
//! misses), queue-wait mean/p95, mean workflow makespan, failure counts
//! by reason, and the submitters' + scheduler's observability counters.

use crate::par;
use crate::report;
use crate::runner::install_background;
use crate::testbed::{Testbed, TestbedConfig, SCHEDULER_NODE};
use int_apps::{SchedulerApp, TaskSubmitterApp};
use int_core::{CompositePolicy, Policy};
use int_netsim::{FaultPlan, NodeId, SimDuration, SimTime, Topology};
use int_workload::{BackgroundScenario, WorkflowConfig, WorkflowGenerator, WorkflowSpec};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Ring positions of the link cut during the fault window (the same core
/// link the failover experiment kills; hosts 7/8 sit behind it).
const FAULT_LINK: (usize, usize) = (9, 10);

/// Deadline-slack cells the sweep covers, percent of the critical-path
/// budget (see [`WorkflowConfig::slack_pct`]).
pub const SLACK_CELLS: [u64; 2] = [170, 300];

/// One measured (policy × slack) cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkflowCell {
    /// Composite policy name.
    pub policy: String,
    /// Deadline slack of the cell, percent.
    pub slack_pct: u64,
    /// Planned tasks across all workflows.
    pub tasks_total: usize,
    /// Tasks that completed (callback received).
    pub completed: usize,
    /// Tasks that missed their deadline (late or never completed).
    pub missed: usize,
    /// `missed / tasks_total`.
    pub miss_rate: f64,
    /// Mean server-side run-queue wait over completed tasks, ms.
    pub queue_wait_mean_ms: f64,
    /// 95th-percentile run-queue wait over completed tasks, ms.
    pub queue_wait_p95_ms: f64,
    /// Mean makespan (release → last completion) over fully completed
    /// workflows, s.
    pub makespan_mean_s: Option<f64>,
    /// Workflows whose every task completed.
    pub workflows_completed: usize,
    /// Total workflows.
    pub workflows_total: usize,
    /// Tasks failed by completion timeout.
    pub failed_timeout: usize,
    /// Tasks the scheduler could not place.
    pub unplaceable: usize,
    /// Tasks cascaded-failed by an ancestor.
    pub failed_parent: usize,
    /// Summed submitter counters plus scheduler-side totals.
    pub obs: BTreeMap<String, u64>,
}

/// The sweep result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkflowOutput {
    /// Master seed.
    pub seed: u64,
    /// Workflow-count scale the sweep ran at.
    pub scale: f64,
    /// All (policy × slack) cells.
    pub cells: Vec<WorkflowCell>,
}

impl WorkflowOutput {
    /// Cell lookup by policy name and slack.
    pub fn cell(&self, policy: &str, slack_pct: u64) -> Option<&WorkflowCell> {
        self.cells.iter().find(|c| c.policy == policy && c.slack_pct == slack_pct)
    }

    /// Slack cells where `IntEdf` strictly beats both the network-only and
    /// the load-only baseline on miss rate.
    pub fn cells_where_intedf_wins(&self) -> Vec<u64> {
        SLACK_CELLS
            .iter()
            .copied()
            .filter(|&s| {
                match (
                    self.cell("IntEdf", s),
                    self.cell("NetworkOnly", s),
                    self.cell("LeastLoaded", s),
                ) {
                    (Some(edf), Some(net), Some(load)) => {
                        edf.miss_rate < net.miss_rate && edf.miss_rate < load.miss_rate
                    }
                    _ => false,
                }
            })
            .collect()
    }
}

fn workflow_stream(seed: u64, scale: f64, slack_pct: u64, submitters: Vec<u32>) -> Vec<WorkflowSpec> {
    let cfg = WorkflowConfig {
        total_workflows: ((20.0 * scale).round() as usize).max(2),
        submitters,
        slack_pct,
        // VerySmall only: transfers stay sub-second even with congestion,
        // so deadline misses are dominated by *compute* queueing — the
        // axis the composite policies differ on. Dense arrivals offer
        // ~3× one server's capacity; placement that ignores load piles
        // up deep run queues.
        classes: vec![int_workload::TaskClass::VerySmall],
        interarrival_ns: (400_000_000, 1_200_000_000),
        ..WorkflowConfig::default()
    };
    WorkflowGenerator::new(seed).generate(&cfg)
}

/// Run one (policy × slack) cell.
fn run_cell(seed: u64, scale: f64, policy: CompositePolicy, slack_pct: u64) -> WorkflowCell {
    // Mean Table I execution time of the VerySmall class the stream draws.
    let exec_est_ns = 1_000_000_000u64;
    let cfg = TestbedConfig {
        seed,
        policy: if policy.uses_int() { Policy::IntDelay } else { Policy::Nearest },
        int_enabled: policy.uses_int(),
        executor_slots: 1,
        executor_order: if policy.edf_executor() {
            int_apps::RunQueueOrder::Edf
        } else {
            int_apps::RunQueueOrder::Fifo
        },
        executor_report_load: true,
        compute_policy: Some(policy),
        exec_est_ns,
        ..TestbedConfig::default()
    };
    let mut tb = Testbed::new(&cfg);

    // Identical workflow stream for every policy (fairness, §IV).
    let submitters: Vec<u32> = tb.hosts.iter().map(|h| h.0).collect();
    let workflows = workflow_stream(seed, scale, slack_pct, submitters.clone());
    let workflows_total = workflows.len();
    let release_of: BTreeMap<u64, u64> =
        workflows.iter().map(|w| (w.workflow_id, w.release_at_ns)).collect();
    let tasks_total: usize = workflows.iter().map(|w| w.tasks.len()).sum();
    let last_release = workflows.last().map(|w| w.release_at_ns).unwrap_or(0);
    let horizon = SimTime(last_release) + SimDuration::from_secs(120);

    // Identical background congestion for every policy.
    let flows = BackgroundScenario::Default.generate(
        &submitters,
        horizon.as_nanos(),
        18_000_000,
        seed,
    );
    install_background(&mut tb, &flows);

    // Mid-run fault window: a core ring link goes dark for 15 s.
    let t_fail = SimTime(last_release / 2);
    let (a, b) = (tb.switches[FAULT_LINK.0], tb.switches[FAULT_LINK.1]);
    tb.sim.install_fault_plan(
        &FaultPlan::new()
            .link_down(a, b, t_fail)
            .link_up(a, b, t_fail + SimDuration::from_secs(15)),
    );

    // Workflow submitters: stage-by-stage release, bounded completion
    // timeouts, counters on.
    let scheduler_ip = Topology::host_ip(tb.node(SCHEDULER_NODE));
    let mut submitter_apps: Vec<(NodeId, usize)> = Vec::new();
    for &host in &tb.hosts {
        let mine: Vec<WorkflowSpec> =
            workflows.iter().filter(|w| w.submitter == host.0).cloned().collect();
        if mine.is_empty() {
            continue;
        }
        let mut app =
            TaskSubmitterApp::new_workflows(scheduler_ip, int_packet::msgs::RankingKind::Delay, mine)
                .with_completion_timeout(SimDuration::from_secs(45));
        app.set_metrics_enabled(true);
        let idx = tb.sim.install_app(host, Box::new(app));
        submitter_apps.push((host, idx));
    }

    tb.sim.run_until(horizon);

    // --- harvest ---
    let mut completed = 0usize;
    let mut missed = 0usize;
    let mut failed_timeout = 0usize;
    let mut unplaceable = 0usize;
    let mut failed_parent = 0usize;
    let mut waits_ns: Vec<u64> = Vec::new();
    let mut wf_done: BTreeMap<u64, (usize, u64)> = BTreeMap::new(); // wf → (completed, last ns)
    let mut obs: BTreeMap<String, u64> = BTreeMap::new();
    let mut seen = 0usize;

    for (node, app) in submitter_apps {
        let sub = tb.sim.app::<TaskSubmitterApp>(node, app).expect("submitter app");
        for r in &sub.records {
            seen += 1;
            if let Some(done_at) = r.completed_at {
                completed += 1;
                if let Some(w) = r.queue_wait_ns {
                    waits_ns.push(w);
                }
                if let Some(wf) = r.workflow_id {
                    let e = wf_done.entry(wf).or_insert((0, 0));
                    e.0 += 1;
                    e.1 = e.1.max(done_at.as_nanos());
                }
            }
            if r.missed_deadline() {
                missed += 1;
            }
            match r.fail_reason {
                Some(int_apps::FailReason::Timeout) => failed_timeout += 1,
                Some(int_apps::FailReason::Unplaceable) => unplaceable += 1,
                Some(int_apps::FailReason::ParentFailed) => failed_parent += 1,
                None => {}
            }
        }
        for name in [
            "tasks_dispatched",
            "tasks_completed",
            "tasks_missed_deadline",
            "tasks_failed_timeout",
            "tasks_unplaceable",
            "tasks_failed_parent",
        ] {
            *obs.entry(name.to_string()).or_insert(0) +=
                sub.metrics().counter(name, int_obs::Labels::none());
        }
    }
    // Tasks never released (e.g. a wedged ancestor at the horizon) still
    // count against their deadline.
    missed += tasks_total.saturating_sub(seen);

    let sched = tb.sim.app::<SchedulerApp>(tb.scheduler, tb.scheduler_app).expect("scheduler");
    obs.insert("sched_queries_served".into(), sched.queries_served());
    obs.insert("sched_load_reports".into(), sched.load_reports());

    waits_ns.sort_unstable();
    let queue_wait_mean_ms = if waits_ns.is_empty() {
        0.0
    } else {
        waits_ns.iter().sum::<u64>() as f64 / waits_ns.len() as f64 / 1e6
    };
    let queue_wait_p95_ms = if waits_ns.is_empty() {
        0.0
    } else {
        waits_ns[(waits_ns.len() - 1) * 95 / 100] as f64 / 1e6
    };

    let mut makespans_s: Vec<f64> = Vec::new();
    let mut workflows_completed = 0usize;
    for w in &workflows {
        if let Some(&(n, last_ns)) = wf_done.get(&w.workflow_id) {
            if n == w.tasks.len() {
                workflows_completed += 1;
                makespans_s.push((last_ns - release_of[&w.workflow_id]) as f64 / 1e9);
            }
        }
    }
    let makespan_mean_s = if makespans_s.is_empty() {
        None
    } else {
        Some(makespans_s.iter().sum::<f64>() / makespans_s.len() as f64)
    };

    WorkflowCell {
        policy: policy.name().to_string(),
        slack_pct,
        tasks_total,
        completed,
        missed,
        miss_rate: if tasks_total == 0 { 0.0 } else { missed as f64 / tasks_total as f64 },
        queue_wait_mean_ms,
        queue_wait_p95_ms,
        makespan_mean_s,
        workflows_completed,
        workflows_total,
        failed_timeout,
        unplaceable,
        failed_parent,
        obs,
    }
}

/// Run the (policy × slack) grid, parallelized like the figures.
pub fn run_sweep(seed: u64, scale: f64) -> WorkflowOutput {
    run_sweep_with(par::threads(), seed, scale)
}

/// [`run_sweep`] with an explicit worker count (determinism tests).
pub fn run_sweep_with(workers: usize, seed: u64, scale: f64) -> WorkflowOutput {
    let cells: Vec<(CompositePolicy, u64)> = SLACK_CELLS
        .iter()
        .flat_map(|&s| CompositePolicy::ALL.iter().map(move |&p| (p, s)))
        .collect();
    let cells = par::parallel_map_with(workers, &cells, |&(p, s)| run_cell(seed, scale, p, s));
    WorkflowOutput { seed, scale, cells }
}

/// Render the policy × slack table.
pub fn render(out: &WorkflowOutput) -> String {
    let rows: Vec<Vec<String>> = out
        .cells
        .iter()
        .map(|c| {
            vec![
                c.policy.clone(),
                format!("{}%", c.slack_pct),
                format!("{}/{}", c.completed, c.tasks_total),
                format!("{:.1}%", c.miss_rate * 100.0),
                report::ms(c.queue_wait_mean_ms),
                report::ms(c.queue_wait_p95_ms),
                c.makespan_mean_s.map(|s| format!("{s:.1}s")).unwrap_or_else(|| "-".into()),
                format!("{}", c.failed_timeout + c.unplaceable + c.failed_parent),
            ]
        })
        .collect();
    report::table(
        &[
            "policy",
            "slack",
            "completed",
            "miss rate",
            "queue wait (mean)",
            "queue wait (p95)",
            "makespan (mean)",
            "failed",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline result: with scarce compute, blending INT network
    /// estimates with tracked load plus EDF queues beats both the pure
    /// network ranking and the pure load ranking on deadline misses in at
    /// least one slack cell.
    #[test]
    fn intedf_beats_both_baselines_somewhere() {
        // Full scale: the workflow arrival *rate* is fixed, so --scale
        // shortens the contention window rather than thinning the load —
        // a short run never builds the queues the policies differ on.
        let out = run_sweep_with(par::threads(), 2, 1.0);
        let wins = out.cells_where_intedf_wins();
        assert!(
            !wins.is_empty(),
            "IntEdf never beat both baselines: {}",
            render(&out)
        );
        // And every cell accounts for its planned tasks: the terminal
        // states never exceed the plan, something always resolves, and the
        // submitter counters agree with the harvested records.
        for c in &out.cells {
            let resolved = c.completed + c.failed_timeout + c.unplaceable + c.failed_parent;
            assert!(resolved <= c.tasks_total, "{c:?}");
            assert!(c.completed > 0, "{c:?}");
            assert_eq!(c.obs["tasks_completed"] as usize, c.completed, "{c:?}");
            assert_eq!(c.obs["tasks_unplaceable"] as usize, c.unplaceable, "{c:?}");
            assert_eq!(c.obs["tasks_failed_timeout"] as usize, c.failed_timeout, "{c:?}");
        }
    }

    /// Same grid, one worker vs many: byte-identical artifacts.
    #[test]
    fn sweep_is_deterministic_across_thread_counts() {
        let serial = run_sweep_with(1, 2, 0.25);
        let parallel = run_sweep_with(4, 2, 0.25);
        let a = serde_json::to_string(&serial).unwrap();
        let b = serde_json::to_string(&parallel).unwrap();
        assert_eq!(a, b);
    }
}
