//! Fig. 3: max queue length (left) and packet delay (right) at different
//! egress-port utilization levels.
//!
//! Setup mirrors the paper's §III-C experiment: two hosts joined by one
//! P4 switch whose egress rate is capped at 20 Mbit/s (the BMv2
//! bottleneck); links add 10 ms each, so the idle RTT is 40 ms. An iperf
//! flow offers `util × 20 Mbit/s`; probes run at 100 ms intervals
//! harvesting the max-queue register; ping samples RTT once a second.
//! Each utilization level runs for `duration` (paper: 300 s) and the mean
//! of the per-interval max queue lengths and of the RTT samples is
//! reported.

use crate::par;
use crate::report;
use int_apps::iperf::{IperfConfig, IperfSenderApp, IPERF_UDP_PORT};
use int_apps::{EchoResponderApp, PingApp, ProbeCollectorApp, ProbeSenderApp, UdpSinkApp};
use int_netsim::{LinkParams, SimConfig, SimDuration, SimTime, Simulator, Topology};
use serde::{Deserialize, Serialize};

/// Parameters of the sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3Config {
    /// Utilization levels to test (fraction of the 20 Mbit/s ceiling).
    pub utilizations: Vec<f64>,
    /// Measurement duration per level (paper: 300 s).
    pub duration: SimDuration,
    /// Switch egress ceiling, bit/s.
    pub switch_rate_bps: u64,
    /// Egress queue capacity, packets.
    pub queue_cap_pkts: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig3Config {
    fn default() -> Self {
        Fig3Config {
            utilizations: vec![0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0],
            duration: SimDuration::from_secs(300),
            switch_rate_bps: 20_000_000,
            queue_cap_pkts: 128,
            seed: 1,
        }
    }
}

/// One measured point.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Fig3Point {
    /// Offered utilization (fraction).
    pub utilization: f64,
    /// Mean of the per-probing-interval max queue lengths, packets.
    pub mean_max_qlen: f64,
    /// Largest max queue length any probe reported, packets.
    pub peak_qlen: u32,
    /// Mean ping RTT, ms.
    pub mean_rtt_ms: f64,
    /// Fraction of pings answered (drops reduce this near saturation).
    pub ping_reply_rate: f64,
}

/// The full sweep result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3Output {
    /// Configuration used.
    pub config: Fig3Config,
    /// One point per utilization level.
    pub points: Vec<Fig3Point>,
}

/// Run the sweep (levels in parallel — each level is its own simulation).
pub fn run(cfg: &Fig3Config) -> Fig3Output {
    let points = par::parallel_map(&cfg.utilizations, |&u| run_level(cfg, u));
    Fig3Output { config: cfg.clone(), points }
}

fn run_level(cfg: &Fig3Config, utilization: f64) -> Fig3Point {
    let mut t = Topology::new();
    let h1 = t.add_host("h1");
    let s1 = t.add_switch("s1");
    let h2 = t.add_host("h2");
    let link = LinkParams {
        bandwidth_bps: 1_000_000_000,
        delay: SimDuration::from_millis(10),
        queue_cap_pkts: cfg.queue_cap_pkts,
    };
    t.add_link(h1, s1, link);
    t.add_link(s1, h2, link);

    let mut sim = Simulator::new(
        t,
        SimConfig {
            seed: cfg.seed,
            switch_egress_rate_bps: Some(cfg.switch_rate_bps),
            ..SimConfig::default()
        },
    );

    let h2_ip = Topology::host_ip(h2);
    // Background load.
    let rate = (utilization * cfg.switch_rate_bps as f64) as u64;
    if rate > 0 {
        sim.install_app(
            h1,
            Box::new(IperfSenderApp::new(IperfConfig::new(
                h2_ip,
                rate,
                SimTime::ZERO,
                cfg.duration,
            ))),
        );
        sim.install_app(h2, Box::new(UdpSinkApp::new(IPERF_UDP_PORT)));
    }
    // Telemetry: probes h1 → h2 across the switch.
    sim.install_app(h1, Box::new(ProbeSenderApp::new(h2_ip, SimDuration::from_millis(100))));
    let collector = sim.install_app(h2, Box::new(ProbeCollectorApp::new()));
    // Ground truth: ping once a second.
    let ping = sim.install_app(h1, Box::new(PingApp::new(h2_ip, SimDuration::from_secs(1))));
    sim.install_app(h2, Box::new(EchoResponderApp::new()));

    sim.run_until(SimTime::ZERO + cfg.duration);

    let col = sim.app::<ProbeCollectorApp>(h2, collector).expect("collector");
    let qlens = col.max_qlens_of(s1.0);
    let mean_max_qlen = if qlens.is_empty() {
        0.0
    } else {
        qlens.iter().map(|&q| q as f64).sum::<f64>() / qlens.len() as f64
    };
    let peak_qlen = qlens.iter().copied().max().unwrap_or(0);

    let png = sim.app::<PingApp>(h1, ping).expect("ping");
    Fig3Point {
        utilization,
        mean_max_qlen,
        peak_qlen,
        mean_rtt_ms: png.mean_rtt_ms().unwrap_or(f64::NAN),
        ping_reply_rate: png.reply_rate(),
    }
}

/// Render the paper-style table.
pub fn render(out: &Fig3Output) -> String {
    let rows: Vec<Vec<String>> = out
        .points
        .iter()
        .map(|p| {
            vec![
                format!("{:.0}%", p.utilization * 100.0),
                format!("{:.1}", p.mean_max_qlen),
                p.peak_qlen.to_string(),
                report::ms(p.mean_rtt_ms),
                format!("{:.0}%", p.ping_reply_rate * 100.0),
            ]
        })
        .collect();
    report::table(
        &["utilization", "mean max qlen (pkts)", "peak qlen", "mean RTT (ms)", "ping replies"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scaled-down sweep that still shows the paper's shape.
    #[test]
    fn queue_and_rtt_grow_with_utilization() {
        let cfg = Fig3Config {
            utilizations: vec![0.2, 0.95],
            duration: SimDuration::from_secs(30),
            ..Fig3Config::default()
        };
        let out = run(&cfg);
        assert_eq!(out.points.len(), 2);
        let low = out.points[0];
        let high = out.points[1];

        assert!(low.mean_max_qlen < 5.0, "low load keeps queues short: {}", low.mean_max_qlen);
        assert!(
            high.mean_max_qlen > 2.0 * low.mean_max_qlen.max(0.5),
            "queues grow with load: {} vs {}",
            high.mean_max_qlen,
            low.mean_max_qlen
        );
        assert!((40.0..45.0).contains(&low.mean_rtt_ms), "near-idle RTT ≈ 40 ms: {}", low.mean_rtt_ms);
        assert!(high.mean_rtt_ms > low.mean_rtt_ms + 5.0, "RTT inflates: {}", high.mean_rtt_ms);
    }

    #[test]
    fn render_produces_rows() {
        let out = Fig3Output {
            config: Fig3Config::default(),
            points: vec![Fig3Point {
                utilization: 0.5,
                mean_max_qlen: 3.2,
                peak_qlen: 9,
                mean_rtt_ms: 44.0,
                ping_reply_rate: 1.0,
            }],
        };
        let text = render(&out);
        assert!(text.contains("50%"));
        assert!(text.contains("3.2"));
    }
}
