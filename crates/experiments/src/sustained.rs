//! Sustained load: the sharded control plane under a churning fabric.
//!
//! A 64-switch / 128-host leaf-spine-ish fabric (the same shape as the
//! bench harness's `fabric_64s_128h`) feeds the [`ShardedScheduler`]
//! continuously: every 100 ms round, each live host emits a probe with
//! LCG-churned queue depths and link latencies, the publisher freezes a
//! new epoch, and a batch of rank queries is admitted and served by the
//! read shards. Mid-run a fault window silences every eighth host —
//! long enough to trip both the origin-silence exclusion (3 s) and
//! telemetry eviction (5 s here) — then they come back and the map
//! recovers. At full scale this is 256 rounds × 4096 queries ≈ 1M rank
//! queries against ~2.5k published epochs' worth of churn.
//!
//! The artifact is a **digest**, not a measurement: an FNV-1a hash over
//! every outcome in admission order (hosts, estimates, exclusion
//! reasons), plus the run's shape. It deliberately contains no wall
//! time, worker count, or publish accounting, so the bytes on disk are
//! identical for any `INT_SCHED_SHARDS` value *and* for the
//! single-threaded oracle replay ([`run_oracle`]) that bypasses the
//! sharded plane entirely — that equality is the whole point, and CI
//! compares the files. Timing (throughput, batch p99) goes to stdout.

use crate::report;
use int_core::rank::StaticDistances;
use int_core::shard::{default_shard_count, RankQuery, ShardedScheduler};
use int_core::{CoreConfig, Policy, RankOutcome, SchedulerCore};
use int_packet::int::IntRecord;
use int_packet::ProbePayload;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// Hosts in the fabric.
pub const HOSTS: u32 = 128;
/// Scheduler's own host id.
pub const SCHEDULER: u32 = 1000;
/// Round cadence on the collector clock, ns (the paper's 100 ms).
const ROUND_NS: u64 = 100_000_000;
/// Rounds at full scale.
const FULL_ROUNDS: usize = 256;
/// Queries admitted per round at full scale (≈1M total).
const FULL_QPR: usize = 4096;

/// The saved artifact: run shape + outcome digest. Nothing in here may
/// depend on worker count or wall time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SustainedOutput {
    /// RNG seed the run was driven by.
    pub seed: u64,
    /// Ingest/publish rounds executed.
    pub rounds: usize,
    /// Queries admitted per round.
    pub queries_per_round: usize,
    /// Total rank queries served.
    pub total_queries: u64,
    /// Hosts in the fabric.
    pub hosts: u32,
    /// Switches in the fabric.
    pub switches: u32,
    /// Hosts silenced during the fault window (h % 8 == seed % 8).
    pub faulted_hosts: usize,
    /// Queries that came back with a non-empty ranking.
    pub answered: u64,
    /// Candidates excluded as `OriginSilent` across all outcomes.
    pub excluded_silent: u64,
    /// Candidates excluded as `NoFreshPath` across all outcomes.
    pub excluded_no_path: u64,
    /// FNV-1a 64 digest over every outcome in admission order.
    pub digest: String,
}

/// Timing sidecar (stdout only — never serialized next to the digest).
#[derive(Debug, Clone)]
pub struct SustainedPerf {
    /// Read shards used.
    pub shards: usize,
    /// Epochs published.
    pub publishes: u64,
    /// Wall time spent inside `serve_batch`, ms.
    pub serve_wall_ms: f64,
    /// End-to-end wall time (ingest + publish + serve), ms.
    pub total_wall_ms: f64,
    /// p99 of per-batch serve latency, µs.
    pub p99_batch_us: f64,
    /// Aggregate served throughput, queries/s.
    pub qps: f64,
}

/// Deterministic 64-bit LCG step (MMIX constants).
fn lcg(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *state
}

/// The switch chain host `h` probes through — 32 leaf, 16 aggregation,
/// 8 spine, 8 core switches shared across hosts.
fn chain(h: u32) -> [u32; 4] {
    [100 + h % 32, 200 + h % 16, 300 + h % 8, 400 + (h / 16) % 8]
}

/// Build host `h`'s probe for `round`, with queue depths and link
/// latencies churned from the seeded LCG.
fn probe_for(seed: u64, round: usize, h: u32, now_ns: u64) -> ProbePayload {
    let mut p = ProbePayload::new(h, round as u64, 0);
    let mut st = seed ^ ((round as u64) << 32) ^ ((h as u64) << 8) ^ 0x5DEE_CE66;
    lcg(&mut st);
    for (i, sw) in chain(h).into_iter().enumerate() {
        let maxq = (lcg(&mut st) % 40) as u32;
        p.int.push(IntRecord {
            switch_id: sw,
            ingress_port: 0,
            egress_port: 1,
            max_qlen_pkts: maxq,
            qlen_at_probe_pkts: maxq / 2,
            link_latency_ns: 5_000_000 + lcg(&mut st) % 10_000_000,
            egress_ts_ns: now_ns.saturating_sub((4 - i as u64) * 50_000),
        });
    }
    p
}

/// Is `h` silenced at `round`? The fault window spans rounds
/// `[rounds/4, rounds/2)` and hits every eighth host.
fn faulted(seed: u64, rounds: usize, round: usize, h: u32) -> bool {
    (rounds / 4..rounds / 2).contains(&round) && h % 8 == (seed % 8) as u32
}

/// The query mix admitted at `round`: requesters stride over the host
/// space, policies cycle through the three deterministic ones (Random
/// is slot-seeded in the sharded plane and so deliberately diverges
/// from the sequential RNG stream — it has no oracle to compare to).
fn queries_for(round: usize, qpr: usize, now_ns: u64, out: &mut Vec<RankQuery>) {
    out.clear();
    for i in 0..qpr {
        let requester = ((round * 31 + i * 7) % HOSTS as usize) as u32;
        let policy = match i % 3 {
            0 => Policy::IntDelay,
            1 => Policy::IntBandwidth,
            _ => Policy::Nearest,
        };
        out.push(RankQuery { requester, policy, now_ns });
    }
}

/// Scheduler config for the scenario: a 5 s eviction horizon so the
/// fault window (≥6.4 s at full scale) actually evicts dead telemetry.
fn scenario_config() -> CoreConfig {
    CoreConfig { eviction_horizon_ns: 5_000_000_000, ..CoreConfig::default() }
}

/// Static hop counts for the Nearest baseline: leaf-sharing hosts are 2
/// hops apart, everyone else 4 — derived from the chain shape, so it is
/// identical however the scheduler is built.
fn distances() -> StaticDistances {
    let mut d = StaticDistances::new();
    for a in 0..HOSTS {
        for b in (a + 1)..HOSTS {
            let hops = if a % 32 == b % 32 { 2 } else { 4 };
            d.set(a, b, hops);
        }
    }
    d
}

/// FNV-1a 64 running digest over outcome bytes.
struct Digest(u64);

impl Digest {
    fn new() -> Self {
        Digest(0xcbf29ce484222325)
    }
    fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x100000001b3);
    }
    fn u32(&mut self, v: u32) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }
    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }
}

/// Fold one outcome (with its admitted query) into the digest and the
/// artifact's tallies.
fn fold(acc: &mut SustainedOutput, d: &mut Digest, q: &RankQuery, o: &RankOutcome) {
    d.u32(q.requester);
    d.byte(match q.policy {
        Policy::IntDelay => 0,
        Policy::IntBandwidth => 1,
        Policy::Nearest => 2,
        Policy::Random => 3,
    });
    d.u32(o.ranked.len() as u32);
    for r in &o.ranked {
        d.u32(r.host);
        d.u64(r.est_delay_ns);
        d.u64(r.est_bandwidth_bps);
    }
    d.u32(o.excluded.len() as u32);
    for (h, reason) in &o.excluded {
        d.u32(*h);
        let silent = matches!(reason, int_core::ExcludeReason::OriginSilent);
        d.byte(silent as u8);
        if silent {
            acc.excluded_silent += 1;
        } else {
            acc.excluded_no_path += 1;
        }
    }
    if !o.ranked.is_empty() {
        acc.answered += 1;
    }
    acc.total_queries += 1;
}

fn empty_output(seed: u64, rounds: usize, qpr: usize) -> SustainedOutput {
    SustainedOutput {
        seed,
        rounds,
        queries_per_round: qpr,
        total_queries: 0,
        hosts: HOSTS,
        switches: 64,
        faulted_hosts: (0..HOSTS).filter(|h| h % 8 == (seed % 8) as u32).count(),
        answered: 0,
        excluded_silent: 0,
        excluded_no_path: 0,
        digest: String::new(),
    }
}

/// Run the scenario through the sharded plane with `shards` read
/// workers. The artifact is worker-count-invariant; the perf sidecar is
/// not (and must stay out of the artifact).
pub fn run_with(seed: u64, rounds: usize, qpr: usize, shards: usize) -> (SustainedOutput, SustainedPerf) {
    let cfg = Arc::new(scenario_config());
    let mut sched =
        ShardedScheduler::new(SCHEDULER, Arc::clone(&cfg), distances(), seed, shards);
    for h in 0..HOSTS {
        sched.core_mut().register_host(h);
    }

    let mut out = empty_output(seed, rounds, qpr);
    let mut digest = Digest::new();
    let mut queries = Vec::with_capacity(qpr);
    let mut outcomes: Vec<RankOutcome> = Vec::with_capacity(qpr);
    let mut batch_ns: Vec<u64> = Vec::with_capacity(rounds);
    let mut backlog: Vec<ProbePayload> = Vec::with_capacity(HOSTS as usize);
    let t0 = Instant::now();
    let mut serve_ns = 0u64;

    for round in 0..rounds {
        let now = (round as u64 + 1) * ROUND_NS;
        // The round's probes arrive as a backlog and are drained into
        // one epoch — the batched ingest path (identical map state to
        // ingesting them one at a time, which `run_oracle` still does).
        backlog.clear();
        for h in 0..HOSTS {
            if !faulted(seed, rounds, round, h) {
                backlog.push(probe_for(seed, round, h, now));
            }
        }
        sched.ingest_batch(&backlog, now);
        queries_for(round, qpr, now, &mut queries);
        let t = Instant::now();
        sched.serve_batch(&queries, &mut outcomes);
        let dt = t.elapsed().as_nanos() as u64;
        serve_ns += dt;
        batch_ns.push(dt);
        for (q, o) in queries.iter().zip(&outcomes) {
            fold(&mut out, &mut digest, q, o);
        }
    }
    out.digest = format!("{:016x}", digest.0);

    batch_ns.sort_unstable();
    let p99 = batch_ns[(batch_ns.len() - 1) * 99 / 100];
    let perf = SustainedPerf {
        shards: sched.shard_count(),
        publishes: sched.epoch(),
        serve_wall_ms: serve_ns as f64 / 1e6,
        total_wall_ms: t0.elapsed().as_secs_f64() * 1e3,
        p99_batch_us: p99 as f64 / 1e3,
        qps: if serve_ns > 0 { out.total_queries as f64 / (serve_ns as f64 / 1e9) } else { 0.0 },
    };
    (out, perf)
}

/// Replay the identical scenario through the plain single-threaded
/// [`SchedulerCore`] — the pre-sharding control plane. Produces the same
/// artifact struct; CI asserts it is byte-identical to [`run_with`]'s.
pub fn run_oracle(seed: u64, rounds: usize, qpr: usize) -> SustainedOutput {
    let mut core = SchedulerCore::new(SCHEDULER, scenario_config(), distances(), seed);
    for h in 0..HOSTS {
        core.register_host(h);
    }
    let mut out = empty_output(seed, rounds, qpr);
    let mut digest = Digest::new();
    let mut queries = Vec::with_capacity(qpr);
    let mut outcome = RankOutcome::default();
    for round in 0..rounds {
        let now = (round as u64 + 1) * ROUND_NS;
        for h in 0..HOSTS {
            if !faulted(seed, rounds, round, h) {
                core.collector_mut().ingest(&probe_for(seed, round, h, now), now);
            }
        }
        queries_for(round, qpr, now, &mut queries);
        for q in &queries {
            core.rank_detailed_into_with(q.requester, q.policy, q.now_ns, &mut outcome);
            fold(&mut out, &mut digest, q, &outcome);
        }
    }
    out.digest = format!("{:016x}", digest.0);
    out
}

/// Scale the full-size run shape by `scale` (CI smoke uses small
/// fractions; floors keep the fault window and batches meaningful).
pub fn shape(scale: f64) -> (usize, usize) {
    let rounds = ((FULL_ROUNDS as f64 * scale) as usize).max(8);
    let qpr = ((FULL_QPR as f64 * scale) as usize).max(64);
    (rounds, qpr)
}

/// Entry point for `repro sustained`: honours `INT_SCHED_SHARDS` via
/// [`default_shard_count`], prints timing to stdout, returns the
/// worker-count-invariant artifact.
pub fn run(seed: u64, scale: f64) -> SustainedOutput {
    let (rounds, qpr) = shape(scale);
    let (out, perf) = run_with(seed, rounds, qpr, default_shard_count());
    println!(
        "sustained: shards={} publishes={} serve={:.1} ms total={:.1} ms p99(batch)={:.0} µs throughput={:.0} q/s",
        perf.shards, perf.publishes, perf.serve_wall_ms, perf.total_wall_ms, perf.p99_batch_us, perf.qps
    );
    out
}

/// Human-readable summary table.
pub fn render(out: &SustainedOutput) -> String {
    report::table(
        &["queries", "answered", "silent-excl", "nopath-excl", "rounds", "digest"],
        &[vec![
            out.total_queries.to_string(),
            out.answered.to_string(),
            out.excluded_silent.to_string(),
            out.excluded_no_path.to_string(),
            out.rounds.to_string(),
            out.digest.clone(),
        ]],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharded_artifact_matches_oracle_and_is_shard_invariant() {
        let (rounds, qpr) = (12, 66);
        let oracle = run_oracle(3, rounds, qpr);
        assert!(!oracle.digest.is_empty());
        assert_eq!(oracle.total_queries, (rounds * qpr) as u64);
        for shards in [1usize, 2, 4] {
            let (got, _) = run_with(3, rounds, qpr, shards);
            assert_eq!(got, oracle, "shards={shards}");
        }
    }

    #[test]
    fn fault_window_produces_silent_exclusions_at_scale() {
        // Full cadence: silence horizon is 3 s = 30 rounds; a 64-round
        // window (rounds 64..128 of 256) leaves plenty of silent rounds.
        let (out, _) = run_with(1, 140, 64, 2);
        assert!(out.excluded_silent > 0, "fault window never tripped silence: {out:?}");
        assert_eq!(out.answered, out.total_queries, "live hosts always rankable");
    }

    #[test]
    fn shape_floors_apply() {
        assert_eq!(shape(1.0), (FULL_ROUNDS, FULL_QPR));
        assert_eq!(shape(0.01), (8, 64));
    }
}
