//! Table rendering and machine-readable result output.

use serde::Serialize;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Render rows as an aligned text table.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        debug_assert_eq!(row.len(), cols, "ragged table row");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }

    let mut out = String::new();
    let render_row = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate() {
            let _ = write!(out, "{:<width$}", cell, width = widths[i] + 2);
        }
        out.push('\n');
    };
    render_row(&mut out, &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    let total: usize = widths.iter().map(|w| w + 2).sum();
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        render_row(&mut out, row);
    }
    out
}

/// Format a millisecond value compactly.
pub fn ms(v: f64) -> String {
    format!("{v:.1}")
}

/// Format a gain fraction as a percentage.
pub fn pct(v: f64) -> String {
    format!("{:+.1}%", v * 100.0)
}

/// Where experiment JSON results land.
pub fn results_dir() -> PathBuf {
    std::env::var_os("INT_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Persist a result as pretty JSON under the results dir; returns the path.
pub fn save_json<T: Serialize>(name: &str, value: &T) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serializable result");
    std::fs::write(&path, json)?;
    Ok(path)
}

/// Read back a saved result (used by EXPERIMENTS.md tooling).
pub fn load_json<T: serde::de::DeserializeOwned>(path: &Path) -> std::io::Result<T> {
    let data = std::fs::read_to_string(path)?;
    serde_json::from_str(&data).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

/// Logical cores visible to this process — recorded alongside every
/// wall-clock number so readers can judge what parallel speedups were
/// even observable (the CI container has one).
pub fn host_cores() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Peak resident set size of this process in kB (`VmHWM` from
/// `/proc/self/status`); `None` off Linux or if the field is missing.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Run metadata every experiment records next to its artifact.
#[derive(Debug, Serialize, serde::Deserialize)]
pub struct RunMeta {
    /// Wall-clock duration of the run, seconds.
    pub wall_clock_s: f64,
    /// Peak RSS in kB (`None` when the platform cannot report it).
    pub peak_rss_kb: Option<u64>,
    /// Logical cores available to the process.
    pub host_cores: usize,
}

impl RunMeta {
    /// Capture metadata for a run that took `wall_clock_s` seconds.
    pub fn capture(wall_clock_s: f64) -> RunMeta {
        RunMeta { wall_clock_s, peak_rss_kb: peak_rss_kb(), host_cores: host_cores() }
    }
}

/// Persist run metadata as a `<name>.runmeta.json` sidecar, keeping
/// nondeterministic measurements (wall clock, RSS) out of the byte-stable
/// artifact the determinism smokes `cmp`. Returns the sidecar path.
pub fn save_runmeta(name: &str, meta: &RunMeta) -> std::io::Result<PathBuf> {
    save_json(&format!("{name}.runmeta"), meta)
}

/// Tests that point `INT_RESULTS_DIR` somewhere take this lock — process
/// environment is shared across the parallel test threads.
#[cfg(test)]
pub(crate) static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["class", "mean"],
            &[
                vec!["VS".into(), "123.4".into()],
                vec!["Large".into(), "9.0".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("class"));
        assert!(lines[2].starts_with("VS"));
        assert!(lines[3].starts_with("Large"));
        // Columns align: "mean" starts at the same offset everywhere.
        let col = lines[0].find("mean").unwrap();
        assert_eq!(&lines[2][col..col + 5], "123.4");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ms(1234.56), "1234.6");
        assert_eq!(pct(0.305), "+30.5%");
        assert_eq!(pct(-0.05), "-5.0%");
    }

    #[test]
    fn host_cores_and_rss_are_sane() {
        assert!(host_cores() >= 1);
        if cfg!(target_os = "linux") {
            // VmHWM exists on any Linux and a test process uses some memory.
            assert!(peak_rss_kb().unwrap() > 0);
        }
    }

    #[test]
    fn runmeta_sidecar_lands_next_to_the_artifact() {
        let _env = ENV_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join(format!("int_runmeta_{}", std::process::id()));
        std::env::set_var("INT_RESULTS_DIR", &dir);
        let path = save_runmeta("giant_test", &RunMeta::capture(1.5)).unwrap();
        std::env::remove_var("INT_RESULTS_DIR");
        assert!(path.ends_with("giant_test.runmeta.json"));
        let meta: RunMeta = load_json(&path).unwrap();
        assert_eq!(meta.wall_clock_s, 1.5);
        assert!(meta.host_cores >= 1);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn json_roundtrip() {
        #[derive(Serialize, serde::Deserialize, PartialEq, Debug)]
        struct Tiny {
            x: u32,
        }
        let _env = ENV_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join("int_exp_test_results");
        std::env::set_var("INT_RESULTS_DIR", &dir);
        let path = save_json("tiny", &Tiny { x: 7 }).unwrap();
        let back: Tiny = load_json(&path).unwrap();
        assert_eq!(back, Tiny { x: 7 });
        std::env::remove_var("INT_RESULTS_DIR");
        let _ = std::fs::remove_dir_all(dir);
    }
}
