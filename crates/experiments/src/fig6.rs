//! Fig. 6: distributed workload (three tasks per job), delay-based ranking.
//! Same aggregation as Fig. 5. Paper result: 7–13 % gain over Nearest;
//! large tasks benefit least.

use crate::compare::{run_comparison_seeds, CompareConfig, Metric, MultiCompareOutput};
use int_core::Policy;
use int_workload::JobKind;

/// Run the Fig. 6 experiment, pooled over `seeds`.
pub fn run_seeds(seeds: &[u64], total_tasks: usize) -> MultiCompareOutput {
    let mut cfg = CompareConfig::paper_default(seeds[0], JobKind::Distributed, Policy::IntDelay);
    cfg.total_tasks = total_tasks;
    run_comparison_seeds(&cfg, seeds)
}

/// Single-seed convenience wrapper.
pub fn run(seed: u64, total_tasks: usize) -> MultiCompareOutput {
    run_seeds(&[seed], total_tasks)
}

/// Render the per-class completion table.
pub fn render(out: &MultiCompareOutput) -> String {
    out.render(Metric::Completion)
}
