//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro all                 # everything (long; use --scale for a preview)
//! repro tab1                # Table I
//! repro fig3                # queue length & RTT vs utilization
//! repro fig5|fig6|fig7      # scheduling comparisons
//! repro fig8                # ECDF of per-task gain
//! repro fig9                # probing-interval sweep
//! repro failover            # link-failure detection & rescheduling
//! repro fabric              # ECMP multipath compare + failover on a 512-switch Clos
//! repro workflow            # deadline-aware DAG workflows, composite policies
//! repro audit               # instrumented failover cells + decision audit trail
//! repro ablation-k          # conversion-factor sweep
//! repro ablation-maxq       # queue-signal ablation
//! repro ext-compute         # compute-aware extension demo
//! repro giant               # 10k-host Clos, minutes of virtual time
//!                           # (INT_SIM_DOMAINS / INT_OBS_STREAM aware;
//!                           #  --scale shrinks it for smokes)
//!
//! options:
//!   --seed N      experiment seed (default 1)
//!   --scale F     workload scale factor in (0,1] (default 1.0 = paper size)
//! ```
//!
//! Results are printed as tables and saved as JSON under `results/`
//! (override with INT_RESULTS_DIR).

use int_experiments::{
    ablation, audit, fabric, failover, fig3, fig5, fig6, fig7, fig8, fig9, giant, overhead,
    report, sustained, tab1, workflow,
};
use int_netsim::SimDuration;
use std::time::Instant;

struct Opts {
    seed: u64,
    scale: f64,
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut cmd = None;
    let mut opts = Opts { seed: 1, scale: 1.0 };

    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => {
                opts.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--scale" => {
                opts.scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a float"));
                if !(opts.scale > 0.0 && opts.scale <= 1.0) {
                    die("--scale must be in (0, 1]");
                }
            }
            other if cmd.is_none() => cmd = Some(other.to_string()),
            other => die(&format!("unexpected argument `{other}`")),
        }
    }

    let Some(cmd) = cmd else {
        eprintln!("usage: repro <all|tab1|fig3|fig5|fig6|fig7|fig8|fig9|failover|fabric|workflow|audit|overhead|ablation-k|ablation-maxq|ext-compute|sustained|giant> [--seed N] [--scale F]");
        std::process::exit(2);
    };

    match cmd.as_str() {
        "all" => {
            for c in [
                "tab1", "fig3", "fig5", "fig6", "fig7", "fig8", "fig9", "failover", "fabric",
                "workflow", "audit", "overhead", "ablation-k", "ablation-maxq", "ext-compute",
                "sustained",
            ] {
                run_one(c, &opts);
            }
        }
        other => run_one(other, &opts),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    std::process::exit(2);
}

fn tasks(opts: &Opts) -> usize {
    ((200.0 * opts.scale).round() as usize).max(4)
}

/// Three seeds starting at --seed: comparisons pool them for stability.
fn seeds(opts: &Opts) -> Vec<u64> {
    (opts.seed..opts.seed + 3).collect()
}

fn run_one(cmd: &str, opts: &Opts) {
    let started = Instant::now();
    println!("=== {cmd} (seed {}, scale {}) ===", opts.seed, opts.scale);
    match cmd {
        "tab1" => {
            let out = tab1::run(opts.seed, 1000);
            println!("{}", tab1::render(&out));
            save("tab1", &out);
        }
        "fig3" => {
            let mut cfg = fig3::Fig3Config { seed: opts.seed, ..fig3::Fig3Config::default() };
            cfg.duration = SimDuration::from_secs(((300.0 * opts.scale) as u64).max(20));
            let out = fig3::run(&cfg);
            println!("{}", fig3::render(&out));
            save("fig3", &out);
        }
        "fig5" => {
            let out = fig5::run_seeds(&seeds(opts), tasks(opts));
            println!("{}", fig5::render(&out));
            save("fig5", &out);
        }
        "fig6" => {
            let out = fig6::run_seeds(&seeds(opts), tasks(opts));
            println!("{}", fig6::render(&out));
            save("fig6", &out);
        }
        "fig7" => {
            let out = fig7::run_seeds(&seeds(opts), tasks(opts));
            println!("{}", fig7::render(&out));
            save("fig7", &out);
        }
        "fig8" => {
            let out = fig8::run_seeds(&seeds(opts), tasks(opts));
            println!("{}", fig8::render(&out));
            save("fig8", &out);
        }
        "fig9" => {
            let out = fig9::run_sweep(opts.seed, tasks(opts), &fig9::paper_intervals());
            println!("{}", fig9::render(&out));
            save("fig9", &out);
        }
        "sustained" => {
            let out = sustained::run(opts.seed, opts.scale);
            println!("{}", sustained::render(&out));
            save("sustained", &out);
        }
        "failover" => {
            // --scale trims the interval grid (the cells are cheap; the
            // long-interval ones just simulate more virtual time).
            let mut ivs = failover::default_intervals();
            if opts.scale < 1.0 {
                let keep = ((ivs.len() as f64 * opts.scale).ceil() as usize).max(1);
                ivs.truncate(keep);
            }
            let out = failover::run_sweep(opts.seed, &ivs);
            println!("{}", failover::render(&out));
            save("failover", &out);
        }
        "fabric" => {
            // --scale shrinks the 512-switch Clos (both tiers and hosts).
            let out = fabric::run(&fabric::FabricParams::at_scale(opts.seed, opts.scale));
            println!("{}", fabric::render(&out));
            save("fabric", &out);
        }
        "workflow" => {
            let out = workflow::run_sweep(opts.seed, opts.scale);
            println!("{}", workflow::render(&out));
            let wins = out.cells_where_intedf_wins();
            println!(
                "IntEdf beats NetworkOnly and LeastLoaded on miss rate in {} of {} slack cells{}",
                wins.len(),
                workflow::SLACK_CELLS.len(),
                if wins.is_empty() {
                    String::new()
                } else {
                    format!(" ({:?}%)", wins)
                }
            );
            save("workflow", &out);
        }
        "audit" => {
            // Same --scale handling as failover: trim the interval grid.
            let mut ivs = audit::default_intervals();
            if opts.scale < 1.0 {
                let keep = ((ivs.len() as f64 * opts.scale).ceil() as usize).max(1);
                ivs.truncate(keep);
            }
            let out = audit::run(opts.seed, &ivs);
            println!("{}", audit::render(&out));
            save("audit", &out);
        }
        "overhead" => {
            let d = SimDuration::from_secs(((120.0 * opts.scale) as u64).max(20));
            let out = overhead::run(opts.seed, d);
            println!("{}", overhead::render(&out));
            save("overhead", &out);
        }
        "ablation-k" => {
            let out = ablation::run_k_sweep(opts.seed, tasks(opts), &[0, 5, 20, 50, 100]);
            println!("{}", ablation::render_k_sweep(&out));
            save("ablation_k", &out);
        }
        "ablation-maxq" => {
            let out = ablation::run_signal_ablation(opts.seed, tasks(opts));
            println!("{}", ablation::render_signal(&out));
            save("ablation_maxq", &out);
        }
        "ext-compute" => {
            println!("{}", ablation::demo_compute_aware());
        }
        "giant" => {
            // Not part of `all`: full scale is a dedicated benchmark run.
            let p = if opts.scale >= 1.0 {
                giant::GiantParams::full_scale(opts.seed)
            } else {
                giant::GiantParams::at_scale(opts.seed, opts.scale)
            };
            let t0 = Instant::now();
            match giant::run(&p) {
                Ok(out) => {
                    println!("{}", giant::render(&out));
                    save("giant", &out);
                    let meta = report::RunMeta::capture(t0.elapsed().as_secs_f64());
                    match report::save_runmeta("giant", &meta) {
                        Ok(path) => println!("(saved {})", path.display()),
                        Err(e) => eprintln!("warning: could not save giant runmeta: {e}"),
                    }
                }
                Err(e) => die(&format!("giant run failed: {e}")),
            }
        }
        other => die(&format!("unknown experiment `{other}`")),
    }
    println!("[{cmd} done in {:.1}s]\n", started.elapsed().as_secs_f64());
}

fn save<T: serde::Serialize>(name: &str, value: &T) {
    match report::save_json(name, value) {
        Ok(path) => println!("(saved {})", path.display()),
        Err(e) => eprintln!("warning: could not save {name}.json: {e}"),
    }
}
