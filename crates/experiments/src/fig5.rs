//! Fig. 5: serverless workload (one task per job), delay-based ranking.
//! Reports average task completion time per Table I class for the
//! network-aware scheduler vs Nearest and Random, plus the gain.
//! Paper result: 17–31 % gain over Nearest, largest for very small tasks.

use crate::compare::{run_comparison_seeds, CompareConfig, Metric, MultiCompareOutput};
use int_core::Policy;
use int_workload::JobKind;

/// Run the Fig. 5 experiment, pooled over `seeds`.
pub fn run_seeds(seeds: &[u64], total_tasks: usize) -> MultiCompareOutput {
    let mut cfg = CompareConfig::paper_default(seeds[0], JobKind::Serverless, Policy::IntDelay);
    cfg.total_tasks = total_tasks;
    run_comparison_seeds(&cfg, seeds)
}

/// Single-seed convenience wrapper.
pub fn run(seed: u64, total_tasks: usize) -> MultiCompareOutput {
    run_seeds(&[seed], total_tasks)
}

/// Render the per-class completion table.
pub fn render(out: &MultiCompareOutput) -> String {
    out.render(Metric::Completion)
}
