//! Statistics shared by all experiments: summary statistics, empirical
//! CDFs, and the paper's performance-gain metric.

use serde::{Deserialize, Serialize};

/// Summary of a sample of f64 values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarize a sample; `None` for an empty one.
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let mut v: Vec<f64> = values.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in samples"));
        let n = v.len();
        Some(Summary {
            n,
            mean: v.iter().sum::<f64>() / n as f64,
            min: v[0],
            median: percentile_sorted(&v, 50.0),
            p95: percentile_sorted(&v, 95.0),
            max: v[n - 1],
        })
    }
}

/// Percentile (nearest-rank with linear interpolation) of a sorted slice.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty sample");
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + frac * (sorted[hi] - sorted[lo])
}

/// The paper's performance-gain metric: how much `ours` improves over
/// `baseline`, as a fraction (0.30 = 30 % reduction). Negative when ours
/// is slower.
pub fn gain(baseline: f64, ours: f64) -> f64 {
    if baseline <= 0.0 {
        return 0.0;
    }
    (baseline - ours) / baseline
}

/// An empirical CDF over a sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build from a sample.
    pub fn new(mut values: Vec<f64>) -> Ecdf {
        values.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
        Ecdf { sorted: values }
    }

    /// Sample size.
    pub fn n(&self) -> usize {
        self.sorted.len()
    }

    /// P(X ≤ x).
    pub fn fraction_at_most(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let cnt = self.sorted.partition_point(|v| *v <= x);
        cnt as f64 / self.sorted.len() as f64
    }

    /// P(X ≥ x).
    pub fn fraction_at_least(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let below = self.sorted.partition_point(|v| *v < x);
        (self.sorted.len() - below) as f64 / self.sorted.len() as f64
    }

    /// `(x, F(x))` points for plotting (one per sample).
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, &x)| (x, (i + 1) as f64 / n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[3.0, 1.0, 2.0]).unwrap();
        assert_eq!(s.n, 3);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.max, 3.0);
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn percentile_interpolates() {
        let v = vec![0.0, 10.0];
        assert_eq!(percentile_sorted(&v, 0.0), 0.0);
        assert_eq!(percentile_sorted(&v, 50.0), 5.0);
        assert_eq!(percentile_sorted(&v, 100.0), 10.0);
        assert_eq!(percentile_sorted(&[7.0], 95.0), 7.0);
    }

    #[test]
    fn gain_matches_paper_semantics() {
        assert!((gain(10.0, 7.0) - 0.3).abs() < 1e-12, "30% reduction");
        assert!(gain(10.0, 12.0) < 0.0, "slower is negative");
        assert_eq!(gain(0.0, 5.0), 0.0, "degenerate baseline");
    }

    #[test]
    fn ecdf_fractions() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.n(), 4);
        assert_eq!(e.fraction_at_most(2.0), 0.5);
        assert_eq!(e.fraction_at_most(0.5), 0.0);
        assert_eq!(e.fraction_at_most(10.0), 1.0);
        assert_eq!(e.fraction_at_least(3.0), 0.5);
        assert_eq!(e.fraction_at_least(0.0), 1.0);
    }

    #[test]
    fn ecdf_points_monotone() {
        let e = Ecdf::new(vec![5.0, 1.0, 3.0]);
        let pts = e.points();
        assert_eq!(pts.len(), 3);
        assert!(pts.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 < w[1].1));
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    fn empty_ecdf_is_safe() {
        let e = Ecdf::new(vec![]);
        assert_eq!(e.fraction_at_most(1.0), 0.0);
        assert_eq!(e.fraction_at_least(1.0), 0.0);
        assert!(e.points().is_empty());
    }
}
