//! Probing-overhead analysis (paper §III-A).
//!
//! The paper's arithmetic: probes at 10/s × 1.5 KB ≈ 120 kbit/s, a
//! negligible ~1.1 % of a 10 Mbit/s network, versus the rapidly growing
//! cost of padding INT onto *every* packet (4.2 % of payload for two
//! fields over five switches). This module measures both sides on the
//! live testbed:
//!
//! * the actual share of wire bytes spent on probes (all-pairs mode is
//!   deliberately chattier than the paper's scheme — quantify it),
//! * the shares of scheduler control and ping traffic (a light
//!   foreground workload keeps both classes populated), and
//! * the hypothetical per-packet INT padding cost for the traffic that
//!   actually flowed, per the paper's formula.

use crate::report;
use crate::runner::install_background;
use crate::testbed::{Testbed, TestbedConfig, ProbeMode};
use int_apps::{PingApp, TaskSubmitterApp};
use int_netsim::{SimDuration, SimTime, Topology, TrafficClass};
use int_packet::int::IntRecord;
use int_packet::msgs::RankingKind;
use int_workload::{
    BackgroundScenario, JobKind, JobSpec, TaskClass, WorkloadConfig, WorkloadGenerator,
};
use serde::{Deserialize, Serialize};

/// Overhead measured for one probing mode.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OverheadRow {
    /// Probing mode label.
    pub mode: String,
    /// Wire bytes of probe traffic.
    pub probe_bytes: u64,
    /// Wire bytes of everything.
    pub total_bytes: u64,
    /// Probe share of all wire bytes.
    pub probe_share: f64,
    /// Probe offered rate network-wide, bit/s.
    pub probe_rate_bps: f64,
    /// Wire bytes of scheduler/task control traffic (UDP and TCP forms
    /// both count — see `TrafficClass::of_parsed`).
    pub control_bytes: u64,
    /// Control share of all wire bytes.
    pub control_share: f64,
    /// Wire bytes of echo (ping) traffic, requests and replies.
    pub ping_bytes: u64,
    /// Ping share of all wire bytes.
    pub ping_share: f64,
    /// Hypothetical extra bytes if INT were instead padded onto every
    /// data packet for `avg_hops` switches (paper's alternative design).
    pub per_packet_int_bytes: u64,
    /// That alternative's share of total traffic.
    pub per_packet_int_share: f64,
}

/// The full report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OverheadOutput {
    /// One row per probing mode.
    pub rows: Vec<OverheadRow>,
    /// Measurement duration, seconds.
    pub duration_s: f64,
}

/// Measure probing overhead on the testbed with default background load.
pub fn run(seed: u64, duration: SimDuration) -> OverheadOutput {
    let rows = [ProbeMode::SchedulerOnly, ProbeMode::AllPairs]
        .into_iter()
        .map(|mode| measure(seed, duration, mode))
        .collect();
    OverheadOutput { rows, duration_s: duration.as_secs_f64() }
}

fn measure(seed: u64, duration: SimDuration, mode: ProbeMode) -> OverheadRow {
    let mut tb = Testbed::new(&TestbedConfig { seed, probe_mode: mode, ..TestbedConfig::default() });
    tb.sim_enable_accounting();

    let nodes: Vec<u32> = tb.hosts.iter().map(|h| h.0).collect();
    let flows = BackgroundScenario::Default.generate(
        &nodes,
        duration.as_nanos(),
        15_000_000,
        seed,
    );
    install_background(&mut tb, &flows);

    // A light foreground so the Control and Ping classes carry real
    // traffic (same classes a deployed testbed would see): every host
    // pings its ring neighbour once per second, and a thin serverless
    // job stream exercises the query/response scheduler path.
    for (i, &h) in tb.hosts.iter().enumerate() {
        let neighbour = tb.hosts[(i + 1) % tb.hosts.len()];
        tb.sim.install_app(
            h,
            Box::new(PingApp::new(Topology::host_ip(neighbour), SimDuration::from_secs(1))),
        );
    }
    let wl = WorkloadConfig {
        total_tasks: ((duration.as_secs_f64() / 3.0) as usize).max(4),
        kind: JobKind::Serverless,
        submitters: nodes.clone(),
        classes: vec![TaskClass::Small],
        ..WorkloadConfig::default()
    };
    let jobs = WorkloadGenerator::new(seed).generate(&wl);
    let scheduler_ip = Topology::host_ip(tb.scheduler);
    for &host in &tb.hosts {
        let mine: Vec<JobSpec> = jobs.iter().filter(|j| j.submitter == host.0).cloned().collect();
        if !mine.is_empty() {
            tb.sim.install_app(
                host,
                Box::new(TaskSubmitterApp::new(scheduler_ip, RankingKind::Delay, mine)),
            );
        }
    }

    tb.sim.run_until(SimTime::ZERO + duration);

    let acc = tb.sim.traffic();
    let probe_bytes = acc.class(TrafficClass::Probe).bytes;
    let control_bytes = acc.class(TrafficClass::Control).bytes;
    let ping_bytes = acc.class(TrafficClass::Ping).bytes;
    let total_bytes = acc.total_bytes();
    let share = |bytes: u64| if total_bytes == 0 { 0.0 } else { bytes as f64 / total_bytes as f64 };

    // The paper's alternative: pad each non-probe packet with one INT
    // record per switch hop. Average path ≈ 4 switches on this testbed.
    let avg_hops = 4u64;
    let data_pkts: u64 = [
        TrafficClass::TaskData,
        TrafficClass::Background,
        TrafficClass::Control,
        TrafficClass::Ping,
    ]
    .iter()
    .map(|&c| acc.class(c).packets)
    .sum();
    let per_packet_int_bytes = data_pkts * avg_hops * IntRecord::LEN as u64;

    OverheadRow {
        mode: format!("{mode:?}"),
        probe_bytes,
        total_bytes,
        probe_share: share(probe_bytes),
        probe_rate_bps: probe_bytes as f64 * 8.0 / duration.as_secs_f64(),
        control_bytes,
        control_share: share(control_bytes),
        ping_bytes,
        ping_share: share(ping_bytes),
        per_packet_int_bytes,
        per_packet_int_share: share(per_packet_int_bytes),
    }
}

impl Testbed {
    /// Rebuild-free accounting enable is impossible post-construction, so
    /// the testbed exposes this shim used only by the overhead harness.
    fn sim_enable_accounting(&mut self) {
        // Accounting is set via SimConfig at construction; the testbed
        // builds with it off. Rather than plumb one more flag everywhere,
        // rebuild the testbed config here would lose installed apps —
        // instead the engine exposes a runtime switch.
        self.sim.set_account_traffic(true);
    }
}

/// Render the comparison table.
pub fn render(out: &OverheadOutput) -> String {
    let rows: Vec<Vec<String>> = out
        .rows
        .iter()
        .map(|r| {
            vec![
                r.mode.clone(),
                format!("{:.1} kbit/s", r.probe_rate_bps / 1e3),
                format!("{:.2}%", r.probe_share * 100.0),
                format!("{:.3}%", r.control_share * 100.0),
                format!("{:.3}%", r.ping_share * 100.0),
                format!("{:.2}%", r.per_packet_int_share * 100.0),
            ]
        })
        .collect();
    report::table(
        &[
            "probing mode",
            "probe rate",
            "probe share of wire bytes",
            "control share",
            "ping share",
            "per-packet INT alternative",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probes_are_a_small_fraction_and_padding_would_cost_more() {
        let out = run(1, SimDuration::from_secs(20));
        assert_eq!(out.rows.len(), 2);
        for r in &out.rows {
            assert!(r.probe_bytes > 0, "{}: probes flowed", r.mode);
            assert!(r.probe_share < 0.10, "{}: probes stay <10%: {:.3}", r.mode, r.probe_share);
            assert!(
                r.per_packet_int_share > r.probe_share / 20.0,
                "padding alternative is not free"
            );
        }
        // All-pairs is chattier than scheduler-only, by design.
        assert!(out.rows[1].probe_bytes > out.rows[0].probe_bytes);
    }

    #[test]
    fn per_class_breakdown_is_consistent() {
        let out = run(1, SimDuration::from_secs(20));
        for r in &out.rows {
            assert!(r.ping_bytes > 0, "{}: echo traffic flowed", r.mode);
            assert!(r.control_bytes > 0, "{}: scheduler control traffic flowed", r.mode);
            assert!(
                r.probe_bytes + r.control_bytes + r.ping_bytes <= r.total_bytes,
                "{}: class bytes are a partition of the total",
                r.mode
            );
            let eps = 1e-12;
            assert!((r.control_share - r.control_bytes as f64 / r.total_bytes as f64).abs() < eps);
            assert!((r.ping_share - r.ping_bytes as f64 / r.total_bytes as f64).abs() < eps);
        }
    }
}
