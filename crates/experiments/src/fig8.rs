//! Fig. 8: empirical CDF of the per-task performance gain in completion
//! time over the Nearest baseline, for three configurations:
//! serverless + delay ranking, distributed + delay ranking, and
//! distributed + bandwidth ranking.
//!
//! Paper observations to compare against: 38 % of delay-ranked distributed
//! tasks see zero-or-negative gain (measurement jitter de-prioritizing
//! nearest nodes under light congestion), 19 % for bandwidth ranking;
//! >60 % of bandwidth-ranked distributed tasks gain ≥20 %.

use crate::compare::{run_comparison_seeds, CompareConfig, Metric, MultiCompareOutput};
use crate::par;
use crate::report;
use crate::stats::Ecdf;
use int_core::Policy;
use int_workload::JobKind;
use serde::{Deserialize, Serialize};

/// One curve of the figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig8Curve {
    /// Label as in the paper's legend.
    pub label: String,
    /// Per-task gains (fractions).
    pub gains: Vec<f64>,
}

impl Fig8Curve {
    /// The ECDF over the gains.
    pub fn ecdf(&self) -> Ecdf {
        Ecdf::new(self.gains.clone())
    }
}

/// The three curves.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig8Output {
    /// serverless+delay, distributed+delay, distributed+bandwidth.
    pub curves: Vec<Fig8Curve>,
}

/// Run all three configurations (in parallel) and extract gain samples,
/// pooled over `seeds`.
pub fn run_seeds(seeds: &[u64], total_tasks: usize) -> Fig8Output {
    let configs = [
        ("serverless/delay", JobKind::Serverless, Policy::IntDelay),
        ("distributed/delay", JobKind::Distributed, Policy::IntDelay),
        ("distributed/bandwidth", JobKind::Distributed, Policy::IntBandwidth),
    ];
    let outputs: Vec<MultiCompareOutput> = par::parallel_map(&configs, |&(_, kind, policy)| {
        let mut cfg = CompareConfig::paper_default(seeds[0], kind, policy);
        cfg.total_tasks = total_tasks;
        run_comparison_seeds(&cfg, seeds)
    });

    let curves = configs
        .iter()
        .zip(outputs)
        .map(|(&(label, _, _), out)| Fig8Curve {
            label: label.to_string(),
            gains: out.per_task_gains(Metric::Completion),
        })
        .collect();
    Fig8Output { curves }
}

/// Single-seed convenience wrapper.
pub fn run(seed: u64, total_tasks: usize) -> Fig8Output {
    run_seeds(&[seed], total_tasks)
}

/// Render the key ECDF readouts the paper quotes.
pub fn render(out: &Fig8Output) -> String {
    let rows: Vec<Vec<String>> = out
        .curves
        .iter()
        .map(|c| {
            let e = c.ecdf();
            vec![
                c.label.clone(),
                c.gains.len().to_string(),
                format!("{:.0}%", e.fraction_at_most(0.0) * 100.0),
                format!("{:.0}%", e.fraction_at_least(0.2) * 100.0),
                format!("{:.0}%", e.fraction_at_least(0.6) * 100.0),
            ]
        })
        .collect();
    report::table(
        &["configuration", "tasks", "gain ≤ 0", "gain ≥ 20%", "gain ≥ 60%"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_reads_ecdf_correctly() {
        let out = Fig8Output {
            curves: vec![Fig8Curve {
                label: "t".into(),
                gains: vec![-0.1, 0.0, 0.25, 0.7],
            }],
        };
        let text = render(&out);
        assert!(text.contains("50%"), "two of four ≤ 0: {text}");
        assert!(text.contains("25%"), "one of four ≥ 0.6: {text}");
    }
}
