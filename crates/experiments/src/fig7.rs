//! Fig. 7: distributed workload, bandwidth-based ranking. Reports average
//! data transfer time per class (the paper's headline 28–40 % reduction)
//! and, as the paper notes in passing, completion time (22–35 %).

use crate::compare::{run_comparison_seeds, CompareConfig, Metric, MultiCompareOutput};
use int_core::Policy;
use int_workload::JobKind;

/// Run the Fig. 7 experiment, pooled over `seeds`.
pub fn run_seeds(seeds: &[u64], total_tasks: usize) -> MultiCompareOutput {
    let mut cfg = CompareConfig::paper_default(seeds[0], JobKind::Distributed, Policy::IntBandwidth);
    cfg.total_tasks = total_tasks;
    run_comparison_seeds(&cfg, seeds)
}

/// Single-seed convenience wrapper.
pub fn run(seed: u64, total_tasks: usize) -> MultiCompareOutput {
    run_seeds(&[seed], total_tasks)
}

/// Render both tables: transfer (the figure) and completion (the text).
pub fn render(out: &MultiCompareOutput) -> String {
    format!(
        "Transfer times:\n{}\nCompletion times:\n{}",
        out.render(Metric::Transfer),
        out.render(Metric::Completion)
    )
}
