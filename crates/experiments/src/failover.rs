//! Failover: time-to-detect and time-to-reschedule around a failed link.
//!
//! Mid-run, one core ring link (sw9–sw10) is cut with the netsim fault
//! plan. Under the static routes that blackholes every host pair whose
//! shortest path crossed it — in particular requester node 7 and its
//! nearest (and lowest-delay) candidate node 8. The scheduler's ranking
//! is then polled on a fixed cadence and three quantities are measured
//! per (policy × probing interval) cell:
//!
//! * **detect** — first poll at which the scheduler's learned map has
//!   *evicted* the failed link (it shows up in
//!   [`NetworkMap::dead_edges`](int_core::NetworkMap::dead_edges)),
//!   i.e. the telemetry pipeline noticed the link went dark.
//! * **resched** — first poll at which the top-ranked candidate for the
//!   requester is no longer the now-unreachable node 8.
//! * **degraded** — fraction of post-failure polls still ranking node 8
//!   first, i.e. still scheduling onto the dead path.
//!
//! The INT policies bound both detect and resched by a fixed number of
//! probing intervals (the eviction horizon scales with the interval; see
//! `testbed`). The baselines never notice: Nearest keeps node 8 ranked
//! first forever (degraded 100 %), Random keeps hitting it at chance.

use crate::par;
use crate::report;
use crate::testbed::{Testbed, TestbedConfig};
use int_apps::SchedulerApp;
use int_core::map::NetNode;
use int_core::{CoreConfig, Policy};
use int_netsim::{FaultPlan, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Paper node issuing the scheduling queries (attached to sw9).
const REQUESTER: usize = 7;
/// Paper node behind the failed link (attached to sw10) — the
/// requester's nearest and, unloaded, lowest-delay candidate.
const TARGET: usize = 8;
/// Ring positions of the link that fails.
const FAIL_LINK: (usize, usize) = (9, 10);

/// Probing intervals the sweep covers (the paper's 100 ms default up to
/// SNMP-ish multi-second polling).
pub fn default_intervals() -> Vec<SimDuration> {
    vec![
        SimDuration::from_millis(100),
        SimDuration::from_millis(500),
        SimDuration::from_secs(1),
        SimDuration::from_secs(2),
    ]
}

/// One measured (policy × interval) cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FailoverPoint {
    /// Ranking policy.
    pub policy: String,
    /// Probing interval, seconds.
    pub interval_s: f64,
    /// Time from link failure to the map evicting it, ms. `None` when the
    /// scheduler never notices (the telemetry-free baselines).
    pub detect_ms: Option<f64>,
    /// `detect_ms` expressed in probing intervals.
    pub detect_intervals: Option<f64>,
    /// Time from link failure to the first ranking that no longer puts
    /// the unreachable node first, ms.
    pub resched_ms: Option<f64>,
    /// Fraction of post-failure polls still ranking the unreachable node
    /// first.
    pub degraded_frac: f64,
    /// Post-failure polls taken.
    pub polls_after_failure: usize,
}

/// The sweep result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FailoverOutput {
    /// All (policy × interval) cells.
    pub points: Vec<FailoverPoint>,
}


/// Run one cell: warm up, cut the link, poll the ranking until well past
/// the detection horizon.
fn run_cell(seed: u64, policy: Policy, interval: SimDuration) -> FailoverPoint {
    run_cell_opts(seed, policy, interval, true)
}

/// [`run_cell`] with the scheduler's path cache optionally force-disabled
/// — the same A/B switch `INT_PATH_CACHE=0` flips, used to show the cache
/// changes no observable result of the failover scenario.
fn run_cell_opts(
    seed: u64,
    policy: Policy,
    interval: SimDuration,
    path_cache: bool,
) -> FailoverPoint {
    let iv_ns = interval.as_nanos();

    // Zero the failure horizons so the testbed's interval scaling sets
    // them exactly: eviction after 10 missed intervals, silence after 5.
    // Detection budgets are then measured in probing intervals, matching
    // how the sweep varies. Staleness/window scale as in Fig. 9.
    let mut core = CoreConfig::default();
    core.eviction_horizon_ns = 0;
    core.origin_silence_ns = 0;
    core.qlen_window_ns = core.qlen_window_ns.max(iv_ns + 100_000_000);
    core.staleness_ns = core.staleness_ns.max(2 * iv_ns);

    let cfg = TestbedConfig {
        seed,
        policy,
        probe_interval: interval,
        core,
        int_enabled: matches!(policy, Policy::IntDelay | Policy::IntBandwidth),
        ..TestbedConfig::default()
    };
    let mut tb = Testbed::new(&cfg);
    if !path_cache {
        tb.sim
            .app_mut::<SchedulerApp>(tb.scheduler, tb.scheduler_app)
            .expect("scheduler app")
            .core_mut()
            .set_path_cache_enabled(false);
    }

    // Warm-up long enough for all-pairs coverage even at slow intervals;
    // then observe for the 10-interval eviction horizon plus slack.
    let warm_ns = (5 * iv_ns).max(5_000_000_000);
    let t_fail = SimTime::ZERO + SimDuration::from_nanos(warm_ns);
    let t_end = t_fail + SimDuration::from_nanos(10 * iv_ns + (5 * iv_ns).max(5_000_000_000));

    let (a, b) = (tb.switches[FAIL_LINK.0], tb.switches[FAIL_LINK.1]);
    tb.sim.install_fault_plan(&FaultPlan::new().link_down(a, b, t_fail));
    let dead_dir = (NetNode::Switch(a.0), NetNode::Switch(b.0));

    let requester = tb.node(REQUESTER).0;
    let target = tb.node(TARGET).0;

    let poll = SimDuration::from_millis(100);
    let mut t = SimTime::ZERO + poll;
    let mut detect_ns: Option<u64> = None;
    let mut resched_ns: Option<u64> = None;
    let mut degraded = 0usize;
    let mut polls_after = 0usize;

    while t.as_nanos() <= t_end.as_nanos() {
        tb.sim.run_until(t);
        let app = tb
            .sim
            .app_mut::<SchedulerApp>(tb.scheduler, tb.scheduler_app)
            .expect("scheduler app");
        let outcome = app.core_mut().rank_detailed_with(requester, policy, t.as_nanos());
        if t.as_nanos() > t_fail.as_nanos() {
            polls_after += 1;
            let since = t.as_nanos() - t_fail.as_nanos();
            if detect_ns.is_none() {
                let map = app.core().collector().map();
                let noticed = map
                    .dead_edges()
                    .any(|(x, y, _)| (x, y) == dead_dir || (y, x) == dead_dir)
                    || outcome.excluded.iter().any(|(h, _)| *h == target);
                if noticed {
                    detect_ns = Some(since);
                }
            }
            match outcome.ranked.first().map(|r| r.host) {
                Some(h) if h == target => degraded += 1,
                Some(_) if resched_ns.is_none() => resched_ns = Some(since),
                _ => {}
            }
        }
        t += poll;
    }

    FailoverPoint {
        policy: policy.name().to_string(),
        interval_s: interval.as_secs_f64(),
        detect_ms: detect_ns.map(|ns| ns as f64 / 1e6),
        detect_intervals: detect_ns.map(|ns| ns as f64 / iv_ns as f64),
        resched_ms: resched_ns.map(|ns| ns as f64 / 1e6),
        degraded_frac: if polls_after == 0 { 0.0 } else { degraded as f64 / polls_after as f64 },
        polls_after_failure: polls_after,
    }
}

/// Run the (policy × interval) grid, parallelized like the figures.
pub fn run_sweep(seed: u64, intervals: &[SimDuration]) -> FailoverOutput {
    run_sweep_with(par::threads(), seed, intervals)
}

/// [`run_sweep`] with an explicit worker count (determinism tests).
pub fn run_sweep_with(workers: usize, seed: u64, intervals: &[SimDuration]) -> FailoverOutput {
    let policies = [Policy::IntDelay, Policy::Nearest, Policy::Random];
    let cells: Vec<(Policy, SimDuration)> = intervals
        .iter()
        .flat_map(|&iv| policies.iter().map(move |&p| (p, iv)))
        .collect();
    let points =
        par::parallel_map_with(workers, &cells, |&(p, iv)| run_cell(seed, p, iv));
    FailoverOutput { points }
}

/// Render the policy × interval table.
pub fn render(out: &FailoverOutput) -> String {
    let opt_ms = |v: Option<f64>| v.map(report::ms).unwrap_or_else(|| "never".to_string());
    let rows: Vec<Vec<String>> = out
        .points
        .iter()
        .map(|p| {
            vec![
                p.policy.clone(),
                format!("{:.1}s", p.interval_s),
                opt_ms(p.detect_ms),
                p.detect_intervals.map(|v| format!("{v:.1}")).unwrap_or_else(|| "-".into()),
                opt_ms(p.resched_ms),
                format!("{:.1}%", p.degraded_frac * 100.0),
            ]
        })
        .collect();
    report::table(
        &["policy", "probe interval", "detect (ms)", "detect (intervals)", "resched (ms)", "degraded polls"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline result: INT evicts the dead link and reroutes within a
    /// bounded number of probing intervals; Nearest never notices and keeps
    /// scheduling onto the dead path; Random keeps hitting it at chance.
    #[test]
    fn int_detects_baselines_do_not() {
        let iv = SimDuration::from_millis(100);
        let int = run_cell(7, Policy::IntDelay, iv);
        let near = run_cell(7, Policy::Nearest, iv);
        let rand = run_cell(7, Policy::Random, iv);

        let detect = int.detect_intervals.expect("INT detects the failure");
        assert!(detect <= 15.0, "bounded by the eviction horizon, got {detect}");
        assert!(int.resched_ms.is_some(), "INT reroutes after detection");
        assert!(
            int.degraded_frac < near.degraded_frac,
            "INT stops scheduling onto the dead path sooner than Nearest"
        );

        assert_eq!(near.detect_ms, None, "no telemetry, no detection");
        assert!(near.degraded_frac > 0.99, "Nearest keeps picking the dead target");

        assert_eq!(rand.detect_ms, None);
        assert!(rand.degraded_frac > 0.01 && rand.degraded_frac < 0.5, "chance hits");
    }

    /// The path cache is pure memoization: the whole failover cell — every
    /// detect/resched timing and degraded fraction, and therefore every
    /// `ExcludeReason` the polls observed — is byte-identical with the
    /// cache force-disabled.
    #[test]
    fn path_cache_changes_no_failover_result() {
        let iv = SimDuration::from_millis(100);
        for policy in [Policy::IntDelay, Policy::Nearest] {
            let on = run_cell_opts(7, policy, iv, true);
            let off = run_cell_opts(7, policy, iv, false);
            assert_eq!(
                serde_json::to_string(&on).unwrap(),
                serde_json::to_string(&off).unwrap(),
                "{policy:?} cell must not depend on the path cache"
            );
        }
    }

    /// Regression guard on cache invalidation under failover: at every
    /// poll the hot path's route equals the reference `NetworkMap::path`
    /// over the *current* map — a stale cache hit would diverge the moment
    /// `evict_stale` drops the cut sw9–sw10 link — and once both
    /// directions of the link are evicted no returned route crosses it.
    #[test]
    fn eviction_invalidates_cached_paths_immediately() {
        let interval = SimDuration::from_millis(100);
        let iv_ns = interval.as_nanos();
        let mut core = CoreConfig::default();
        core.eviction_horizon_ns = 0;
        core.origin_silence_ns = 0;
        core.qlen_window_ns = core.qlen_window_ns.max(iv_ns + 100_000_000);
        core.staleness_ns = core.staleness_ns.max(2 * iv_ns);
        let cfg = TestbedConfig {
            seed: 7,
            policy: Policy::IntDelay,
            probe_interval: interval,
            core: core.clone(),
            int_enabled: true,
            ..TestbedConfig::default()
        };
        let mut tb = Testbed::new(&cfg);

        let warm_ns = (5 * iv_ns).max(5_000_000_000);
        let t_fail = SimTime::ZERO + SimDuration::from_nanos(warm_ns);
        let t_end = t_fail + SimDuration::from_nanos(10 * iv_ns + warm_ns);
        let (a, b) = (tb.switches[FAIL_LINK.0], tb.switches[FAIL_LINK.1]);
        tb.sim.install_fault_plan(&FaultPlan::new().link_down(a, b, t_fail));
        let dead = [NetNode::Switch(a.0), NetNode::Switch(b.0)];

        let requester = tb.node(REQUESTER).0;
        let target = tb.node(TARGET).0;
        let poll = SimDuration::from_millis(100);
        let mut t = SimTime::ZERO + poll;
        let mut polls_fully_evicted = 0usize;
        while t.as_nanos() <= t_end.as_nanos() {
            tb.sim.run_until(t);
            let app = tb
                .sim
                .app_mut::<SchedulerApp>(tb.scheduler, tb.scheduler_app)
                .expect("scheduler app");
            // The poll itself runs evict_stale before ranking.
            app.core_mut().rank_detailed_with(requester, Policy::IntDelay, t.as_nanos());

            // The hot path must track the live map exactly — a stale
            // cache entry would diverge from the oracle right after the
            // eviction restructures the graph. (The oracle's routing
            // weights only read cfg fields Testbed::new leaves alone.)
            let oracle = app.core().collector().map().path(
                &core,
                NetNode::Host(requester),
                NetNode::Host(target),
            );
            let got = app.core_mut().learned_path(requester, target);
            assert_eq!(got, oracle, "engine diverged from oracle at t={}ns", t.as_nanos());

            let dead_dirs = app
                .core()
                .collector()
                .map()
                .dead_edges()
                .filter(|&(x, y, _)| [x, y] == dead || [y, x] == dead)
                .count();
            if dead_dirs == 2 {
                // Both directions evicted: no route may cross the link.
                polls_fully_evicted += 1;
                if let Some(p) = got {
                    assert!(
                        !p.windows(2).any(|w| [w[0], w[1]] == dead || [w[1], w[0]] == dead),
                        "route through the dead link at t={}ns: {p:?}",
                        t.as_nanos()
                    );
                }
            }
            t += poll;
        }
        assert!(polls_fully_evicted > 0, "the scenario must fully evict the cut link");
    }

    /// Same grid, one worker vs many: byte-identical artifacts.
    #[test]
    fn sweep_is_deterministic_across_thread_counts() {
        let ivs = [SimDuration::from_millis(100)];
        let serial = run_sweep_with(1, 3, &ivs);
        let parallel = run_sweep_with(4, 3, &ivs);
        let a = serde_json::to_string(&serial).unwrap();
        let b = serde_json::to_string(&parallel).unwrap();
        assert_eq!(a, b);
    }
}
