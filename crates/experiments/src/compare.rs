//! Shared policy-comparison machinery for Figs. 5–8: run the INT policy
//! under test plus the Nearest and Random baselines on identical seeds,
//! then aggregate per Table I class.

use crate::par;
use crate::runner::{run, ExperimentConfig, ExperimentResult};
use crate::stats;
use int_core::Policy;
use int_netsim::SimDuration;
use int_workload::{BackgroundScenario, JobKind, TaskClass};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Which per-task duration a figure reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Metric {
    /// Task completion time (submit → completion callback).
    Completion,
    /// Data transfer time (stream open → data complete at server).
    Transfer,
}

/// Parameters of a comparison experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompareConfig {
    /// Seed shared across policies.
    pub seed: u64,
    /// Serverless or distributed jobs.
    pub kind: JobKind,
    /// The network-aware policy under test.
    pub int_policy: Policy,
    /// Total tasks (paper: 200).
    pub total_tasks: usize,
    /// Background congestion scenario.
    pub scenario: BackgroundScenario,
    /// Probing interval.
    pub probe_interval: SimDuration,
    /// Classes in the mix.
    pub classes: Vec<TaskClass>,
}

impl CompareConfig {
    /// The paper's standard comparison for a figure.
    pub fn paper_default(seed: u64, kind: JobKind, int_policy: Policy) -> CompareConfig {
        CompareConfig {
            seed,
            kind,
            int_policy,
            total_tasks: 200,
            scenario: BackgroundScenario::Default,
            probe_interval: SimDuration::from_millis(100),
            classes: TaskClass::ALL.to_vec(),
        }
    }

    /// Build the concrete run configuration for one policy.
    pub fn experiment_for(&self, policy: Policy) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::paper_default(self.seed, policy);
        cfg.workload.kind = self.kind;
        cfg.workload.total_tasks = self.total_tasks;
        cfg.workload.classes = self.classes.clone();
        cfg.scenario = self.scenario;
        cfg.probe_interval = self.probe_interval;
        cfg
    }
}

/// Results for the INT policy plus both baselines.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompareOutput {
    /// The configuration that produced this.
    pub config: CompareConfig,
    /// Per-policy results (keys: the INT policy, Nearest, Random).
    pub results: BTreeMap<String, ExperimentResult>,
}

/// Stable string key for a policy (BTreeMap keys must order consistently).
pub fn policy_key(p: Policy) -> String {
    format!("{p:?}")
}

/// Run the three-way comparison, policies in parallel.
pub fn run_comparison(cfg: &CompareConfig) -> CompareOutput {
    let policies = [cfg.int_policy, Policy::Nearest, Policy::Random];
    let results = par::parallel_map(&policies, |&p| run(&cfg.experiment_for(p)));

    let mut map = BTreeMap::new();
    for r in results {
        map.insert(policy_key(r.policy), r);
    }
    CompareOutput { config: cfg.clone(), results: map }
}

/// A comparison aggregated over several seeds: the per-class means are
/// computed over the union of outcomes, and per-task gains are paired
/// within each seed before concatenation. Smooths the heavy-tailed
/// transfer-time variance a single 200-task run exhibits.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiCompareOutput {
    /// The per-seed comparisons.
    pub runs: Vec<CompareOutput>,
}

/// Run the comparison over several seeds. The whole seed × policy grid is
/// handed to the worker pool as one flat cell list (better utilization
/// than nesting seed-level over policy-level parallelism), then regrouped
/// per seed in input order — output is identical to the serial run.
pub fn run_comparison_seeds(base: &CompareConfig, seeds: &[u64]) -> MultiCompareOutput {
    let policies = [base.int_policy, Policy::Nearest, Policy::Random];
    let cells: Vec<(u64, Policy)> = seeds
        .iter()
        .flat_map(|&seed| policies.iter().map(move |&p| (seed, p)))
        .collect();
    let results = par::parallel_map(&cells, |&(seed, p)| {
        let mut cfg = base.clone();
        cfg.seed = seed;
        run(&cfg.experiment_for(p))
    });

    let mut it = results.into_iter();
    let runs = seeds
        .iter()
        .map(|&seed| {
            let mut cfg = base.clone();
            cfg.seed = seed;
            let mut map = BTreeMap::new();
            for _ in 0..policies.len() {
                let r = it.next().expect("one result per cell");
                map.insert(policy_key(r.policy), r);
            }
            CompareOutput { config: cfg, results: map }
        })
        .collect();
    MultiCompareOutput { runs }
}

impl MultiCompareOutput {
    /// Pooled class mean of a metric under a policy, ms.
    pub fn mean(&self, policy: Policy, class: TaskClass, metric: Metric) -> Option<f64> {
        let mut values = Vec::new();
        for run in &self.runs {
            let r = run.result(policy);
            for o in r.of_class(class) {
                values.push(match metric {
                    Metric::Completion => o.completion_ms,
                    Metric::Transfer => o.transfer_ms,
                });
            }
        }
        if values.is_empty() {
            None
        } else {
            Some(values.iter().sum::<f64>() / values.len() as f64)
        }
    }

    /// Gain of the INT policy over Nearest on pooled class means.
    pub fn gain_vs_nearest(&self, class: TaskClass, metric: Metric) -> Option<f64> {
        let int_policy = self.runs.first()?.config.int_policy;
        let base = self.mean(Policy::Nearest, class, metric)?;
        let ours = self.mean(int_policy, class, metric)?;
        Some(crate::stats::gain(base, ours))
    }

    /// Per-task gains, paired within each seed then concatenated.
    pub fn per_task_gains(&self, metric: Metric) -> Vec<f64> {
        self.runs.iter().flat_map(|r| r.per_task_gains(metric)).collect()
    }

    /// Render the pooled per-class table.
    pub fn render(&self, metric: Metric) -> String {
        let Some(first) = self.runs.first() else { return String::new() };
        let policies = [first.config.int_policy, Policy::Nearest, Policy::Random];
        let mut rows = Vec::new();
        for class in &first.config.classes {
            let mut row = vec![class.label().to_string()];
            for &p in &policies {
                row.push(match self.mean(p, *class, metric) {
                    Some(v) => crate::report::ms(v),
                    None => "-".into(),
                });
            }
            row.push(match self.gain_vs_nearest(*class, metric) {
                Some(g) => crate::report::pct(g),
                None => "-".into(),
            });
            rows.push(row);
        }
        let metric_name = match metric {
            Metric::Completion => "completion (ms)",
            Metric::Transfer => "transfer (ms)",
        };
        let int_label = format!("INT {metric_name}");
        let near_label = format!("Nearest {metric_name}");
        let rand_label = format!("Random {metric_name}");
        crate::report::table(
            &["class", &int_label, &near_label, &rand_label, "gain vs Nearest"],
            &rows,
        )
    }
}

impl CompareOutput {
    /// Result of one policy.
    pub fn result(&self, policy: Policy) -> &ExperimentResult {
        &self.results[&policy_key(policy)]
    }

    /// Class mean of a metric under a policy, ms.
    pub fn mean(&self, policy: Policy, class: TaskClass, metric: Metric) -> Option<f64> {
        let r = self.result(policy);
        match metric {
            Metric::Completion => r.mean_completion_ms(class),
            Metric::Transfer => r.mean_transfer_ms(class),
        }
    }

    /// The paper's gain of the INT policy over Nearest for a class.
    pub fn gain_vs_nearest(&self, class: TaskClass, metric: Metric) -> Option<f64> {
        let base = self.mean(Policy::Nearest, class, metric)?;
        let ours = self.mean(self.config.int_policy, class, metric)?;
        Some(stats::gain(base, ours))
    }

    /// Per-task gains vs Nearest (paired by job and task id) — Fig. 8's
    /// underlying sample.
    pub fn per_task_gains(&self, metric: Metric) -> Vec<f64> {
        let ours = self.result(self.config.int_policy);
        let base = self.result(Policy::Nearest);
        let base_by_key: BTreeMap<(u64, u64), f64> = base
            .outcomes
            .iter()
            .map(|o| {
                let v = match metric {
                    Metric::Completion => o.completion_ms,
                    Metric::Transfer => o.transfer_ms,
                };
                ((o.job_id, o.task_id), v)
            })
            .collect();
        ours.outcomes
            .iter()
            .filter_map(|o| {
                let b = *base_by_key.get(&(o.job_id, o.task_id))?;
                let v = match metric {
                    Metric::Completion => o.completion_ms,
                    Metric::Transfer => o.transfer_ms,
                };
                Some(stats::gain(b, v))
            })
            .collect()
    }

    /// Render the paper-style per-class table for a metric.
    pub fn render(&self, metric: Metric) -> String {
        let policies = [self.config.int_policy, Policy::Nearest, Policy::Random];
        let mut rows = Vec::new();
        for class in &self.config.classes {
            let mut row = vec![class.label().to_string()];
            for &p in &policies {
                row.push(match self.mean(p, *class, metric) {
                    Some(v) => crate::report::ms(v),
                    None => "-".into(),
                });
            }
            row.push(match self.gain_vs_nearest(*class, metric) {
                Some(g) => crate::report::pct(g),
                None => "-".into(),
            });
            rows.push(row);
        }
        let metric_name = match metric {
            Metric::Completion => "completion (ms)",
            Metric::Transfer => "transfer (ms)",
        };
        let int_label = format!("INT {metric_name}");
        let near_label = format!("Nearest {metric_name}");
        let rand_label = format!("Random {metric_name}");
        crate::report::table(
            &["class", &int_label, &near_label, &rand_label, "gain vs Nearest"],
            &rows,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use int_workload::TaskClass;

    /// The experiment artifacts must be bit-identical across runs even
    /// though cells execute on a thread pool: the grid is regrouped in
    /// input order, and each cell is seed-deterministic. Serializing the
    /// whole multi-seed output is the strictest equality we can ask for.
    #[test]
    fn multi_seed_comparison_serializes_identically_across_runs() {
        let mut cfg = CompareConfig::paper_default(1, JobKind::Serverless, Policy::IntDelay);
        cfg.total_tasks = 4;
        cfg.classes = vec![TaskClass::VerySmall];

        let run_json = || {
            let out = run_comparison_seeds(&cfg, &[11, 12]);
            serde_json::to_string(&out).expect("serializable")
        };
        let a = run_json();
        let b = run_json();
        assert!(a.contains("\"seed\":11") && a.contains("\"seed\":12"), "both seeds present");
        assert_eq!(a, b, "parallel execution must not perturb results");
    }
}
