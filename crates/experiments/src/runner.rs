//! One full scheduling experiment: workload + background traffic + policy
//! → per-task outcomes.
//!
//! Fairness (paper §IV): the workload stream and background-flow schedule
//! are generated from the experiment seed *before* the policy is applied,
//! so every policy faces byte-identical conditions.

use crate::testbed::{Testbed, TestbedConfig, SCHEDULER_NODE};
use int_apps::iperf::{IperfConfig, IperfSenderApp};
use int_apps::{TaskSubmitterApp};
use int_core::Policy;
use int_netsim::{NodeId, SimDuration, SimTime, Topology};
use int_packet::msgs::RankingKind;
use int_workload::{BackgroundScenario, BgFlow, JobSpec, TaskClass, WorkloadConfig, WorkloadGenerator};
use serde::{Deserialize, Serialize};

/// Everything one experiment run needs.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Seed shared by workload, background, and engine streams.
    pub seed: u64,
    /// Scheduling policy under test.
    pub policy: Policy,
    /// Workload shape (task count, job kind, classes, pacing).
    pub workload: WorkloadConfig,
    /// Background congestion scenario.
    pub scenario: BackgroundScenario,
    /// Per-background-flow offered rate, bit/s.
    pub bg_rate_bps: u64,
    /// Probing interval.
    pub probe_interval: SimDuration,
    /// Extra time after the last submission before the run is cut off.
    pub drain: SimDuration,
    /// Testbed knobs (queue caps, switch rate, core config).
    pub testbed: TestbedConfig,
}

impl ExperimentConfig {
    /// The paper's standard setup for a given policy and job kind, with
    /// every stochastic stream derived from `seed`.
    pub fn paper_default(seed: u64, policy: Policy) -> ExperimentConfig {
        ExperimentConfig {
            seed,
            policy,
            workload: WorkloadConfig::default(),
            scenario: BackgroundScenario::Default,
            bg_rate_bps: 18_000_000,
            probe_interval: SimDuration::from_millis(100),
            drain: SimDuration::from_secs(60),
            testbed: TestbedConfig { seed, policy, ..TestbedConfig::default() },
        }
    }

    /// The ranking kind devices put in their queries (only meaningful for
    /// the INT policies; baselines ignore it).
    pub fn ranking_kind(&self) -> RankingKind {
        match self.policy {
            Policy::IntBandwidth => RankingKind::Bandwidth,
            _ => RankingKind::Delay,
        }
    }
}

/// One task's outcome, flattened for analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskOutcome {
    /// Job id.
    pub job_id: u64,
    /// Task id within the job.
    pub task_id: u64,
    /// Table I class.
    pub class: TaskClass,
    /// Submitting node (paper numbering is `submitter+1`).
    pub submitter: u32,
    /// Executing server node.
    pub server: u32,
    /// Data moved, bytes.
    pub data_bytes: u64,
    /// Transfer time (stream open → data complete at server), ms.
    pub transfer_ms: f64,
    /// Completion time (job submit → completion callback), ms.
    pub completion_ms: f64,
}

/// The result of one run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Policy that produced it.
    pub policy: Policy,
    /// Seed it ran under.
    pub seed: u64,
    /// Completed tasks.
    pub outcomes: Vec<TaskOutcome>,
    /// Tasks that never completed within the horizon.
    pub incomplete: usize,
    /// Engine counters (drops etc.).
    pub net: int_netsim::NetStats,
}

impl ExperimentResult {
    /// Outcomes of one class.
    pub fn of_class(&self, class: TaskClass) -> Vec<&TaskOutcome> {
        self.outcomes.iter().filter(|o| o.class == class).collect()
    }

    /// Mean completion time of a class, ms.
    pub fn mean_completion_ms(&self, class: TaskClass) -> Option<f64> {
        mean(self.of_class(class).iter().map(|o| o.completion_ms))
    }

    /// Mean transfer time of a class, ms.
    pub fn mean_transfer_ms(&self, class: TaskClass) -> Option<f64> {
        mean(self.of_class(class).iter().map(|o| o.transfer_ms))
    }
}

fn mean(values: impl Iterator<Item = f64>) -> Option<f64> {
    let v: Vec<f64> = values.collect();
    if v.is_empty() {
        None
    } else {
        Some(v.iter().sum::<f64>() / v.len() as f64)
    }
}

/// Run one experiment end to end.
pub fn run(cfg: &ExperimentConfig) -> ExperimentResult {
    let mut tb = Testbed::new(&TestbedConfig {
        seed: cfg.seed,
        policy: cfg.policy,
        probe_interval: cfg.probe_interval,
        int_enabled: matches!(cfg.policy, Policy::IntDelay | Policy::IntBandwidth),
        ..cfg.testbed.clone()
    });

    // --- workload (seeded identically for every policy) ---
    let mut wl_cfg = cfg.workload.clone();
    if wl_cfg.submitters.is_empty() {
        // All nodes submit; the scheduler node does too (paper §IV).
        wl_cfg.submitters = tb.hosts.iter().map(|h| h.0).collect();
    }
    let jobs = WorkloadGenerator::new(cfg.seed).generate(&wl_cfg);
    let last_submit = jobs.last().map(|j| j.submit_at_ns).unwrap_or(0);
    let horizon = SimTime(last_submit) + cfg.drain;

    // --- background traffic (seeded identically for every policy) ---
    let node_ids: Vec<u32> = tb.hosts.iter().map(|h| h.0).collect();
    let flows = cfg.scenario.generate(&node_ids, horizon.as_nanos(), cfg.bg_rate_bps, cfg.seed);
    install_background(&mut tb, &flows);

    // --- submitters: each node gets its own slice of the job stream ---
    let scheduler_ip = Topology::host_ip(tb.node(SCHEDULER_NODE));
    let ranking = cfg.ranking_kind();
    let mut submitter_apps: Vec<(NodeId, usize, usize)> = Vec::new(); // (node, app, planned)
    for &host in &tb.hosts {
        let mine: Vec<JobSpec> =
            jobs.iter().filter(|j| j.submitter == host.0).cloned().collect();
        if mine.is_empty() {
            continue;
        }
        let planned = mine.iter().map(|j| j.tasks.len()).sum();
        let app =
            tb.sim.install_app(host, Box::new(TaskSubmitterApp::new(scheduler_ip, ranking, mine)));
        submitter_apps.push((host, app, planned));
    }

    tb.sim.run_until(horizon);

    // --- harvest ---
    let mut outcomes = Vec::new();
    let mut incomplete = 0usize;
    for (node, app, planned) in submitter_apps {
        let sub = tb.sim.app::<TaskSubmitterApp>(node, app).expect("submitter app");
        let mut seen = 0usize;
        for r in &sub.records {
            seen += 1;
            match (r.transfer_time(), r.completion_time(), r.server) {
                (Some(t), Some(c), Some(server)) => outcomes.push(TaskOutcome {
                    job_id: r.job_id,
                    task_id: r.task_id,
                    class: r.class,
                    submitter: node.0,
                    server,
                    data_bytes: r.data_bytes,
                    transfer_ms: t.as_millis_f64(),
                    completion_ms: c.as_millis_f64(),
                }),
                _ => incomplete += 1,
            }
        }
        incomplete += planned.saturating_sub(seen);
    }
    outcomes.sort_by_key(|o| (o.job_id, o.task_id));

    ExperimentResult {
        policy: cfg.policy,
        seed: cfg.seed,
        outcomes,
        incomplete,
        net: tb.sim.stats(),
    }
}

/// Install one iperf sender per scheduled background flow.
pub fn install_background(tb: &mut Testbed, flows: &[BgFlow]) {
    for f in flows {
        let src = NodeId(f.src);
        let dst_ip = Topology::host_ip(NodeId(f.dst));
        tb.sim.install_app(
            src,
            Box::new(IperfSenderApp::new(IperfConfig::new(
                dst_ip,
                f.rate_bps,
                SimTime(f.start_ns),
                SimDuration::from_nanos(f.duration_ns),
            ))),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use int_workload::JobKind;

    /// A small smoke run: 12 serverless tasks under each policy.
    fn small_cfg(policy: Policy, seed: u64) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::paper_default(seed, policy);
        cfg.workload.total_tasks = 12;
        cfg.workload.classes = vec![TaskClass::VerySmall];
        cfg.workload.interarrival_ns = (1_000_000_000, 2_000_000_000);
        // Generous drain: a 1 MB transfer whose path overlaps two offered
        // 18 Mbit/s background flows can take >30 s to squeeze through.
        cfg.drain = SimDuration::from_secs(120);
        cfg
    }

    #[test]
    fn all_policies_complete_a_small_run() {
        for policy in [Policy::IntDelay, Policy::Nearest, Policy::Random] {
            let res = run(&small_cfg(policy, 3));
            assert_eq!(res.outcomes.len(), 12, "{policy:?}: {} incomplete", res.incomplete);
            assert_eq!(res.incomplete, 0, "{policy:?}");
            assert!(res.outcomes.iter().all(|o| o.completion_ms > 0.0));
            assert!(res
                .outcomes
                .iter()
                .all(|o| o.transfer_ms > 0.0 && o.transfer_ms <= o.completion_ms));
            // Tasks never execute on their own submitter.
            assert!(res.outcomes.iter().all(|o| o.server != o.submitter), "{policy:?}");
        }
    }

    #[test]
    fn identical_seed_identical_workload_across_policies() {
        let a = run(&small_cfg(Policy::Nearest, 5));
        let b = run(&small_cfg(Policy::Random, 5));
        // Same tasks (ids, classes, sizes) even though servers differ.
        let key = |r: &ExperimentResult| {
            r.outcomes
                .iter()
                .map(|o| (o.job_id, o.task_id, o.class, o.data_bytes, o.submitter))
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&a), key(&b));
    }

    #[test]
    fn nearest_always_uses_three_hop_servers() {
        let mut cfg = small_cfg(Policy::Nearest, 7);
        cfg.workload.kind = JobKind::Serverless;
        let res = run(&cfg);
        // On this topology every node's nearest neighbour is its pair
        // (1↔2, 3↔4, 5↔6, 7↔8); node ids are 0-based host indices.
        for o in &res.outcomes {
            let expected_pair = o.submitter ^ 1;
            assert_eq!(o.server, expected_pair, "submitter {} → {}", o.submitter, o.server);
        }
    }

    #[test]
    fn distributed_jobs_use_three_distinct_servers() {
        let mut cfg = small_cfg(Policy::IntDelay, 11);
        cfg.workload.kind = JobKind::Distributed;
        cfg.workload.total_tasks = 12;
        let res = run(&cfg);
        assert_eq!(res.outcomes.len(), 12);
        for chunk in res.outcomes.chunks(3) {
            let servers: std::collections::BTreeSet<u32> =
                chunk.iter().map(|o| o.server).collect();
            assert_eq!(servers.len(), 3, "{chunk:?}");
        }
    }
}
