//! The giant run: a 10,000-host Clos fabric simulated for minutes of
//! virtual time, with epoch-granular observability streamed to disk.
//!
//! This is the scenario the PR 9 machinery exists for. Three things make
//! it feasible where the previous harness was not:
//!
//! * **structural Clos routing** ([`int_netsim::ClosRoutes`]) — no
//!   all-pairs route table (O(n²) memory plus n Dijkstra runs at 10k
//!   hosts) is ever materialized;
//! * **streaming epoch exports** ([`int_obs::EpochWriter`]) — each epoch's
//!   JSONL line hits disk as the epoch closes, so observability memory is
//!   one line, not the whole run (`INT_OBS_STREAM=0` restores the
//!   in-core accumulate-then-write path, byte-identically);
//! * **conservative parallel domains** ([`int_netsim::ParSim`]) —
//!   `INT_SIM_DOMAINS=N` splits the fabric at the leaf–spine latency cut;
//!   artifacts stay byte-identical to the single-thread oracle.
//!
//! Everything written to `giant.jsonl` / `giant.json` is integer-only and
//! deterministic; wall-clock and peak-RSS live in the `giant.runmeta.json`
//! sidecar so determinism smokes can `cmp` the artifacts.

use crate::report;
use int_netsim::{
    App, AppCtx, ClosParams, ClosRoutes, EcmpSelect, LinkParams, NetStats, ParSim, SimConfig,
    SimDuration, SimTime, Topology,
};
use int_obs::stream::{streaming_enabled, EpochWriter};
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::net::Ipv4Addr;

/// Non-round uplink delay: avoids exact-nanosecond arrival coincidences
/// between unrelated flows, which keeps the canonical artifact ordering
/// trivially stable (DESIGN.md §5.9 discusses the coincidence window).
pub const UPLINK_DELAY_NS: u64 = 12_000_019;

/// Giant-run shape and workload knobs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GiantParams {
    pub seed: u64,
    /// Spine tier width (ECMP fan-out).
    pub spines: u32,
    /// Leaf switch count.
    pub leaves: u32,
    /// Hosts per leaf.
    pub hosts_per_leaf: u32,
    /// Virtual run length.
    pub duration: SimDuration,
    /// Export epoch: one JSONL line per epoch.
    pub epoch: SimDuration,
    /// Domain count for the parallel driver (1 = single-thread oracle).
    pub domains: u16,
    /// Every host heartbeats its partner at this period.
    pub hb_period: SimDuration,
    /// Every 10th host also blasts CBR noise at this period.
    pub cbr_period: SimDuration,
}

impl GiantParams {
    /// The full 10,000-host scenario: 16 spines × 500 leaves × 20 hosts,
    /// 180 s of virtual time. Domain count comes from `INT_SIM_DOMAINS`.
    pub fn full_scale(seed: u64) -> GiantParams {
        GiantParams {
            seed,
            spines: 16,
            leaves: 500,
            hosts_per_leaf: 20,
            duration: SimDuration::from_secs(180),
            epoch: SimDuration::from_secs(1),
            domains: int_netsim::par::domains_from_env(),
            hb_period: SimDuration::from_millis(200),
            cbr_period: SimDuration::from_millis(20),
        }
    }

    /// Shrink every axis by `scale` (floors keep the fabric a real Clos).
    pub fn at_scale(seed: u64, scale: f64) -> GiantParams {
        let full = Self::full_scale(seed);
        let dim = |v: u32, lo: u32| (((v as f64) * scale).round() as u32).max(lo);
        GiantParams {
            spines: dim(full.spines, 2),
            leaves: dim(full.leaves, 4),
            hosts_per_leaf: dim(full.hosts_per_leaf, 2),
            duration: SimDuration::from_secs(
                (((full.duration.as_secs_f64()) * scale).round() as u64).max(2),
            ),
            ..full
        }
    }

    /// Host count this shape produces.
    pub fn hosts(&self) -> u32 {
        self.leaves * self.hosts_per_leaf
    }
}

/// Deterministic artifact summary (everything here must be identical
/// across `INT_SIM_DOMAINS` and `INT_OBS_STREAM` settings).
#[derive(Debug, Serialize, Deserialize)]
pub struct GiantOut {
    pub params: GiantParams,
    /// Domains the partitioner actually produced.
    pub domains: u16,
    /// Barrier-window width the cut guarantees, ns.
    pub lookahead_ns: u64,
    pub hosts: u32,
    pub switches: u32,
    /// Epoch lines written to the JSONL artifact.
    pub epochs: u64,
    /// Bytes of the JSONL artifact (newline framing included).
    pub export_bytes: u64,
    /// Whether the export streamed to disk or accumulated in core.
    pub streamed: bool,
    /// Merged ground-truth counters at end of run.
    pub stats: NetStats,
    /// Datagrams received by host apps (heartbeats + noise).
    pub delivered: u64,
}

/// One app per host: heartbeats a fixed partner, counts what it receives,
/// and (on every 10th host) blasts CBR noise to load the spine tier.
struct GiantHost {
    id: u32,
    partner: Ipv4Addr,
    hb_period: SimDuration,
    /// `None` on non-noise hosts.
    cbr_period: Option<SimDuration>,
    got: u64,
}

const TIMER_HB: u64 = 1;
const TIMER_CBR: u64 = 2;
const PORT: u16 = 7100;

impl App for GiantHost {
    fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
        ctx.bind_udp(PORT);
        // Deterministic per-host phase spreads the first wave of timers
        // so 10k hosts do not fire on the same nanosecond.
        let phase = (self.id as u64).wrapping_mul(10_007) % self.hb_period.as_nanos();
        ctx.set_timer(SimDuration::from_nanos(phase + 1), TIMER_HB);
        if let Some(cbr) = self.cbr_period {
            let phase = (self.id as u64).wrapping_mul(257) % cbr.as_nanos();
            ctx.set_timer(SimDuration::from_nanos(phase + 1), TIMER_CBR);
        }
    }

    fn on_timer(&mut self, ctx: &mut AppCtx<'_>, timer_id: u64) {
        match timer_id {
            TIMER_HB => {
                ctx.send_udp(PORT, self.partner, PORT, vec![0x48; 64]);
                ctx.set_timer(self.hb_period, TIMER_HB);
            }
            TIMER_CBR => {
                let cbr = self.cbr_period.expect("timer only armed with a period");
                ctx.send_udp(PORT, self.partner, PORT, vec![0xC8; 1024]);
                ctx.set_timer(cbr, TIMER_CBR);
            }
            _ => unreachable!("unknown timer {timer_id}"),
        }
    }

    fn on_udp(
        &mut self,
        _ctx: &mut AppCtx<'_>,
        _from: Ipv4Addr,
        _from_port: u16,
        _to_port: u16,
        _payload: &[u8],
    ) {
        self.got += 1;
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Run the giant scenario, streaming one JSONL line per epoch to
/// `<results>/giant.jsonl`. Returns the deterministic summary.
pub fn run(p: &GiantParams) -> std::io::Result<GiantOut> {
    let host_link = LinkParams {
        bandwidth_bps: 1_000_000_000,
        delay: SimDuration::from_millis(10),
        queue_cap_pkts: 64,
    };
    let uplink = LinkParams {
        bandwidth_bps: 10_000_000_000,
        delay: SimDuration::from_nanos(UPLINK_DELAY_NS),
        queue_cap_pkts: 64,
    };
    let clos = ClosParams {
        spines: p.spines,
        leaves: p.leaves,
        hosts_per_leaf: p.hosts_per_leaf,
        link: host_link,
    };
    let fabric = clos.build_tiered(uplink);
    let hosts = fabric.hosts;
    let switches = (fabric.topo.nodes.len() - hosts.len()) as u32;
    let routes = ClosRoutes::new(
        p.spines,
        p.leaves,
        p.hosts_per_leaf,
        host_link.delay,
        uplink.delay,
    );

    let cfg = SimConfig { seed: p.seed, ecmp: EcmpSelect::FlowHash, ..SimConfig::default() };
    let mut sim = ParSim::new_clos(fabric.topo, routes, cfg, p.domains);
    sim.set_metrics_enabled(true);

    let n = hosts.len() as u32;
    let mut app_idx = Vec::with_capacity(hosts.len());
    for (i, &h) in hosts.iter().enumerate() {
        let partner = hosts[((i as u32 + n / 2) % n) as usize];
        let app = GiantHost {
            id: i as u32,
            partner: Topology::host_ip(partner),
            hb_period: p.hb_period,
            cbr_period: (i % 10 == 0).then_some(p.cbr_period),
            got: 0,
        };
        app_idx.push((h, sim.install_app(h, Box::new(app))));
    }

    let dir = report::results_dir();
    std::fs::create_dir_all(&dir)?;
    let streamed = streaming_enabled();
    let mut writer = EpochWriter::create(&dir.join("giant.jsonl"), streamed)?;

    let end = p.duration.as_nanos();
    let epoch = p.epoch.as_nanos().max(1);
    let epochs = end.div_ceil(epoch);
    for k in 1..=epochs {
        let t = (k * epoch).min(end);
        sim.run_until(SimTime(t));
        let stats = serde_json::to_string(&sim.stats()).expect("stats serialize");
        let metrics = sim.merged_metrics().snapshot_json();
        writer.write_line(&format!(
            "{{\"epoch\":{k},\"t_ns\":{t},\"stats\":{stats},\"metrics\":{metrics}}}"
        ))?;
    }
    let wstats = writer.finish()?;

    let delivered: u64 = app_idx
        .iter()
        .map(|&(h, i)| sim.app::<GiantHost>(h, i).expect("installed above").got)
        .sum();

    Ok(GiantOut {
        params: p.clone(),
        domains: sim.domains(),
        lookahead_ns: sim.partition().lookahead.as_nanos(),
        hosts: n,
        switches,
        epochs: wstats.lines,
        export_bytes: wstats.bytes,
        streamed,
        stats: sim.stats(),
        delivered,
    })
}

/// Human summary table.
pub fn render(out: &GiantOut) -> String {
    let rows = vec![
        vec!["hosts".to_string(), out.hosts.to_string()],
        vec!["switches".to_string(), out.switches.to_string()],
        vec!["domains".to_string(), out.domains.to_string()],
        vec!["lookahead_ns".to_string(), out.lookahead_ns.to_string()],
        vec!["virtual_s".to_string(), format!("{:.0}", out.params.duration.as_secs_f64())],
        vec!["epoch_lines".to_string(), out.epochs.to_string()],
        vec!["export_bytes".to_string(), out.export_bytes.to_string()],
        vec!["streamed".to_string(), out.streamed.to_string()],
        vec!["events".to_string(), out.stats.events_processed.to_string()],
        vec!["delivered".to_string(), out.delivered.to_string()],
        vec!["drops".to_string(), out.stats.total_drops().to_string()],
    ];
    crate::report::table(&["giant", "value"], &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(seed: u64, domains: u16) -> GiantParams {
        GiantParams {
            seed,
            spines: 2,
            leaves: 4,
            hosts_per_leaf: 2,
            duration: SimDuration::from_secs(2),
            epoch: SimDuration::from_millis(500),
            domains,
            hb_period: SimDuration::from_millis(100),
            cbr_period: SimDuration::from_millis(25),
        }
    }

    /// The end-to-end giant pipeline at toy scale: runs, exports, and is
    /// byte-identical across domain counts (artifact + summary).
    #[test]
    fn giant_artifacts_are_domain_invariant() {
        let _env = crate::report::ENV_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join(format!("int_giant_test_{}", std::process::id()));
        std::env::set_var("INT_RESULTS_DIR", &dir);
        let run_one = |domains: u16| {
            let out = run(&tiny(11, domains)).expect("giant run");
            let jsonl = std::fs::read(dir.join("giant.jsonl")).expect("artifact");
            (out, jsonl)
        };
        let (o1, a1) = run_one(1);
        let (o2, a2) = run_one(2);
        let (o4, a4) = run_one(4);
        std::env::remove_var("INT_RESULTS_DIR");
        let _ = std::fs::remove_dir_all(&dir);

        assert!(o1.delivered > 100, "toy scenario too quiet: {o1:?}");
        assert_eq!(o1.epochs, 4);
        assert_eq!(o2.domains, 2);
        assert_eq!(a1, a2, "1 vs 2 domain artifacts differ");
        assert_eq!(a1, a4, "1 vs 4 domain artifacts differ");
        assert_eq!(o1.stats, o2.stats);
        assert_eq!(o1.stats, o4.stats);
        assert_eq!(o1.delivered, o2.delivered);
        assert_eq!(o1.delivered, o4.delivered);
    }

    #[test]
    fn scale_floors_keep_a_real_clos() {
        let p = GiantParams::at_scale(1, 0.001);
        assert!(p.spines >= 2 && p.leaves >= 4 && p.hosts_per_leaf >= 2);
        assert!(p.duration.as_nanos() >= SimDuration::from_secs(2).as_nanos());
        assert_eq!(GiantParams::full_scale(1).hosts(), 10_000);
    }
}
