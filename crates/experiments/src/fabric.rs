//! Datacenter-fabric variants of the comparison and failover experiments
//! (ROADMAP item 1: the PR-5 bench fabric promoted to a first-class
//! topology family).
//!
//! The testbed here is a two-tier Clos (`ClosParams::datacenter()`: 32
//! spines × 480 leaves = 512 switches, 960 hosts at full scale) instead of
//! the paper's 12-switch ring, with the multipath machinery on:
//! flow-hash ECMP forwarding, probes fanned over several source ports per
//! target (so copies hash onto distinct equal-cost paths), and the
//! scheduler ranking over `k_paths` per-path estimates.
//!
//! Probing is confined to a bounded subset of hosts (one requester plus a
//! handful of candidate servers on distinct leaves): all-pairs probing
//! over 960 hosts would be ~1M probes/s, and the paper's scheduling
//! question only needs telemetry between the participants. Memory and
//! event load therefore stay bounded as the fabric grows — the fabric
//! size stresses route state (512 LPM tables × 960 host routes) and path
//! diversity, not the event queue.
//!
//! Two variants, mirroring the ring-scale experiments:
//!
//! * **compare** — half the candidate access links are congested with
//!   ~90 % CBR cross-traffic from their leaf-sibling hosts. IntDelay sees
//!   the queueing in the probe telemetry and avoids the congested
//!   candidates; Nearest (all candidates tie at 4 hops) keeps picking the
//!   lowest-id — congested — one; Random hits them at chance.
//! * **failover** — a leaf–spine cable on the learned best path to
//!   candidate 0 is pulled. Under multipath (FlowHash + fan + k-path
//!   ranking) the surviving equal-cost paths keep the candidate's
//!   telemetry fresh: the scheduler reroutes within the eviction horizon
//!   and the candidate stays schedulable throughout. Under the single-path
//!   configuration (Primary select, fan 1, k 1) every flow in the fabric
//!   shares one spine, so the cable pull silences the candidate entirely —
//!   it is excluded and never rerouted. That contrast is the
//!   single-path-assumption bug this PR retires, measured.

use crate::par;
use crate::report;
use int_apps::{
    iperf::{IperfConfig, IPERF_UDP_PORT},
    IperfSenderApp, ProbeRelayApp, ProbeSenderApp, SchedulerApp, UdpSinkApp,
};
use int_core::map::NetNode;
use int_core::rank::StaticDistances;
use int_core::{CoreConfig, Policy};
use int_netsim::{
    ClosParams, EcmpSelect, FaultPlan, NodeId, SimConfig, SimDuration, SimTime, Simulator,
    Topology,
};
use serde::{Deserialize, Serialize};

/// Parameters of one fabric experiment.
#[derive(Debug, Clone, Copy)]
pub struct FabricParams {
    /// Master seed.
    pub seed: u64,
    /// The Clos fabric to build.
    pub clos: ClosParams,
    /// Candidate edge servers, each on its own leaf (capped to the
    /// available leaves).
    pub candidates: usize,
    /// Probe copies per target per interval (distinct source ports).
    pub fan: u16,
    /// Paths the scheduler ranks over per candidate.
    pub k_paths: u32,
    /// Probing interval.
    pub probe_interval: SimDuration,
}

impl FabricParams {
    /// The full datacenter fabric scaled by `scale` in (0, 1]: at 1.0 the
    /// 512-switch / 960-host Clos, with 8 candidates, fan 4, k = 4.
    pub fn at_scale(seed: u64, scale: f64) -> FabricParams {
        FabricParams {
            seed,
            clos: ClosParams::datacenter().scaled(scale),
            candidates: 8,
            fan: 4,
            k_paths: 4,
            probe_interval: ProbeSenderApp::DEFAULT_INTERVAL,
        }
    }
}

/// One policy's ranking behaviour under congested candidates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FabricCompareCell {
    /// Ranking policy.
    pub policy: String,
    /// Fraction of polls whose top-ranked candidate sat behind a
    /// congested access link.
    pub congested_frac: f64,
    /// Distinct hosts that ever ranked first.
    pub distinct_tops: usize,
    /// Decision polls taken.
    pub polls: usize,
}

/// One forwarding mode's reaction to a leaf–spine cable pull.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FabricFailoverCell {
    /// `"multipath"` (FlowHash + fan + k-path ranking) or `"singlepath"`.
    pub mode: String,
    /// Time from the cut to the map evicting the dead link, ms.
    pub detect_ms: Option<f64>,
    /// Time from the cut to a learned route that avoids the dead link,
    /// ms. `None` when the scheduler never finds one (single-path probing
    /// leaves no alternate telemetry).
    pub reroute_ms: Option<f64>,
    /// Fraction of post-cut polls where the affected candidate was
    /// missing from the ranking entirely.
    pub absent_frac: f64,
    /// Post-cut polls taken.
    pub polls_after: usize,
}

/// Structural facts of the fabric the cells ran on.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FabricShape {
    /// Total switches (leaves + spines).
    pub switches: usize,
    /// Total hosts.
    pub hosts: usize,
    /// Spine count = equal-cost paths per cross-leaf host pair.
    pub spines: u32,
    /// Leaf count.
    pub leaves: u32,
    /// Probing hosts (requester + candidates).
    pub probers: usize,
    /// Probe fan.
    pub fan: u16,
    /// Ranking path count.
    pub k_paths: u32,
}

/// The full fabric artifact.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FabricOutput {
    /// What was built.
    pub fabric: FabricShape,
    /// Policy comparison under congestion.
    pub compare: Vec<FabricCompareCell>,
    /// Cable-pull reaction, multipath vs single-path.
    pub failover: Vec<FabricFailoverCell>,
}

/// Host roles within a built fabric simulation.
struct FabricSim {
    sim: Simulator,
    scheduler: NodeId,
    scheduler_app: usize,
    requester: NodeId,
    candidates: Vec<NodeId>,
    /// Leaf-sibling noise source per candidate (same leaf), when the
    /// fabric has ≥ 2 hosts per leaf.
    siblings: Vec<Option<NodeId>>,
    /// Leaf switch of each candidate.
    cand_leaves: Vec<NodeId>,
}

/// Multipath on (FlowHash + fan + k) or the legacy single-path setup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Multipath,
    Singlepath,
}

fn build(p: &FabricParams, mode: Mode) -> FabricSim {
    let fab = p.clos.build();
    let hpl = p.clos.hosts_per_leaf as usize;
    let leaves = p.clos.leaves as usize;
    assert!(leaves >= 3, "fabric experiment needs >= 3 leaves, got {leaves}");

    // Roles on distinct, evenly spread leaves: scheduler on leaf 0,
    // requester on leaf 1, candidates from leaf 2 up.
    let host_of_leaf = |l: usize| fab.hosts[l * hpl];
    let scheduler = host_of_leaf(0);
    let requester = host_of_leaf(1);
    let ncand = p.candidates.clamp(1, leaves - 2);
    let stride = ((leaves - 2) / ncand).max(1);
    let cand_leaf_idx: Vec<usize> = (0..ncand).map(|i| 2 + i * stride).collect();
    let candidates: Vec<NodeId> = cand_leaf_idx.iter().map(|&l| host_of_leaf(l)).collect();
    let siblings: Vec<Option<NodeId>> = cand_leaf_idx
        .iter()
        .map(|&l| (hpl >= 2).then(|| fab.hosts[l * hpl + 1]))
        .collect();
    let cand_leaves: Vec<NodeId> = candidates.iter().map(|&c| fab.leaf_of(c)).collect();

    let (ecmp, fan, k) = match mode {
        Mode::Multipath => (EcmpSelect::FlowHash, p.fan.max(1), p.k_paths.max(1)),
        Mode::Singlepath => (EcmpSelect::Primary, 1, 1),
    };
    let sim_cfg = SimConfig {
        seed: p.seed,
        // Datacenter switches forward at link rate — no BMv2 ceiling.
        switch_egress_rate_bps: None,
        int_enabled: true,
        ecmp,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(fab.topo.clone(), sim_cfg);

    // Failure horizons track the probing interval exactly (as in the
    // failover sweep): eviction after 10 missed intervals, silence after
    // 5. The ranker considers k paths per candidate.
    let iv_ns = p.probe_interval.as_nanos();
    let core = CoreConfig {
        k_paths: k,
        origin_silence_ns: 5 * iv_ns,
        eviction_horizon_ns: 10 * iv_ns,
        ..CoreConfig::default()
    };

    // Static hop counts for Nearest: 2 same-leaf, 4 cross-leaf.
    let mut distances = StaticDistances::new();
    let mut participants = vec![requester];
    participants.extend(&candidates);
    for (i, &a) in participants.iter().enumerate() {
        for &b in &participants[i + 1..] {
            let hops = if fab.leaf_of(a) == fab.leaf_of(b) { 2 } else { 4 };
            distances.set(a.0, b.0, hops);
        }
    }

    let scheduler_app = sim.install_app(
        scheduler,
        Box::new(SchedulerApp::new(
            scheduler.0,
            Policy::IntDelay,
            core,
            distances,
            p.seed ^ 0x5EED_0F00,
        )),
    );

    // Bounded probing subset: requester + candidates probe each other
    // (fanned over source ports) and relay harvested INT to the scheduler.
    let scheduler_ip = Topology::host_ip(scheduler);
    for &h in &participants {
        let targets: Vec<_> = participants
            .iter()
            .filter(|&&o| o != h)
            .map(|&o| Topology::host_ip(o))
            .collect();
        sim.install_app(
            h,
            Box::new(ProbeSenderApp::new_fanned(targets, p.probe_interval, fan)),
        );
        sim.install_app(h, Box::new(ProbeRelayApp::new(scheduler_ip)));
    }

    let host_ids: Vec<u32> = participants.iter().map(|h| h.0).collect();
    sim.app_mut::<SchedulerApp>(scheduler, scheduler_app)
        .expect("scheduler app just installed")
        .register_hosts(&host_ids);

    FabricSim { sim, scheduler, scheduler_app, requester, candidates, siblings, cand_leaves }
}

/// Candidate indices whose access links the compare variant congests
/// (every even index with a sibling to source the noise).
fn congested_set(fs: &FabricSim) -> Vec<usize> {
    (0..fs.candidates.len())
        .filter(|&i| i % 2 == 0 && fs.siblings[i].is_some())
        .collect()
}

fn run_compare_cell(p: &FabricParams, policy: Policy) -> FabricCompareCell {
    let mut fs = build(p, Mode::Multipath);

    // ~90 % CBR onto each congested candidate's access link, sourced from
    // its leaf sibling (two hops — no fabric-wide collateral): the
    // leaf→candidate egress queue builds and every path to the candidate
    // inherits the queueing delay.
    let rate = p.clos.link.bandwidth_bps * 9 / 10;
    let noise_start = SimTime::ZERO + SimDuration::from_secs(1);
    for &i in &congested_set(&fs) {
        let (cand, sib) = (fs.candidates[i], fs.siblings[i].expect("congested needs sibling"));
        fs.sim.install_app(cand, Box::new(UdpSinkApp::new(IPERF_UDP_PORT)));
        fs.sim.install_app(
            sib,
            Box::new(IperfSenderApp::new(IperfConfig::new(
                Topology::host_ip(cand),
                rate,
                noise_start,
                SimDuration::from_secs(8),
            ))),
        );
    }
    let congested: Vec<u32> = congested_set(&fs).iter().map(|&i| fs.candidates[i].0).collect();

    // Warm up 4 s (40 probe rounds), then poll decisions for 4 s.
    let poll = SimDuration::from_millis(200);
    let mut t = SimTime::ZERO + SimDuration::from_secs(4);
    let t_end = SimTime::ZERO + SimDuration::from_secs(8);
    let requester = fs.requester.0;
    let (mut polls, mut hit, mut tops) = (0usize, 0usize, Vec::new());
    while t.as_nanos() <= t_end.as_nanos() {
        fs.sim.run_until(t);
        let app = fs
            .sim
            .app_mut::<SchedulerApp>(fs.scheduler, fs.scheduler_app)
            .expect("scheduler app");
        let outcome = app.core_mut().rank_detailed_with(requester, policy, t.as_nanos());
        if let Some(top) = outcome.ranked.first().map(|r| r.host) {
            polls += 1;
            if congested.contains(&top) {
                hit += 1;
            }
            if !tops.contains(&top) {
                tops.push(top);
            }
        }
        t += poll;
    }
    FabricCompareCell {
        policy: policy.name().to_string(),
        congested_frac: if polls == 0 { 0.0 } else { hit as f64 / polls as f64 },
        distinct_tops: tops.len(),
        polls,
    }
}

fn run_failover_cell(p: &FabricParams, mode: Mode) -> FabricFailoverCell {
    let mut fs = build(p, mode);
    let requester = fs.requester.0;
    let target = fs.candidates[0].0;
    let target_leaf = fs.cand_leaves[0];

    // Warm up, then read the learned best route to candidate 0 and pull
    // the leaf–spine cable it crosses.
    let iv_ns = p.probe_interval.as_nanos();
    let t_fail = SimTime::ZERO + SimDuration::from_secs(4);
    fs.sim.run_until(t_fail);
    let path = fs
        .sim
        .app_mut::<SchedulerApp>(fs.scheduler, fs.scheduler_app)
        .expect("scheduler app")
        .core_mut()
        .learned_path(requester, target)
        .expect("warmed-up map routes requester -> candidate 0");
    let spine = path
        .iter()
        .rev()
        .find_map(|n| match *n {
            NetNode::Switch(id) if NodeId(id) != target_leaf => Some(NodeId(id)),
            _ => None,
        })
        .expect("cross-leaf route crosses a spine");
    fs.sim.install_fault_plan(&FaultPlan::new().link_down(spine, target_leaf, t_fail));
    let dead = [NetNode::Switch(spine.0), NetNode::Switch(target_leaf.0)];
    let crosses_dead = |p: &[NetNode]| {
        p.windows(2).any(|w| [w[0], w[1]] == dead || [w[1], w[0]] == dead)
    };

    // Observe for the 10-interval eviction horizon plus slack.
    let poll = SimDuration::from_millis(100);
    let t_end = t_fail + SimDuration::from_nanos(10 * iv_ns) + SimDuration::from_secs(4);
    let mut t = t_fail + poll;
    let mut detect_ns: Option<u64> = None;
    let mut reroute_ns: Option<u64> = None;
    let (mut polls_after, mut absent) = (0usize, 0usize);
    while t.as_nanos() <= t_end.as_nanos() {
        fs.sim.run_until(t);
        let since = t.as_nanos() - t_fail.as_nanos();
        let app = fs
            .sim
            .app_mut::<SchedulerApp>(fs.scheduler, fs.scheduler_app)
            .expect("scheduler app");
        let outcome =
            app.core_mut().rank_detailed_with(requester, Policy::IntDelay, t.as_nanos());
        polls_after += 1;
        if !outcome.ranked.iter().any(|r| r.host == target) {
            absent += 1;
        }
        if detect_ns.is_none() {
            let map = app.core().collector().map();
            if map.dead_edges().any(|(x, y, _)| [x, y] == dead || [y, x] == dead) {
                detect_ns = Some(since);
            }
        }
        if reroute_ns.is_none() {
            if let Some(route) = app.core_mut().learned_path(requester, target) {
                if !crosses_dead(&route) {
                    reroute_ns = Some(since);
                }
            }
        }
        t += poll;
    }
    FabricFailoverCell {
        mode: match mode {
            Mode::Multipath => "multipath",
            Mode::Singlepath => "singlepath",
        }
        .to_string(),
        detect_ms: detect_ns.map(|ns| ns as f64 / 1e6),
        reroute_ms: reroute_ns.map(|ns| ns as f64 / 1e6),
        absent_frac: if polls_after == 0 { 0.0 } else { absent as f64 / polls_after as f64 },
        polls_after,
    }
}

/// Run both variants, cells in parallel.
pub fn run(p: &FabricParams) -> FabricOutput {
    run_with(par::threads(), p)
}

/// [`run`] with an explicit worker count (determinism tests).
pub fn run_with(workers: usize, p: &FabricParams) -> FabricOutput {
    let policies = [Policy::IntDelay, Policy::Nearest, Policy::Random];
    let compare = par::parallel_map_with(workers, &policies, |&pol| run_compare_cell(p, pol));
    let modes = [Mode::Multipath, Mode::Singlepath];
    let failover = par::parallel_map_with(workers, &modes, |&m| run_failover_cell(p, m));

    let leaves = p.clos.leaves;
    let ncand = p.candidates.clamp(1, leaves as usize - 2);
    FabricOutput {
        fabric: FabricShape {
            switches: (p.clos.spines + leaves) as usize,
            hosts: (leaves * p.clos.hosts_per_leaf) as usize,
            spines: p.clos.spines,
            leaves,
            probers: 1 + ncand,
            fan: p.fan,
            k_paths: p.k_paths,
        },
        compare,
        failover,
    }
}

/// Render both tables.
pub fn render(out: &FabricOutput) -> String {
    let f = &out.fabric;
    let mut s = format!(
        "Clos fabric: {} switches ({} spines x {} leaves), {} hosts; {} probers, fan {}, k_paths {}\n\n",
        f.switches, f.spines, f.leaves, f.hosts, f.probers, f.fan, f.k_paths
    );
    let rows: Vec<Vec<String>> = out
        .compare
        .iter()
        .map(|c| {
            vec![
                c.policy.clone(),
                format!("{:.1}%", c.congested_frac * 100.0),
                c.distinct_tops.to_string(),
                c.polls.to_string(),
            ]
        })
        .collect();
    s.push_str(&report::table(
        &["policy", "congested picks", "distinct tops", "polls"],
        &rows,
    ));
    s.push('\n');
    let opt_ms = |v: Option<f64>| v.map(report::ms).unwrap_or_else(|| "never".to_string());
    let rows: Vec<Vec<String>> = out
        .failover
        .iter()
        .map(|c| {
            vec![
                c.mode.clone(),
                opt_ms(c.detect_ms),
                opt_ms(c.reroute_ms),
                format!("{:.1}%", c.absent_frac * 100.0),
                c.polls_after.to_string(),
            ]
        })
        .collect();
    s.push_str(&report::table(
        &["mode", "detect (ms)", "reroute (ms)", "candidate absent", "polls"],
        &rows,
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use int_netsim::LinkParams;

    /// A small but genuinely multipath Clos for unit tests.
    fn tiny() -> FabricParams {
        FabricParams {
            seed: 7,
            clos: ClosParams {
                spines: 4,
                leaves: 6,
                hosts_per_leaf: 2,
                link: LinkParams::paper_default(),
            },
            candidates: 4,
            fan: 4,
            k_paths: 4,
            probe_interval: SimDuration::from_millis(100),
        }
    }

    /// IntDelay reads the congestion out of the probe telemetry and avoids
    /// the loaded candidates; hop-count ties make Nearest keep picking the
    /// congested lowest-id candidate.
    #[test]
    fn int_delay_avoids_congested_candidates_nearest_does_not() {
        let p = tiny();
        let int = run_compare_cell(&p, Policy::IntDelay);
        let near = run_compare_cell(&p, Policy::Nearest);
        assert!(int.polls > 10 && near.polls > 10);
        assert!(
            int.congested_frac < 0.2,
            "IntDelay mostly avoids congested picks: {:?}",
            int
        );
        assert!(
            near.congested_frac > 0.9,
            "Nearest pins to the congested lowest-id candidate: {:?}",
            near
        );
    }

    /// The cable pull: multipath keeps the candidate schedulable and
    /// reroutes within the eviction horizon; the single-path configuration
    /// loses the candidate outright and never finds an alternate route.
    #[test]
    fn multipath_survives_the_cable_pull_singlepath_goes_dark() {
        let p = tiny();
        let multi = run_failover_cell(&p, Mode::Multipath);
        let single = run_failover_cell(&p, Mode::Singlepath);

        let horizon_ms = 10.0 * p.probe_interval.as_nanos() as f64 / 1e6;
        let detect = multi.detect_ms.expect("multipath detects the dead link");
        assert!(detect <= horizon_ms + 500.0, "bounded by the eviction horizon: {detect}");
        let reroute = multi.reroute_ms.expect("multipath reroutes over surviving paths");
        assert!(reroute <= horizon_ms + 500.0, "{reroute}");
        assert!(
            multi.absent_frac < 0.3,
            "candidate stays schedulable under multipath: {:?}",
            multi
        );

        assert_eq!(single.reroute_ms, None, "no alternate telemetry to reroute onto");
        assert!(
            single.absent_frac > 0.5,
            "single-path probing loses the candidate: {:?}",
            single
        );
        assert!(
            multi.absent_frac < single.absent_frac,
            "multipath strictly dominates on availability"
        );
    }

    /// Byte-identical artifacts regardless of worker count — the ECMP
    /// determinism smoke in miniature.
    #[test]
    fn artifact_is_deterministic_across_thread_counts() {
        let p = tiny();
        let a = serde_json::to_string(&run_with(1, &p)).unwrap();
        let b = serde_json::to_string(&run_with(4, &p)).unwrap();
        assert_eq!(a, b);
    }
}
