//! Observability export: instrumented failover cells with the full
//! decision audit trail.
//!
//! Re-runs a small failover grid (policy × probing interval, ring link
//! sw9–sw10 cut mid-run) with the observability layer lit — engine
//! metrics registry, trace ring, and the scheduler's decision audit —
//! and exports everything as one artifact. The audit trail answers,
//! per scheduling query, what the scheduler believed when it decided:
//! the ranked candidates with their delay/bandwidth estimates, the
//! excluded hosts with reasons, and the chosen host. After the link
//! cut the IntDelay cell must show `NoFreshPath`/`OriginSilent`
//! exclusions — `scripts/ci.sh` smoke-checks exactly that.
//!
//! Both embedded JSON documents (`audit_json`, `metrics_json`) come
//! from the zero-dependency renderers in `int-obs` and are byte-stable:
//! identical across reruns and across `INT_EXP_THREADS` settings (the
//! test below pins this).

use crate::par;
use crate::report;
use crate::testbed::{Testbed, TestbedConfig};
use int_apps::SchedulerApp;
use int_core::{CoreConfig, Policy};
use int_netsim::{FaultPlan, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Paper node issuing the scheduling queries (attached to sw9).
const REQUESTER: usize = 7;
/// Ring positions of the link that fails (same cut as `failover`).
const FAIL_LINK: (usize, usize) = (9, 10);

/// Probing intervals the audit grid covers (kept small — the point is
/// the exported trail, not the sweep).
pub fn default_intervals() -> Vec<SimDuration> {
    vec![SimDuration::from_millis(100), SimDuration::from_millis(500)]
}

/// Count of one exclusion reason across a cell's recorded decisions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReasonCount {
    /// Stable `ExcludeReason` label.
    pub reason: String,
    /// Exclusions carrying it.
    pub count: u64,
}

/// One instrumented (policy × interval) cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AuditCell {
    /// Ranking policy.
    pub policy: String,
    /// Probing interval, seconds.
    pub interval_s: f64,
    /// Scheduling decisions recorded.
    pub decisions: u64,
    /// Candidate exclusions across all recorded decisions.
    pub exclusions: u64,
    /// Exclusions grouped by reason, alphabetical.
    pub exclude_reasons: Vec<ReasonCount>,
    /// Trace events the engine ring saw (pre-sampling/eviction).
    pub trace_seen: u64,
    /// Frames the engine delivered to hosts.
    pub frames_delivered: u64,
    /// Frames dropped, all causes (queue, data plane, faults, hosts).
    pub drops: u64,
    /// The scheduler's full decision audit trail
    /// (`int_obs::DecisionAudit::to_json`), byte-stable.
    pub audit_json: String,
    /// The engine metrics snapshot
    /// (`int_obs::MetricsRegistry::snapshot_json`), byte-stable.
    pub metrics_json: String,
}

/// The exported artifact: one cell per grid point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AuditOutput {
    /// All (policy × interval) cells.
    pub cells: Vec<AuditCell>,
}

/// Run one instrumented cell: light every sink, warm up, cut the link,
/// poll the ranking past the detection horizon, export. Also returns
/// the simulator's event count for profiling.
fn run_cell(seed: u64, policy: Policy, interval: SimDuration) -> (AuditCell, u64) {
    let iv_ns = interval.as_nanos();

    // Same horizon handling as the failover harness: let the testbed's
    // interval scaling set eviction (10 intervals) and silence (5).
    let mut core = CoreConfig::default();
    core.eviction_horizon_ns = 0;
    core.origin_silence_ns = 0;
    core.qlen_window_ns = core.qlen_window_ns.max(iv_ns + 100_000_000);
    core.staleness_ns = core.staleness_ns.max(2 * iv_ns);

    let cfg = TestbedConfig {
        seed,
        policy,
        probe_interval: interval,
        core,
        int_enabled: matches!(policy, Policy::IntDelay | Policy::IntBandwidth),
        ..TestbedConfig::default()
    };
    let mut tb = Testbed::new(&cfg);

    // Light the observability layer: metrics, trace ring (engine +
    // data-plane programs), and the scheduler's decision audit.
    tb.sim.metrics_mut().set_enabled(true);
    tb.sim.set_tracing(true);
    tb.sim
        .app_mut::<SchedulerApp>(tb.scheduler, tb.scheduler_app)
        .expect("scheduler app")
        .set_audit_enabled(true);

    let warm_ns = (5 * iv_ns).max(5_000_000_000);
    let t_fail = SimTime::ZERO + SimDuration::from_nanos(warm_ns);
    let t_end = t_fail + SimDuration::from_nanos(10 * iv_ns + (5 * iv_ns).max(5_000_000_000));

    let (a, b) = (tb.switches[FAIL_LINK.0], tb.switches[FAIL_LINK.1]);
    tb.sim.install_fault_plan(&FaultPlan::new().link_down(a, b, t_fail));

    let requester = tb.node(REQUESTER).0;
    let poll = SimDuration::from_millis(100);
    let mut t = SimTime::ZERO + poll;
    while t.as_nanos() <= t_end.as_nanos() {
        tb.sim.run_until(t);
        let app = tb
            .sim
            .app_mut::<SchedulerApp>(tb.scheduler, tb.scheduler_app)
            .expect("scheduler app");
        // With auditing on, every detailed ranking lands in the trail.
        let _ = app.core_mut().rank_detailed_with(requester, policy, t.as_nanos());
        t += poll;
    }

    // Fold the scheduler's path-engine counters into the registry before
    // snapshotting: CSR rebuilds / weight refreshes are exactly the churn
    // the snapshot publisher pays, and cache hit rates show what indexed
    // serving saves per decision.
    let path_stats = tb
        .sim
        .app::<SchedulerApp>(tb.scheduler, tb.scheduler_app)
        .expect("scheduler app")
        .core()
        .path_stats();
    path_stats.export(tb.sim.metrics_mut(), t_end.as_nanos());

    let stats = tb.sim.stats();
    let trace_seen = tb.sim.trace_ring().seen();
    let metrics_json = tb.sim.metrics().snapshot_json();

    let app = tb
        .sim
        .app::<SchedulerApp>(tb.scheduler, tb.scheduler_app)
        .expect("scheduler app");
    let audit = app.audit();
    let mut by_reason: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut exclusions = 0u64;
    for rec in audit.records() {
        exclusions += rec.excluded.len() as u64;
        for &(_, reason) in &rec.excluded {
            *by_reason.entry(reason).or_insert(0) += 1;
        }
    }

    let cell = AuditCell {
        policy: policy.name().to_string(),
        interval_s: interval.as_secs_f64(),
        decisions: audit.total(),
        exclusions,
        exclude_reasons: by_reason
            .into_iter()
            .map(|(reason, count)| ReasonCount { reason: reason.to_string(), count })
            .collect(),
        trace_seen,
        frames_delivered: stats.frames_delivered,
        drops: stats.total_drops(),
        audit_json: audit.to_json(),
        metrics_json,
    };
    (cell, stats.events_processed)
}

/// Run the audit grid, parallelized like the figures.
pub fn run(seed: u64, intervals: &[SimDuration]) -> AuditOutput {
    run_with(par::threads(), seed, intervals)
}

/// [`run`] with an explicit worker count (determinism tests).
pub fn run_with(workers: usize, seed: u64, intervals: &[SimDuration]) -> AuditOutput {
    let policies = [Policy::IntDelay, Policy::Nearest];
    let cells: Vec<(Policy, SimDuration)> = intervals
        .iter()
        .flat_map(|&iv| policies.iter().map(move |&p| (p, iv)))
        .collect();
    let (cells, profiles) =
        par::parallel_map_profiled_with(workers, &cells, |&(p, iv)| run_cell(seed, p, iv));
    par::report_profile("audit", &profiles);
    AuditOutput { cells }
}

/// Render the per-cell summary table (the full trails live in the JSON).
pub fn render(out: &AuditOutput) -> String {
    let rows: Vec<Vec<String>> = out
        .cells
        .iter()
        .map(|c| {
            let reasons = if c.exclude_reasons.is_empty() {
                "-".to_string()
            } else {
                c.exclude_reasons
                    .iter()
                    .map(|r| format!("{}×{}", r.reason, r.count))
                    .collect::<Vec<_>>()
                    .join(" ")
            };
            vec![
                c.policy.clone(),
                format!("{:.1}s", c.interval_s),
                c.decisions.to_string(),
                c.exclusions.to_string(),
                reasons,
                c.trace_seen.to_string(),
                c.drops.to_string(),
            ]
        })
        .collect();
    report::table(
        &["policy", "probe interval", "decisions", "exclusions", "reasons", "trace events", "drops"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The IntDelay cell must show post-cut exclusions with reasons, and
    /// the telemetry-free baseline must still audit its decisions (all
    /// candidates ranked, nothing excluded).
    #[test]
    fn audit_captures_exclusions_after_link_cut() {
        let ivs = [SimDuration::from_millis(100)];
        let out = run_with(1, 7, &ivs);
        assert_eq!(out.cells.len(), 2);

        let int = &out.cells[0];
        assert_eq!(int.policy, "IntDelay");
        assert!(int.decisions > 50, "polled every 100 ms: {}", int.decisions);
        assert!(int.exclusions > 0, "link cut must exclude candidates");
        assert!(!int.exclude_reasons.is_empty());
        assert!(
            int.audit_json.contains("\"reason\":\"NoFreshPath\"")
                || int.audit_json.contains("\"reason\":\"OriginSilent\""),
            "trail names the exclusion reason"
        );
        assert!(int.trace_seen > 0, "trace ring lit");
        assert!(int.metrics_json.contains("sim.frames_delivered"));
        assert!(
            int.metrics_json.contains("pathidx_cache_hits")
                && int.metrics_json.contains("pathidx_csr_rebuilds"),
            "path-engine counters exported: {}",
            &int.metrics_json[..int.metrics_json.len().min(400)]
        );

        let near = &out.cells[1];
        assert_eq!(near.policy, "Nearest");
        assert!(near.decisions > 50);
        assert_eq!(near.exclusions, 0, "no telemetry, no exclusions");
    }

    /// Satellite: the exported artifact — including both embedded JSON
    /// documents — is byte-identical between 1 and 4 workers.
    #[test]
    fn export_is_byte_identical_across_thread_counts() {
        let ivs = [SimDuration::from_millis(100)];
        let serial = run_with(1, 3, &ivs);
        let parallel = run_with(4, 3, &ivs);
        let a = serde_json::to_string(&serial).unwrap();
        let b = serde_json::to_string(&parallel).unwrap();
        assert_eq!(a, b, "audit artifact depends on thread count");
    }
}
