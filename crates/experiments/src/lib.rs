//! # int-experiments
//!
//! The harness that regenerates every table and figure in the paper's
//! evaluation (§IV), plus the ablations DESIGN.md calls out.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`tab1`] | Table I — workload classes |
//! | [`fig3`] | Fig. 3 — max queue length & RTT vs utilization |
//! | [`fig5`] | Fig. 5 — serverless workload, delay ranking |
//! | [`fig6`] | Fig. 6 — distributed workload, delay ranking |
//! | [`fig7`] | Fig. 7 — distributed workload, bandwidth ranking |
//! | [`fig8`] | Fig. 8 — ECDF of per-task gain |
//! | [`fig9`] | Fig. 9 — probing-interval sensitivity |
//! | [`failover`] | link-failure detection & rescheduling (failure model, §"future work") |
//! | [`fabric`] | ECMP multipath compare + failover at Clos datacenter scale |
//! | [`workflow`] | deadline-aware DAG workflows under scarce compute (§"future work") |
//! | [`audit`] | instrumented failover cells exporting the decision audit trail |
//! | [`ablation`] | max-vs-instantaneous queue signal, k sweep, compute-aware |
//! | [`overhead`] | probing overhead vs per-packet INT padding (§III-A) |
//!
//! Shared infrastructure: [`testbed`] (the Fig. 4 topology stand-in and
//! standard app deployment), [`runner`] (one full scheduling experiment),
//! [`stats`] (means, percentiles, ECDFs, gains), [`report`] (table
//! rendering + JSON output).

pub mod ablation;
pub mod audit;
pub mod compare;
pub mod fabric;
pub mod failover;
pub mod par;
pub mod fig3;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod giant;
pub mod overhead;
pub mod report;
pub mod runner;
pub mod stats;
pub mod sustained;
pub mod tab1;
pub mod testbed;
pub mod workflow;

pub use runner::{ExperimentConfig, ExperimentResult, TaskOutcome};
pub use testbed::Testbed;
