//! The evaluation testbed: a stand-in for the paper's Fig. 4 topology.
//!
//! The figure itself is not machine-readable, but the text fixes every
//! structural property: 8 nodes connected via 12 switches, all links
//! 10 ms, nearest host pairs exactly 3 hops apart (e.g. nodes 7 and 8),
//! node 6 is the scheduler, and the effective bottleneck rate is
//! ~20 Mbit/s (BMv2 processing). We realize that as a ring of 12 switches
//! with the 8 hosts attached at ring positions `0,1,3,4,6,7,9,10`:
//! consecutive host pairs (1,2), (3,4), (5,6), (7,8) sit on adjacent ring
//! switches and are therefore each other's nearest nodes at 3 hops.

use int_apps::{
    EchoResponderApp, ExecutorConfig, ProbeRelayApp, ProbeSenderApp, RunQueueOrder, SchedulerApp,
    TaskExecutorApp, UdpSinkApp,
};
use int_core::rank::StaticDistances;
use int_core::{CompositePolicy, CoreConfig, Policy};
use int_netsim::{
    LinkParams, NodeId, SimConfig, SimDuration, Simulator, Topology,
};

/// Number of edge nodes (paper: 8).
pub const NUM_NODES: usize = 8;
/// Number of switches (paper: 12).
pub const NUM_SWITCHES: usize = 12;
/// Paper node number of the scheduler (1-based, paper: node 6).
pub const SCHEDULER_NODE: usize = 6;
/// Ring positions the hosts attach to.
const HOST_POSITIONS: [usize; NUM_NODES] = [0, 1, 3, 4, 6, 7, 9, 10];

/// The constructed testbed: simulator + node handles.
pub struct Testbed {
    /// The simulator, with switches, probes, scheduler, executors, sinks,
    /// and echo responders installed.
    pub sim: Simulator,
    /// `hosts[i]` is paper node `i+1`.
    pub hosts: Vec<NodeId>,
    /// The ring switches in order.
    pub switches: Vec<NodeId>,
    /// The scheduler's node.
    pub scheduler: NodeId,
    /// App index of the scheduler app (for state inspection).
    pub scheduler_app: usize,
    /// App index of each host's task executor.
    pub executor_app: Vec<usize>,
}

/// Who probes whom.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeMode {
    /// The paper's scheme: every node probes only the scheduler. Directed
    /// links on no node→scheduler shortest path are never measured — kept
    /// as the probe-coverage ablation.
    SchedulerOnly,
    /// Every node probes every other node each interval; terminals relay
    /// the harvested INT to the scheduler. This realizes the paper's
    /// "probe route optimization" future work and gives the map
    /// task-direction coverage. Default.
    AllPairs,
}

/// Testbed construction parameters.
#[derive(Debug, Clone)]
pub struct TestbedConfig {
    /// Master seed (drives every random stream).
    pub seed: u64,
    /// Scheduling policy the scheduler applies.
    pub policy: Policy,
    /// Probing interval (paper default 100 ms; Fig. 9 sweeps it).
    pub probe_interval: SimDuration,
    /// Scheduler-core configuration.
    pub core: CoreConfig,
    /// Switch egress ceiling (the BMv2 bottleneck), bit/s.
    pub switch_rate_bps: u64,
    /// Egress queue capacity at switches, packets.
    pub queue_cap_pkts: usize,
    /// Disable INT entirely (baselines don't need it, and this models
    /// their zero-telemetry overhead faithfully).
    pub int_enabled: bool,
    /// Probe coverage scheme.
    pub probe_mode: ProbeMode,
    /// Parallel execution slots per executor (default: effectively
    /// unlimited, the paper's network-isolated evaluation).
    pub executor_slots: u32,
    /// Run-queue discipline once executor slots are all busy.
    pub executor_order: RunQueueOrder,
    /// Executors push `LoadReport`s to the scheduler when their
    /// outstanding count changes.
    pub executor_report_load: bool,
    /// Compute-aware composite re-ranking at the scheduler (the workflow
    /// experiment's policy axis); `None` leaves the base policy's order.
    pub compute_policy: Option<CompositePolicy>,
    /// Execution-time estimate the scheduler uses to convert backlog into
    /// queue wait, ns.
    pub exec_est_ns: u64,
}

impl Default for TestbedConfig {
    fn default() -> Self {
        TestbedConfig {
            seed: 1,
            policy: Policy::IntDelay,
            probe_interval: ProbeSenderApp::DEFAULT_INTERVAL,
            core: CoreConfig::default(),
            switch_rate_bps: 20_000_000,
            queue_cap_pkts: 128,
            int_enabled: true,
            probe_mode: ProbeMode::AllPairs,
            executor_slots: u32::MAX,
            executor_order: RunQueueOrder::Fifo,
            executor_report_load: false,
            compute_policy: None,
            exec_est_ns: 1_000_000_000,
        }
    }
}

/// Build the Fig. 4 stand-in topology only (no apps).
pub fn build_topology(queue_cap_pkts: usize) -> (Topology, Vec<NodeId>, Vec<NodeId>) {
    let mut t = Topology::new();
    let hosts: Vec<NodeId> = (1..=NUM_NODES).map(|i| t.add_host(format!("node{i}"))).collect();
    let switches: Vec<NodeId> = (0..NUM_SWITCHES).map(|i| t.add_switch(format!("sw{i}"))).collect();

    // Links are fast; the switch egress ceiling models the BMv2 bottleneck.
    let params = LinkParams {
        bandwidth_bps: 1_000_000_000,
        delay: SimDuration::from_millis(10),
        queue_cap_pkts,
    };
    for i in 0..NUM_SWITCHES {
        t.add_link(switches[i], switches[(i + 1) % NUM_SWITCHES], params);
    }
    for (host, &pos) in hosts.iter().zip(&HOST_POSITIONS) {
        t.add_link(*host, switches[pos], params);
    }
    (t, hosts, switches)
}

impl Testbed {
    /// Build the testbed and install the standard applications:
    /// per-node probes (except the scheduler), the scheduler service,
    /// task executors, iperf sinks, and echo responders everywhere.
    pub fn new(cfg: &TestbedConfig) -> Testbed {
        let (topo, hosts, switches) = build_topology(cfg.queue_cap_pkts);

        // Precompute static hop counts for the Nearest baseline, exactly
        // "ahead of time" as the paper assumes.
        let routes = int_netsim::RouteTable::compute(&topo);
        let mut distances = StaticDistances::new();
        for (i, &a) in hosts.iter().enumerate() {
            for &b in &hosts[i + 1..] {
                if let Some(h) = routes.hop_count(a, b) {
                    distances.set(a.0, b.0, h as u32);
                }
            }
        }

        let sim_cfg = SimConfig {
            seed: cfg.seed,
            switch_egress_rate_bps: Some(cfg.switch_rate_bps),
            int_enabled: cfg.int_enabled,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(topo, sim_cfg);

        let scheduler = hosts[SCHEDULER_NODE - 1];
        let scheduler_ip = Topology::host_ip(scheduler);

        // Scale the failure-detection horizons with the probing interval
        // (same spirit as Fig. 9's staleness scaling): at long intervals the
        // defaults would read every healthy link as dead. The defaults win at
        // the paper's 100 ms interval.
        let mut core = cfg.core.clone();
        let iv_ns = cfg.probe_interval.as_nanos();
        core.origin_silence_ns = core.origin_silence_ns.max(5 * iv_ns);
        core.eviction_horizon_ns = core.eviction_horizon_ns.max(10 * iv_ns);

        let scheduler_app = sim.install_app(
            scheduler,
            Box::new(SchedulerApp::new(
                scheduler.0,
                cfg.policy,
                core,
                distances,
                cfg.seed ^ 0x5EED_0F00,
            )),
        );

        let mut executor_app = Vec::with_capacity(hosts.len());
        for &h in &hosts {
            if cfg.int_enabled {
                match cfg.probe_mode {
                    ProbeMode::SchedulerOnly => {
                        if h != scheduler {
                            sim.install_app(
                                h,
                                Box::new(ProbeSenderApp::new(scheduler_ip, cfg.probe_interval)),
                            );
                        }
                    }
                    ProbeMode::AllPairs => {
                        let targets: Vec<_> = hosts
                            .iter()
                            .filter(|&&other| other != h)
                            .map(|&other| Topology::host_ip(other))
                            .collect();
                        sim.install_app(
                            h,
                            Box::new(ProbeSenderApp::new_multi(targets, cfg.probe_interval)),
                        );
                        if h != scheduler {
                            sim.install_app(h, Box::new(ProbeRelayApp::new(scheduler_ip)));
                        }
                    }
                }
            }
            let exec_cfg = ExecutorConfig {
                slots: cfg.executor_slots,
                order: cfg.executor_order,
                report_load_to: cfg.executor_report_load.then_some(scheduler_ip),
            };
            let exec = sim.install_app(h, Box::new(TaskExecutorApp::with_config(exec_cfg)));
            executor_app.push(exec);
            sim.install_app(h, Box::new(UdpSinkApp::new(int_apps::iperf::IPERF_UDP_PORT)));
            sim.install_app(h, Box::new(EchoResponderApp::new()));
        }

        // Pre-register every host as a candidate: the baselines run with
        // INT disabled and would otherwise never learn the fleet.
        let host_ids: Vec<u32> = hosts.iter().map(|h| h.0).collect();
        let sched = sim
            .app_mut::<SchedulerApp>(scheduler, scheduler_app)
            .expect("scheduler app just installed");
        sched.register_hosts(&host_ids);
        if let Some(composite) = cfg.compute_policy {
            sched.set_compute(composite, cfg.exec_est_ns);
            for &h in &host_ids {
                sched.register_executor(h, cfg.executor_slots);
            }
        }

        Testbed { sim, hosts, switches, scheduler, scheduler_app, executor_app }
    }

    /// Node handle for a paper node number (1-based).
    pub fn node(&self, paper_number: usize) -> NodeId {
        assert!((1..=NUM_NODES).contains(&paper_number), "node {paper_number}");
        self.hosts[paper_number - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_matches_paper_text() {
        let (t, hosts, switches) = build_topology(128);
        assert_eq!(hosts.len(), 8);
        assert_eq!(switches.len(), 12);
        assert_eq!(t.links.len(), 20, "12 ring + 8 host links");

        let routes = int_netsim::RouteTable::compute(&t);
        // Nearest pairs are exactly 3 hops: (1,2),(3,4),(5,6),(7,8).
        for pair in [(0, 1), (2, 3), (4, 5), (6, 7)] {
            assert_eq!(routes.hop_count(hosts[pair.0], hosts[pair.1]), Some(3), "{pair:?}");
        }
        // And nothing is closer than 3 hops.
        for (i, &a) in hosts.iter().enumerate() {
            for &b in &hosts[i + 1..] {
                assert!(routes.hop_count(a, b).unwrap() >= 3);
            }
        }
        // Node 7 and 8's nearest node is each other (paper's example).
        let h7 = hosts[6];
        let nearest_to_h7 = hosts
            .iter()
            .filter(|&&b| b != h7)
            .min_by_key(|&&b| routes.hop_count(h7, b).unwrap())
            .copied()
            .unwrap();
        assert_eq!(nearest_to_h7, hosts[7]);
    }

    /// The simulator memoizes host egress ports at build time (PR 4); the
    /// memo must answer exactly as a fresh `RouteTable` for every host
    /// pair on the 12-switch ring — a divergence would silently reroute
    /// traffic at the first hop.
    #[test]
    fn host_uplink_memo_matches_route_table() {
        let (t, hosts, _switches) = build_topology(128);
        let routes = int_netsim::RouteTable::compute(&t);
        let sim = Simulator::new(t.clone(), SimConfig::default());
        for &a in &hosts {
            for &b in &hosts {
                if a == b {
                    continue;
                }
                assert_eq!(
                    sim.host_uplink_port(a, Topology::host_ip(b)),
                    routes.egress_port(&t, a, b).expect("ring is connected"),
                    "memoized uplink for {a:?} -> {b:?}"
                );
            }
        }
    }

    #[test]
    fn testbed_builds_and_probes_reach_scheduler() {
        let mut tb = Testbed::new(&TestbedConfig::default());
        tb.sim.run_until(int_netsim::SimTime::ZERO + SimDuration::from_secs(2));
        let app = tb
            .sim
            .app::<SchedulerApp>(tb.scheduler, tb.scheduler_app)
            .expect("scheduler app");
        assert!(app.probes_received() > 50, "7 probers at 10 Hz for 2 s");
        // The learned map knows every host and a good chunk of the ring.
        let map = app.core().collector().map();
        assert_eq!(map.hosts().count(), 8);
        assert!(map.switches().count() >= 8, "most switches discovered");
    }

    #[test]
    fn scheduler_is_paper_node_6() {
        let tb = Testbed::new(&TestbedConfig::default());
        assert_eq!(tb.scheduler, tb.node(6));
    }
}
