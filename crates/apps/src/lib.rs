//! # int-apps
//!
//! The simulated applications that populate the testbed (paper Fig. 1):
//!
//! * [`probe::ProbeSenderApp`] — each edge server's periodic INT probe
//!   toward the scheduler (default 100 ms interval, §III-A),
//! * [`scheduler::SchedulerApp`] — the scheduler service: collects probes,
//!   maintains the network map, answers ranking queries,
//! * [`task::TaskSubmitterApp`] / [`task::TaskExecutorApp`] — edge devices
//!   submitting task data over TCP and edge servers executing tasks,
//! * [`iperf::IperfSenderApp`] / [`sink::UdpSinkApp`] — iperf-style
//!   background traffic generation and sinks,
//! * [`ping::PingApp`] / [`ping::EchoResponderApp`] — RTT measurement, the
//!   paper's Fig. 3 ground-truth delay probe.

pub mod iperf;
pub mod ping;
pub mod probe;
pub mod scheduler;
pub mod sink;
pub mod task;

pub use iperf::IperfSenderApp;
pub use ping::{EchoResponderApp, PingApp};
pub use probe::{ProbeCollectorApp, ProbeRelayApp, ProbeSenderApp};
pub use scheduler::SchedulerApp;
pub use sink::UdpSinkApp;
pub use task::{
    ExecutedTask, ExecutorConfig, FailReason, RunQueueOrder, TaskExecutorApp, TaskRecord,
    TaskSubmitterApp,
};
