//! Ping: periodic RTT measurement (the paper's Fig. 3 delay ground truth,
//! run at one-second intervals). Implemented as a UDP echo pair.

use int_netsim::{App, AppCtx, SimDuration, SimTime};
use int_packet::msgs::ControlMsg;
use int_packet::wire::{WireDecode, WireEncode};
use int_packet::ECHO_UDP_PORT;
use std::any::Any;
use std::net::Ipv4Addr;

const TIMER_SEND: u64 = 1;
const PING_SRC_PORT: u16 = 42000;

/// Periodic echo requester recording RTT samples.
pub struct PingApp {
    dst: Ipv4Addr,
    interval: SimDuration,
    next_seq: u64,
    /// (send time, RTT) samples for completed echos.
    pub rtts: Vec<(SimTime, SimDuration)>,
    /// Requests sent.
    pub sent: u64,
}

impl PingApp {
    /// Ping `dst` every `interval` (the paper uses one second).
    pub fn new(dst: Ipv4Addr, interval: SimDuration) -> Self {
        assert!(interval.as_nanos() > 0);
        PingApp { dst, interval, next_seq: 0, rtts: Vec::new(), sent: 0 }
    }

    /// Mean RTT over all samples, ms (None before the first reply).
    pub fn mean_rtt_ms(&self) -> Option<f64> {
        if self.rtts.is_empty() {
            return None;
        }
        let sum: f64 = self.rtts.iter().map(|(_, d)| d.as_millis_f64()).sum();
        Some(sum / self.rtts.len() as f64)
    }

    /// Fraction of requests answered so far.
    pub fn reply_rate(&self) -> f64 {
        if self.sent == 0 {
            return 0.0;
        }
        self.rtts.len() as f64 / self.sent as f64
    }

    fn send_ping(&mut self, ctx: &mut AppCtx<'_>) {
        let msg = ControlMsg::EchoRequest { seq: self.next_seq, ts_ns: ctx.now.as_nanos() };
        self.next_seq += 1;
        self.sent += 1;
        ctx.send_udp(PING_SRC_PORT, self.dst, ECHO_UDP_PORT, msg.to_bytes());
        ctx.set_timer(self.interval, TIMER_SEND);
    }
}

impl App for PingApp {
    fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
        ctx.bind_udp(PING_SRC_PORT);
        self.send_ping(ctx);
    }

    fn on_timer(&mut self, ctx: &mut AppCtx<'_>, timer_id: u64) {
        if timer_id == TIMER_SEND {
            self.send_ping(ctx);
        }
    }

    fn on_udp(
        &mut self,
        ctx: &mut AppCtx<'_>,
        _from: Ipv4Addr,
        _from_port: u16,
        _to_port: u16,
        payload: &[u8],
    ) {
        if let Ok(ControlMsg::EchoReply { ts_ns, .. }) = ControlMsg::decode(&mut &payload[..]) {
            let rtt = ctx.now.since(SimTime(ts_ns));
            self.rtts.push((SimTime(ts_ns), rtt));
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Replies to echo requests on the well-known echo port.
#[derive(Default)]
pub struct EchoResponderApp {
    /// Requests answered.
    pub replies: u64,
}

impl EchoResponderApp {
    /// New responder.
    pub fn new() -> Self {
        Self::default()
    }
}

impl App for EchoResponderApp {
    fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
        ctx.bind_udp(ECHO_UDP_PORT);
    }

    fn on_udp(
        &mut self,
        ctx: &mut AppCtx<'_>,
        from: Ipv4Addr,
        from_port: u16,
        _to_port: u16,
        payload: &[u8],
    ) {
        if let Ok(ControlMsg::EchoRequest { seq, ts_ns }) = ControlMsg::decode(&mut &payload[..]) {
            self.replies += 1;
            let reply = ControlMsg::EchoReply { seq, ts_ns };
            ctx.send_udp(ECHO_UDP_PORT, from, from_port, reply.to_bytes());
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use int_netsim::{LinkParams, SimConfig, Simulator, Topology};

    #[test]
    fn rtt_matches_path_delay_on_idle_network() {
        let mut t = Topology::new();
        let h1 = t.add_host("h1");
        let s1 = t.add_switch("s1");
        let h2 = t.add_host("h2");
        t.add_link(h1, s1, LinkParams::paper_default());
        t.add_link(s1, h2, LinkParams::paper_default());

        let mut sim = Simulator::new(t, SimConfig::default());
        let ping = sim.install_app(
            h1,
            Box::new(PingApp::new(Topology::host_ip(h2), SimDuration::from_secs(1))),
        );
        sim.install_app(h2, Box::new(EchoResponderApp::new()));
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(10));

        let app = sim.app::<PingApp>(h1, ping).unwrap();
        assert!(app.sent >= 10);
        assert!(app.reply_rate() > 0.9, "idle network answers pings: {}", app.reply_rate());
        let mean = app.mean_rtt_ms().unwrap();
        // 4 × 10 ms links + 4 small serializations ≈ just above 40 ms.
        assert!((40.0..42.0).contains(&mean), "idle RTT ≈ 40 ms, got {mean}");
    }
}
