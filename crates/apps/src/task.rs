//! Task submission and execution (paper Fig. 1, steps 5–6).
//!
//! * [`TaskSubmitterApp`] runs on an edge device. For each planned job it
//!   queries the scheduler, picks the top-ranked candidate server per task,
//!   streams the task's input data over TCP (header + payload), and waits
//!   for the executor's `TaskDone` callback. It records every timestamp
//!   the experiment harness needs. It also understands *workflows*
//!   ([`int_workload::WorkflowSpec`]): task DAGs whose dependent tasks are
//!   released — with a fresh scheduler query per ready stage — only once
//!   their parents complete.
//! * [`TaskExecutorApp`] runs on every edge server: accepts task streams,
//!   runs each task once its data has fully arrived, then reports
//!   completion over UDP. Execution uses a real compute model: a finite
//!   number of parallel slots and a FIFO- or EDF-ordered run queue, with
//!   the per-task queue wait recorded and echoed in the completion
//!   callback. The default configuration keeps the slot count effectively
//!   unlimited, which reproduces the paper's network-isolated evaluation.
//!
//! Failure accounting: a submitter can arm a bounded completion timeout
//! per dispatched task — a task stream that dies mid-transfer (e.g. a
//! faulted link; the transport retries forever and the executor never sees
//! a close) is then marked failed instead of wedging [`TaskSubmitterApp::all_done`]
//! forever. An empty candidate list likewise materializes *unplaceable*
//! records, so experiment totals account for every planned task.

use int_netsim::{App, AppCtx, ConnId, NodeId, SimDuration, SimTime, TcpEvent, Topology};
use int_obs::{Labels, MetricsRegistry};
use int_packet::msgs::{ControlMsg, RankingKind, TaskStreamHeader};
use int_packet::wire::{WireDecode, WireEncode};
use int_packet::{SCHEDULER_UDP_PORT, SCHED_CLIENT_UDP_PORT, TASK_UDP_PORT};
use int_workload::{JobSpec, TaskClass, WorkflowSpec};
use std::any::Any;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::net::Ipv4Addr;

// ---------------------------------------------------------------- executor

/// How an executor orders its run queue when all slots are busy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RunQueueOrder {
    /// Data-arrival order.
    #[default]
    Fifo,
    /// Earliest deadline first (tasks without a deadline go last, in
    /// arrival order).
    Edf,
}

/// Executor compute-model configuration.
#[derive(Debug, Clone)]
pub struct ExecutorConfig {
    /// Parallel execution slots. The default is effectively unlimited
    /// (`u32::MAX`), reproducing the paper's network-isolated evaluation;
    /// the workflow experiments pin it down to model compute contention.
    pub slots: u32,
    /// Run-queue discipline once all slots are busy.
    pub order: RunQueueOrder,
    /// Where to push `LoadReport`s (outstanding = running + queued) when
    /// the count changes; `None` disables reporting.
    pub report_load_to: Option<Ipv4Addr>,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig { slots: u32::MAX, order: RunQueueOrder::Fifo, report_load_to: None }
    }
}

/// A task an executor finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutedTask {
    /// Job the task belongs to.
    pub job_id: u64,
    /// Task within the job.
    pub task_id: u64,
    /// Submitting node.
    pub origin: u32,
    /// Payload bytes received.
    pub data_bytes: u64,
    /// When the stream was accepted.
    pub accepted_at: SimTime,
    /// When the last payload byte arrived.
    pub data_received_at: SimTime,
    /// Time spent waiting in the run queue for a free slot, ns.
    pub queue_wait_ns: u64,
    /// When execution finished.
    pub finished_at: SimTime,
}

struct InboundStream {
    buf: Vec<u8>,
    header: Option<TaskStreamHeader>,
    accepted_at: SimTime,
    data_received_at: Option<SimTime>,
}

/// A task whose data is complete, waiting for (or holding) a slot.
#[derive(Debug, Clone, Copy)]
struct ReadyTask {
    header: TaskStreamHeader,
    accepted_at: SimTime,
    data_received_at: SimTime,
    /// Arrival sequence number — the FIFO key and the EDF tiebreak.
    seq: u64,
}

/// The run queue: tasks with complete data waiting for a free slot.
#[derive(Debug, Default)]
struct RunQueue {
    items: Vec<ReadyTask>,
}

impl RunQueue {
    fn push(&mut self, t: ReadyTask) {
        self.items.push(t);
    }

    fn len(&self) -> usize {
        self.items.len()
    }

    /// Remove and return the next task under `order`.
    fn pop(&mut self, order: RunQueueOrder) -> Option<ReadyTask> {
        if self.items.is_empty() {
            return None;
        }
        let key = |t: &ReadyTask| match order {
            RunQueueOrder::Fifo => (0u64, t.seq),
            RunQueueOrder::Edf => {
                // No deadline sorts after every real deadline.
                let d = if t.header.deadline_ns == 0 { u64::MAX } else { t.header.deadline_ns };
                (d, t.seq)
            }
        };
        let (best, _) = self
            .items
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| key(t))
            .expect("non-empty queue");
        Some(self.items.swap_remove(best))
    }
}

/// The edge-server side: receives task streams and executes them.
pub struct TaskExecutorApp {
    cfg: ExecutorConfig,
    streams: HashMap<ConnId, InboundStream>,
    queue: RunQueue,
    /// Tasks currently holding a slot.
    running: u32,
    /// Inbound streams whose header has been decoded but whose payload is
    /// still arriving — counted in [`Self::outstanding`] so load reports
    /// see work that is already committed to this server.
    receiving: u32,
    /// Execution timers: timer id → (ready task, queue wait it accrued).
    pending_exec: BTreeMap<u64, (ReadyTask, u64)>,
    /// Completion callbacks being (re)sent:
    /// timer id → (header, data_received_at, queue_wait_ns, resends left).
    pending_done: BTreeMap<u64, (TaskStreamHeader, SimTime, u64, u32)>,
    next_timer: u64,
    next_seq: u64,
    /// Streams that closed before their payload completed.
    pub truncated_streams: u64,
    /// Executor counters (disabled by default).
    metrics: MetricsRegistry,
    /// Finished tasks, in completion order.
    pub executed: Vec<ExecutedTask>,
}

impl TaskExecutorApp {
    /// New executor with the default (unlimited-slot) compute model.
    pub fn new() -> Self {
        Self::with_config(ExecutorConfig::default())
    }

    /// New executor with an explicit compute model.
    pub fn with_config(cfg: ExecutorConfig) -> Self {
        TaskExecutorApp {
            cfg,
            streams: HashMap::new(),
            queue: RunQueue::default(),
            running: 0,
            receiving: 0,
            pending_exec: BTreeMap::new(),
            pending_done: BTreeMap::new(),
            next_timer: 1,
            next_seq: 0,
            truncated_streams: 0,
            metrics: MetricsRegistry::new(),
            executed: Vec::new(),
        }
    }

    /// Enable or disable the executor's metric counters.
    pub fn set_metrics_enabled(&mut self, on: bool) {
        self.metrics.set_enabled(on);
    }

    /// The executor's metric counters.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Tasks committed to this server: running, queued, or still
    /// transferring their input data.
    pub fn outstanding(&self) -> u32 {
        self.running + self.queue.len() as u32 + self.receiving
    }

    fn try_consume(&mut self, ctx: &mut AppCtx<'_>, conn: ConnId) {
        let Some(st) = self.streams.get_mut(&conn) else { return };
        if st.header.is_none() && st.buf.len() >= TaskStreamHeader::LEN {
            match TaskStreamHeader::decode(&mut &st.buf[..]) {
                Ok(h) => {
                    st.buf.drain(..TaskStreamHeader::LEN);
                    st.header = Some(h);
                    self.receiving += 1;
                    self.report_load(ctx);
                }
                Err(_) => {
                    // Corrupt stream: drop our bookkeeping; the transport
                    // will close naturally.
                    self.streams.remove(&conn);
                    return;
                }
            }
        }
        let Some(st) = self.streams.get_mut(&conn) else { return };
        let Some(h) = st.header else { return };
        if st.data_received_at.is_none() && st.buf.len() as u64 >= h.data_len {
            st.data_received_at = Some(ctx.now);
            let accepted_at = st.accepted_at;
            let seq = self.next_seq;
            self.next_seq += 1;
            self.receiving = self.receiving.saturating_sub(1);
            self.admit(ctx, ReadyTask { header: h, accepted_at, data_received_at: ctx.now, seq });
        }
    }

    /// A task's data is complete: start it if a slot is free, else queue.
    fn admit(&mut self, ctx: &mut AppCtx<'_>, t: ReadyTask) {
        if self.running < self.cfg.slots {
            self.start(ctx, t);
        } else {
            self.metrics.counter_inc("tasks_queued", Labels::none());
            self.queue.push(t);
        }
        self.report_load(ctx);
    }

    fn start(&mut self, ctx: &mut AppCtx<'_>, t: ReadyTask) {
        let queue_wait_ns = ctx.now.as_nanos().saturating_sub(t.data_received_at.as_nanos());
        self.running += 1;
        let timer = self.next_timer;
        self.next_timer += 1;
        self.pending_exec.insert(timer, (t, queue_wait_ns));
        ctx.set_timer(SimDuration::from_nanos(t.header.exec_duration_ns), timer);
    }

    fn report_load(&mut self, ctx: &mut AppCtx<'_>) {
        if let Some(sched) = self.cfg.report_load_to {
            let msg = ControlMsg::LoadReport { host: ctx.node.0, outstanding: self.outstanding() };
            ctx.send_udp(TASK_UDP_PORT, sched, SCHEDULER_UDP_PORT, msg.to_bytes());
        }
    }

    fn send_done(
        &self,
        ctx: &mut AppCtx<'_>,
        h: &TaskStreamHeader,
        data_received_at: SimTime,
        queue_wait_ns: u64,
    ) {
        let done = ControlMsg::TaskDone {
            job_id: h.job_id,
            task_id: h.task_id,
            executed_on: ctx.node.0,
            data_received_ts_ns: data_received_at.as_nanos(),
            queue_wait_ns,
        };
        let origin_ip = Topology::host_ip(NodeId(h.origin));
        ctx.send_udp(TASK_UDP_PORT, origin_ip, TASK_UDP_PORT, done.to_bytes());
    }
}

impl Default for TaskExecutorApp {
    fn default() -> Self {
        Self::new()
    }
}

impl App for TaskExecutorApp {
    fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
        ctx.tcp_listen(TASK_UDP_PORT);
    }

    fn on_tcp(&mut self, ctx: &mut AppCtx<'_>, event: TcpEvent) {
        match event {
            TcpEvent::Accepted { conn, .. } => {
                self.streams.insert(
                    conn,
                    InboundStream {
                        buf: Vec::new(),
                        header: None,
                        accepted_at: ctx.now,
                        data_received_at: None,
                    },
                );
            }
            TcpEvent::Data { conn, data } => {
                if let Some(st) = self.streams.get_mut(&conn) {
                    st.buf.extend_from_slice(&data);
                    self.try_consume(ctx, conn);
                }
            }
            TcpEvent::Closed { conn } => {
                // Completed submissions were already admitted in
                // try_consume; a stream that closes with its payload
                // incomplete was truncated (the submitter's completion
                // timeout does the lifecycle accounting on its side).
                if let Some(st) = self.streams.remove(&conn) {
                    if st.data_received_at.is_none() {
                        self.truncated_streams += 1;
                        self.metrics.counter_inc("streams_truncated", Labels::none());
                        if st.header.is_some() {
                            self.receiving = self.receiving.saturating_sub(1);
                            self.report_load(ctx);
                        }
                    }
                }
            }
            TcpEvent::Connected { .. } => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut AppCtx<'_>, timer_id: u64) {
        if let Some((t, queue_wait_ns)) = self.pending_exec.remove(&timer_id) {
            let h = t.header;
            self.executed.push(ExecutedTask {
                job_id: h.job_id,
                task_id: h.task_id,
                origin: h.origin,
                data_bytes: h.data_len,
                accepted_at: t.accepted_at,
                data_received_at: t.data_received_at,
                queue_wait_ns,
                finished_at: ctx.now,
            });
            self.metrics.counter_inc("tasks_executed", Labels::none());
            // The completion callback is UDP: repeat it a few times so a
            // single drop at a congested queue cannot lose the completion
            // (receivers treat duplicates idempotently).
            self.send_done(ctx, &h, t.data_received_at, queue_wait_ns);
            let timer = self.next_timer;
            self.next_timer += 1;
            self.pending_done.insert(timer, (h, t.data_received_at, queue_wait_ns, 2));
            ctx.set_timer(SimDuration::from_secs(1), timer);
            // The slot frees up: start the next queued task, if any.
            self.running = self.running.saturating_sub(1);
            if let Some(next) = self.queue.pop(self.cfg.order) {
                self.start(ctx, next);
            }
            self.report_load(ctx);
            return;
        }
        if let Some((h, data_received_at, queue_wait_ns, left)) = self.pending_done.remove(&timer_id)
        {
            self.send_done(ctx, &h, data_received_at, queue_wait_ns);
            if left > 1 {
                let timer = self.next_timer;
                self.next_timer += 1;
                self.pending_done.insert(timer, (h, data_received_at, queue_wait_ns, left - 1));
                ctx.set_timer(SimDuration::from_secs(1), timer);
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

// ---------------------------------------------------------------- submitter

/// Why a task record was marked failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailReason {
    /// The completion timeout expired before `TaskDone` arrived (e.g. the
    /// task stream died mid-transfer on a faulted path).
    Timeout,
    /// The scheduler returned an empty candidate list.
    Unplaceable,
    /// A workflow ancestor failed, so this task could never be released.
    ParentFailed,
}

/// The full record of one task's lifecycle, as seen by its submitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskRecord {
    /// Job (or workflow stage) the task belongs to.
    pub job_id: u64,
    /// Task within the job (unique within the workflow, for workflows).
    pub task_id: u64,
    /// Workflow this task belongs to, if any.
    pub workflow_id: Option<u64>,
    /// Table I class.
    pub class: TaskClass,
    /// Input data size, bytes.
    pub data_bytes: u64,
    /// Declared execution time, ns.
    pub exec_ns: u64,
    /// Absolute deadline, ns since epoch (0 = no deadline).
    pub deadline_ns: u64,
    /// When the job was submitted (scheduler query sent).
    pub submitted_at: SimTime,
    /// When the task's TCP stream was opened (candidates received).
    pub dispatched_at: Option<SimTime>,
    /// Server the task went to.
    pub server: Option<u32>,
    /// Server-side time the data fully arrived (from `TaskDone`).
    pub data_received_at: Option<SimTime>,
    /// Server-side run-queue wait (from `TaskDone`), ns.
    pub queue_wait_ns: Option<u64>,
    /// When the completion callback arrived.
    pub completed_at: Option<SimTime>,
    /// When the submitter gave up on the task (timeout / unplaceable /
    /// failed ancestor).
    pub failed_at: Option<SimTime>,
    /// Why it failed.
    pub fail_reason: Option<FailReason>,
}

impl TaskRecord {
    /// Transfer time: stream open → all data at the server.
    pub fn transfer_time(&self) -> Option<SimDuration> {
        Some(self.data_received_at?.since(self.dispatched_at?))
    }

    /// Task completion time: job submission → completion callback. This is
    /// the paper's task-completion metric (scheduling query, transfer, and
    /// execution all included).
    pub fn completion_time(&self) -> Option<SimDuration> {
        Some(self.completed_at?.since(self.submitted_at))
    }

    /// Has the task reached a terminal state (completed or failed)?
    pub fn resolved(&self) -> bool {
        self.completed_at.is_some() || self.failed_at.is_some()
    }

    /// For a deadline-carrying task: did it miss? (Not completing at all
    /// counts as a miss.)
    pub fn missed_deadline(&self) -> bool {
        self.deadline_ns != 0
            && match self.completed_at {
                Some(t) => t.as_nanos() > self.deadline_ns,
                None => true,
            }
    }
}

/// One task inside an outstanding scheduler query.
#[derive(Debug, Clone)]
struct QueryTask {
    task_id: u64,
    data_bytes: u64,
    exec_ns: u64,
    class: TaskClass,
    deadline_ns: u64,
}

/// An outstanding scheduler query (a legacy job or a workflow stage).
struct PendingQuery {
    tasks: Vec<QueryTask>,
    submitted_at: SimTime,
    /// Index into `wf` when this query is a workflow stage.
    wf_idx: Option<usize>,
}

/// Per-workflow release bookkeeping.
struct WfState {
    spec: WorkflowSpec,
    /// Tasks already dispatched to a query (or terminally failed).
    released: BTreeSet<u64>,
    completed: BTreeSet<u64>,
    failed: BTreeSet<u64>,
    /// Stage counter (stage job ids are `workflow_id << 16 | seq`).
    stage_seq: u64,
}

// Timer-id encoding: low 32 bits are a payload index, the high bits select
// the timer kind.
const RETRY_BIT: u64 = 1 << 32; // legacy job query retry (payload: job index)
const TIMEOUT_BIT: u64 = 1 << 33; // completion timeout (payload: record index)
const WF_RELEASE_BIT: u64 = 1 << 34; // workflow release (payload: wf index)
const STAGE_RETRY_BIT: u64 = 1 << 35; // stage query retry (payload: stage counter)
const PAYLOAD_MASK: u64 = RETRY_BIT - 1;

/// The edge-device side: submits planned jobs and workflows through the
/// scheduler.
pub struct TaskSubmitterApp {
    scheduler: Ipv4Addr,
    ranking: RankingKind,
    jobs: Vec<JobSpec>,
    wf: Vec<WfState>,
    awaiting_response: HashMap<u64, PendingQuery>,
    /// Stage-retry timer payload → stage job id.
    stage_retry: BTreeMap<u64, u64>,
    next_stage_retry: u64,
    /// Stage job id → workflow index (for `TaskDone` routing).
    job_to_wf: HashMap<u64, usize>,
    /// (job_id, task_id) → index into `records`.
    record_idx: HashMap<(u64, u64), usize>,
    /// Per-task completion timeout armed at dispatch; `None` disables it.
    completion_timeout: Option<SimDuration>,
    /// Submitter counters (disabled by default).
    metrics: MetricsRegistry,
    /// Everything this submitter observed, in dispatch order.
    pub records: Vec<TaskRecord>,
}

impl TaskSubmitterApp {
    /// Submitter for `jobs` (all owned by this node), querying `scheduler`
    /// with `ranking`.
    pub fn new(scheduler: Ipv4Addr, ranking: RankingKind, jobs: Vec<JobSpec>) -> Self {
        TaskSubmitterApp {
            scheduler,
            ranking,
            jobs,
            wf: Vec::new(),
            awaiting_response: HashMap::new(),
            stage_retry: BTreeMap::new(),
            next_stage_retry: 0,
            job_to_wf: HashMap::new(),
            record_idx: HashMap::new(),
            completion_timeout: None,
            metrics: MetricsRegistry::new(),
            records: Vec::new(),
        }
    }

    /// Submitter for DAG `workflows` (all owned by this node). Stage by
    /// stage, ready tasks are released only once their parents complete,
    /// each stage re-querying the scheduler.
    pub fn new_workflows(
        scheduler: Ipv4Addr,
        ranking: RankingKind,
        workflows: Vec<WorkflowSpec>,
    ) -> Self {
        let mut app = Self::new(scheduler, ranking, Vec::new());
        app.wf = workflows
            .into_iter()
            .map(|spec| WfState {
                spec,
                released: BTreeSet::new(),
                completed: BTreeSet::new(),
                failed: BTreeSet::new(),
                stage_seq: 0,
            })
            .collect();
        app
    }

    /// Bound every dispatched task's wait for its completion callback.
    /// When the timeout expires first the record is marked failed
    /// ([`FailReason::Timeout`]) instead of wedging [`Self::all_done`]
    /// forever — the regression this guards is a task stream dying on a
    /// faulted link mid-transfer, which the transport retries endlessly
    /// and the executor never notices.
    pub fn with_completion_timeout(mut self, timeout: SimDuration) -> Self {
        self.completion_timeout = Some(timeout);
        self
    }

    /// Enable or disable the submitter's metric counters.
    pub fn set_metrics_enabled(&mut self, on: bool) {
        self.metrics.set_enabled(on);
    }

    /// The submitter's metric counters.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Planned tasks across jobs and workflows.
    pub fn planned_tasks(&self) -> usize {
        self.jobs.iter().map(|j| j.tasks.len()).sum::<usize>()
            + self.wf.iter().map(|w| w.spec.tasks.len()).sum::<usize>()
    }

    /// True once every planned task has reached a terminal state
    /// (completion callback, timeout, unplaceable, or failed ancestor).
    pub fn all_done(&self) -> bool {
        self.records.len() == self.planned_tasks() && self.records.iter().all(|r| r.resolved())
    }

    fn send_query(&self, ctx: &mut AppCtx<'_>, job_id: u64, task_count: u8) {
        let req = ControlMsg::SchedRequest {
            requester: ctx.node.0,
            job_id,
            task_count,
            ranking: self.ranking,
        };
        ctx.send_udp(SCHED_CLIENT_UDP_PORT, self.scheduler, SCHEDULER_UDP_PORT, req.to_bytes());
    }

    /// Dispatch one task to `server`: open the stream, write header +
    /// payload, create the record, and arm the completion timeout.
    fn dispatch_task(
        &mut self,
        ctx: &mut AppCtx<'_>,
        job_id: u64,
        workflow_id: Option<u64>,
        submitted_at: SimTime,
        task: &QueryTask,
        server: u32,
    ) {
        let server_ip = Topology::host_ip(NodeId(server));
        let conn = ctx.tcp_connect(server_ip, TASK_UDP_PORT);
        let header = TaskStreamHeader {
            job_id,
            task_id: task.task_id,
            origin: ctx.node.0,
            exec_duration_ns: task.exec_ns,
            deadline_ns: task.deadline_ns,
            data_len: task.data_bytes,
        };
        let mut stream = header.to_bytes();
        stream.extend(std::iter::repeat_n(0u8, task.data_bytes as usize));
        ctx.tcp_send(conn, stream);
        ctx.tcp_close(conn);

        let rec = TaskRecord {
            job_id,
            task_id: task.task_id,
            workflow_id,
            class: task.class,
            data_bytes: task.data_bytes,
            exec_ns: task.exec_ns,
            deadline_ns: task.deadline_ns,
            submitted_at,
            dispatched_at: Some(ctx.now),
            server: Some(server),
            data_received_at: None,
            queue_wait_ns: None,
            completed_at: None,
            failed_at: None,
            fail_reason: None,
        };
        let idx = self.records.len();
        self.record_idx.insert((job_id, task.task_id), idx);
        self.records.push(rec);
        self.metrics.counter_inc("tasks_dispatched", Labels::none());
        if let Some(timeout) = self.completion_timeout {
            ctx.set_timer(timeout, TIMEOUT_BIT | idx as u64);
        }
    }

    /// Record a task that terminally failed without ever being dispatched.
    fn push_failed_record(
        &mut self,
        now: SimTime,
        job_id: u64,
        workflow_id: Option<u64>,
        submitted_at: SimTime,
        task: &QueryTask,
        reason: FailReason,
    ) {
        let rec = TaskRecord {
            job_id,
            task_id: task.task_id,
            workflow_id,
            class: task.class,
            data_bytes: task.data_bytes,
            exec_ns: task.exec_ns,
            deadline_ns: task.deadline_ns,
            submitted_at,
            dispatched_at: None,
            server: None,
            data_received_at: None,
            queue_wait_ns: None,
            completed_at: None,
            failed_at: Some(now),
            fail_reason: Some(reason),
        };
        self.record_idx.insert((job_id, task.task_id), self.records.len());
        self.records.push(rec);
    }

    fn query_task_of_wf(t: &int_workload::WorkflowTaskSpec) -> QueryTask {
        QueryTask {
            task_id: t.task_id,
            data_bytes: t.data_bytes,
            exec_ns: t.exec_ns,
            class: t.class,
            deadline_ns: t.deadline_ns,
        }
    }

    /// Release every workflow task whose parents have all resolved:
    /// tasks with a failed ancestor are terminally failed (cascading),
    /// the rest are batched into one stage query.
    fn release_ready(&mut self, ctx: &mut AppCtx<'_>, wf_idx: usize) {
        loop {
            let w = &self.wf[wf_idx];
            let workflow_id = w.spec.workflow_id;
            let mut doomed: Vec<QueryTask> = Vec::new();
            let mut ready: Vec<QueryTask> = Vec::new();
            for t in &w.spec.tasks {
                if w.released.contains(&t.task_id) {
                    continue;
                }
                let resolved = t
                    .parents
                    .iter()
                    .all(|p| w.completed.contains(p) || w.failed.contains(p));
                if !resolved {
                    continue;
                }
                if t.parents.iter().any(|p| w.failed.contains(p)) {
                    doomed.push(Self::query_task_of_wf(t));
                } else {
                    ready.push(Self::query_task_of_wf(t));
                }
            }
            if doomed.is_empty() && ready.is_empty() {
                return;
            }

            if !doomed.is_empty() {
                let w = &mut self.wf[wf_idx];
                let job_id = (workflow_id << 16) | w.stage_seq;
                w.stage_seq += 1;
                for t in &doomed {
                    w.released.insert(t.task_id);
                    w.failed.insert(t.task_id);
                }
                self.metrics.counter_add(
                    "tasks_failed_parent",
                    Labels::none(),
                    doomed.len() as u64,
                );
                for t in doomed {
                    self.push_failed_record(
                        ctx.now,
                        job_id,
                        Some(workflow_id),
                        ctx.now,
                        &t,
                        FailReason::ParentFailed,
                    );
                }
                // A cascade may have unblocked (or doomed) more tasks.
                continue;
            }

            // One stage query for all simultaneously ready tasks.
            let w = &mut self.wf[wf_idx];
            let job_id = (workflow_id << 16) | w.stage_seq;
            w.stage_seq += 1;
            for t in &ready {
                w.released.insert(t.task_id);
            }
            let task_count = ready.len().min(u8::MAX as usize) as u8;
            self.job_to_wf.insert(job_id, wf_idx);
            self.awaiting_response.insert(
                job_id,
                PendingQuery { tasks: ready, submitted_at: ctx.now, wf_idx: Some(wf_idx) },
            );
            self.send_query(ctx, job_id, task_count);
            let retry_payload = self.next_stage_retry;
            self.next_stage_retry += 1;
            self.stage_retry.insert(retry_payload, job_id);
            ctx.set_timer(SimDuration::from_secs(2), STAGE_RETRY_BIT | retry_payload);
        }
    }

    /// A workflow task reached a terminal state; advance the DAG.
    fn on_wf_task_resolved(
        &mut self,
        ctx: &mut AppCtx<'_>,
        wf_idx: usize,
        task_id: u64,
        failed: bool,
    ) {
        let w = &mut self.wf[wf_idx];
        if failed {
            w.failed.insert(task_id);
        } else {
            w.completed.insert(task_id);
        }
        self.release_ready(ctx, wf_idx);
    }
}

impl App for TaskSubmitterApp {
    fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
        ctx.bind_udp(SCHED_CLIENT_UDP_PORT);
        ctx.bind_udp(TASK_UDP_PORT);
        for (i, job) in self.jobs.iter().enumerate() {
            let delay = SimTime(job.submit_at_ns).since(ctx.now);
            ctx.set_timer(delay, i as u64);
        }
        for (i, w) in self.wf.iter().enumerate() {
            let delay = SimTime(w.spec.release_at_ns).since(ctx.now);
            ctx.set_timer(delay, WF_RELEASE_BIT | i as u64);
        }
    }

    fn on_timer(&mut self, ctx: &mut AppCtx<'_>, timer_id: u64) {
        let payload = (timer_id & PAYLOAD_MASK) as usize;

        if timer_id & STAGE_RETRY_BIT != 0 {
            let Some(&job_id) = self.stage_retry.get(&(payload as u64)) else { return };
            let Some(pending) = self.awaiting_response.get(&job_id) else {
                self.stage_retry.remove(&(payload as u64));
                return; // the response arrived in the meantime
            };
            let task_count = pending.tasks.len().min(u8::MAX as usize) as u8;
            self.send_query(ctx, job_id, task_count);
            ctx.set_timer(SimDuration::from_secs(2), timer_id);
            return;
        }

        if timer_id & WF_RELEASE_BIT != 0 {
            if payload < self.wf.len() {
                self.release_ready(ctx, payload);
            }
            return;
        }

        if timer_id & TIMEOUT_BIT != 0 {
            let Some(rec) = self.records.get_mut(payload) else { return };
            if rec.resolved() {
                return;
            }
            rec.failed_at = Some(ctx.now);
            rec.fail_reason = Some(FailReason::Timeout);
            self.metrics.counter_inc("tasks_failed_timeout", Labels::none());
            let (job_id, task_id) = (rec.job_id, rec.task_id);
            if let Some(&wf_idx) = self.job_to_wf.get(&job_id) {
                self.on_wf_task_resolved(ctx, wf_idx, task_id, true);
            }
            return;
        }

        // Legacy job submission (and its query retry).
        let is_retry = timer_id & RETRY_BIT != 0;
        let Some(job) = self.jobs.get(payload).cloned() else { return };
        if is_retry && !self.awaiting_response.contains_key(&job.job_id) {
            return; // the response arrived in the meantime
        }
        self.send_query(ctx, job.job_id, job.tasks.len() as u8);
        // Query and response ride UDP; retry until the response lands.
        ctx.set_timer(SimDuration::from_secs(2), timer_id | RETRY_BIT);
        if !is_retry {
            let tasks = job
                .tasks
                .iter()
                .map(|t| QueryTask {
                    task_id: t.task_id,
                    data_bytes: t.data_bytes,
                    exec_ns: t.exec_ns,
                    class: t.class,
                    deadline_ns: 0,
                })
                .collect();
            self.awaiting_response.insert(
                job.job_id,
                PendingQuery { tasks, submitted_at: ctx.now, wf_idx: None },
            );
        }
    }

    fn on_udp(
        &mut self,
        ctx: &mut AppCtx<'_>,
        _from: Ipv4Addr,
        _from_port: u16,
        to_port: u16,
        payload: &[u8],
    ) {
        let Ok(msg) = ControlMsg::decode(&mut &payload[..]) else { return };
        match (to_port, msg) {
            (SCHED_CLIENT_UDP_PORT, ControlMsg::SchedResponse { job_id, candidates }) => {
                let Some(pending) = self.awaiting_response.remove(&job_id) else { return };
                let workflow_id = pending.wf_idx.map(|i| self.wf[i].spec.workflow_id);
                if candidates.is_empty() {
                    // Nowhere to run: account for every planned task with
                    // an unplaceable record instead of dropping the job.
                    self.metrics.counter_add(
                        "tasks_unplaceable",
                        Labels::none(),
                        pending.tasks.len() as u64,
                    );
                    for task in &pending.tasks {
                        self.push_failed_record(
                            ctx.now,
                            job_id,
                            workflow_id,
                            pending.submitted_at,
                            task,
                            FailReason::Unplaceable,
                        );
                    }
                    if let Some(wf_idx) = pending.wf_idx {
                        for task in &pending.tasks {
                            self.wf[wf_idx].failed.insert(task.task_id);
                        }
                        self.release_ready(ctx, wf_idx);
                    }
                    return;
                }
                for (i, task) in pending.tasks.iter().enumerate() {
                    // Top-N assignment: task i goes to candidate i (wrap if
                    // the list is short).
                    let server = candidates[i % candidates.len()].node;
                    self.dispatch_task(
                        ctx,
                        job_id,
                        workflow_id,
                        pending.submitted_at,
                        task,
                        server,
                    );
                }
            }
            (
                TASK_UDP_PORT,
                ControlMsg::TaskDone { job_id, task_id, data_received_ts_ns, queue_wait_ns, .. },
            ) => {
                let Some(&idx) = self.record_idx.get(&(job_id, task_id)) else { return };
                let rec = &mut self.records[idx];
                if rec.resolved() {
                    return; // duplicate callback, or already timed out
                }
                rec.data_received_at = Some(SimTime(data_received_ts_ns));
                rec.queue_wait_ns = Some(queue_wait_ns);
                rec.completed_at = Some(ctx.now);
                self.metrics.counter_inc("tasks_completed", Labels::none());
                if rec.deadline_ns != 0 && ctx.now.as_nanos() > rec.deadline_ns {
                    self.metrics.counter_inc("tasks_missed_deadline", Labels::none());
                }
                if let Some(&wf_idx) = self.job_to_wf.get(&job_id) {
                    self.on_wf_task_resolved(ctx, wf_idx, task_id, false);
                }
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::ProbeSenderApp;
    use crate::scheduler::SchedulerApp;
    use int_core::rank::StaticDistances;
    use int_core::{CoreConfig, Policy};
    use int_netsim::{FaultPlan, LinkParams, SimConfig, Simulator};
    use int_packet::msgs::Candidate;
    use int_workload::{JobKind, TaskClass, TaskSpec, WorkflowSpec, WorkflowTaskSpec};

    /// h0 (device) — s2 — h1 (server+scheduler side below)
    ///                \— s3 — h4 (scheduler)
    /// Minimal star: device h0, server h1, scheduler h4 around switch s2/s3.
    fn star() -> (Topology, NodeId, NodeId, NodeId) {
        let mut t = Topology::new();
        let device = t.add_host("device");
        let server = t.add_host("server");
        let s = t.add_switch("s");
        let scheduler = t.add_host("sched");
        t.add_link(device, s, LinkParams::paper_default());
        t.add_link(server, s, LinkParams::paper_default());
        t.add_link(scheduler, s, LinkParams::paper_default());
        (t, device, server, scheduler)
    }

    fn job(job_id: u64, submitter: u32, at_s: u64, data_kb: u64, exec_ms: u64) -> JobSpec {
        JobSpec {
            job_id,
            submitter,
            submit_at_ns: at_s * 1_000_000_000,
            kind: JobKind::Serverless,
            tasks: vec![TaskSpec {
                task_id: 0,
                data_bytes: data_kb * 1000,
                exec_ns: exec_ms * 1_000_000,
                class: TaskClass::classify_data_kb(data_kb),
            }],
        }
    }

    /// Test-only scheduler: answers every query with a fixed candidate
    /// list (possibly empty), no telemetry required.
    struct StubSchedulerApp {
        candidates: Vec<Candidate>,
    }

    impl App for StubSchedulerApp {
        fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
            ctx.bind_udp(SCHEDULER_UDP_PORT);
        }

        fn on_udp(
            &mut self,
            ctx: &mut AppCtx<'_>,
            from: Ipv4Addr,
            from_port: u16,
            _to_port: u16,
            payload: &[u8],
        ) {
            let Ok(ControlMsg::SchedRequest { job_id, .. }) =
                ControlMsg::decode(&mut &payload[..])
            else {
                return;
            };
            let resp =
                ControlMsg::SchedResponse { job_id, candidates: self.candidates.clone() };
            ctx.send_udp(SCHEDULER_UDP_PORT, from, from_port, resp.to_bytes());
        }

        fn as_any(&self) -> &dyn Any {
            self
        }

        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn candidate(node: u32) -> Candidate {
        Candidate { node, est_delay_ns: 30_000_000, est_bandwidth_bps: 20_000_000 }
    }

    #[test]
    fn end_to_end_task_lifecycle() {
        let (t, device, server, scheduler) = star();
        let mut sim = Simulator::new(t, SimConfig::default());

        // Server probes the scheduler so the map learns it.
        sim.install_app(
            server,
            Box::new(ProbeSenderApp::new(
                Topology::host_ip(scheduler),
                ProbeSenderApp::DEFAULT_INTERVAL,
            )),
        );
        // Device also probes (so the scheduler knows the device's location).
        sim.install_app(
            device,
            Box::new(ProbeSenderApp::new(
                Topology::host_ip(scheduler),
                ProbeSenderApp::DEFAULT_INTERVAL,
            )),
        );
        sim.install_app(
            scheduler,
            Box::new(SchedulerApp::new(
                scheduler.0,
                Policy::IntDelay,
                CoreConfig::default(),
                StaticDistances::new(),
                1,
            )),
        );
        let exec = sim.install_app(server, Box::new(TaskExecutorApp::new()));
        let submit = sim.install_app(
            device,
            Box::new(TaskSubmitterApp::new(
                Topology::host_ip(scheduler),
                RankingKind::Delay,
                vec![job(1, device.0, 2, 500, 1000)],
            )),
        );

        sim.run_until(SimTime::ZERO + SimDuration::from_secs(20));

        let sub = sim.app::<TaskSubmitterApp>(device, submit).unwrap();
        assert!(sub.all_done(), "records: {:?}", sub.records);
        let rec = &sub.records[0];
        // Task goes to the only candidate that isn't the requester or…
        // actually scheduler itself is also a candidate; top-ranked must be
        // one of the two.
        assert!(rec.server == Some(server.0) || rec.server == Some(scheduler.0));
        let transfer = rec.transfer_time().unwrap();
        // 500 kB over a 20 Mbit/s two-hop path: ≥ 0.2 s line-rate bound.
        assert!(transfer.as_secs_f64() > 0.2, "transfer {transfer}");
        let completion = rec.completion_time().unwrap();
        assert!(
            completion.as_secs_f64() > transfer.as_secs_f64() + 1.0,
            "completion {completion} includes the 1 s execution"
        );
        assert_eq!(rec.queue_wait_ns, Some(0), "unlimited slots: no queueing");

        let ex = sim.app::<TaskExecutorApp>(server, exec).unwrap();
        if rec.server == Some(server.0) {
            assert_eq!(ex.executed.len(), 1);
            assert_eq!(ex.executed[0].data_bytes, 500_000);
            assert_eq!(ex.executed[0].origin, device.0);
        }
    }

    #[test]
    fn distributed_job_fans_out_to_three_servers() {
        // 5 hosts on one switch: device, 3 servers, scheduler.
        let mut t = Topology::new();
        let device = t.add_host("device");
        let s = t.add_switch("s");
        let servers: Vec<NodeId> = (0..3).map(|i| t.add_host(format!("srv{i}"))).collect();
        let scheduler = t.add_host("sched");
        t.add_link(device, s, LinkParams::paper_default());
        for &srv in &servers {
            t.add_link(srv, s, LinkParams::paper_default());
        }
        t.add_link(scheduler, s, LinkParams::paper_default());

        let mut sim = Simulator::new(t, SimConfig::default());
        for &srv in &servers {
            sim.install_app(
                srv,
                Box::new(ProbeSenderApp::new(
                    Topology::host_ip(scheduler),
                    ProbeSenderApp::DEFAULT_INTERVAL,
                )),
            );
            sim.install_app(srv, Box::new(TaskExecutorApp::new()));
        }
        sim.install_app(
            device,
            Box::new(ProbeSenderApp::new(
                Topology::host_ip(scheduler),
                ProbeSenderApp::DEFAULT_INTERVAL,
            )),
        );
        sim.install_app(
            scheduler,
            Box::new(SchedulerApp::new(
                scheduler.0,
                Policy::IntDelay,
                CoreConfig::default(),
                StaticDistances::new(),
                1,
            )),
        );

        let dist_job = JobSpec {
            job_id: 9,
            submitter: device.0,
            submit_at_ns: 2_000_000_000,
            kind: JobKind::Distributed,
            tasks: (0..3)
                .map(|task_id| TaskSpec {
                    task_id,
                    data_bytes: 100_000,
                    exec_ns: 500_000_000,
                    class: TaskClass::VerySmall,
                })
                .collect(),
        };
        let submit = sim.install_app(
            device,
            Box::new(TaskSubmitterApp::new(
                Topology::host_ip(scheduler),
                RankingKind::Delay,
                vec![dist_job],
            )),
        );

        sim.run_until(SimTime::ZERO + SimDuration::from_secs(30));
        let sub = sim.app::<TaskSubmitterApp>(device, submit).unwrap();
        assert!(sub.all_done(), "{:?}", sub.records);
        assert_eq!(sub.records.len(), 3);
        let used: std::collections::BTreeSet<u32> =
            sub.records.iter().filter_map(|r| r.server).collect();
        assert_eq!(used.len(), 3, "three distinct servers used: {used:?}");
    }

    #[test]
    fn run_queue_orders_fifo_and_edf() {
        let ready = |task_id: u64, deadline_ns: u64, seq: u64| ReadyTask {
            header: TaskStreamHeader {
                job_id: 1,
                task_id,
                origin: 0,
                exec_duration_ns: 1,
                deadline_ns,
                data_len: 0,
            },
            accepted_at: SimTime::ZERO,
            data_received_at: SimTime::ZERO,
            seq,
        };

        // FIFO pops in arrival order regardless of deadlines.
        let mut q = RunQueue::default();
        q.push(ready(0, 50, 0));
        q.push(ready(1, 10, 1));
        q.push(ready(2, 30, 2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop(RunQueueOrder::Fifo))
            .map(|t| t.header.task_id)
            .collect();
        assert_eq!(order, vec![0, 1, 2]);

        // EDF pops earliest deadline first; 0 (= none) goes last; ties
        // break by arrival.
        let mut q = RunQueue::default();
        q.push(ready(0, 50, 0));
        q.push(ready(1, 0, 1));
        q.push(ready(2, 10, 2));
        q.push(ready(3, 10, 3));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop(RunQueueOrder::Edf))
            .map(|t| t.header.task_id)
            .collect();
        assert_eq!(order, vec![2, 3, 0, 1]);
    }

    #[test]
    fn edf_executor_runs_urgent_task_first() {
        // One single-slot executor; three root tasks released together.
        // Arrival order (by data size over the shared uplink) is 0, 1, 2,
        // but task 2's deadline is earlier than task 1's: EDF must run it
        // first once the slot frees; FIFO must not.
        let wf = |order: RunQueueOrder| {
            let (t, device, server, scheduler) = star();
            let mut sim = Simulator::new(t, SimConfig::default());
            sim.install_app(
                scheduler,
                Box::new(StubSchedulerApp { candidates: vec![candidate(server.0)] }),
            );
            let exec = sim.install_app(
                server,
                Box::new(TaskExecutorApp::with_config(ExecutorConfig {
                    slots: 1,
                    order,
                    report_load_to: None,
                })),
            );
            let task = |task_id: u64, data_kb: u64, exec_ms: u64, deadline_s: u64| {
                WorkflowTaskSpec {
                    task_id,
                    data_bytes: data_kb * 1000,
                    exec_ns: exec_ms * 1_000_000,
                    class: TaskClass::VerySmall,
                    deadline_ns: deadline_s * 1_000_000_000,
                    parents: vec![],
                }
            };
            let spec = WorkflowSpec {
                workflow_id: 1,
                submitter: device.0,
                release_at_ns: 1_000_000_000,
                tasks: vec![
                    task(0, 50, 10_000, 1000), // runs first, holds the slot 10 s
                    task(1, 100, 100, 500),    // arrives second, late deadline
                    task(2, 200, 100, 100),    // arrives third, urgent
                ],
            };
            let submit = sim.install_app(
                device,
                Box::new(TaskSubmitterApp::new_workflows(
                    Topology::host_ip(scheduler),
                    RankingKind::Delay,
                    vec![spec],
                )),
            );
            sim.run_until(SimTime::ZERO + SimDuration::from_secs(60));
            let sub = sim.app::<TaskSubmitterApp>(device, submit).unwrap();
            assert!(sub.all_done(), "{:?}", sub.records);
            let ex = sim.app::<TaskExecutorApp>(server, exec).unwrap();
            let order: Vec<u64> = ex.executed.iter().map(|e| e.task_id).collect();
            let waited: Vec<u64> = ex.executed.iter().map(|e| e.queue_wait_ns).collect();
            (order, waited, sub.records.clone())
        };

        let (edf_order, edf_waits, records) = wf(RunQueueOrder::Edf);
        assert_eq!(edf_order, vec![0, 2, 1], "EDF runs the urgent task first");
        assert_eq!(edf_waits[0], 0, "first task takes the free slot");
        assert!(edf_waits[1] > 0 && edf_waits[2] > 0, "queued tasks record their wait");
        // Queue waits propagate to the submitter's records.
        for r in &records {
            if r.task_id != 0 {
                assert!(r.queue_wait_ns.unwrap() > 0, "{r:?}");
            }
        }

        let (fifo_order, _, _) = wf(RunQueueOrder::Fifo);
        assert_eq!(fifo_order, vec![0, 1, 2], "FIFO runs in arrival order");
    }

    #[test]
    fn workflow_stages_release_only_after_parents_complete() {
        let (t, device, server, scheduler) = star();
        let mut sim = Simulator::new(t, SimConfig::default());
        sim.install_app(
            scheduler,
            Box::new(StubSchedulerApp { candidates: vec![candidate(server.0)] }),
        );
        sim.install_app(server, Box::new(TaskExecutorApp::new()));
        let chain = WorkflowSpec {
            workflow_id: 7,
            submitter: device.0,
            release_at_ns: 1_000_000_000,
            tasks: (0..3)
                .map(|task_id| WorkflowTaskSpec {
                    task_id,
                    data_bytes: 50_000,
                    exec_ns: 500_000_000,
                    class: TaskClass::VerySmall,
                    deadline_ns: 0,
                    parents: if task_id == 0 { vec![] } else { vec![task_id - 1] },
                })
                .collect(),
        };
        let submit = sim.install_app(
            device,
            Box::new(TaskSubmitterApp::new_workflows(
                Topology::host_ip(scheduler),
                RankingKind::Delay,
                vec![chain],
            )),
        );
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(30));
        let sub = sim.app::<TaskSubmitterApp>(device, submit).unwrap();
        assert!(sub.all_done(), "{:?}", sub.records);
        assert_eq!(sub.records.len(), 3);
        // Records appear in stage order, each dispatched only after the
        // previous task's completion callback.
        for w in sub.records.windows(2) {
            assert!(
                w[1].dispatched_at.unwrap().as_nanos() >= w[0].completed_at.unwrap().as_nanos(),
                "child dispatched before its parent completed: {w:?}"
            );
        }
        assert!(sub.records.iter().all(|r| r.workflow_id == Some(7)));
        // Each stage got its own scheduler query → distinct job ids.
        let jobs: BTreeSet<u64> = sub.records.iter().map(|r| r.job_id).collect();
        assert_eq!(jobs.len(), 3);
    }

    #[test]
    fn empty_candidates_yield_unplaceable_records() {
        let (t, device, _server, scheduler) = star();
        let mut sim = Simulator::new(t, SimConfig::default());
        // An all-excluded map: the stub scheduler answers with no
        // candidates at all.
        sim.install_app(scheduler, Box::new(StubSchedulerApp { candidates: vec![] }));
        let mut sub_app = TaskSubmitterApp::new(
            Topology::host_ip(scheduler),
            RankingKind::Delay,
            vec![job(1, device.0, 1, 100, 500)],
        );
        sub_app.set_metrics_enabled(true);
        let submit = sim.install_app(device, Box::new(sub_app));
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(10));

        let sub = sim.app::<TaskSubmitterApp>(device, submit).unwrap();
        assert_eq!(sub.records.len(), 1, "the planned task is accounted for");
        let rec = &sub.records[0];
        assert_eq!(rec.fail_reason, Some(FailReason::Unplaceable));
        assert!(rec.failed_at.is_some());
        assert_eq!(rec.server, None);
        assert_eq!(rec.dispatched_at, None);
        assert!(sub.all_done(), "unplaceable tasks resolve all_done");
        assert_eq!(sub.metrics().counter("tasks_unplaceable", Labels::none()), 1);
    }

    #[test]
    fn completion_timeout_unwedges_a_faulted_transfer() {
        // A 5 MB stream over a ~20 Mbit/s path takes ~2 s; the server's
        // link is cut 1 s into the transfer. The transport retries forever
        // and the executor never sees a close — without the timeout the
        // submitter would wait for the completion callback indefinitely.
        let (t, device, server, scheduler) = star();
        let mut sim = Simulator::new(t.clone(), SimConfig::default());
        sim.install_app(
            scheduler,
            Box::new(StubSchedulerApp { candidates: vec![candidate(server.0)] }),
        );
        let exec = sim.install_app(server, Box::new(TaskExecutorApp::new()));
        let mut sub_app = TaskSubmitterApp::new(
            Topology::host_ip(scheduler),
            RankingKind::Delay,
            vec![job(1, device.0, 2, 5000, 500)],
        )
        .with_completion_timeout(SimDuration::from_secs(10));
        sub_app.set_metrics_enabled(true);
        let submit = sim.install_app(device, Box::new(sub_app));

        // The star's switch is the node right after device and server.
        let switch = NodeId(2);
        sim.install_fault_plan(&FaultPlan::new().link_down(
            server,
            switch,
            SimTime::ZERO + SimDuration::from_secs(3),
        ));

        sim.run_until(SimTime::ZERO + SimDuration::from_secs(30));
        let sub = sim.app::<TaskSubmitterApp>(device, submit).unwrap();
        assert!(sub.all_done(), "the timeout resolves the record: {:?}", sub.records);
        let rec = &sub.records[0];
        assert_eq!(rec.fail_reason, Some(FailReason::Timeout));
        assert!(rec.failed_at.is_some());
        assert!(rec.completed_at.is_none());
        // Timeout armed at dispatch (~2 s): fires ~12 s, well before the
        // 30 s horizon.
        assert!(rec.failed_at.unwrap().as_nanos() < 15_000_000_000);
        assert_eq!(sub.metrics().counter("tasks_failed_timeout", Labels::none()), 1);
        // The executor never saw the payload complete.
        let ex = sim.app::<TaskExecutorApp>(server, exec).unwrap();
        assert!(ex.executed.is_empty());
    }

    #[test]
    fn failed_parent_cascades_to_descendants() {
        // Chain 0 → 1 → 2 where task 0 is unplaceable: 1 and 2 must be
        // terminally failed (ParentFailed) so the workflow still resolves.
        let (t, device, _server, scheduler) = star();
        let mut sim = Simulator::new(t, SimConfig::default());
        sim.install_app(scheduler, Box::new(StubSchedulerApp { candidates: vec![] }));
        let chain = WorkflowSpec {
            workflow_id: 3,
            submitter: device.0,
            release_at_ns: 1_000_000_000,
            tasks: (0..3)
                .map(|task_id| WorkflowTaskSpec {
                    task_id,
                    data_bytes: 10_000,
                    exec_ns: 100_000_000,
                    class: TaskClass::VerySmall,
                    deadline_ns: 0,
                    parents: if task_id == 0 { vec![] } else { vec![task_id - 1] },
                })
                .collect(),
        };
        let submit = sim.install_app(
            device,
            Box::new(TaskSubmitterApp::new_workflows(
                Topology::host_ip(scheduler),
                RankingKind::Delay,
                vec![chain],
            )),
        );
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(10));
        let sub = sim.app::<TaskSubmitterApp>(device, submit).unwrap();
        assert!(sub.all_done(), "{:?}", sub.records);
        assert_eq!(sub.records.len(), 3);
        let reasons: Vec<FailReason> =
            sub.records.iter().map(|r| r.fail_reason.unwrap()).collect();
        assert_eq!(
            reasons,
            vec![FailReason::Unplaceable, FailReason::ParentFailed, FailReason::ParentFailed]
        );
    }
}
