//! Task submission and execution (paper Fig. 1, steps 5–6).
//!
//! * [`TaskSubmitterApp`] runs on an edge device. For each planned job it
//!   queries the scheduler, picks the top-ranked candidate server per task,
//!   streams the task's input data over TCP (header + payload), and waits
//!   for the executor's `TaskDone` callback. It records every timestamp
//!   the experiment harness needs.
//! * [`TaskExecutorApp`] runs on every edge server: accepts task streams,
//!   "executes" each task for its declared duration once the data has
//!   fully arrived, then reports completion over UDP.
//!
//! Executors run tasks concurrently (the paper's evaluation isolates
//! *network* effects; its compute-aware variant is the `int-core::compute`
//! extension).

use int_netsim::{App, AppCtx, ConnId, NodeId, SimDuration, SimTime, TcpEvent, Topology};
use int_packet::msgs::{ControlMsg, RankingKind, TaskStreamHeader};
use int_packet::wire::{WireDecode, WireEncode};
use int_packet::{SCHEDULER_UDP_PORT, SCHED_CLIENT_UDP_PORT, TASK_UDP_PORT};
use int_workload::JobSpec;
use std::any::Any;
use std::collections::{BTreeMap, HashMap};
use std::net::Ipv4Addr;

// ---------------------------------------------------------------- executor

/// A task an executor finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutedTask {
    /// Job the task belongs to.
    pub job_id: u64,
    /// Task within the job.
    pub task_id: u64,
    /// Submitting node.
    pub origin: u32,
    /// Payload bytes received.
    pub data_bytes: u64,
    /// When the stream was accepted.
    pub accepted_at: SimTime,
    /// When the last payload byte arrived.
    pub data_received_at: SimTime,
    /// When execution finished.
    pub finished_at: SimTime,
}

struct InboundStream {
    buf: Vec<u8>,
    header: Option<TaskStreamHeader>,
    accepted_at: SimTime,
    data_received_at: Option<SimTime>,
}

/// The edge-server side: receives task streams and executes them.
pub struct TaskExecutorApp {
    streams: HashMap<ConnId, InboundStream>,
    /// Execution timers: timer id → the stream's bookkeeping.
    pending_exec: BTreeMap<u64, (TaskStreamHeader, SimTime, SimTime)>,
    /// Completion callbacks being (re)sent: timer id → (msg state, resends left).
    pending_done: BTreeMap<u64, (TaskStreamHeader, SimTime, u32)>,
    next_timer: u64,
    /// Finished tasks, in completion order.
    pub executed: Vec<ExecutedTask>,
}

impl TaskExecutorApp {
    /// New executor.
    pub fn new() -> Self {
        TaskExecutorApp {
            streams: HashMap::new(),
            pending_exec: BTreeMap::new(),
            pending_done: BTreeMap::new(),
            next_timer: 1,
            executed: Vec::new(),
        }
    }

    fn try_consume(&mut self, ctx: &mut AppCtx<'_>, conn: ConnId) {
        let Some(st) = self.streams.get_mut(&conn) else { return };
        if st.header.is_none() && st.buf.len() >= TaskStreamHeader::LEN {
            match TaskStreamHeader::decode(&mut &st.buf[..]) {
                Ok(h) => {
                    st.buf.drain(..TaskStreamHeader::LEN);
                    st.header = Some(h);
                }
                Err(_) => {
                    // Corrupt stream: drop our bookkeeping; the transport
                    // will close naturally.
                    self.streams.remove(&conn);
                    return;
                }
            }
        }
        let Some(h) = st.header else { return };
        if st.data_received_at.is_none() && st.buf.len() as u64 >= h.data_len {
            st.data_received_at = Some(ctx.now);
            // Data complete: start "executing".
            let timer = self.next_timer;
            self.next_timer += 1;
            self.pending_exec.insert(timer, (h, st.accepted_at, ctx.now));
            ctx.set_timer(SimDuration::from_nanos(h.exec_duration_ns), timer);
        }
    }
}

impl Default for TaskExecutorApp {
    fn default() -> Self {
        Self::new()
    }
}

impl TaskExecutorApp {
    fn send_done(&self, ctx: &mut AppCtx<'_>, h: &TaskStreamHeader, data_received_at: SimTime) {
        let done = ControlMsg::TaskDone {
            job_id: h.job_id,
            task_id: h.task_id,
            executed_on: ctx.node.0,
            data_received_ts_ns: data_received_at.as_nanos(),
        };
        let origin_ip = Topology::host_ip(NodeId(h.origin));
        ctx.send_udp(TASK_UDP_PORT, origin_ip, TASK_UDP_PORT, done.to_bytes());
    }
}

impl App for TaskExecutorApp {
    fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
        ctx.tcp_listen(TASK_UDP_PORT);
    }

    fn on_tcp(&mut self, ctx: &mut AppCtx<'_>, event: TcpEvent) {
        match event {
            TcpEvent::Accepted { conn, .. } => {
                self.streams.insert(
                    conn,
                    InboundStream {
                        buf: Vec::new(),
                        header: None,
                        accepted_at: ctx.now,
                        data_received_at: None,
                    },
                );
            }
            TcpEvent::Data { conn, data } => {
                if let Some(st) = self.streams.get_mut(&conn) {
                    st.buf.extend_from_slice(&data);
                    self.try_consume(ctx, conn);
                }
            }
            TcpEvent::Closed { conn } => {
                // Stream ended; completed submissions were already recorded
                // in try_consume, truncated ones are simply forgotten —
                // either way the stream state goes.
                self.streams.remove(&conn);
            }
            TcpEvent::Connected { .. } => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut AppCtx<'_>, timer_id: u64) {
        if let Some((h, accepted_at, data_received_at)) = self.pending_exec.remove(&timer_id) {
            self.executed.push(ExecutedTask {
                job_id: h.job_id,
                task_id: h.task_id,
                origin: h.origin,
                data_bytes: h.data_len,
                accepted_at,
                data_received_at,
                finished_at: ctx.now,
            });
            // The completion callback is UDP: repeat it a few times so a
            // single drop at a congested queue cannot lose the completion
            // (receivers treat duplicates idempotently).
            self.send_done(ctx, &h, data_received_at);
            let timer = self.next_timer;
            self.next_timer += 1;
            self.pending_done.insert(timer, (h, data_received_at, 2));
            ctx.set_timer(SimDuration::from_secs(1), timer);
            return;
        }
        if let Some((h, data_received_at, left)) = self.pending_done.remove(&timer_id) {
            self.send_done(ctx, &h, data_received_at);
            if left > 1 {
                let timer = self.next_timer;
                self.next_timer += 1;
                self.pending_done.insert(timer, (h, data_received_at, left - 1));
                ctx.set_timer(SimDuration::from_secs(1), timer);
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

// ---------------------------------------------------------------- submitter

/// The full record of one task's lifecycle, as seen by its submitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskRecord {
    /// Job the task belongs to.
    pub job_id: u64,
    /// Task within the job.
    pub task_id: u64,
    /// Table I class.
    pub class: int_workload::TaskClass,
    /// Input data size, bytes.
    pub data_bytes: u64,
    /// Declared execution time, ns.
    pub exec_ns: u64,
    /// When the job was submitted (scheduler query sent).
    pub submitted_at: SimTime,
    /// When the task's TCP stream was opened (candidates received).
    pub dispatched_at: Option<SimTime>,
    /// Server the task went to.
    pub server: Option<u32>,
    /// Server-side time the data fully arrived (from `TaskDone`).
    pub data_received_at: Option<SimTime>,
    /// When the completion callback arrived.
    pub completed_at: Option<SimTime>,
}

impl TaskRecord {
    /// Transfer time: stream open → all data at the server.
    pub fn transfer_time(&self) -> Option<SimDuration> {
        Some(self.data_received_at?.since(self.dispatched_at?))
    }

    /// Task completion time: job submission → completion callback. This is
    /// the paper's task-completion metric (scheduling query, transfer, and
    /// execution all included).
    pub fn completion_time(&self) -> Option<SimDuration> {
        Some(self.completed_at?.since(self.submitted_at))
    }
}

struct PendingJob {
    job: JobSpec,
    submitted_at: SimTime,
}

/// The edge-device side: submits planned jobs through the scheduler.
pub struct TaskSubmitterApp {
    scheduler: Ipv4Addr,
    ranking: RankingKind,
    jobs: Vec<JobSpec>,
    awaiting_response: HashMap<u64, PendingJob>,
    /// (job_id, task_id) → index into `records`.
    record_idx: HashMap<(u64, u64), usize>,
    /// Everything this submitter observed, in dispatch order.
    pub records: Vec<TaskRecord>,
}

impl TaskSubmitterApp {
    /// Submitter for `jobs` (all owned by this node), querying `scheduler`
    /// with `ranking`.
    pub fn new(scheduler: Ipv4Addr, ranking: RankingKind, jobs: Vec<JobSpec>) -> Self {
        TaskSubmitterApp {
            scheduler,
            ranking,
            jobs,
            awaiting_response: HashMap::new(),
            record_idx: HashMap::new(),
            records: Vec::new(),
        }
    }

    /// True once every planned task has a completion callback.
    pub fn all_done(&self) -> bool {
        let planned: usize = self.jobs.iter().map(|j| j.tasks.len()).sum();
        self.records.len() == planned && self.records.iter().all(|r| r.completed_at.is_some())
    }
}

impl App for TaskSubmitterApp {
    fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
        ctx.bind_udp(SCHED_CLIENT_UDP_PORT);
        ctx.bind_udp(TASK_UDP_PORT);
        for (i, job) in self.jobs.iter().enumerate() {
            let delay = SimTime(job.submit_at_ns).since(ctx.now);
            ctx.set_timer(delay, i as u64);
        }
    }

    fn on_timer(&mut self, ctx: &mut AppCtx<'_>, timer_id: u64) {
        const RETRY_BIT: u64 = 1 << 32;
        let idx = (timer_id & (RETRY_BIT - 1)) as usize;
        let is_retry = timer_id & RETRY_BIT != 0;
        let Some(job) = self.jobs.get(idx).cloned() else { return };
        if is_retry && !self.awaiting_response.contains_key(&job.job_id) {
            return; // the response arrived in the meantime
        }
        let req = ControlMsg::SchedRequest {
            requester: ctx.node.0,
            job_id: job.job_id,
            task_count: job.tasks.len() as u8,
            ranking: self.ranking,
        };
        ctx.send_udp(SCHED_CLIENT_UDP_PORT, self.scheduler, SCHEDULER_UDP_PORT, req.to_bytes());
        // Query and response ride UDP; retry until the response lands.
        ctx.set_timer(SimDuration::from_secs(2), timer_id | RETRY_BIT);
        if !is_retry {
            self.awaiting_response
                .insert(job.job_id, PendingJob { job, submitted_at: ctx.now });
        }
    }

    fn on_udp(
        &mut self,
        ctx: &mut AppCtx<'_>,
        _from: Ipv4Addr,
        _from_port: u16,
        to_port: u16,
        payload: &[u8],
    ) {
        let Ok(msg) = ControlMsg::decode(&mut &payload[..]) else { return };
        match (to_port, msg) {
            (SCHED_CLIENT_UDP_PORT, ControlMsg::SchedResponse { job_id, candidates }) => {
                let Some(pending) = self.awaiting_response.remove(&job_id) else { return };
                if candidates.is_empty() {
                    return; // nowhere to run; the record never materializes
                }
                for (i, task) in pending.job.tasks.iter().enumerate() {
                    // Top-N assignment: task i goes to candidate i (wrap if
                    // the list is short).
                    let server = candidates[i % candidates.len()].node;
                    let server_ip = Topology::host_ip(NodeId(server));
                    let conn = ctx.tcp_connect(server_ip, TASK_UDP_PORT);

                    let header = TaskStreamHeader {
                        job_id,
                        task_id: task.task_id,
                        origin: ctx.node.0,
                        exec_duration_ns: task.exec_ns,
                        data_len: task.data_bytes,
                    };
                    let mut stream = header.to_bytes();
                    stream.extend(std::iter::repeat_n(0u8, task.data_bytes as usize));
                    ctx.tcp_send(conn, stream);
                    ctx.tcp_close(conn);

                    let rec = TaskRecord {
                        job_id,
                        task_id: task.task_id,
                        class: task.class,
                        data_bytes: task.data_bytes,
                        exec_ns: task.exec_ns,
                        submitted_at: pending.submitted_at,
                        dispatched_at: Some(ctx.now),
                        server: Some(server),
                        data_received_at: None,
                        completed_at: None,
                    };
                    self.record_idx.insert((job_id, task.task_id), self.records.len());
                    self.records.push(rec);
                }
            }
            (TASK_UDP_PORT, ControlMsg::TaskDone { job_id, task_id, data_received_ts_ns, .. }) => {
                if let Some(&idx) = self.record_idx.get(&(job_id, task_id)) {
                    let rec = &mut self.records[idx];
                    if rec.completed_at.is_none() {
                        rec.data_received_at = Some(SimTime(data_received_ts_ns));
                        rec.completed_at = Some(ctx.now);
                    }
                }
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::ProbeSenderApp;
    use crate::scheduler::SchedulerApp;
    use int_core::rank::StaticDistances;
    use int_core::{CoreConfig, Policy};
    use int_netsim::{LinkParams, SimConfig, Simulator};
    use int_workload::{JobKind, TaskClass, TaskSpec};

    /// h0 (device) — s2 — h1 (server+scheduler side below)
    ///                \— s3 — h4 (scheduler)
    /// Minimal star: device h0, server h1, scheduler h4 around switch s2/s3.
    fn star() -> (Topology, NodeId, NodeId, NodeId) {
        let mut t = Topology::new();
        let device = t.add_host("device");
        let server = t.add_host("server");
        let s = t.add_switch("s");
        let scheduler = t.add_host("sched");
        t.add_link(device, s, LinkParams::paper_default());
        t.add_link(server, s, LinkParams::paper_default());
        t.add_link(scheduler, s, LinkParams::paper_default());
        (t, device, server, scheduler)
    }

    fn job(job_id: u64, submitter: u32, at_s: u64, data_kb: u64, exec_ms: u64) -> JobSpec {
        JobSpec {
            job_id,
            submitter,
            submit_at_ns: at_s * 1_000_000_000,
            kind: JobKind::Serverless,
            tasks: vec![TaskSpec {
                task_id: 0,
                data_bytes: data_kb * 1000,
                exec_ns: exec_ms * 1_000_000,
                class: TaskClass::classify_data_kb(data_kb),
            }],
        }
    }

    #[test]
    fn end_to_end_task_lifecycle() {
        let (t, device, server, scheduler) = star();
        let mut sim = Simulator::new(t, SimConfig::default());

        // Server probes the scheduler so the map learns it.
        sim.install_app(
            server,
            Box::new(ProbeSenderApp::new(
                Topology::host_ip(scheduler),
                ProbeSenderApp::DEFAULT_INTERVAL,
            )),
        );
        // Device also probes (so the scheduler knows the device's location).
        sim.install_app(
            device,
            Box::new(ProbeSenderApp::new(
                Topology::host_ip(scheduler),
                ProbeSenderApp::DEFAULT_INTERVAL,
            )),
        );
        sim.install_app(
            scheduler,
            Box::new(SchedulerApp::new(
                scheduler.0,
                Policy::IntDelay,
                CoreConfig::default(),
                StaticDistances::new(),
                1,
            )),
        );
        let exec = sim.install_app(server, Box::new(TaskExecutorApp::new()));
        let submit = sim.install_app(
            device,
            Box::new(TaskSubmitterApp::new(
                Topology::host_ip(scheduler),
                RankingKind::Delay,
                vec![job(1, device.0, 2, 500, 1000)],
            )),
        );

        sim.run_until(SimTime::ZERO + SimDuration::from_secs(20));

        let sub = sim.app::<TaskSubmitterApp>(device, submit).unwrap();
        assert!(sub.all_done(), "records: {:?}", sub.records);
        let rec = &sub.records[0];
        // Task goes to the only candidate that isn't the requester or…
        // actually scheduler itself is also a candidate; top-ranked must be
        // one of the two.
        assert!(rec.server == Some(server.0) || rec.server == Some(scheduler.0));
        let transfer = rec.transfer_time().unwrap();
        // 500 kB over a 20 Mbit/s two-hop path: ≥ 0.2 s line-rate bound.
        assert!(transfer.as_secs_f64() > 0.2, "transfer {transfer}");
        let completion = rec.completion_time().unwrap();
        assert!(
            completion.as_secs_f64() > transfer.as_secs_f64() + 1.0,
            "completion {completion} includes the 1 s execution"
        );

        let ex = sim.app::<TaskExecutorApp>(server, exec).unwrap();
        if rec.server == Some(server.0) {
            assert_eq!(ex.executed.len(), 1);
            assert_eq!(ex.executed[0].data_bytes, 500_000);
            assert_eq!(ex.executed[0].origin, device.0);
        }
    }

    #[test]
    fn distributed_job_fans_out_to_three_servers() {
        // 5 hosts on one switch: device, 3 servers, scheduler.
        let mut t = Topology::new();
        let device = t.add_host("device");
        let s = t.add_switch("s");
        let servers: Vec<NodeId> = (0..3).map(|i| t.add_host(format!("srv{i}"))).collect();
        let scheduler = t.add_host("sched");
        t.add_link(device, s, LinkParams::paper_default());
        for &srv in &servers {
            t.add_link(srv, s, LinkParams::paper_default());
        }
        t.add_link(scheduler, s, LinkParams::paper_default());

        let mut sim = Simulator::new(t, SimConfig::default());
        for &srv in &servers {
            sim.install_app(
                srv,
                Box::new(ProbeSenderApp::new(
                    Topology::host_ip(scheduler),
                    ProbeSenderApp::DEFAULT_INTERVAL,
                )),
            );
            sim.install_app(srv, Box::new(TaskExecutorApp::new()));
        }
        sim.install_app(
            device,
            Box::new(ProbeSenderApp::new(
                Topology::host_ip(scheduler),
                ProbeSenderApp::DEFAULT_INTERVAL,
            )),
        );
        sim.install_app(
            scheduler,
            Box::new(SchedulerApp::new(
                scheduler.0,
                Policy::IntDelay,
                CoreConfig::default(),
                StaticDistances::new(),
                1,
            )),
        );

        let dist_job = JobSpec {
            job_id: 9,
            submitter: device.0,
            submit_at_ns: 2_000_000_000,
            kind: JobKind::Distributed,
            tasks: (0..3)
                .map(|task_id| TaskSpec {
                    task_id,
                    data_bytes: 100_000,
                    exec_ns: 500_000_000,
                    class: TaskClass::VerySmall,
                })
                .collect(),
        };
        let submit = sim.install_app(
            device,
            Box::new(TaskSubmitterApp::new(
                Topology::host_ip(scheduler),
                RankingKind::Delay,
                vec![dist_job],
            )),
        );

        sim.run_until(SimTime::ZERO + SimDuration::from_secs(30));
        let sub = sim.app::<TaskSubmitterApp>(device, submit).unwrap();
        assert!(sub.all_done(), "{:?}", sub.records);
        assert_eq!(sub.records.len(), 3);
        let used: std::collections::BTreeSet<u32> =
            sub.records.iter().filter_map(|r| r.server).collect();
        assert_eq!(used.len(), 3, "three distinct servers used: {used:?}");
    }
}
