//! iperf-style constant-bit-rate UDP traffic generation — the paper's
//! background congestion source (§IV) and the load source for Fig. 3.
//!
//! Packets are emitted with exponentially distributed inter-arrival times
//! whose mean matches the configured rate (a Poisson packet process). This
//! reproduces the queueing behaviour the paper measured on its testbed:
//! below ~50 % utilization the bottleneck queue stays nearly empty, and it
//! grows sharply as utilization approaches 100 % (M/D/1 dynamics). A
//! `burst_pkts > 1` setting emits back-to-back packet trains instead, for
//! experiments that need heavier short-term burstiness.

use int_netsim::{App, AppCtx, SimDuration, SimTime};
use rand::Rng;
use std::any::Any;
use std::net::Ipv4Addr;

/// The iperf UDP port (matches the real tool's default).
pub const IPERF_UDP_PORT: u16 = 5001;

const TIMER_START: u64 = 1;
const TIMER_SEND: u64 = 2;

/// Configuration of one CBR flow.
#[derive(Debug, Clone, Copy)]
pub struct IperfConfig {
    /// Destination host.
    pub dst: Ipv4Addr,
    /// Destination port.
    pub dst_port: u16,
    /// Offered rate, bit/s.
    pub rate_bps: u64,
    /// Absolute start time.
    pub start: SimTime,
    /// How long to transmit.
    pub duration: SimDuration,
    /// UDP payload bytes per packet (1472 ≈ a full 1.5 KB frame).
    pub payload_len: usize,
    /// Packets per emission (1 = pure Poisson process).
    pub burst_pkts: u32,
}

impl IperfConfig {
    /// A flow with the paper's packet size and Poisson emission.
    pub fn new(dst: Ipv4Addr, rate_bps: u64, start: SimTime, duration: SimDuration) -> Self {
        IperfConfig {
            dst,
            dst_port: IPERF_UDP_PORT,
            rate_bps,
            start,
            duration,
            payload_len: 1472,
            burst_pkts: 1,
        }
    }
}

/// One CBR sender flow.
pub struct IperfSenderApp {
    cfg: IperfConfig,
    end: SimTime,
    /// Packets sent.
    pub packets_sent: u64,
    /// Bytes of payload sent.
    pub bytes_sent: u64,
}

impl IperfSenderApp {
    /// Build the sender.
    pub fn new(cfg: IperfConfig) -> Self {
        assert!(cfg.rate_bps > 0, "zero-rate iperf flow");
        assert!(cfg.payload_len > 0 && cfg.burst_pkts > 0);
        IperfSenderApp { cfg, end: cfg.start + cfg.duration, packets_sent: 0, bytes_sent: 0 }
    }

    /// Mean gap between emissions (bursts) at the configured rate.
    fn mean_gap(&self) -> f64 {
        let bits_per_emission = (self.cfg.payload_len as u64 * 8 * self.cfg.burst_pkts as u64) as f64;
        bits_per_emission / self.cfg.rate_bps as f64 * 1e9
    }

    fn schedule_next(&self, ctx: &mut AppCtx<'_>) {
        // Exponential inter-arrival: -ln(U) · mean.
        let u: f64 = ctx.rng.gen_range(1e-12..1.0);
        let gap_ns = (-u.ln() * self.mean_gap()).round().max(1.0) as u64;
        ctx.set_timer(SimDuration::from_nanos(gap_ns), TIMER_SEND);
    }

    fn emit(&mut self, ctx: &mut AppCtx<'_>) {
        for _ in 0..self.cfg.burst_pkts {
            ctx.send_udp(IPERF_UDP_PORT, self.cfg.dst, self.cfg.dst_port, vec![0u8; self.cfg.payload_len]);
            self.packets_sent += 1;
            self.bytes_sent += self.cfg.payload_len as u64;
        }
    }
}

impl App for IperfSenderApp {
    fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
        let delay = self.cfg.start.since(ctx.now);
        ctx.set_timer(delay, TIMER_START);
    }

    fn on_timer(&mut self, ctx: &mut AppCtx<'_>, timer_id: u64) {
        match timer_id {
            TIMER_START => {
                self.emit(ctx);
                self.schedule_next(ctx);
            }
            TIMER_SEND if ctx.now < self.end => {
                self.emit(ctx);
                self.schedule_next(ctx);
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::UdpSinkApp;
    use int_netsim::{LinkParams, SimConfig, Simulator, Topology};

    fn line() -> (Topology, int_netsim::NodeId, int_netsim::NodeId) {
        let mut t = Topology::new();
        let h1 = t.add_host("h1");
        let s1 = t.add_switch("s1");
        let h2 = t.add_host("h2");
        // Fast links, 20 Mbit/s switch ceiling (the paper's regime).
        let fast = LinkParams {
            bandwidth_bps: 1_000_000_000,
            delay: SimDuration::from_millis(10),
            queue_cap_pkts: 256,
        };
        t.add_link(h1, s1, fast);
        t.add_link(s1, h2, fast);
        (t, h1, h2)
    }

    #[test]
    fn rate_is_respected_within_tolerance() {
        let (t, h1, h2) = line();
        let mut sim = Simulator::new(t, SimConfig::default());
        let rate = 10_000_000; // 50% of the 20 Mbit/s ceiling
        sim.install_app(
            h1,
            Box::new(IperfSenderApp::new(IperfConfig::new(
                Topology::host_ip(h2),
                rate,
                SimTime::ZERO,
                SimDuration::from_secs(30),
            ))),
        );
        let sink = sim.install_app(h2, Box::new(UdpSinkApp::new(IPERF_UDP_PORT)));
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(31));

        let got = sim.app::<UdpSinkApp>(h2, sink).unwrap();
        let achieved_bps = got.bytes * 8 / 30;
        let err = (achieved_bps as f64 - rate as f64).abs() / rate as f64;
        assert!(err < 0.05, "offered {rate}, achieved {achieved_bps}");
    }

    #[test]
    fn queue_grows_with_utilization() {
        let max_q = |rate: u64| {
            let (t, h1, h2) = line();
            let s1 = t.node_by_name("s1").unwrap();
            let mut sim = Simulator::new(t, SimConfig::default());
            sim.install_app(
                h1,
                Box::new(IperfSenderApp::new(IperfConfig::new(
                    Topology::host_ip(h2),
                    rate,
                    SimTime::ZERO,
                    SimDuration::from_secs(60),
                ))),
            );
            sim.install_app(h2, Box::new(UdpSinkApp::new(IPERF_UDP_PORT)));
            sim.run_until(SimTime::ZERO + SimDuration::from_secs(60));
            // Ground-truth max depth of s1's egress queue toward h2 (port 1).
            sim.queue_stats(s1, 1).max_depth_pkts
        };

        let q30 = max_q(6_000_000); // 30%
        let q95 = max_q(19_000_000); // 95%
        assert!(q30 <= 6, "low utilization keeps the queue short: {q30}");
        assert!(q95 >= 15, "near saturation the queue builds: {q95}");
        assert!(q95 > q30);
    }

    #[test]
    fn flow_stops_at_duration_end() {
        let (t, h1, h2) = line();
        let mut sim = Simulator::new(t, SimConfig::default());
        let idx = sim.install_app(
            h1,
            Box::new(IperfSenderApp::new(IperfConfig::new(
                Topology::host_ip(h2),
                10_000_000,
                SimTime::ZERO + SimDuration::from_secs(5),
                SimDuration::from_secs(5),
            ))),
        );
        sim.install_app(h2, Box::new(UdpSinkApp::new(IPERF_UDP_PORT)));

        sim.run_until(SimTime::ZERO + SimDuration::from_secs(4));
        assert_eq!(sim.app::<IperfSenderApp>(h1, idx).unwrap().packets_sent, 0, "not started yet");

        sim.run_until(SimTime::ZERO + SimDuration::from_secs(10));
        let at_end = sim.app::<IperfSenderApp>(h1, idx).unwrap().packets_sent;
        assert!(at_end > 0);

        sim.run_until(SimTime::ZERO + SimDuration::from_secs(20));
        let later = sim.app::<IperfSenderApp>(h1, idx).unwrap().packets_sent;
        assert_eq!(later, at_end, "no packets after the flow ended");
    }
}

#[cfg(test)]
mod burst_tests {
    use super::*;
    use crate::sink::UdpSinkApp;
    use int_netsim::{LinkParams, SimConfig, Simulator, Topology};

    #[test]
    fn burst_mode_builds_deeper_queues_than_poisson() {
        let max_q = |burst_pkts: u32| {
            let mut t = Topology::new();
            let h1 = t.add_host("h1");
            let s1 = t.add_switch("s1");
            let h2 = t.add_host("h2");
            let fast = LinkParams {
                bandwidth_bps: 1_000_000_000,
                delay: SimDuration::from_millis(10),
                queue_cap_pkts: 512,
            };
            t.add_link(h1, s1, fast);
            t.add_link(s1, h2, fast);
            let s1_id = s1;
            let mut sim = Simulator::new(t, SimConfig::default());
            let mut cfg = IperfConfig::new(
                Topology::host_ip(h2),
                10_000_000,
                SimTime::ZERO,
                SimDuration::from_secs(20),
            );
            cfg.burst_pkts = burst_pkts;
            sim.install_app(h1, Box::new(IperfSenderApp::new(cfg)));
            sim.install_app(h2, Box::new(UdpSinkApp::new(IPERF_UDP_PORT)));
            sim.run_until(SimTime::ZERO + SimDuration::from_secs(20));
            sim.queue_stats(s1_id, 1).max_depth_pkts
        };
        let poisson = max_q(1);
        let bursty = max_q(32);
        assert!(
            bursty >= poisson + 10,
            "32-packet trains queue deeper: poisson {poisson}, bursty {bursty}"
        );
    }

    #[test]
    #[should_panic(expected = "zero-rate")]
    fn zero_rate_rejected() {
        let mut cfg = IperfConfig::new(
            std::net::Ipv4Addr::new(10, 0, 0, 1),
            1,
            SimTime::ZERO,
            SimDuration::from_secs(1),
        );
        cfg.rate_bps = 0;
        IperfSenderApp::new(cfg);
    }
}
