//! The periodic INT probe sender (paper §III-A).
//!
//! Each edge server sends one probe per interval (100 ms by default) to the
//! scheduler. Switches en route harvest their registers into the probe.
//! Probing overhead matches the paper's arithmetic: at 10 probes/s a probe
//! stream stays a negligible fraction of a 20 Mbit/s network.

use int_netsim::{App, AppCtx, SimDuration};
use int_packet::wire::WireEncode;
use int_packet::{ProbePayload, PROBE_UDP_PORT};
use std::any::Any;
use std::net::Ipv4Addr;

const TIMER_SEND: u64 = 1;

/// Periodically sends INT probes toward one or more collection points.
///
/// With a single target this is exactly the paper's design (server →
/// scheduler every 100 ms). With several targets (all-pairs mode) one
/// probe per target is emitted each interval, so every directed path out
/// of this node is refreshed at the probing frequency.
pub struct ProbeSenderApp {
    targets: Vec<Ipv4Addr>,
    interval: SimDuration,
    /// Probes per target per interval, each from a distinct UDP source
    /// port (`41000 + j`). Under flow-hash ECMP each source port hashes to
    /// a different equal-cost path, so one interval refreshes telemetry on
    /// up to `fan` distinct paths per target — the Paris-traceroute idiom.
    /// Default 1 = the paper's single-path probing.
    fan: u16,
    next_seq: u64,
    sent: u64,
}

impl ProbeSenderApp {
    /// The paper's default probing interval.
    pub const DEFAULT_INTERVAL: SimDuration = SimDuration::from_millis(100);

    /// Base UDP source port for probe emission; fanned probes use
    /// consecutive ports above it.
    pub const BASE_SRC_PORT: u16 = 41000;

    /// Probe `scheduler` every `interval` (the paper's scheme).
    pub fn new(scheduler: Ipv4Addr, interval: SimDuration) -> Self {
        Self::new_multi(vec![scheduler], interval)
    }

    /// Probe every target each `interval` (all-pairs mode).
    pub fn new_multi(targets: Vec<Ipv4Addr>, interval: SimDuration) -> Self {
        Self::new_fanned(targets, interval, 1)
    }

    /// Probe every target `fan` times each interval, varying the UDP
    /// source port per copy so flow-hash ECMP spreads the copies across
    /// equal-cost paths.
    pub fn new_fanned(targets: Vec<Ipv4Addr>, interval: SimDuration, fan: u16) -> Self {
        assert!(interval.as_nanos() > 0, "zero probing interval");
        assert!(!targets.is_empty(), "probe sender needs at least one target");
        assert!(fan >= 1, "probe fan must be at least 1");
        ProbeSenderApp { targets, interval, fan, next_seq: 0, sent: 0 }
    }

    /// Probes sent so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    fn send_probe(&mut self, ctx: &mut AppCtx<'_>) {
        for i in 0..self.targets.len() {
            for j in 0..self.fan {
                let probe = ProbePayload::new(ctx.node.0, self.next_seq, ctx.now.as_nanos());
                self.next_seq += 1;
                self.sent += 1;
                ctx.send_udp(
                    Self::BASE_SRC_PORT + j,
                    self.targets[i],
                    PROBE_UDP_PORT,
                    probe.to_bytes(),
                );
            }
        }
        ctx.set_timer(self.interval, TIMER_SEND);
    }
}

impl App for ProbeSenderApp {
    fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
        // Random phase within one interval: without it every node in the
        // network fires probes at the same instant and the synchronized
        // bursts queue up on the collector's access link, reading as
        // permanent (phantom) congestion.
        use rand::Rng;
        let phase = ctx.rng.gen_range(0..self.interval.as_nanos());
        ctx.set_timer(SimDuration::from_nanos(phase), TIMER_SEND);
    }

    fn on_timer(&mut self, ctx: &mut AppCtx<'_>, timer_id: u64) {
        if timer_id == TIMER_SEND {
            self.send_probe(ctx);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Collects raw probes at an endpoint and keeps every decoded payload —
/// used by experiments that analyse the per-probe telemetry stream itself
/// (e.g. Fig. 3's average of per-interval max queue lengths) rather than
/// the scheduler's folded map.
#[derive(Default)]
pub struct ProbeCollectorApp {
    /// (receive time, payload) for every probe that arrived.
    pub probes: Vec<(SimTime, ProbePayload)>,
}

impl ProbeCollectorApp {
    /// New collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// The max-queue-length values reported by switch `switch_id`, in
    /// arrival order.
    pub fn max_qlens_of(&self, switch_id: u32) -> Vec<u32> {
        self.probes
            .iter()
            .flat_map(|(_, p)| p.int.records.iter())
            .filter(|r| r.switch_id == switch_id)
            .map(|r| r.max_qlen_pkts)
            .collect()
    }
}

impl App for ProbeCollectorApp {
    fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
        ctx.bind_udp(PROBE_UDP_PORT);
    }

    fn on_udp(
        &mut self,
        ctx: &mut AppCtx<'_>,
        _from: Ipv4Addr,
        _from_port: u16,
        _to_port: u16,
        payload: &[u8],
    ) {
        use int_packet::wire::WireDecode;
        if let Ok(p) = ProbePayload::decode(&mut &payload[..]) {
            self.probes.push((ctx.now, p));
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

use int_netsim::SimTime;

/// Terminates probes on a non-scheduler node and relays them — wrapped
/// with this node's identity and receive timestamp — to the central
/// collector (all-pairs probing mode).
pub struct ProbeRelayApp {
    scheduler: Ipv4Addr,
    /// Probes relayed so far.
    pub relayed: u64,
}

impl ProbeRelayApp {
    /// Relay received probes to `scheduler`.
    pub fn new(scheduler: Ipv4Addr) -> Self {
        ProbeRelayApp { scheduler, relayed: 0 }
    }
}

impl App for ProbeRelayApp {
    fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
        ctx.bind_udp(PROBE_UDP_PORT);
    }

    fn on_udp(
        &mut self,
        ctx: &mut AppCtx<'_>,
        _from: Ipv4Addr,
        _from_port: u16,
        _to_port: u16,
        payload: &[u8],
    ) {
        use int_packet::wire::WireDecode;
        use int_packet::{RelayedProbe, PROBE_RELAY_UDP_PORT};
        let Ok(probe) = ProbePayload::decode(&mut &payload[..]) else { return };
        let relayed = RelayedProbe {
            terminal_node: ctx.node.0,
            rx_ts_ns: ctx.now.as_nanos(),
            probe,
        };
        self.relayed += 1;
        ctx.send_udp(41001, self.scheduler, PROBE_RELAY_UDP_PORT, relayed.to_bytes());
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use int_netsim::{LinkParams, SimConfig, SimTime, Simulator, Topology};

    #[test]
    fn probes_sent_at_interval() {
        let mut t = Topology::new();
        let h1 = t.add_host("h1");
        let s1 = t.add_switch("s1");
        let h2 = t.add_host("h2");
        t.add_link(h1, s1, LinkParams::paper_default());
        t.add_link(s1, h2, LinkParams::paper_default());

        let mut sim = Simulator::new(t, SimConfig::default());
        let idx = sim.install_app(
            h1,
            Box::new(ProbeSenderApp::new(Topology::host_ip(h2), SimDuration::from_millis(100))),
        );
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(1));
        let app = sim.app::<ProbeSenderApp>(h1, idx).unwrap();
        // One random phase delay, then every 100 ms: 10 or 11 sends.
        assert!((10..=11).contains(&app.sent()), "{}", app.sent());
    }

    #[test]
    #[should_panic(expected = "zero probing interval")]
    fn zero_interval_rejected() {
        ProbeSenderApp::new(Ipv4Addr::new(10, 0, 0, 1), SimDuration::ZERO);
    }

    /// Records the UDP source port of every probe that arrives.
    struct PortRecorder {
        ports: Vec<u16>,
    }

    impl App for PortRecorder {
        fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
            ctx.bind_udp(PROBE_UDP_PORT);
        }
        fn on_udp(
            &mut self,
            _ctx: &mut AppCtx<'_>,
            _from: Ipv4Addr,
            from_port: u16,
            _to_port: u16,
            _payload: &[u8],
        ) {
            self.ports.push(from_port);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// A fanned sender emits `fan` copies per target per interval, each
    /// from a consecutive source port above BASE_SRC_PORT — the knob
    /// flow-hash ECMP uses to spread copies over equal-cost paths.
    #[test]
    fn fanned_probes_use_distinct_source_ports() {
        let mut t = Topology::new();
        let h1 = t.add_host("h1");
        let s1 = t.add_switch("s1");
        let h2 = t.add_host("h2");
        t.add_link(h1, s1, LinkParams::paper_default());
        t.add_link(s1, h2, LinkParams::paper_default());

        let mut sim = Simulator::new(t, SimConfig::default());
        let idx = sim.install_app(
            h1,
            Box::new(ProbeSenderApp::new_fanned(
                vec![Topology::host_ip(h2)],
                SimDuration::from_millis(100),
                3,
            )),
        );
        let rec = sim.install_app(h2, Box::new(PortRecorder { ports: Vec::new() }));
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(1));

        let sent = sim.app::<ProbeSenderApp>(h1, idx).unwrap().sent();
        assert!((30..=33).contains(&sent), "~10 rounds × fan 3: {sent}");
        let ports = &sim.app::<PortRecorder>(h2, rec).unwrap().ports;
        assert!(ports.len() >= 27, "{}", ports.len());
        let base = ProbeSenderApp::BASE_SRC_PORT;
        for j in 0..3u16 {
            assert!(ports.contains(&(base + j)), "missing fan port {}", base + j);
        }
        assert!(ports.iter().all(|p| (base..base + 3).contains(p)));
    }

    #[test]
    #[should_panic(expected = "probe fan must be at least 1")]
    fn zero_fan_rejected() {
        ProbeSenderApp::new_fanned(vec![Ipv4Addr::new(10, 0, 0, 1)], SimDuration::from_millis(100), 0);
    }
}

#[cfg(test)]
mod relay_tests {
    use super::*;
    use crate::scheduler::SchedulerApp;
    use int_core::rank::StaticDistances;
    use int_core::{CoreConfig, Policy};
    use int_netsim::{LinkParams, SimConfig, Simulator, Topology};

    /// All-pairs style: a probe from h1 terminates at h2, which relays it
    /// to the scheduler on h3; the scheduler's map must learn h1's path to
    /// h2 (not to itself).
    #[test]
    fn relayed_probes_teach_the_scheduler_foreign_paths() {
        let mut t = Topology::new();
        let h1 = t.add_host("h1");
        let s1 = t.add_switch("s1");
        let h2 = t.add_host("h2");
        let sched = t.add_host("sched");
        t.add_link(h1, s1, LinkParams::paper_default());
        t.add_link(h2, s1, LinkParams::paper_default());
        t.add_link(sched, s1, LinkParams::paper_default());

        let mut sim = Simulator::new(t, SimConfig::default());
        let sched_ip = Topology::host_ip(sched);
        sim.install_app(
            h1,
            Box::new(ProbeSenderApp::new(Topology::host_ip(h2), SimDuration::from_millis(100))),
        );
        let relay = sim.install_app(h2, Box::new(ProbeRelayApp::new(sched_ip)));
        let sapp = sim.install_app(
            sched,
            Box::new(SchedulerApp::new(
                sched.0,
                Policy::IntDelay,
                CoreConfig::default(),
                StaticDistances::new(),
                1,
            )),
        );
        // Run 1.2 s: the sender's random phase can push the 10th probe's
        // arrival past the 1 s mark, so leave headroom beyond 10 intervals.
        sim.run_until(int_netsim::SimTime::ZERO + SimDuration::from_millis(1200));

        assert!(sim.app::<ProbeRelayApp>(h2, relay).unwrap().relayed >= 10);
        let app = sim.app::<SchedulerApp>(sched, sapp).unwrap();
        assert!(app.probes_received() >= 10);
        let map = app.core().collector().map();
        // Edge h1 → s1 and s1 → h2 learned from the relayed path.
        use int_core::NetNode;
        assert!(map.edge(NetNode::Host(h1.0), NetNode::Switch(s1.0)).is_some());
        assert!(map.edge(NetNode::Switch(s1.0), NetNode::Host(h2.0)).is_some());
    }

    #[test]
    fn multi_target_sender_probes_every_target_each_interval() {
        let mut t = Topology::new();
        let h1 = t.add_host("h1");
        let s1 = t.add_switch("s1");
        let h2 = t.add_host("h2");
        let h3 = t.add_host("h3");
        t.add_link(h1, s1, LinkParams::paper_default());
        t.add_link(h2, s1, LinkParams::paper_default());
        t.add_link(h3, s1, LinkParams::paper_default());

        let mut sim = Simulator::new(t, SimConfig::default());
        let idx = sim.install_app(
            h1,
            Box::new(ProbeSenderApp::new_multi(
                vec![Topology::host_ip(h2), Topology::host_ip(h3)],
                SimDuration::from_millis(100),
            )),
        );
        let c2 = sim.install_app(h2, Box::new(ProbeCollectorApp::new()));
        let c3 = sim.install_app(h3, Box::new(ProbeCollectorApp::new()));
        sim.run_until(int_netsim::SimTime::ZERO + SimDuration::from_secs(1));

        let sent = sim.app::<ProbeSenderApp>(h1, idx).unwrap().sent();
        assert!((20..=22).contains(&sent), "~10 rounds × 2 targets: {sent}");
        // Both targets receive the same stream (minus any in flight).
        let got2 = sim.app::<ProbeCollectorApp>(h2, c2).unwrap().probes.len();
        let got3 = sim.app::<ProbeCollectorApp>(h3, c3).unwrap().probes.len();
        assert!(got2 >= 9 && got3 >= 9, "{got2} {got3}");
    }
}
