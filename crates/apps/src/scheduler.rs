//! The scheduler service (paper Fig. 1, node 6 in the evaluation).
//!
//! Binds the probe port (collecting INT) and the scheduler port (answering
//! `SchedRequest` queries with ranked candidate lists). The ranking policy
//! is fixed per experiment: the INT policies consult the learned map, the
//! baselines ignore it.

use int_core::rank::StaticDistances;
use int_core::{CoreConfig, ExcludeReason, Policy, SchedulerCore};
use int_netsim::{App, AppCtx};
use int_packet::msgs::ControlMsg;
use int_packet::wire::{WireDecode, WireEncode};
use int_packet::{RelayedProbe, PROBE_RELAY_UDP_PORT, PROBE_UDP_PORT, SCHEDULER_UDP_PORT};
use std::any::Any;
use std::net::Ipv4Addr;

/// The scheduler application.
pub struct SchedulerApp {
    core: SchedulerCore,
    policy: Policy,
    queries_served: u64,
    probes_received: u64,
    exclusions: u64,
    last_excluded: Vec<(u32, ExcludeReason)>,
}

impl SchedulerApp {
    /// Scheduler on `host_id` applying `policy` to every query.
    pub fn new(
        host_id: u32,
        policy: Policy,
        cfg: CoreConfig,
        distances: StaticDistances,
        seed: u64,
    ) -> Self {
        SchedulerApp {
            core: SchedulerCore::new(host_id, cfg, distances, seed),
            policy,
            queries_served: 0,
            probes_received: 0,
            exclusions: 0,
            last_excluded: Vec::new(),
        }
    }

    /// The scheduler core (learned map, collector stats).
    pub fn core(&self) -> &SchedulerCore {
        &self.core
    }

    /// Mutable access to the core (custom ranking calls, tuning).
    pub fn core_mut(&mut self) -> &mut SchedulerCore {
        &mut self.core
    }

    /// The scheduler's decision audit trail (disabled unless
    /// [`SchedulerApp::set_audit_enabled`] turned it on).
    pub fn audit(&self) -> &int_obs::DecisionAudit {
        self.core.audit()
    }

    /// Enable or disable per-query decision auditing.
    pub fn set_audit_enabled(&mut self, on: bool) {
        self.core.set_audit_enabled(on);
    }

    /// Pre-register candidate hosts (needed when INT probing is disabled,
    /// i.e. for the Nearest/Random baselines).
    pub fn register_hosts(&mut self, hosts: &[u32]) {
        for &h in hosts {
            self.core.register_host(h);
        }
    }

    /// Queries answered.
    pub fn queries_served(&self) -> u64 {
        self.queries_served
    }

    /// Probes ingested.
    pub fn probes_received(&self) -> u64 {
        self.probes_received
    }

    /// Total candidate exclusions across all queries served (a candidate
    /// excluded in each of N queries counts N times).
    pub fn exclusions(&self) -> u64 {
        self.exclusions
    }

    /// Candidates excluded from the most recent query, with reasons —
    /// hosts the scheduler currently presumes unreachable (origin silence)
    /// or whose telemetry was evicted (no fresh path).
    pub fn last_excluded(&self) -> &[(u32, ExcludeReason)] {
        &self.last_excluded
    }
}

impl App for SchedulerApp {
    fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
        ctx.bind_udp(PROBE_UDP_PORT);
        ctx.bind_udp(PROBE_RELAY_UDP_PORT);
        ctx.bind_udp(SCHEDULER_UDP_PORT);
    }

    fn on_udp(
        &mut self,
        ctx: &mut AppCtx<'_>,
        from: Ipv4Addr,
        from_port: u16,
        to_port: u16,
        payload: &[u8],
    ) {
        match to_port {
            PROBE_UDP_PORT => {
                self.probes_received += 1;
                self.core.on_probe(payload, ctx.now.as_nanos());
            }
            PROBE_RELAY_UDP_PORT => {
                if let Ok(r) = RelayedProbe::decode(&mut &payload[..]) {
                    self.probes_received += 1;
                    self.core
                        .collector_mut()
                        .ingest_relayed(&r.probe, r.terminal_node, r.rx_ts_ns);
                }
            }
            SCHEDULER_UDP_PORT => {
                let Ok(msg) = ControlMsg::decode(&mut &payload[..]) else { return };
                let ControlMsg::SchedRequest { requester, job_id, .. } = msg else { return };
                self.queries_served += 1;

                let outcome =
                    self.core.rank_detailed_with(requester, self.policy, ctx.now.as_nanos());
                self.exclusions += outcome.excluded.len() as u64;
                self.last_excluded = outcome.excluded;
                let candidates = outcome
                    .ranked
                    .into_iter()
                    .map(|r| int_packet::msgs::Candidate {
                        node: r.host,
                        est_delay_ns: r.est_delay_ns,
                        est_bandwidth_bps: r.est_bandwidth_bps,
                    })
                    .collect();
                let resp = ControlMsg::SchedResponse { job_id, candidates };
                ctx.send_udp(SCHEDULER_UDP_PORT, from, from_port, resp.to_bytes());
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
