//! The scheduler service (paper Fig. 1, node 6 in the evaluation).
//!
//! Binds the probe port (collecting INT) and the scheduler port (answering
//! `SchedRequest` queries with ranked candidate lists). The ranking policy
//! is fixed per experiment: the INT policies consult the learned map, the
//! baselines ignore it.

use int_core::rank::StaticDistances;
use int_core::{
    Capabilities, CompositePolicy, ComputeTracker, CoreConfig, ExcludeReason, Policy,
    SchedulerCore,
};
use int_netsim::{App, AppCtx};
use int_packet::msgs::ControlMsg;
use int_packet::wire::{WireDecode, WireEncode};
use int_packet::{RelayedProbe, PROBE_RELAY_UDP_PORT, PROBE_UDP_PORT, SCHEDULER_UDP_PORT};
use std::any::Any;
use std::net::Ipv4Addr;

/// Compute-aware re-ranking state: a composite policy plus the load
/// tracker it consults (fed by executor `LoadReport`s).
struct ComputeMode {
    policy: CompositePolicy,
    tracker: ComputeTracker,
    /// Execution-time estimate used to convert backlog into queue wait, ns.
    exec_est_ns: u64,
}

/// The scheduler application.
pub struct SchedulerApp {
    core: SchedulerCore,
    policy: Policy,
    compute: Option<ComputeMode>,
    queries_served: u64,
    probes_received: u64,
    load_reports: u64,
    exclusions: u64,
    last_excluded: Vec<(u32, ExcludeReason)>,
}

impl SchedulerApp {
    /// Scheduler on `host_id` applying `policy` to every query.
    pub fn new(
        host_id: u32,
        policy: Policy,
        cfg: CoreConfig,
        distances: StaticDistances,
        seed: u64,
    ) -> Self {
        SchedulerApp {
            core: SchedulerCore::new(host_id, cfg, distances, seed),
            policy,
            compute: None,
            queries_served: 0,
            probes_received: 0,
            load_reports: 0,
            exclusions: 0,
            last_excluded: Vec::new(),
        }
    }

    /// Enable compute-aware re-ranking: candidate lists produced by the
    /// base [`Policy`] are post-processed by `policy` using tracked
    /// executor load (see [`ComputeTracker`]). `exec_est_ns` is the
    /// execution-time estimate used to convert backlog into queue wait.
    pub fn set_compute(&mut self, policy: CompositePolicy, exec_est_ns: u64) {
        self.compute =
            Some(ComputeMode { policy, tracker: ComputeTracker::new(), exec_est_ns });
    }

    /// Register an executor's slot count with the compute tracker (no-op
    /// unless [`SchedulerApp::set_compute`] was called).
    pub fn register_executor(&mut self, host: u32, slots: u32) {
        if let Some(c) = &mut self.compute {
            c.tracker.register(host, Capabilities::new(), slots);
        }
    }

    /// The compute tracker, when compute-aware re-ranking is enabled.
    pub fn compute_tracker(&self) -> Option<&ComputeTracker> {
        self.compute.as_ref().map(|c| &c.tracker)
    }

    /// `LoadReport`s ingested.
    pub fn load_reports(&self) -> u64 {
        self.load_reports
    }

    /// The scheduler core (learned map, collector stats).
    pub fn core(&self) -> &SchedulerCore {
        &self.core
    }

    /// Mutable access to the core (custom ranking calls, tuning).
    pub fn core_mut(&mut self) -> &mut SchedulerCore {
        &mut self.core
    }

    /// The scheduler's decision audit trail (disabled unless
    /// [`SchedulerApp::set_audit_enabled`] turned it on).
    pub fn audit(&self) -> &int_obs::DecisionAudit {
        self.core.audit()
    }

    /// Enable or disable per-query decision auditing.
    pub fn set_audit_enabled(&mut self, on: bool) {
        self.core.set_audit_enabled(on);
    }

    /// Pre-register candidate hosts (needed when INT probing is disabled,
    /// i.e. for the Nearest/Random baselines).
    pub fn register_hosts(&mut self, hosts: &[u32]) {
        for &h in hosts {
            self.core.register_host(h);
        }
    }

    /// Queries answered.
    pub fn queries_served(&self) -> u64 {
        self.queries_served
    }

    /// Probes ingested.
    pub fn probes_received(&self) -> u64 {
        self.probes_received
    }

    /// Total candidate exclusions across all queries served (a candidate
    /// excluded in each of N queries counts N times).
    pub fn exclusions(&self) -> u64 {
        self.exclusions
    }

    /// Candidates excluded from the most recent query, with reasons —
    /// hosts the scheduler currently presumes unreachable (origin silence)
    /// or whose telemetry was evicted (no fresh path).
    pub fn last_excluded(&self) -> &[(u32, ExcludeReason)] {
        &self.last_excluded
    }
}

impl App for SchedulerApp {
    fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
        ctx.bind_udp(PROBE_UDP_PORT);
        ctx.bind_udp(PROBE_RELAY_UDP_PORT);
        ctx.bind_udp(SCHEDULER_UDP_PORT);
    }

    fn on_udp(
        &mut self,
        ctx: &mut AppCtx<'_>,
        from: Ipv4Addr,
        from_port: u16,
        to_port: u16,
        payload: &[u8],
    ) {
        match to_port {
            PROBE_UDP_PORT => {
                self.probes_received += 1;
                self.core.on_probe(payload, ctx.now.as_nanos());
            }
            PROBE_RELAY_UDP_PORT => {
                if let Ok(r) = RelayedProbe::decode(&mut &payload[..]) {
                    self.probes_received += 1;
                    self.core
                        .collector_mut()
                        .ingest_relayed(&r.probe, r.terminal_node, r.rx_ts_ns);
                }
            }
            SCHEDULER_UDP_PORT => {
                let Ok(msg) = ControlMsg::decode(&mut &payload[..]) else { return };
                if let ControlMsg::LoadReport { host, outstanding } = msg {
                    self.load_reports += 1;
                    if let Some(c) = &mut self.compute {
                        c.tracker.set_load(host, outstanding);
                    }
                    return;
                }
                let ControlMsg::SchedRequest { requester, job_id, task_count, .. } = msg else {
                    return;
                };
                self.queries_served += 1;

                let mut outcome =
                    self.core.rank_detailed_with(requester, self.policy, ctx.now.as_nanos());
                self.exclusions += outcome.excluded.len() as u64;
                self.last_excluded = outcome.excluded;
                if let Some(c) = &mut self.compute {
                    c.policy.apply(&c.tracker, &mut outcome.ranked, c.exec_est_ns);
                    // Optimistically count the placements this response will
                    // trigger (submitters assign task i to candidate
                    // i % len): the executor's next ground-truth LoadReport
                    // overwrites these, but without them every query issued
                    // during a multi-second transfer window would herd onto
                    // the same momentarily-idle server.
                    if !outcome.ranked.is_empty() {
                        for i in 0..task_count as usize {
                            let host = outcome.ranked[i % outcome.ranked.len()].host;
                            c.tracker.on_dispatch(host);
                        }
                    }
                }
                let candidates = outcome
                    .ranked
                    .into_iter()
                    .map(|r| int_packet::msgs::Candidate {
                        node: r.host,
                        est_delay_ns: r.est_delay_ns,
                        est_bandwidth_bps: r.est_bandwidth_bps,
                    })
                    .collect();
                let resp = ControlMsg::SchedResponse { job_id, candidates };
                ctx.send_udp(SCHEDULER_UDP_PORT, from, from_port, resp.to_bytes());
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
