//! A counting UDP sink (the iperf server side).

use int_netsim::{App, AppCtx};
use std::any::Any;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Binds a UDP port and counts what arrives, per source.
pub struct UdpSinkApp {
    port: u16,
    /// Total bytes of UDP payload received.
    pub bytes: u64,
    /// Total datagrams received.
    pub packets: u64,
    /// Per-source byte counts.
    pub by_source: BTreeMap<Ipv4Addr, u64>,
}

impl UdpSinkApp {
    /// Sink on `port`.
    pub fn new(port: u16) -> Self {
        UdpSinkApp { port, bytes: 0, packets: 0, by_source: BTreeMap::new() }
    }
}

impl App for UdpSinkApp {
    fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
        ctx.bind_udp(self.port);
    }

    fn on_udp(
        &mut self,
        _ctx: &mut AppCtx<'_>,
        from: Ipv4Addr,
        _from_port: u16,
        _to_port: u16,
        payload: &[u8],
    ) {
        self.bytes += payload.len() as u64;
        self.packets += 1;
        *self.by_source.entry(from).or_insert(0) += payload.len() as u64;
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use int_netsim::{LinkParams, SimConfig, SimDuration, SimTime, Simulator, Topology};

    /// Two senders into one sink: counters split per source.
    #[test]
    fn sink_accounts_per_source() {
        let mut t = Topology::new();
        let h1 = t.add_host("h1");
        let h2 = t.add_host("h2");
        let s = t.add_switch("s");
        let h3 = t.add_host("h3");
        t.add_link(h1, s, LinkParams::paper_default());
        t.add_link(h2, s, LinkParams::paper_default());
        t.add_link(h3, s, LinkParams::paper_default());

        struct OneShot {
            dst: std::net::Ipv4Addr,
            len: usize,
        }
        impl int_netsim::App for OneShot {
            fn on_start(&mut self, ctx: &mut int_netsim::AppCtx<'_>) {
                ctx.send_udp(9000, self.dst, 9001, vec![0u8; self.len]);
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }

        let mut sim = Simulator::new(t, SimConfig::default());
        let dst = Topology::host_ip(h3);
        sim.install_app(h1, Box::new(OneShot { dst, len: 100 }));
        sim.install_app(h2, Box::new(OneShot { dst, len: 200 }));
        let sink = sim.install_app(h3, Box::new(UdpSinkApp::new(9001)));
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(1));

        let app = sim.app::<UdpSinkApp>(h3, sink).unwrap();
        assert_eq!(app.packets, 2);
        assert_eq!(app.bytes, 300);
        assert_eq!(app.by_source[&Topology::host_ip(h1)], 100);
        assert_eq!(app.by_source[&Topology::host_ip(h2)], 200);
    }
}
