//! The data-plane program interface a switch invokes per packet.

use crate::frame::Frame;
use crate::registers::RegisterFile;
use int_obs::TraceEvent;
use std::net::Ipv4Addr;

/// A switch-local port index.
pub type PortId = u16;

/// Result of ingress processing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngressVerdict {
    /// Enqueue on the given egress port.
    Forward(PortId),
    /// Discard the packet (no matching route / ACL deny / TTL expired).
    Drop,
}

/// Context for ingress processing (BMv2 `standard_metadata` at ingress).
#[derive(Debug, Clone, Copy)]
pub struct IngressCtx {
    /// Current time, ns since simulation epoch.
    pub now_ns: u64,
    /// Identity of the switch executing the program.
    pub switch_id: u32,
    /// Port the packet arrived on.
    pub ingress_port: PortId,
}

/// Context for the enqueue observation point (`enq_qdepth`).
#[derive(Debug, Clone, Copy)]
pub struct EnqueueCtx {
    /// Current time, ns.
    pub now_ns: u64,
    /// Egress port whose queue the packet joined.
    pub port: PortId,
    /// Queue depth in packets *ahead* of this packet at enqueue time
    /// (BMv2 `enq_qdepth`): zero on an idle port, so a lone probe never
    /// reads as congestion.
    pub qdepth_after_pkts: u32,
}

/// Context for egress processing (packet at head of queue, about to leave).
#[derive(Debug, Clone, Copy)]
pub struct EgressCtx {
    /// Current time, ns.
    pub now_ns: u64,
    /// Identity of the switch executing the program.
    pub switch_id: u32,
    /// Port the packet is leaving on.
    pub egress_port: PortId,
    /// Queue depth in packets at dequeue time (excluding this packet).
    pub qdepth_at_deq_pkts: u32,
}

/// A P4 program: the behaviour a switch executes on every packet.
///
/// Implementations must be deterministic — all state lives in their
/// match-action tables and [`RegisterFile`], and all notion of time comes
/// from the contexts.
pub trait DataPlaneProgram: Send {
    /// Parse + ingress control: decide the egress port and optionally
    /// rewrite the packet. Called once per packet on arrival.
    fn ingress(&mut self, frame: &mut Frame, ctx: &IngressCtx) -> IngressVerdict;

    /// Observation hook fired right after the packet joins an egress queue.
    /// Default: no-op.
    fn on_enqueue(&mut self, frame: &Frame, ctx: &EnqueueCtx) {
        let _ = (frame, ctx);
    }

    /// Egress control: last chance to rewrite the packet before it is
    /// serialized onto the wire. Default: no-op.
    fn egress(&mut self, frame: &mut Frame, ctx: &EgressCtx) {
        let _ = (frame, ctx);
    }

    /// Control-plane entry point: install a /32 route toward a host. The
    /// simulator's control plane calls this for every (switch, host) pair
    /// after computing shortest paths — the p4runtime table-write step.
    fn install_host_route(&mut self, host: Ipv4Addr, port: PortId);

    /// Control-plane read access to the program's registers.
    fn registers(&self) -> &RegisterFile;

    /// Control-plane write access to the program's registers.
    fn registers_mut(&mut self) -> &mut RegisterFile;

    /// Enable or disable trace-event buffering. Programs that emit no
    /// trace events ignore this (the default).
    fn set_tracing(&mut self, on: bool) {
        let _ = on;
    }

    /// Move any buffered trace events into `out` (oldest first). The
    /// simulator drains after each egress call, so buffers stay tiny.
    /// Default: no events.
    fn drain_trace(&mut self, out: &mut Vec<TraceEvent>) {
        let _ = out;
    }
}
