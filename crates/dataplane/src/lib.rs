//! # int-dataplane
//!
//! A software model of a P4-programmable data plane, equivalent in role to
//! the BMv2 behavioural-model switch the paper runs its experiments on.
//!
//! A [`DataPlaneProgram`] is the P4 program: it is invoked by the switch at
//! the same three points BMv2 exposes —
//!
//! 1. **ingress** ([`DataPlaneProgram::ingress`]): after parsing, before
//!    enqueueing. Forwarding decisions are made here via match-action
//!    tables; the INT program also extracts the upstream egress timestamp
//!    from probe packets here, *before* queuing, so measured link latency
//!    excludes queuing delay (paper §III-A).
//! 2. **enqueue observation** ([`DataPlaneProgram::on_enqueue`]): BMv2's
//!    `enq_qdepth` intrinsic metadata. The INT program folds the observed
//!    egress-queue depth into its max-queue-length register on *every*
//!    packet.
//! 3. **egress** ([`DataPlaneProgram::egress`]): when the packet reaches the
//!    head of the egress queue and is about to be serialized. The INT
//!    program appends its telemetry record to probe packets and stamps the
//!    egress timestamp here, then resets the harvested registers.
//!
//! Supporting infrastructure mirrors P4 constructs:
//! * [`table`] — match-action tables with exact, LPM, and ternary matching,
//! * [`registers`] — named stateful register arrays,
//! * [`frame`] — the packet buffer plus per-packet (user) metadata,
//! * [`programs`] — the concrete programs: plain L3 forwarding and the
//!   paper's INT telemetry program.

pub mod frame;
pub mod pipeline;
pub mod programs;
pub mod registers;
pub mod table;

pub use frame::{Frame, FrameMeta};
pub use pipeline::{DataPlaneProgram, EgressCtx, EnqueueCtx, IngressCtx, IngressVerdict, PortId};
pub use programs::int_telemetry::{IntProgramConfig, IntTelemetryProgram};
pub use programs::l3fwd::{flow_hash, flow_hash_tuple, EcmpSelect, L3ForwardProgram};
pub use registers::{RegisterArray, RegisterFile};
pub use table::{Key, MatchActionTable, MatchKind};
