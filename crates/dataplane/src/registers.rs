//! Stateful register arrays, the P4 `register<bit<64>>(N)` construct.
//!
//! The paper's INT collection scheme (§III-A) keeps one register per INT
//! parameter per port — most importantly the maximum egress-queue occupancy
//! observed since the last probe harvested (and reset) it.

use std::collections::BTreeMap;

/// A fixed-size array of 64-bit registers, as declared in a P4 program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterArray {
    cells: Vec<u64>,
}

impl RegisterArray {
    /// Allocate `size` zeroed registers.
    pub fn new(size: usize) -> Self {
        RegisterArray { cells: vec![0; size] }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if the array has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Read cell `idx` (0 for out-of-range, matching P4 target semantics of
    /// bounded reads returning a default rather than trapping).
    pub fn read(&self, idx: usize) -> u64 {
        self.cells.get(idx).copied().unwrap_or(0)
    }

    /// Write cell `idx`; out-of-range writes are dropped.
    pub fn write(&mut self, idx: usize, value: u64) {
        if let Some(c) = self.cells.get_mut(idx) {
            *c = value;
        }
    }

    /// `cells[idx] = max(cells[idx], value)` — the update the INT program
    /// applies on every packet for queue-occupancy tracking.
    pub fn write_max(&mut self, idx: usize, value: u64) {
        if let Some(c) = self.cells.get_mut(idx) {
            *c = (*c).max(value);
        }
    }

    /// `cells[idx] += 1`, saturating — the packet-counter idiom.
    pub fn increment(&mut self, idx: usize) {
        if let Some(c) = self.cells.get_mut(idx) {
            *c = c.saturating_add(1);
        }
    }

    /// Read cell `idx` and reset it to zero (probe harvest).
    pub fn take(&mut self, idx: usize) -> u64 {
        match self.cells.get_mut(idx) {
            Some(c) => std::mem::take(c),
            None => 0,
        }
    }

    /// Zero every cell.
    pub fn clear(&mut self) {
        self.cells.fill(0);
    }
}

/// All register arrays a program declared, addressed by name — the
/// control-plane view (`register_read`/`register_write` in BMv2's CLI).
#[derive(Debug, Clone, Default)]
pub struct RegisterFile {
    arrays: BTreeMap<&'static str, RegisterArray>,
}

impl RegisterFile {
    /// Empty register file.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a register array. Redeclaring an existing name resizes and
    /// zeroes it (mirrors reloading a P4 program).
    pub fn declare(&mut self, name: &'static str, size: usize) {
        self.arrays.insert(name, RegisterArray::new(size));
    }

    /// Access an array; panics on undeclared names — using an undeclared
    /// register is a program bug, exactly like an undeclared extern in P4.
    pub fn array(&self, name: &'static str) -> &RegisterArray {
        self.arrays
            .get(name)
            .unwrap_or_else(|| panic!("register array `{name}` not declared"))
    }

    /// Mutable access to an array; panics on undeclared names.
    pub fn array_mut(&mut self, name: &'static str) -> &mut RegisterArray {
        self.arrays
            .get_mut(name)
            .unwrap_or_else(|| panic!("register array `{name}` not declared"))
    }

    /// Names of all declared arrays (sorted — BTreeMap order).
    pub fn names(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.arrays.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_max_keeps_maximum() {
        let mut a = RegisterArray::new(4);
        a.write_max(2, 10);
        a.write_max(2, 3);
        a.write_max(2, 17);
        assert_eq!(a.read(2), 17);
        assert_eq!(a.read(1), 0, "other cells untouched");
    }

    #[test]
    fn take_resets_to_zero() {
        let mut a = RegisterArray::new(2);
        a.write(0, 42);
        assert_eq!(a.take(0), 42);
        assert_eq!(a.read(0), 0);
        assert_eq!(a.take(0), 0, "second take sees the reset value");
    }

    #[test]
    fn out_of_range_ops_are_safe() {
        let mut a = RegisterArray::new(1);
        assert_eq!(a.read(5), 0);
        a.write(5, 9);
        a.write_max(5, 9);
        assert_eq!(a.take(5), 0);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn clear_zeroes_all() {
        let mut a = RegisterArray::new(3);
        for i in 0..3 {
            a.write(i, i as u64 + 1);
        }
        a.clear();
        assert!((0..3).all(|i| a.read(i) == 0));
    }

    #[test]
    fn register_file_declare_and_access() {
        let mut rf = RegisterFile::new();
        rf.declare("max_qlen", 8);
        rf.array_mut("max_qlen").write_max(3, 12);
        assert_eq!(rf.array("max_qlen").read(3), 12);
        assert_eq!(rf.names().collect::<Vec<_>>(), vec!["max_qlen"]);
    }

    #[test]
    fn redeclare_resets() {
        let mut rf = RegisterFile::new();
        rf.declare("r", 2);
        rf.array_mut("r").write(0, 7);
        rf.declare("r", 4);
        assert_eq!(rf.array("r").read(0), 0);
        assert_eq!(rf.array("r").len(), 4);
    }

    #[test]
    #[should_panic(expected = "not declared")]
    fn undeclared_array_panics() {
        RegisterFile::new().array("nope");
    }
}
