//! Plain IPv4 longest-prefix-match forwarding.
//!
//! This is the program a conventional (non-INT) switch runs, and the base
//! forwarding behaviour the INT program builds on: parse, LPM on the
//! destination address, decrement TTL, emit on the matched port.

use crate::frame::Frame;
use crate::pipeline::{DataPlaneProgram, IngressCtx, IngressVerdict, PortId};
use crate::programs::decrement_ttl;
use crate::registers::RegisterFile;
use crate::table::{Key, MatchActionTable, MatchKind};
use std::net::Ipv4Addr;

/// IPv4 LPM forwarding program.
pub struct L3ForwardProgram {
    fwd: MatchActionTable<PortId>,
    registers: RegisterFile,
    /// Single-entry last-lookup cache `(dst, port)`: consecutive packets
    /// overwhelmingly share a destination, so the ingress path usually
    /// skips the table entirely. Invalidated on any table write.
    cache: Option<(u32, PortId)>,
    cache_hits: u64,
}

impl L3ForwardProgram {
    /// New program with an empty forwarding table; unmatched packets drop.
    pub fn new(num_ports: usize) -> Self {
        let mut registers = RegisterFile::new();
        registers.declare("pkt_count", num_ports);
        L3ForwardProgram {
            fwd: MatchActionTable::new("ipv4_lpm", MatchKind::Lpm),
            registers,
            cache: None,
            cache_hits: 0,
        }
    }

    /// Control plane: route `prefix/len` out of `port`.
    pub fn install_route(&mut self, prefix: Ipv4Addr, prefix_len: u16, port: PortId) {
        self.cache = None; // any table write invalidates the lookup cache
        self.fwd
            .insert(Key::Lpm { value: prefix.octets().to_vec(), prefix_len }, port);
    }

    /// Control plane: route a single host address out of `port`.
    pub fn install_host_route(&mut self, host: Ipv4Addr, port: PortId) {
        self.install_route(host, 32, port);
    }

    /// Number of installed routes.
    pub fn route_count(&self) -> usize {
        self.fwd.len()
    }

    /// Look up the egress port for a destination without side effects.
    pub fn lookup(&self, dst: Ipv4Addr) -> Option<PortId> {
        self.fwd.lookup(&dst.octets()).copied()
    }

    /// [`lookup`](Self::lookup) through the single-entry cache — the
    /// per-packet path. Misses consult the table and refill the cache.
    pub fn lookup_cached(&mut self, dst: Ipv4Addr) -> Option<PortId> {
        let key = u32::from(dst);
        if let Some((k, p)) = self.cache {
            if k == key {
                self.cache_hits += 1;
                return Some(p);
            }
        }
        let port = self.fwd.lookup(&dst.octets()).copied();
        if let Some(p) = port {
            self.cache = Some((key, p));
        }
        port
    }

    /// Number of lookups served from the single-entry cache (diagnostics).
    pub fn lookup_cache_hits(&self) -> u64 {
        self.cache_hits
    }
}

impl DataPlaneProgram for L3ForwardProgram {
    fn ingress(&mut self, frame: &mut Frame, ctx: &IngressCtx) -> IngressVerdict {
        let Ok(parsed) = frame.parsed() else {
            return IngressVerdict::Drop;
        };
        let Some(ip) = parsed.ip else {
            return IngressVerdict::Drop; // non-IP traffic is not forwarded
        };
        let Some(port) = self.lookup_cached(ip.dst) else {
            return IngressVerdict::Drop;
        };
        if !decrement_ttl(frame) {
            return IngressVerdict::Drop;
        }
        self.registers.array_mut("pkt_count").increment(ctx.ingress_port as usize);
        IngressVerdict::Forward(port)
    }

    fn install_host_route(&mut self, host: Ipv4Addr, port: PortId) {
        self.install_route(host, 32, port);
    }

    fn registers(&self) -> &RegisterFile {
        &self.registers
    }

    fn registers_mut(&mut self) -> &mut RegisterFile {
        &mut self.registers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use int_packet::PacketBuilder;

    fn udp_frame(dst: Ipv4Addr) -> Frame {
        Frame::new(PacketBuilder::between(1, Ipv4Addr::new(10, 0, 0, 1), 2, dst).udp(1, 2, b"x"))
    }

    fn ctx() -> IngressCtx {
        IngressCtx { now_ns: 0, switch_id: 1, ingress_port: 0 }
    }

    #[test]
    fn routes_by_longest_prefix() {
        let mut p = L3ForwardProgram::new(4);
        p.install_route(Ipv4Addr::new(10, 0, 0, 0), 24, 1);
        p.install_host_route(Ipv4Addr::new(10, 0, 0, 7), 2);

        let mut f = udp_frame(Ipv4Addr::new(10, 0, 0, 7));
        assert_eq!(p.ingress(&mut f, &ctx()), IngressVerdict::Forward(2));

        let mut f = udp_frame(Ipv4Addr::new(10, 0, 0, 9));
        assert_eq!(p.ingress(&mut f, &ctx()), IngressVerdict::Forward(1));
    }

    #[test]
    fn unrouted_destination_drops() {
        let mut p = L3ForwardProgram::new(4);
        let mut f = udp_frame(Ipv4Addr::new(192, 168, 0, 1));
        assert_eq!(p.ingress(&mut f, &ctx()), IngressVerdict::Drop);
    }

    #[test]
    fn forwarding_decrements_ttl() {
        let mut p = L3ForwardProgram::new(4);
        p.install_host_route(Ipv4Addr::new(10, 0, 0, 2), 1);
        let mut f = udp_frame(Ipv4Addr::new(10, 0, 0, 2));
        let before = f.parse().unwrap().ip.unwrap().ttl;
        p.ingress(&mut f, &ctx());
        let after = f.parse().unwrap().ip.unwrap().ttl;
        assert_eq!(after, before - 1);
    }

    #[test]
    fn pkt_count_register_increments() {
        let mut p = L3ForwardProgram::new(4);
        p.install_host_route(Ipv4Addr::new(10, 0, 0, 2), 1);
        for _ in 0..3 {
            let mut f = udp_frame(Ipv4Addr::new(10, 0, 0, 2));
            p.ingress(&mut f, &ctx());
        }
        assert_eq!(p.registers().array("pkt_count").read(0), 3);
    }

    /// The single-entry cache serves repeat destinations, refills on a
    /// destination change, and is invalidated by any table write — a stale
    /// hit after a route change would misforward silently.
    #[test]
    fn lookup_cache_hits_and_invalidates() {
        let mut p = L3ForwardProgram::new(4);
        let a = Ipv4Addr::new(10, 0, 0, 2);
        let b = Ipv4Addr::new(10, 0, 0, 3);
        p.install_host_route(a, 1);
        p.install_host_route(b, 2);

        assert_eq!(p.lookup_cached(a), Some(1));
        assert_eq!(p.lookup_cache_hits(), 0, "first lookup misses");
        assert_eq!(p.lookup_cached(a), Some(1));
        assert_eq!(p.lookup_cached(a), Some(1));
        assert_eq!(p.lookup_cache_hits(), 2, "repeats hit");
        assert_eq!(p.lookup_cached(b), Some(2), "destination change refills");
        assert_eq!(p.lookup_cached(b), Some(2));
        assert_eq!(p.lookup_cache_hits(), 3);

        // Re-route b: the cached (b → 2) binding must not survive.
        p.install_host_route(b, 3);
        assert_eq!(p.lookup_cached(b), Some(3), "table write invalidates the cache");
        assert_eq!(p.lookup_cache_hits(), 3);

        // The ingress path goes through the same cache.
        let mut f = udp_frame(a);
        assert_eq!(p.ingress(&mut f, &ctx()), IngressVerdict::Forward(1));
        let mut f = udp_frame(a);
        assert_eq!(p.ingress(&mut f, &ctx()), IngressVerdict::Forward(1));
        assert!(p.lookup_cache_hits() > 3, "ingress lookups populate and hit the cache");
    }

    #[test]
    fn garbage_frame_drops() {
        let mut p = L3ForwardProgram::new(1);
        let mut f = Frame::new(bytes::BytesMut::from(&[0u8; 10][..]));
        assert_eq!(p.ingress(&mut f, &ctx()), IngressVerdict::Drop);
    }
}

#[cfg(test)]
mod ttl_tests {
    use super::*;
    use int_packet::wire::internet_checksum;
    use int_packet::{EthernetHeader, Ipv4Header, PacketBuilder};

    /// A packet looping long enough to exhaust its TTL is dropped, never
    /// forwarded forever.
    #[test]
    fn ttl_exhaustion_drops() {
        let mut p = L3ForwardProgram::new(2);
        p.install_host_route(Ipv4Addr::new(10, 0, 0, 2), 1);

        let b = PacketBuilder::between(1, Ipv4Addr::new(10, 0, 0, 1), 2, Ipv4Addr::new(10, 0, 0, 2));
        let mut f = Frame::new(b.udp(1, 2, b"x"));
        let ctx = IngressCtx { now_ns: 0, switch_id: 1, ingress_port: 0 };

        let mut forwards = 0;
        while let IngressVerdict::Forward(_) = p.ingress(&mut f, &ctx) {
            forwards += 1;
            assert!(forwards < 256, "runaway forwarding");
        }
        // Default TTL 64: 63 hops succeed, the 64th hop sees TTL 1 → drop.
        assert_eq!(forwards, Ipv4Header::DEFAULT_TTL as u32 - 1);
        // The frame still carries a valid checksum after all the rewrites.
        let ip_off = EthernetHeader::LEN;
        assert_eq!(internet_checksum(&f.bytes[ip_off..ip_off + Ipv4Header::LEN]), 0);
    }
}
