//! Plain IPv4 longest-prefix-match forwarding.
//!
//! This is the program a conventional (non-INT) switch runs, and the base
//! forwarding behaviour the INT program builds on: parse, LPM on the
//! destination address, decrement TTL, emit on the matched port.

use crate::frame::Frame;
use crate::pipeline::{DataPlaneProgram, IngressCtx, IngressVerdict, PortId};
use crate::programs::decrement_ttl;
use crate::registers::RegisterFile;
use crate::table::{Key, MatchActionTable, MatchKind};
use int_packet::{L4View, ParsedPacket};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// How a multipath route picks among its equal-cost egress ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EcmpSelect {
    /// Always use the group's first (primary) port — the pre-multipath
    /// single-route behaviour, bit-compatible with older runs. Default.
    #[default]
    Primary,
    /// Hash the flow 5-tuple over the group — classic ECMP. A flow sticks
    /// to one port (no reordering); distinct flows spread.
    FlowHash,
}

/// Deterministic flow hash over an explicit 5-tuple: FNV-1a, a pure
/// function of the header bytes — no RNG, no state — so replays and
/// thread counts cannot change path choice. Hosts hash the same tuple as
/// switches, so a flow's ports are stable end to end.
pub fn flow_hash_tuple(src: Ipv4Addr, dst: Ipv4Addr, proto: u8, sport: u16, dport: u16) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |b: u8| h = (h ^ b as u64).wrapping_mul(PRIME);
    for b in src.octets().into_iter().chain(dst.octets()) {
        eat(b);
    }
    eat(proto);
    for b in sport.to_be_bytes().into_iter().chain(dport.to_be_bytes()) {
        eat(b);
    }
    h
}

/// [`flow_hash_tuple`] over a parsed packet's headers.
pub fn flow_hash(parsed: &ParsedPacket) -> u64 {
    let (src, dst) = match parsed.ip {
        Some(ip) => (ip.src, ip.dst),
        None => (Ipv4Addr::UNSPECIFIED, Ipv4Addr::UNSPECIFIED),
    };
    let (proto, sport, dport) = match parsed.l4 {
        Some(L4View::Udp(u)) => (17u8, u.src_port, u.dst_port),
        Some(L4View::Tcp(t)) => (6u8, t.src_port, t.dst_port),
        None => (0, 0, 0),
    };
    flow_hash_tuple(src, dst, proto, sport, dport)
}

/// An equal-cost multipath group: `ports[0]` is the primary (the
/// single-path route an older control plane would have installed).
#[derive(Debug, Clone, PartialEq, Eq)]
struct EcmpGroup {
    ports: Vec<PortId>,
}

/// IPv4 LPM forwarding program with ECMP groups: every route resolves to
/// a group of equal-cost egress ports (usually of size 1) and the
/// configured [`EcmpSelect`] picks among them per packet.
pub struct L3ForwardProgram {
    fwd: MatchActionTable<u16>,
    /// Dedup'd ECMP groups; table actions index into this.
    groups: Vec<EcmpGroup>,
    /// Reverse index for dedup at install time.
    group_index: BTreeMap<Vec<PortId>, u16>,
    select: EcmpSelect,
    registers: RegisterFile,
    /// Single-entry last-lookup cache `(dst, group)`: consecutive packets
    /// overwhelmingly share a destination, so the ingress path usually
    /// skips the table entirely. Invalidated on any table write. Caching
    /// the *group* keeps the cache correct under ECMP — per-packet port
    /// selection happens after the cache.
    cache: Option<(u32, u16)>,
    cache_hits: u64,
}

impl L3ForwardProgram {
    /// New program with an empty forwarding table; unmatched packets drop.
    pub fn new(num_ports: usize) -> Self {
        let mut registers = RegisterFile::new();
        registers.declare("pkt_count", num_ports);
        L3ForwardProgram {
            fwd: MatchActionTable::new("ipv4_lpm", MatchKind::Lpm),
            groups: Vec::new(),
            group_index: BTreeMap::new(),
            select: EcmpSelect::Primary,
            registers,
            cache: None,
            cache_hits: 0,
        }
    }

    /// Set the multipath selection mode (default [`EcmpSelect::Primary`]).
    pub fn set_ecmp_select(&mut self, select: EcmpSelect) {
        self.select = select;
    }

    /// The current multipath selection mode.
    pub fn ecmp_select(&self) -> EcmpSelect {
        self.select
    }

    fn intern_group(&mut self, ports: &[PortId]) -> u16 {
        if let Some(&idx) = self.group_index.get(ports) {
            return idx;
        }
        let idx = self.groups.len() as u16;
        self.groups.push(EcmpGroup { ports: ports.to_vec() });
        self.group_index.insert(ports.to_vec(), idx);
        idx
    }

    /// Control plane: route `prefix/len` out of `port` (a single-member
    /// ECMP group).
    pub fn install_route(&mut self, prefix: Ipv4Addr, prefix_len: u16, port: PortId) {
        self.install_route_multi(prefix, prefix_len, &[port]);
    }

    /// Control plane: route `prefix/len` over an equal-cost port group.
    /// `ports[0]` is the primary — the port [`EcmpSelect::Primary`] always
    /// picks. Panics on an empty group.
    pub fn install_route_multi(&mut self, prefix: Ipv4Addr, prefix_len: u16, ports: &[PortId]) {
        assert!(!ports.is_empty(), "ECMP group for {prefix}/{prefix_len} is empty");
        self.cache = None; // any table write invalidates the lookup cache
        let group = self.intern_group(ports);
        self.fwd
            .insert(Key::Lpm { value: prefix.octets().to_vec(), prefix_len }, group);
    }

    /// Control plane: route a single host address out of `port`.
    pub fn install_host_route(&mut self, host: Ipv4Addr, port: PortId) {
        self.install_route(host, 32, port);
    }

    /// Number of installed routes.
    pub fn route_count(&self) -> usize {
        self.fwd.len()
    }

    /// Look up the *primary* egress port for a destination without side
    /// effects — the pre-ECMP single-path answer.
    pub fn lookup(&self, dst: Ipv4Addr) -> Option<PortId> {
        self.group_ports(dst).map(|ports| ports[0])
    }

    /// The full equal-cost port group for a destination, primary first.
    pub fn group_ports(&self, dst: Ipv4Addr) -> Option<&[PortId]> {
        let g = *self.fwd.lookup(&dst.octets())?;
        Some(&self.groups[g as usize].ports)
    }

    /// [`lookup`](Self::lookup) through the single-entry cache — the
    /// per-packet path. Misses consult the table and refill the cache.
    pub fn lookup_cached(&mut self, dst: Ipv4Addr) -> Option<PortId> {
        self.group_cached(dst).map(|g| self.groups[g as usize].ports[0])
    }

    /// Per-packet multipath selection through the cache: resolve the ECMP
    /// group for `dst`, then pick a member under the configured
    /// [`EcmpSelect`] using the caller-computed flow hash.
    pub fn select_cached(&mut self, dst: Ipv4Addr, hash: u64) -> Option<PortId> {
        let g = self.group_cached(dst)?;
        let ports = &self.groups[g as usize].ports;
        Some(match self.select {
            EcmpSelect::Primary => ports[0],
            EcmpSelect::FlowHash => ports[(hash % ports.len() as u64) as usize],
        })
    }

    fn group_cached(&mut self, dst: Ipv4Addr) -> Option<u16> {
        let key = u32::from(dst);
        if let Some((k, g)) = self.cache {
            if k == key {
                self.cache_hits += 1;
                return Some(g);
            }
        }
        let group = self.fwd.lookup(&dst.octets()).copied();
        if let Some(g) = group {
            self.cache = Some((key, g));
        }
        group
    }

    /// Number of lookups served from the single-entry cache (diagnostics).
    pub fn lookup_cache_hits(&self) -> u64 {
        self.cache_hits
    }
}

impl DataPlaneProgram for L3ForwardProgram {
    fn ingress(&mut self, frame: &mut Frame, ctx: &IngressCtx) -> IngressVerdict {
        let Ok(parsed) = frame.parsed() else {
            return IngressVerdict::Drop;
        };
        let Some(ip) = parsed.ip else {
            return IngressVerdict::Drop; // non-IP traffic is not forwarded
        };
        let hash = match self.select {
            EcmpSelect::Primary => 0, // selection ignores it; skip the work
            EcmpSelect::FlowHash => flow_hash(&parsed),
        };
        let Some(port) = self.select_cached(ip.dst, hash) else {
            return IngressVerdict::Drop;
        };
        if !decrement_ttl(frame) {
            return IngressVerdict::Drop;
        }
        self.registers.array_mut("pkt_count").increment(ctx.ingress_port as usize);
        IngressVerdict::Forward(port)
    }

    fn install_host_route(&mut self, host: Ipv4Addr, port: PortId) {
        self.install_route(host, 32, port);
    }

    fn registers(&self) -> &RegisterFile {
        &self.registers
    }

    fn registers_mut(&mut self) -> &mut RegisterFile {
        &mut self.registers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use int_packet::PacketBuilder;

    fn udp_frame(dst: Ipv4Addr) -> Frame {
        Frame::new(PacketBuilder::between(1, Ipv4Addr::new(10, 0, 0, 1), 2, dst).udp(1, 2, b"x"))
    }

    fn ctx() -> IngressCtx {
        IngressCtx { now_ns: 0, switch_id: 1, ingress_port: 0 }
    }

    #[test]
    fn routes_by_longest_prefix() {
        let mut p = L3ForwardProgram::new(4);
        p.install_route(Ipv4Addr::new(10, 0, 0, 0), 24, 1);
        p.install_host_route(Ipv4Addr::new(10, 0, 0, 7), 2);

        let mut f = udp_frame(Ipv4Addr::new(10, 0, 0, 7));
        assert_eq!(p.ingress(&mut f, &ctx()), IngressVerdict::Forward(2));

        let mut f = udp_frame(Ipv4Addr::new(10, 0, 0, 9));
        assert_eq!(p.ingress(&mut f, &ctx()), IngressVerdict::Forward(1));
    }

    #[test]
    fn unrouted_destination_drops() {
        let mut p = L3ForwardProgram::new(4);
        let mut f = udp_frame(Ipv4Addr::new(192, 168, 0, 1));
        assert_eq!(p.ingress(&mut f, &ctx()), IngressVerdict::Drop);
    }

    #[test]
    fn forwarding_decrements_ttl() {
        let mut p = L3ForwardProgram::new(4);
        p.install_host_route(Ipv4Addr::new(10, 0, 0, 2), 1);
        let mut f = udp_frame(Ipv4Addr::new(10, 0, 0, 2));
        let before = f.parse().unwrap().ip.unwrap().ttl;
        p.ingress(&mut f, &ctx());
        let after = f.parse().unwrap().ip.unwrap().ttl;
        assert_eq!(after, before - 1);
    }

    #[test]
    fn pkt_count_register_increments() {
        let mut p = L3ForwardProgram::new(4);
        p.install_host_route(Ipv4Addr::new(10, 0, 0, 2), 1);
        for _ in 0..3 {
            let mut f = udp_frame(Ipv4Addr::new(10, 0, 0, 2));
            p.ingress(&mut f, &ctx());
        }
        assert_eq!(p.registers().array("pkt_count").read(0), 3);
    }

    /// The single-entry cache serves repeat destinations, refills on a
    /// destination change, and is invalidated by any table write — a stale
    /// hit after a route change would misforward silently.
    #[test]
    fn lookup_cache_hits_and_invalidates() {
        let mut p = L3ForwardProgram::new(4);
        let a = Ipv4Addr::new(10, 0, 0, 2);
        let b = Ipv4Addr::new(10, 0, 0, 3);
        p.install_host_route(a, 1);
        p.install_host_route(b, 2);

        assert_eq!(p.lookup_cached(a), Some(1));
        assert_eq!(p.lookup_cache_hits(), 0, "first lookup misses");
        assert_eq!(p.lookup_cached(a), Some(1));
        assert_eq!(p.lookup_cached(a), Some(1));
        assert_eq!(p.lookup_cache_hits(), 2, "repeats hit");
        assert_eq!(p.lookup_cached(b), Some(2), "destination change refills");
        assert_eq!(p.lookup_cached(b), Some(2));
        assert_eq!(p.lookup_cache_hits(), 3);

        // Re-route b: the cached (b → 2) binding must not survive.
        p.install_host_route(b, 3);
        assert_eq!(p.lookup_cached(b), Some(3), "table write invalidates the cache");
        assert_eq!(p.lookup_cache_hits(), 3);

        // The ingress path goes through the same cache.
        let mut f = udp_frame(a);
        assert_eq!(p.ingress(&mut f, &ctx()), IngressVerdict::Forward(1));
        let mut f = udp_frame(a);
        assert_eq!(p.ingress(&mut f, &ctx()), IngressVerdict::Forward(1));
        assert!(p.lookup_cache_hits() > 3, "ingress lookups populate and hit the cache");
    }

    /// Multipath routes expose the full group, keep the primary first, and
    /// dedup identical port sets into one interned group.
    #[test]
    fn ecmp_groups_intern_and_expose_ports() {
        let mut p = L3ForwardProgram::new(4);
        let a = Ipv4Addr::new(10, 0, 0, 2);
        let b = Ipv4Addr::new(10, 0, 0, 3);
        let c = Ipv4Addr::new(10, 0, 0, 4);
        p.install_route_multi(a, 32, &[1, 2]);
        p.install_route_multi(b, 32, &[1, 2]);
        p.install_route_multi(c, 32, &[2, 1]);

        assert_eq!(p.group_ports(a), Some(&[1, 2][..]));
        assert_eq!(p.group_ports(c), Some(&[2, 1][..]), "order is significant");
        assert_eq!(p.lookup(a), Some(1), "primary is the first member");
        assert_eq!(p.lookup(c), Some(2));
        // a and b share one interned group; c (different order) gets its own.
        assert_eq!(p.groups.len(), 2);
    }

    /// Under the default Primary selection, a multipath route forwards
    /// exactly like the old single-path table — bit-compatible behaviour.
    #[test]
    fn primary_select_ignores_extra_group_members() {
        let mut p = L3ForwardProgram::new(4);
        let dst = Ipv4Addr::new(10, 0, 0, 2);
        p.install_route_multi(dst, 32, &[3, 1, 2]);
        for _ in 0..4 {
            let mut f = udp_frame(dst);
            assert_eq!(p.ingress(&mut f, &ctx()), IngressVerdict::Forward(3));
        }
    }

    /// The flow hash is a pure function of the 5-tuple: same tuple → same
    /// value, any field change → (here) a different value, and a flow's
    /// port choice is stable across repeated packets.
    #[test]
    fn flow_hash_is_deterministic_per_tuple() {
        let s = Ipv4Addr::new(10, 0, 0, 1);
        let d = Ipv4Addr::new(10, 0, 0, 2);
        let base = flow_hash_tuple(s, d, 17, 4000, 5000);
        assert_eq!(flow_hash_tuple(s, d, 17, 4000, 5000), base);
        assert_ne!(flow_hash_tuple(d, s, 17, 4000, 5000), base, "src/dst swap");
        assert_ne!(flow_hash_tuple(s, d, 6, 4000, 5000), base, "proto");
        assert_ne!(flow_hash_tuple(s, d, 17, 4001, 5000), base, "sport");
        assert_ne!(flow_hash_tuple(s, d, 17, 4000, 5001), base, "dport");

        // The parsed-packet form hashes the same bytes as the tuple form.
        let f = Frame::new(PacketBuilder::between(1, s, 2, d).udp(4000, 5000, b"x"));
        assert_eq!(flow_hash(&f.parse().unwrap()), base);
    }

    /// FlowHash spreads distinct flows across the group: with enough
    /// source ports, every member of a 2-port group receives traffic.
    #[test]
    fn flow_hash_select_spreads_flows_across_members() {
        let mut p = L3ForwardProgram::new(4);
        p.set_ecmp_select(EcmpSelect::FlowHash);
        assert_eq!(p.ecmp_select(), EcmpSelect::FlowHash);
        let s = Ipv4Addr::new(10, 0, 0, 1);
        let d = Ipv4Addr::new(10, 0, 0, 2);
        p.install_route_multi(d, 32, &[1, 2]);

        let mut seen = [0u32; 3];
        for sport in 4000..4032u16 {
            let mut f =
                Frame::new(PacketBuilder::between(1, s, 2, d).udp(sport, 5000, b"x"));
            match p.ingress(&mut f, &ctx()) {
                IngressVerdict::Forward(port) => seen[port as usize] += 1,
                v => panic!("unexpected verdict {v:?}"),
            }
            // Replaying the identical tuple must pick the identical port.
            let hash = flow_hash_tuple(s, d, 17, sport, 5000);
            assert_eq!(p.select_cached(d, hash), p.select_cached(d, hash));
        }
        assert_eq!(seen[0], 0, "port 0 is not in the group");
        assert!(seen[1] > 0 && seen[2] > 0, "both members carry flows: {seen:?}");
    }

    /// The single-entry lookup cache stores the *group*, not a port, so a
    /// cache hit still honours per-flow selection under FlowHash.
    #[test]
    fn lookup_cache_preserves_flow_hash_selection() {
        let mut p = L3ForwardProgram::new(4);
        p.set_ecmp_select(EcmpSelect::FlowHash);
        let d = Ipv4Addr::new(10, 0, 0, 2);
        p.install_route_multi(d, 32, &[1, 2]);

        // Two hashes landing on different members, served back to back so
        // the second resolution is a cache hit.
        let pa = p.select_cached(d, 0).unwrap(); // 0 % 2 → member 0
        let pb = p.select_cached(d, 1).unwrap(); // 1 % 2 → member 1
        assert_eq!((pa, pb), (1, 2));
        assert_eq!(p.lookup_cache_hits(), 1, "second select hit the cache");
        assert_eq!(p.select_cached(d, 0), Some(1), "hit does not pin the port");
        assert_eq!(p.lookup_cache_hits(), 2);
    }

    #[test]
    fn garbage_frame_drops() {
        let mut p = L3ForwardProgram::new(1);
        let mut f = Frame::new(bytes::BytesMut::from(&[0u8; 10][..]));
        assert_eq!(p.ingress(&mut f, &ctx()), IngressVerdict::Drop);
    }
}

#[cfg(test)]
mod ttl_tests {
    use super::*;
    use int_packet::wire::internet_checksum;
    use int_packet::{EthernetHeader, Ipv4Header, PacketBuilder};

    /// A packet looping long enough to exhaust its TTL is dropped, never
    /// forwarded forever.
    #[test]
    fn ttl_exhaustion_drops() {
        let mut p = L3ForwardProgram::new(2);
        p.install_host_route(Ipv4Addr::new(10, 0, 0, 2), 1);

        let b = PacketBuilder::between(1, Ipv4Addr::new(10, 0, 0, 1), 2, Ipv4Addr::new(10, 0, 0, 2));
        let mut f = Frame::new(b.udp(1, 2, b"x"));
        let ctx = IngressCtx { now_ns: 0, switch_id: 1, ingress_port: 0 };

        let mut forwards = 0;
        while let IngressVerdict::Forward(_) = p.ingress(&mut f, &ctx) {
            forwards += 1;
            assert!(forwards < 256, "runaway forwarding");
        }
        // Default TTL 64: 63 hops succeed, the 64th hop sees TTL 1 → drop.
        assert_eq!(forwards, Ipv4Header::DEFAULT_TTL as u32 - 1);
        // The frame still carries a valid checksum after all the rewrites.
        let ip_off = EthernetHeader::LEN;
        assert_eq!(internet_checksum(&f.bytes[ip_off..ip_off + Ipv4Header::LEN]), 0);
    }
}
