//! Concrete data-plane programs.
//!
//! * [`l3fwd`] — plain IPv4 longest-prefix-match forwarding (the baseline
//!   program a non-INT switch would run),
//! * [`int_telemetry`] — the paper's program: L3 forwarding plus
//!   register-based INT collection and probe-packet augmentation.

pub mod int_telemetry;
pub mod l3fwd;

use crate::frame::Frame;
use int_packet::ipv4::Ipv4Header;
use int_packet::wire::internet_checksum;
use int_packet::EthernetHeader;

/// Decrement the IPv4 TTL in place (patching the checksum incrementally) and
/// report whether the packet is still alive. Returns `false` when the TTL
/// would reach zero, in which case the frame is left unmodified and must be
/// dropped by the caller.
pub(crate) fn decrement_ttl(frame: &mut Frame) -> bool {
    let ip_off = EthernetHeader::LEN;
    let Some(hdr) = frame.bytes.get_mut(ip_off..ip_off + Ipv4Header::LEN) else {
        return false;
    };
    let ttl = hdr[8];
    if ttl <= 1 {
        return false;
    }
    hdr[8] = ttl - 1;
    // Recompute the header checksum over the patched header.
    hdr[10] = 0;
    hdr[11] = 0;
    let ck = internet_checksum(hdr);
    hdr[10] = (ck >> 8) as u8;
    hdr[11] = (ck & 0xFF) as u8;
    // The rewrite is length-preserving, so the frame's memoized parse stays
    // live — patch the one field that changed instead of re-parsing.
    if let Some(ip) = frame.cached_ip_mut() {
        ip.ttl = ttl - 1;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;
    use int_packet::{PacketBuilder, ParsedPacket};
    use std::net::Ipv4Addr;

    fn frame() -> Frame {
        let b = PacketBuilder::between(1, Ipv4Addr::new(10, 0, 0, 1), 2, Ipv4Addr::new(10, 0, 0, 2))
            .udp(1, 2, b"x");
        Frame::new(b)
    }

    #[test]
    fn ttl_decrements_and_checksum_stays_valid() {
        let mut f = frame();
        assert!(decrement_ttl(&mut f));
        let p = ParsedPacket::parse(&f.bytes).expect("checksum must still verify");
        assert_eq!(p.ip.unwrap().ttl, Ipv4Header::DEFAULT_TTL - 1);
    }

    #[test]
    fn ttl_one_reports_dead() {
        let mut f = frame();
        // Force TTL to 1 and fix checksum.
        let ip_off = EthernetHeader::LEN;
        f.bytes[ip_off + 8] = 1;
        f.bytes[ip_off + 10] = 0;
        f.bytes[ip_off + 11] = 0;
        let ck = internet_checksum(&f.bytes[ip_off..ip_off + Ipv4Header::LEN]);
        f.bytes[ip_off + 10] = (ck >> 8) as u8;
        f.bytes[ip_off + 11] = (ck & 0xFF) as u8;

        let before = f.bytes.clone();
        assert!(!decrement_ttl(&mut f));
        assert_eq!(f.bytes, before, "dead packet left unmodified");
    }

    #[test]
    fn truncated_frame_is_dead() {
        let mut f = Frame::new(BytesMut::from(&b"short"[..]));
        assert!(!decrement_ttl(&mut f));
    }

    #[test]
    fn memoized_parse_stays_coherent_across_decrement() {
        let mut f = frame();
        let cached_before = f.parsed().unwrap();
        assert!(decrement_ttl(&mut f));
        let cached_after = f.parsed().unwrap();
        let fresh = ParsedPacket::parse(&f.bytes).unwrap();
        assert_eq!(cached_after.ip.unwrap().ttl, fresh.ip.unwrap().ttl, "cache patched, not stale");
        assert_eq!(cached_after.ip.unwrap().ttl, cached_before.ip.unwrap().ttl - 1);
    }
}
