//! The paper's INT telemetry program (§III-A, Fig. 2).
//!
//! On **regular packets** the switch only observes: every enqueue folds the
//! egress-queue depth into the `max_qlen` register of that port. Nothing is
//! added to production packets — this is the paper's key overhead-avoidance
//! design.
//!
//! On **probe packets** (UDP to the Geneve port with the telemetry shim):
//!
//! * *ingress* (before enqueue): read the upstream egress timestamp from the
//!   probe payload and record `link_latency = now − upstream_ts` in packet
//!   metadata. Doing this pre-queue excludes this switch's queuing delay
//!   from the link measurement.
//! * *egress* (head of queue, about to serialize): harvest-and-reset the
//!   `max_qlen` register of the egress port, append an [`IntRecord`] with
//!   the harvested value, the measured upstream link latency, and this
//!   switch's egress timestamp, then re-deparse the packet (lengths and
//!   checksums updated).

use crate::frame::Frame;
use crate::pipeline::{
    DataPlaneProgram, EgressCtx, EnqueueCtx, IngressCtx, IngressVerdict, PortId,
};
use crate::programs::decrement_ttl;
use crate::programs::l3fwd::L3ForwardProgram;
use crate::registers::RegisterFile;
use bytes::BytesMut;
use int_obs::{TraceEvent, TraceKind};
use int_packet::int::IntRecord;
use int_packet::ipv4::Ipv4Header;
use int_packet::udp::UdpHeader;
use int_packet::wire::{internet_checksum, WireEncode};
use int_packet::EthernetHeader;
use std::net::Ipv4Addr;

/// Configuration for the INT program.
#[derive(Debug, Clone, Copy)]
pub struct IntProgramConfig {
    /// Switch identity stamped into INT records.
    pub switch_id: u32,
    /// Number of ports (sizes the register arrays).
    pub num_ports: usize,
    /// If false, the program behaves exactly like plain L3 forwarding
    /// (probes are forwarded but not augmented) — used for baseline runs.
    pub int_enabled: bool,
}

/// The INT telemetry data-plane program.
pub struct IntTelemetryProgram {
    cfg: IntProgramConfig,
    l3: L3ForwardProgram,
    registers: RegisterFile,
    /// Buffer harvest/reset trace events for the simulator to drain.
    tracing: bool,
    trace_buf: Vec<TraceEvent>,
}

impl IntTelemetryProgram {
    /// Register array: max egress-queue depth per port since last harvest.
    pub const REG_MAX_QLEN: &'static str = "max_qlen";
    /// Register array: probes forwarded per egress port (diagnostics).
    pub const REG_PROBE_COUNT: &'static str = "probe_count";
    /// Register array: total packets enqueued per egress port (diagnostics).
    pub const REG_ENQ_COUNT: &'static str = "enq_count";

    /// Build the program for a switch.
    pub fn new(cfg: IntProgramConfig) -> Self {
        let mut registers = RegisterFile::new();
        registers.declare(Self::REG_MAX_QLEN, cfg.num_ports);
        registers.declare(Self::REG_PROBE_COUNT, cfg.num_ports);
        registers.declare(Self::REG_ENQ_COUNT, cfg.num_ports);
        IntTelemetryProgram {
            cfg,
            l3: L3ForwardProgram::new(cfg.num_ports),
            registers,
            tracing: false,
            trace_buf: Vec::new(),
        }
    }

    /// Control plane: route `prefix/len` out of `port`.
    pub fn install_route(&mut self, prefix: Ipv4Addr, prefix_len: u16, port: PortId) {
        self.l3.install_route(prefix, prefix_len, port);
    }

    /// Control plane: route a single host address out of `port`.
    pub fn install_host_route(&mut self, host: Ipv4Addr, port: PortId) {
        self.l3.install_host_route(host, port);
    }

    /// Control plane: route a host address over an equal-cost port group
    /// (`ports[0]` = primary).
    pub fn install_host_route_multi(&mut self, host: Ipv4Addr, ports: &[PortId]) {
        self.l3.install_route_multi(host, 32, ports);
    }

    /// Control plane: route `prefix/len` over an equal-cost port group
    /// (`ports[0]` = primary). `len == 0` installs a default route.
    pub fn install_route_multi(&mut self, prefix: Ipv4Addr, prefix_len: u16, ports: &[PortId]) {
        self.l3.install_route_multi(prefix, prefix_len, ports);
    }

    /// Multipath selection mode for this switch's routes.
    pub fn set_ecmp_select(&mut self, select: crate::programs::l3fwd::EcmpSelect) {
        self.l3.set_ecmp_select(select);
    }

    /// Look up the egress port for a destination without side effects.
    pub fn lookup(&self, dst: Ipv4Addr) -> Option<PortId> {
        self.l3.lookup(dst)
    }

    /// The full equal-cost port group for a destination, primary first.
    pub fn group_ports(&self, dst: Ipv4Addr) -> Option<&[PortId]> {
        self.l3.group_ports(dst)
    }

    /// Switch identity.
    pub fn switch_id(&self) -> u32 {
        self.cfg.switch_id
    }

    /// Append an INT record to a probe frame and re-deparse it in place.
    fn augment_probe(&mut self, frame: &mut Frame, ctx: &EgressCtx) {
        let Ok(parsed) = frame.parsed() else { return };
        let Ok(mut probe) = parsed.probe_payload(&frame.bytes) else { return };

        let max_qlen =
            self.registers.array_mut(Self::REG_MAX_QLEN).take(ctx.egress_port as usize);
        if self.tracing {
            // One event for the harvested sample, one for the
            // read-and-reset side effect the harvest performs.
            self.trace_buf.push(TraceEvent {
                at_ns: ctx.now_ns,
                kind: TraceKind::ProbeHarvest {
                    switch: self.cfg.switch_id,
                    port: ctx.egress_port as u8,
                    max_qlen_pkts: max_qlen.min(u32::MAX as u64) as u32,
                },
            });
            self.trace_buf.push(TraceEvent {
                at_ns: ctx.now_ns,
                kind: TraceKind::RegisterReset {
                    switch: self.cfg.switch_id,
                    register: Self::REG_MAX_QLEN,
                    port: ctx.egress_port as u8,
                },
            });
        }

        probe.int.push(IntRecord {
            switch_id: self.cfg.switch_id,
            ingress_port: frame.meta.ingress_port.unwrap_or(u16::MAX),
            egress_port: ctx.egress_port,
            max_qlen_pkts: max_qlen.min(u32::MAX as u64) as u32,
            qlen_at_probe_pkts: ctx.qdepth_at_deq_pkts,
            link_latency_ns: frame.meta.measured_link_latency_ns.unwrap_or(0),
            egress_ts_ns: ctx.now_ns,
        });

        let cnt = self.registers.array(Self::REG_PROBE_COUNT).read(ctx.egress_port as usize);
        self.registers
            .array_mut(Self::REG_PROBE_COUNT)
            .write(ctx.egress_port as usize, cnt + 1);

        // Re-deparse: same Ethernet + IP addressing/TTL/id, new payload.
        let (Some(ip), Some(udp)) = (parsed.ip, parsed.udp()) else { return };
        let payload = probe.to_bytes();
        frame.bytes = redeparse_udp(&parsed.eth, &ip, &udp, &payload);
        // The frame grew by one INT record; drop the memoized parse so the
        // next stage re-reads the rewritten headers.
        frame.invalidate_parse();
    }
}

/// Rebuild `eth/ip/udp/payload` preserving addressing, TTL, and IP id while
/// recomputing all length and checksum fields — what a P4 deparser does
/// after headers or payload were modified.
fn redeparse_udp(
    eth: &EthernetHeader,
    ip: &Ipv4Header,
    udp: &UdpHeader,
    payload: &[u8],
) -> BytesMut {
    let udp_new = UdpHeader::new(udp.src_port, udp.dst_port, payload.len());
    let mut ip_new = *ip;
    ip_new.total_len = (Ipv4Header::LEN + UdpHeader::LEN + payload.len()) as u16;

    let mut buf = BytesMut::with_capacity(
        EthernetHeader::LEN + Ipv4Header::LEN + UdpHeader::LEN + payload.len(),
    );
    eth.encode(&mut buf);
    ip_new.encode(&mut buf);
    udp_new.encode(&mut buf);
    buf.extend_from_slice(payload);
    debug_assert_eq!(
        internet_checksum(&buf[EthernetHeader::LEN..EthernetHeader::LEN + Ipv4Header::LEN]),
        0,
        "re-deparsed IP checksum must verify"
    );
    buf
}

impl DataPlaneProgram for IntTelemetryProgram {
    fn ingress(&mut self, frame: &mut Frame, ctx: &IngressCtx) -> IngressVerdict {
        let Ok(parsed) = frame.parsed() else {
            return IngressVerdict::Drop;
        };
        let Some(ip) = parsed.ip else {
            return IngressVerdict::Drop;
        };

        frame.meta.ingress_port = Some(ctx.ingress_port);

        // Probe packets: measure upstream link latency *before* queuing.
        if self.cfg.int_enabled && parsed.is_int_probe(&frame.bytes) {
            if let Ok(probe) = parsed.probe_payload(&frame.bytes) {
                let upstream = probe.upstream_egress_ts_ns();
                frame.meta.measured_link_latency_ns = Some(ctx.now_ns.saturating_sub(upstream));
            }
        }

        // Cached: consecutive packets overwhelmingly share a destination,
        // so the per-packet path usually skips the LPM table entirely.
        // Under flow-hash ECMP the cache resolves the *group*; the member
        // choice is a pure function of the 5-tuple.
        let hash = match self.l3.ecmp_select() {
            crate::programs::l3fwd::EcmpSelect::Primary => 0,
            crate::programs::l3fwd::EcmpSelect::FlowHash => {
                crate::programs::l3fwd::flow_hash(&parsed)
            }
        };
        let Some(port) = self.l3.select_cached(ip.dst, hash) else {
            return IngressVerdict::Drop;
        };
        if !decrement_ttl(frame) {
            return IngressVerdict::Drop;
        }
        IngressVerdict::Forward(port)
    }

    fn on_enqueue(&mut self, _frame: &Frame, ctx: &EnqueueCtx) {
        if !self.cfg.int_enabled {
            return;
        }
        let idx = ctx.port as usize;
        self.registers
            .array_mut(Self::REG_MAX_QLEN)
            .write_max(idx, ctx.qdepth_after_pkts as u64);
        let cnt = self.registers.array(Self::REG_ENQ_COUNT).read(idx);
        self.registers.array_mut(Self::REG_ENQ_COUNT).write(idx, cnt + 1);
    }

    fn egress(&mut self, frame: &mut Frame, ctx: &EgressCtx) {
        if !self.cfg.int_enabled {
            return;
        }
        let is_probe = match frame.parsed() {
            Ok(p) => p.is_int_probe(&frame.bytes),
            Err(_) => false,
        };
        if is_probe {
            self.augment_probe(frame, ctx);
        }
    }

    fn install_host_route(&mut self, host: Ipv4Addr, port: PortId) {
        self.l3.install_route(host, 32, port);
    }

    fn registers(&self) -> &RegisterFile {
        &self.registers
    }

    fn registers_mut(&mut self) -> &mut RegisterFile {
        &mut self.registers
    }

    fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
        if !on {
            self.trace_buf.clear();
        }
    }

    fn drain_trace(&mut self, out: &mut Vec<TraceEvent>) {
        out.append(&mut self.trace_buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use int_packet::{PacketBuilder, ParsedPacket, ProbePayload, PROBE_UDP_PORT};

    fn probe_frame(origin: u32, sent_ts: u64) -> Frame {
        let probe = ProbePayload::new(origin, 1, sent_ts);
        let b = PacketBuilder::between(
            origin,
            Ipv4Addr::new(10, 0, 0, 1),
            6,
            Ipv4Addr::new(10, 0, 0, 6),
        )
        .udp_msg(40000, PROBE_UDP_PORT, &probe);
        Frame::new(b)
    }

    fn data_frame() -> Frame {
        let b = PacketBuilder::between(1, Ipv4Addr::new(10, 0, 0, 1), 6, Ipv4Addr::new(10, 0, 0, 6))
            .udp(5001, 5001, &[0u8; 1000]);
        Frame::new(b)
    }

    fn program(int_enabled: bool) -> IntTelemetryProgram {
        let mut p = IntTelemetryProgram::new(IntProgramConfig {
            switch_id: 42,
            num_ports: 4,
            int_enabled,
        });
        p.install_host_route(Ipv4Addr::new(10, 0, 0, 6), 2);
        p
    }

    fn run_through(p: &mut IntTelemetryProgram, frame: &mut Frame, now: u64, qdepth: u32) {
        let v = p.ingress(frame, &IngressCtx { now_ns: now, switch_id: 42, ingress_port: 0 });
        let IngressVerdict::Forward(port) = v else { panic!("expected forward, got {v:?}") };
        p.on_enqueue(frame, &EnqueueCtx { now_ns: now, port, qdepth_after_pkts: qdepth });
        p.egress(
            frame,
            &EgressCtx {
                now_ns: now + 1_000,
                switch_id: 42,
                egress_port: port,
                qdepth_at_deq_pkts: qdepth.saturating_sub(1),
            },
        );
    }

    #[test]
    fn regular_packets_are_untouched_but_observed() {
        let mut p = program(true);
        let mut f = data_frame();
        let original_len = f.wire_len();
        run_through(&mut p, &mut f, 1_000_000, 7);
        assert_eq!(f.wire_len(), original_len, "no INT padding on production traffic");
        assert_eq!(p.registers().array(IntTelemetryProgram::REG_MAX_QLEN).read(2), 7);
    }

    #[test]
    fn probe_harvests_and_resets_register() {
        let mut p = program(true);

        // Two data packets build up the register.
        let mut d1 = data_frame();
        run_through(&mut p, &mut d1, 1_000, 5);
        let mut d2 = data_frame();
        run_through(&mut p, &mut d2, 2_000, 12);

        // Probe sent at ts=0, arrives at ingress at now=10_000_000.
        let mut probe = probe_frame(3, 0);
        run_through(&mut p, &mut probe, 10_000_000, 13);

        let parsed = ParsedPacket::parse(&probe.bytes).unwrap();
        let payload = parsed.probe_payload(&probe.bytes).unwrap();
        assert_eq!(payload.int.hop_count(), 1);
        let rec = payload.int.records[0];
        assert_eq!(rec.switch_id, 42);
        // max over {5, 12, 13(the probe itself)} = 13
        assert_eq!(rec.max_qlen_pkts, 13);
        assert_eq!(rec.link_latency_ns, 10_000_000, "now - origin sent_ts");
        assert_eq!(rec.egress_ts_ns, 10_001_000);

        // Register was reset by the harvest.
        assert_eq!(p.registers().array(IntTelemetryProgram::REG_MAX_QLEN).read(2), 0);
    }

    #[test]
    fn second_switch_chains_link_latency_from_first() {
        let mut s1 = program(true);
        let mut s2 = IntTelemetryProgram::new(IntProgramConfig {
            switch_id: 43,
            num_ports: 4,
            int_enabled: true,
        });
        s2.install_host_route(Ipv4Addr::new(10, 0, 0, 6), 1);

        let mut probe = probe_frame(3, 0);
        run_through(&mut s1, &mut probe, 10_000_000, 1);
        probe.meta.clear_per_hop(); // leaving switch 1

        // Arrives at s2 after a 10 ms link.
        let egress_s1 = 10_001_000;
        let arrive_s2 = egress_s1 + 10_000_000;
        let v = s2.ingress(
            &mut probe,
            &IngressCtx { now_ns: arrive_s2, switch_id: 43, ingress_port: 3 },
        );
        let IngressVerdict::Forward(port) = v else { panic!() };
        s2.on_enqueue(&probe, &EnqueueCtx { now_ns: arrive_s2, port, qdepth_after_pkts: 1 });
        s2.egress(
            &mut probe,
            &EgressCtx {
                now_ns: arrive_s2 + 500,
                switch_id: 43,
                egress_port: port,
                qdepth_at_deq_pkts: 0,
            },
        );

        let parsed = ParsedPacket::parse(&probe.bytes).unwrap();
        let payload = parsed.probe_payload(&probe.bytes).unwrap();
        assert_eq!(payload.int.hop_count(), 2);
        let rec2 = payload.int.records[1];
        assert_eq!(rec2.switch_id, 43);
        assert_eq!(rec2.link_latency_ns, 10_000_000, "s1→s2 link latency measured exactly");
        assert_eq!(rec2.ingress_port, 3);
        let adj: Vec<_> = payload.int.adjacencies().collect();
        assert_eq!(adj, vec![(42, 43)]);
    }

    #[test]
    fn int_disabled_forwards_probes_unaugmented() {
        let mut p = program(false);
        let mut probe = probe_frame(3, 0);
        let before_len = probe.wire_len();
        run_through(&mut p, &mut probe, 5_000_000, 9);
        assert_eq!(probe.wire_len(), before_len);
        let parsed = ParsedPacket::parse(&probe.bytes).unwrap();
        assert_eq!(parsed.probe_payload(&probe.bytes).unwrap().int.hop_count(), 0);
        assert_eq!(p.registers().array(IntTelemetryProgram::REG_MAX_QLEN).read(2), 0);
    }

    #[test]
    fn redeparsed_probe_has_valid_lengths() {
        let mut p = program(true);
        let mut probe = probe_frame(3, 0);
        run_through(&mut p, &mut probe, 1_000, 1);
        let parsed = ParsedPacket::parse(&probe.bytes).unwrap();
        let udp = parsed.udp().unwrap();
        assert_eq!(udp.payload_len(), parsed.payload(&probe.bytes).len());
        let ip = parsed.ip.unwrap();
        assert_eq!(ip.total_len as usize, probe.bytes.len() - EthernetHeader::LEN);
    }

    #[test]
    fn tracing_buffers_harvest_and_reset_events() {
        let mut p = program(true);
        p.set_tracing(true);

        let mut d = data_frame();
        run_through(&mut p, &mut d, 1_000, 5);
        let mut probe = probe_frame(3, 0);
        run_through(&mut p, &mut probe, 10_000_000, 6);

        let mut out = Vec::new();
        p.drain_trace(&mut out);
        assert_eq!(out.len(), 2, "one harvest + one reset per probe");
        assert!(matches!(
            out[0].kind,
            TraceKind::ProbeHarvest { switch: 42, port: 2, max_qlen_pkts: 6 }
        ));
        assert!(matches!(
            out[1].kind,
            TraceKind::RegisterReset { switch: 42, register: "max_qlen", port: 2 }
        ));

        // Drained: a second drain yields nothing; disabling clears.
        let mut again = Vec::new();
        p.drain_trace(&mut again);
        assert!(again.is_empty());
        p.set_tracing(false);
        let mut probe2 = probe_frame(3, 0);
        run_through(&mut p, &mut probe2, 20_000_000, 1);
        p.drain_trace(&mut again);
        assert!(again.is_empty(), "no buffering while tracing is off");
    }

    #[test]
    fn probe_grows_by_exactly_one_record_per_switch() {
        let mut p = program(true);
        let mut probe = probe_frame(3, 0);
        let len0 = probe.wire_len();
        run_through(&mut p, &mut probe, 1_000, 1);
        assert_eq!(probe.wire_len(), len0 + IntRecord::LEN);
    }
}
