//! The packet buffer a data-plane program operates on.

use bytes::BytesMut;
use int_packet::{ParsedPacket, Result};

/// Per-packet user metadata, the analogue of P4 `metadata` structs: scratch
/// state that travels with the packet between pipeline stages of one switch
/// and is *not* serialized onto the wire.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrameMeta {
    /// Port this packet entered the current switch on.
    pub ingress_port: Option<u16>,
    /// Link latency measured at ingress for probe packets
    /// (`now - upstream_egress_ts`), ns.
    pub measured_link_latency_ns: Option<u64>,
    /// Egress-queue depth observed when this packet was enqueued (packets,
    /// including this one) — BMv2's `enq_qdepth`.
    pub enq_qdepth_pkts: Option<u32>,
    /// Monotonically assigned id for tracing packets across hops.
    pub trace_id: u64,
}

impl FrameMeta {
    /// Reset the per-switch fields when a packet leaves a device. The
    /// `trace_id` survives because it identifies the packet, not the hop.
    pub fn clear_per_hop(&mut self) {
        self.ingress_port = None;
        self.measured_link_latency_ns = None;
        self.enq_qdepth_pkts = None;
    }
}

/// A full Ethernet frame plus pipeline metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Raw frame bytes (Ethernet header first).
    pub bytes: BytesMut,
    /// Per-packet metadata (zeroed between switches).
    pub meta: FrameMeta,
}

impl Frame {
    /// Wrap raw frame bytes.
    pub fn new(bytes: BytesMut) -> Self {
        Frame { bytes, meta: FrameMeta::default() }
    }

    /// Wire length in bytes (what occupies link capacity).
    pub fn wire_len(&self) -> usize {
        self.bytes.len()
    }

    /// Parse the headers (convenience over [`ParsedPacket::parse`]).
    pub fn parse(&self) -> Result<ParsedPacket> {
        ParsedPacket::parse(&self.bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use int_packet::PacketBuilder;
    use std::net::Ipv4Addr;

    #[test]
    fn wire_len_matches_bytes() {
        let b = PacketBuilder::between(1, Ipv4Addr::new(10, 0, 0, 1), 2, Ipv4Addr::new(10, 0, 0, 2))
            .udp(1, 2, &[0u8; 50]);
        let f = Frame::new(b);
        assert_eq!(f.wire_len(), 14 + 20 + 8 + 50);
        assert!(f.parse().is_ok());
    }

    #[test]
    fn clear_per_hop_keeps_trace_id() {
        let mut m = FrameMeta {
            ingress_port: Some(3),
            measured_link_latency_ns: Some(10),
            enq_qdepth_pkts: Some(5),
            trace_id: 99,
        };
        m.clear_per_hop();
        assert_eq!(m, FrameMeta { trace_id: 99, ..FrameMeta::default() });
    }
}
