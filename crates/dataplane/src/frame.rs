//! The packet buffer a data-plane program operates on.

use bytes::BytesMut;
use int_packet::{Ipv4Header, ParsedPacket, Result};

/// Per-packet user metadata, the analogue of P4 `metadata` structs: scratch
/// state that travels with the packet between pipeline stages of one switch
/// and is *not* serialized onto the wire.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrameMeta {
    /// Port this packet entered the current switch on.
    pub ingress_port: Option<u16>,
    /// Link latency measured at ingress for probe packets
    /// (`now - upstream_egress_ts`), ns.
    pub measured_link_latency_ns: Option<u64>,
    /// Egress-queue depth observed when this packet was enqueued (packets,
    /// including this one) — BMv2's `enq_qdepth`.
    pub enq_qdepth_pkts: Option<u32>,
    /// Monotonically assigned id for tracing packets across hops.
    pub trace_id: u64,
}

impl FrameMeta {
    /// Reset the per-switch fields when a packet leaves a device. The
    /// `trace_id` survives because it identifies the packet, not the hop.
    pub fn clear_per_hop(&mut self) {
        self.ingress_port = None;
        self.measured_link_latency_ns = None;
        self.enq_qdepth_pkts = None;
    }
}

/// A full Ethernet frame plus pipeline metadata.
///
/// The frame memoizes its parse: the first [`Frame::parsed`] call runs the
/// header parser and caches the result, so switch ingress, egress, traffic
/// accounting, and host delivery all share one parse per hop instead of
/// re-walking the headers. Code that mutates `bytes` directly must call
/// [`Frame::invalidate_parse`] (length changes are detected and re-parsed
/// automatically; same-length header rewrites are not).
#[derive(Debug, Clone)]
pub struct Frame {
    /// Raw frame bytes (Ethernet header first).
    pub bytes: BytesMut,
    /// Per-packet metadata (zeroed between switches).
    pub meta: FrameMeta,
    /// Memoized `(bytes.len() at parse time, parsed view)`.
    cache: Option<(usize, ParsedPacket)>,
}

/// Equality is over wire bytes and metadata; the parse cache is derived
/// state and never observable.
impl PartialEq for Frame {
    fn eq(&self, other: &Self) -> bool {
        self.bytes == other.bytes && self.meta == other.meta
    }
}
impl Eq for Frame {}

impl Frame {
    /// Wrap raw frame bytes.
    pub fn new(bytes: BytesMut) -> Self {
        Frame { bytes, meta: FrameMeta::default(), cache: None }
    }

    /// Wire length in bytes (what occupies link capacity).
    pub fn wire_len(&self) -> usize {
        self.bytes.len()
    }

    /// Parse the headers (convenience over [`ParsedPacket::parse`]).
    /// Uncached; prefer [`Frame::parsed`] where `&mut self` is available.
    pub fn parse(&self) -> Result<ParsedPacket> {
        ParsedPacket::parse(&self.bytes)
    }

    /// Parse the headers once and memoize. A cached view is reused only
    /// while `bytes.len()` is unchanged, so payload-growing rewrites (probe
    /// augmentation) self-heal even without an explicit invalidation.
    pub fn parsed(&mut self) -> Result<ParsedPacket> {
        if let Some((len, p)) = self.cache {
            if len == self.bytes.len() {
                return Ok(p);
            }
        }
        let p = ParsedPacket::parse(&self.bytes)?;
        self.cache = Some((self.bytes.len(), p));
        Ok(p)
    }

    /// Drop the memoized parse after mutating `bytes` in place.
    pub fn invalidate_parse(&mut self) {
        self.cache = None;
    }

    /// Mutable view of the cached IPv4 header, for callers that patch the
    /// raw bytes and keep the memoized parse in sync (e.g. TTL decrement).
    pub fn cached_ip_mut(&mut self) -> Option<&mut Ipv4Header> {
        self.cache.as_mut().and_then(|(_, p)| p.ip.as_mut())
    }

    /// Reset to an empty frame for buffer reuse: contents and metadata are
    /// cleared, the byte buffer's allocation is kept.
    pub fn reset_for_reuse(&mut self) {
        self.bytes.clear();
        self.meta = FrameMeta::default();
        self.cache = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use int_packet::PacketBuilder;
    use std::net::Ipv4Addr;

    #[test]
    fn wire_len_matches_bytes() {
        let b = PacketBuilder::between(1, Ipv4Addr::new(10, 0, 0, 1), 2, Ipv4Addr::new(10, 0, 0, 2))
            .udp(1, 2, &[0u8; 50]);
        let f = Frame::new(b);
        assert_eq!(f.wire_len(), 14 + 20 + 8 + 50);
        assert!(f.parse().is_ok());
    }

    fn udp_frame(payload: &[u8]) -> Frame {
        Frame::new(
            PacketBuilder::between(1, Ipv4Addr::new(10, 0, 0, 1), 2, Ipv4Addr::new(10, 0, 0, 2))
                .udp(1, 2, payload),
        )
    }

    #[test]
    fn parsed_memoizes_and_matches_fresh_parse() {
        let mut f = udp_frame(&[7u8; 32]);
        let first = f.parsed().unwrap();
        let again = f.parsed().unwrap();
        assert_eq!(first.payload_offset, again.payload_offset);
        let fresh = f.parse().unwrap();
        assert_eq!(fresh.ip.unwrap().ttl, first.ip.unwrap().ttl);
    }

    #[test]
    fn length_change_self_heals_the_cache() {
        let mut f = udp_frame(&[1u8; 10]);
        let before = f.parsed().unwrap();
        // Rewrite with a longer payload — as probe augmentation does.
        f.bytes =
            PacketBuilder::between(1, Ipv4Addr::new(10, 0, 0, 1), 2, Ipv4Addr::new(10, 0, 0, 2))
                .udp(1, 2, &[1u8; 40]);
        let after = f.parsed().unwrap();
        assert_eq!(before.ip.unwrap().total_len, 20 + 8 + 10);
        assert_eq!(after.ip.unwrap().total_len, 20 + 8 + 40, "cache re-parsed on length change");
    }

    #[test]
    fn cached_ip_mut_patches_the_memoized_view() {
        let mut f = udp_frame(&[0u8; 8]);
        let ttl = f.parsed().unwrap().ip.unwrap().ttl;
        f.cached_ip_mut().unwrap().ttl = ttl - 1;
        assert_eq!(f.parsed().unwrap().ip.unwrap().ttl, ttl - 1);
        f.invalidate_parse();
        // After invalidation the view comes from the (unchanged) bytes.
        assert_eq!(f.parsed().unwrap().ip.unwrap().ttl, ttl);
    }

    #[test]
    fn reset_for_reuse_clears_everything() {
        let mut f = udp_frame(&[9u8; 64]);
        f.meta.trace_id = 5;
        let _ = f.parsed();
        f.reset_for_reuse();
        assert!(f.bytes.is_empty());
        assert_eq!(f.meta, FrameMeta::default());
        assert!(f.parse().is_err(), "empty frame no longer parses");
    }

    #[test]
    fn clear_per_hop_keeps_trace_id() {
        let mut m = FrameMeta {
            ingress_port: Some(3),
            measured_link_latency_ns: Some(10),
            enq_qdepth_pkts: Some(5),
            trace_id: 99,
        };
        m.clear_per_hop();
        assert_eq!(m, FrameMeta { trace_id: 99, ..FrameMeta::default() });
    }
}
