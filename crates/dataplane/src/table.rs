//! Match-action tables — the P4 `table { key; actions; }` construct.
//!
//! A table is declared with a [`MatchKind`] and holds entries installed by
//! the control plane. Lookup takes the packet's key bytes and returns the
//! bound action data (generic `A`), falling back to the default action.
//!
//! Three match kinds are supported, mirroring `p4runtime`:
//! * **exact** — byte-for-byte equality,
//! * **lpm** — longest-prefix match on a big-endian key (IPv4 forwarding),
//! * **ternary** — value/mask with an explicit priority.
//!
//! Lookup is the per-packet-per-hop hot path, so each kind keeps a
//! specialized index beside the entry list (DESIGN.md §5.4): exact keys
//! hash into an open-addressed table, LPM resolves as exact probes per
//! prefix length from longest to shortest (the standard software-LPM
//! scheme), and ternary scans entries in (priority, insertion) order. The
//! pre-index linear scan survives as [`MatchActionTable::lookup_linear`],
//! the semantics oracle the property tests pin `lookup` against.

use serde::{Deserialize, Serialize};

/// How a table matches its key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MatchKind {
    /// Exact equality on the full key.
    Exact,
    /// Longest-prefix match.
    Lpm,
    /// Value/mask match with priority.
    Ternary,
}

/// One installed key.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Key {
    /// Exact key bytes.
    Exact(Vec<u8>),
    /// LPM: value plus prefix length in bits.
    Lpm {
        /// Key value (only the first `prefix_len` bits are significant).
        value: Vec<u8>,
        /// Number of leading significant bits.
        prefix_len: u16,
    },
    /// Ternary: value, bit mask, and match priority (higher wins).
    Ternary {
        /// Key value.
        value: Vec<u8>,
        /// Significant-bit mask (same length as `value`).
        mask: Vec<u8>,
        /// Priority among overlapping entries; higher wins.
        priority: i32,
    },
}

impl Key {
    fn kind(&self) -> MatchKind {
        match self {
            Key::Exact(_) => MatchKind::Exact,
            Key::Lpm { .. } => MatchKind::Lpm,
            Key::Ternary { .. } => MatchKind::Ternary,
        }
    }

    /// Does this key match `bytes`?
    fn matches(&self, bytes: &[u8]) -> bool {
        match self {
            Key::Exact(v) => v == bytes,
            Key::Lpm { value, prefix_len } => {
                if value.len() != bytes.len() {
                    return false;
                }
                prefix_matches(value, bytes, *prefix_len)
            }
            Key::Ternary { value, mask, .. } => {
                if value.len() != bytes.len() || mask.len() != bytes.len() {
                    return false;
                }
                value
                    .iter()
                    .zip(mask)
                    .zip(bytes)
                    .all(|((v, m), b)| (v & m) == (b & m))
            }
        }
    }

    /// Specificity used to pick the winner among matches: prefix length for
    /// LPM, priority for ternary, `i64::MAX` for exact.
    fn specificity(&self) -> i64 {
        match self {
            Key::Exact(_) => i64::MAX,
            Key::Lpm { prefix_len, .. } => *prefix_len as i64,
            Key::Ternary { priority, .. } => *priority as i64,
        }
    }
}

fn prefix_matches(value: &[u8], bytes: &[u8], prefix_len: u16) -> bool {
    let full = (prefix_len / 8) as usize;
    let rem = (prefix_len % 8) as u32;
    if full > value.len() {
        return false;
    }
    if value[..full] != bytes[..full] {
        return false;
    }
    if rem == 0 || full >= value.len() {
        return true;
    }
    let mask = !(0xFFu8 >> rem);
    (value[full] & mask) == (bytes[full] & mask)
}

/// Longest LPM key the index can mask into a stack buffer. Longer keys
/// (none exist in practice — IPv4 is 4 bytes) drop the whole table to the
/// reference linear path rather than risk a semantics split.
const MAX_LPM_KEY: usize = 64;

/// Write the first `prefix_len` bits of `bytes` into `buf`, zeroing the
/// rest; returns the masked length (= `bytes.len()`). Mirrors
/// [`prefix_matches`]: equality of masked forms ⟺ a prefix match, for any
/// `prefix_len` up to and past the key width.
fn mask_into(buf: &mut [u8; MAX_LPM_KEY], bytes: &[u8], prefix_len: u16) -> usize {
    let n = bytes.len();
    let full = ((prefix_len / 8) as usize).min(n);
    buf[..full].copy_from_slice(&bytes[..full]);
    buf[full..n].fill(0);
    let rem = (prefix_len % 8) as u32;
    if rem != 0 && full < n {
        buf[full] = bytes[full] & !(0xFFu8 >> rem);
    }
    n
}

fn hash_bytes(bytes: &[u8]) -> u64 {
    // FNV-1a: tiny keys, no DoS surface (the control plane installs them).
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Open-addressed byte-slice → entry-index map (linear probing, power-of-
/// two capacity, load ≤ 3/4). Insert-only; the table rebuilds it on
/// removal, which is a control-plane-rate event.
#[derive(Debug, Clone, Default)]
struct ByteIndex {
    /// (key bytes, entry index) in insertion order; `slots` refers here.
    pairs: Vec<(Box<[u8]>, u32)>,
    /// Probe array of `pair index + 1`; 0 = empty.
    slots: Vec<u32>,
}

impl ByteIndex {
    fn get(&self, key: &[u8]) -> Option<u32> {
        if self.pairs.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = hash_bytes(key) as usize & mask;
        loop {
            match self.slots[i] {
                0 => return None,
                s => {
                    let (k, e) = &self.pairs[s as usize - 1];
                    if &k[..] == key {
                        return Some(*e);
                    }
                }
            }
            i = (i + 1) & mask;
        }
    }

    /// First-wins insert: keeps the existing binding if `key` is present
    /// (matching the reference scan, where the earliest entry wins ties).
    fn insert_first(&mut self, key: &[u8], entry: u32) {
        if self.get(key).is_some() {
            return;
        }
        self.pairs.push((key.into(), entry));
        if self.pairs.len() * 4 > self.slots.len() * 3 {
            self.grow();
        } else {
            self.fill_slot(self.pairs.len() - 1);
        }
    }

    fn fill_slot(&mut self, pair: usize) {
        let mask = self.slots.len() - 1;
        let mut i = hash_bytes(&self.pairs[pair].0) as usize & mask;
        while self.slots[i] != 0 {
            i = (i + 1) & mask;
        }
        self.slots[i] = pair as u32 + 1;
    }

    fn grow(&mut self) {
        self.slots = vec![0; (self.slots.len() * 2).max(8)];
        for p in 0..self.pairs.len() {
            self.fill_slot(p);
        }
    }
}

/// Kind-specialized lookup index over the entry list.
#[derive(Debug, Clone)]
enum Index {
    /// Full key bytes → entry.
    Exact(ByteIndex),
    /// Per raw prefix length, longest first: masked key bytes → entry.
    Lpm(Vec<(u16, ByteIndex)>),
    /// Entry indices in (priority descending, insertion ascending) order;
    /// lookup scans and takes the first match, as real TCAM rules demand.
    Ternary(Vec<u32>),
}

impl Index {
    fn empty(kind: MatchKind) -> Index {
        match kind {
            MatchKind::Exact => Index::Exact(ByteIndex::default()),
            MatchKind::Lpm => Index::Lpm(Vec::new()),
            MatchKind::Ternary => Index::Ternary(Vec::new()),
        }
    }
}

/// A match-action table with entries bound to action data `A`.
#[derive(Debug, Clone)]
pub struct MatchActionTable<A> {
    name: &'static str,
    kind: MatchKind,
    /// Entries in insertion order; `index` holds the lookup structure.
    entries: Vec<(Key, A)>,
    default_action: Option<A>,
    index: Index,
    /// Set when an entry exceeds what the index can represent (an LPM key
    /// longer than [`MAX_LPM_KEY`]): every operation then takes the
    /// reference linear path.
    linear_only: bool,
}

impl<A: Clone> MatchActionTable<A> {
    /// Declare an empty table.
    pub fn new(name: &'static str, kind: MatchKind) -> Self {
        MatchActionTable {
            name,
            kind,
            entries: Vec::new(),
            default_action: None,
            index: Index::empty(kind),
            linear_only: false,
        }
    }

    /// Table name (diagnostics).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of installed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries are installed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Set the action used when no entry matches.
    pub fn set_default(&mut self, action: A) {
        self.default_action = Some(action);
    }

    /// Install an entry. Panics if the key kind does not match the table's
    /// declared kind — that is a control-plane programming error, the same
    /// class of failure p4runtime rejects at insert time.
    pub fn insert(&mut self, key: Key, action: A) {
        assert_eq!(
            key.kind(),
            self.kind,
            "key kind mismatch inserting into table `{}`",
            self.name
        );
        // Replace an identical key in place (p4runtime MODIFY semantics).
        if let Some(i) = self.find_identical(&key) {
            self.entries[i].1 = action;
            return;
        }
        self.entries.push((key, action));
        let idx = self.entries.len() as u32 - 1;
        Self::index_entry(&mut self.index, &mut self.linear_only, &self.entries, idx);
    }

    /// Position of an entry whose key equals `key` exactly, if any. Served
    /// from the index when it can answer authoritatively; the scan fallback
    /// covers shadowed and unindexed keys (control-plane-rate events).
    fn find_identical(&self, key: &Key) -> Option<usize> {
        if self.linear_only {
            return self.entries.iter().position(|(k, _)| k == key);
        }
        match (&self.index, key) {
            (Index::Exact(map), Key::Exact(v)) => map.get(v).map(|e| e as usize),
            (Index::Lpm(buckets), Key::Lpm { value, prefix_len }) => {
                if value.len() > MAX_LPM_KEY || (prefix_len / 8) as usize > value.len() {
                    // Oversize or dead-prefix entries are not indexed.
                    return self.entries.iter().position(|(k, _)| k == key);
                }
                let (_, map) = buckets.iter().find(|(p, _)| p == prefix_len)?;
                let mut buf = [0u8; MAX_LPM_KEY];
                let n = mask_into(&mut buf, value, *prefix_len);
                let cand = map.get(&buf[..n])? as usize;
                if self.entries[cand].0 == *key {
                    Some(cand)
                } else {
                    // A same-prefix entry shadows this masked value; an
                    // identical key may still exist behind it.
                    self.entries.iter().position(|(k, _)| k == key)
                }
            }
            (Index::Ternary(_), _) => self.entries.iter().position(|(k, _)| k == key),
            _ => unreachable!("kind checked at insert"),
        }
    }

    /// File `entries[idx]` into the index. Associated fn so callers can
    /// split-borrow the table.
    fn index_entry(index: &mut Index, linear_only: &mut bool, entries: &[(Key, A)], idx: u32) {
        if *linear_only {
            return;
        }
        match (index, &entries[idx as usize].0) {
            (Index::Exact(map), Key::Exact(v)) => map.insert_first(v, idx),
            (Index::Lpm(buckets), Key::Lpm { value, prefix_len }) => {
                if value.len() > MAX_LPM_KEY {
                    *linear_only = true;
                    return;
                }
                if (prefix_len / 8) as usize > value.len() {
                    // `prefix_matches` rejects such entries unconditionally:
                    // nothing to index.
                    return;
                }
                let pos = buckets.partition_point(|(p, _)| *p > *prefix_len);
                if buckets.get(pos).is_none_or(|(p, _)| p != prefix_len) {
                    buckets.insert(pos, (*prefix_len, ByteIndex::default()));
                }
                let mut buf = [0u8; MAX_LPM_KEY];
                let n = mask_into(&mut buf, value, *prefix_len);
                buckets[pos].1.insert_first(&buf[..n], idx);
            }
            (Index::Ternary(order), Key::Ternary { priority, .. }) => {
                // Positional insert keeping (priority desc, insertion asc):
                // `idx` is the newest entry, so it goes after every entry
                // of equal or higher priority. Replaces the old full
                // re-sort per insert (O(n² log n) to build a table).
                let pos = order.partition_point(|&e| {
                    ternary_priority(&entries[e as usize].0) >= *priority
                });
                order.insert(pos, idx);
            }
            _ => unreachable!("kind checked at insert"),
        }
    }

    fn rebuild_index(&mut self) {
        self.index = Index::empty(self.kind);
        self.linear_only = false;
        for idx in 0..self.entries.len() as u32 {
            Self::index_entry(&mut self.index, &mut self.linear_only, &self.entries, idx);
        }
    }

    /// Remove an entry by exact key equality; returns true if removed.
    pub fn remove(&mut self, key: &Key) -> bool {
        let before = self.entries.len();
        self.entries.retain(|(k, _)| k != key);
        if self.entries.len() == before {
            return false;
        }
        // Entry indices shifted: rebuild (removal is control-plane-rate).
        self.rebuild_index();
        true
    }

    /// Look up the action for `key_bytes`: most specific matching entry, or
    /// the default action. Served from the kind-specialized index; agrees
    /// with [`lookup_linear`](Self::lookup_linear) on every probe (pinned
    /// by property tests).
    pub fn lookup(&self, key_bytes: &[u8]) -> Option<&A> {
        if self.linear_only {
            return self.lookup_linear(key_bytes);
        }
        let hit = match &self.index {
            Index::Exact(map) => map.get(key_bytes).map(|e| &self.entries[e as usize].1),
            Index::Lpm(buckets) => {
                if key_bytes.len() > MAX_LPM_KEY {
                    return self.lookup_linear(key_bytes);
                }
                let mut buf = [0u8; MAX_LPM_KEY];
                let mut hit = None;
                for (plen, map) in buckets {
                    let n = mask_into(&mut buf, key_bytes, *plen);
                    if let Some(e) = map.get(&buf[..n]) {
                        hit = Some(&self.entries[e as usize].1);
                        break;
                    }
                }
                hit
            }
            Index::Ternary(order) => order
                .iter()
                .find(|&&e| self.entries[e as usize].0.matches(key_bytes))
                .map(|&e| &self.entries[e as usize].1),
        };
        hit.or(self.default_action.as_ref())
    }

    /// Reference lookup: linear scan over all entries tracking the most
    /// specific match (earliest-inserted wins ties) — the pre-index
    /// implementation. Kept public as the semantics oracle for property
    /// tests and as the bench baseline the indexed path is measured
    /// against.
    pub fn lookup_linear(&self, key_bytes: &[u8]) -> Option<&A> {
        let mut best: Option<(i64, usize)> = None;
        for (i, (k, _)) in self.entries.iter().enumerate() {
            if k.matches(key_bytes) {
                let s = k.specificity();
                if best.is_none_or(|(bs, _)| s > bs) {
                    best = Some((s, i));
                }
            }
        }
        best.map(|(_, i)| &self.entries[i].1).or(self.default_action.as_ref())
    }
}

fn ternary_priority(k: &Key) -> i32 {
    match k {
        Key::Ternary { priority, .. } => *priority,
        _ => unreachable!("ternary index holds only ternary keys"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match() {
        let mut t = MatchActionTable::new("t", MatchKind::Exact);
        t.insert(Key::Exact(vec![10, 0, 0, 1]), "to-h1");
        t.insert(Key::Exact(vec![10, 0, 0, 2]), "to-h2");
        assert_eq!(t.lookup(&[10, 0, 0, 2]), Some(&"to-h2"));
        assert_eq!(t.lookup(&[10, 0, 0, 3]), None);
    }

    #[test]
    fn lpm_longest_prefix_wins() {
        let mut t = MatchActionTable::new("fwd", MatchKind::Lpm);
        t.insert(Key::Lpm { value: vec![10, 0, 0, 0], prefix_len: 8 }, 1u16);
        t.insert(Key::Lpm { value: vec![10, 1, 0, 0], prefix_len: 16 }, 2u16);
        t.insert(Key::Lpm { value: vec![10, 1, 2, 0], prefix_len: 24 }, 3u16);
        assert_eq!(t.lookup(&[10, 9, 9, 9]), Some(&1));
        assert_eq!(t.lookup(&[10, 1, 9, 9]), Some(&2));
        assert_eq!(t.lookup(&[10, 1, 2, 9]), Some(&3));
        assert_eq!(t.lookup(&[11, 0, 0, 1]), None);
    }

    #[test]
    fn lpm_non_byte_aligned_prefix() {
        let mut t = MatchActionTable::new("fwd", MatchKind::Lpm);
        // 10.0.0.0/12 covers 10.0.x.x – 10.15.x.x
        t.insert(Key::Lpm { value: vec![10, 0, 0, 0], prefix_len: 12 }, ());
        assert!(t.lookup(&[10, 15, 0, 1]).is_some());
        assert!(t.lookup(&[10, 16, 0, 1]).is_none());
    }

    #[test]
    fn lpm_zero_prefix_is_catch_all() {
        let mut t = MatchActionTable::new("fwd", MatchKind::Lpm);
        t.insert(Key::Lpm { value: vec![0, 0, 0, 0], prefix_len: 0 }, "default-route");
        assert_eq!(t.lookup(&[192, 168, 1, 1]), Some(&"default-route"));
    }

    #[test]
    fn ternary_priority_breaks_overlap() {
        let mut t = MatchActionTable::new("acl", MatchKind::Ternary);
        t.insert(
            Key::Ternary { value: vec![10, 0, 0, 0], mask: vec![255, 0, 0, 0], priority: 1 },
            "allow",
        );
        t.insert(
            Key::Ternary { value: vec![10, 0, 0, 99], mask: vec![255, 255, 255, 255], priority: 9 },
            "deny",
        );
        assert_eq!(t.lookup(&[10, 0, 0, 99]), Some(&"deny"));
        assert_eq!(t.lookup(&[10, 0, 0, 98]), Some(&"allow"));
    }

    #[test]
    fn default_action_fires_when_nothing_matches() {
        let mut t = MatchActionTable::new("t", MatchKind::Exact);
        t.set_default("drop");
        assert_eq!(t.lookup(&[1]), Some(&"drop"));
    }

    #[test]
    fn reinsert_same_key_modifies() {
        let mut t = MatchActionTable::new("t", MatchKind::Exact);
        t.insert(Key::Exact(vec![1]), 1);
        t.insert(Key::Exact(vec![1]), 2);
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(&[1]), Some(&2));
    }

    #[test]
    fn remove_entry() {
        let mut t = MatchActionTable::new("t", MatchKind::Exact);
        let k = Key::Exact(vec![1]);
        t.insert(k.clone(), 1);
        assert!(t.remove(&k));
        assert!(!t.remove(&k));
        assert!(t.lookup(&[1]).is_none());
    }

    #[test]
    #[should_panic(expected = "key kind mismatch")]
    fn wrong_kind_insert_panics() {
        let mut t = MatchActionTable::<u8>::new("t", MatchKind::Exact);
        t.insert(Key::Lpm { value: vec![1], prefix_len: 8 }, 0);
    }

    #[test]
    fn length_mismatch_never_matches() {
        let mut t = MatchActionTable::new("t", MatchKind::Lpm);
        t.insert(Key::Lpm { value: vec![10, 0, 0, 0], prefix_len: 8 }, ());
        assert!(t.lookup(&[10, 0]).is_none());
    }

    /// Interleaved insert / remove / lookup stays consistent — the
    /// regression test for the old behavior of re-sorting the whole entry
    /// vector per insert and for index staleness after removal.
    #[test]
    fn interleaved_insert_remove_lookup() {
        let mut t = MatchActionTable::new("fwd", MatchKind::Lpm);
        let k8 = Key::Lpm { value: vec![10, 0, 0, 0], prefix_len: 8 };
        let k16 = Key::Lpm { value: vec![10, 1, 0, 0], prefix_len: 16 };
        let k24 = Key::Lpm { value: vec![10, 1, 2, 0], prefix_len: 24 };
        t.insert(k8.clone(), 1);
        t.insert(k24.clone(), 3);
        assert_eq!(t.lookup(&[10, 1, 2, 9]), Some(&3));
        t.insert(k16.clone(), 2);
        assert_eq!(t.lookup(&[10, 1, 9, 9]), Some(&2));
        assert!(t.remove(&k24));
        assert_eq!(t.lookup(&[10, 1, 2, 9]), Some(&2), "falls back to /16 after /24 removal");
        t.insert(k24.clone(), 33);
        assert_eq!(t.lookup(&[10, 1, 2, 9]), Some(&33));
        t.insert(k16.clone(), 22); // MODIFY in place
        assert_eq!(t.len(), 3);
        assert_eq!(t.lookup(&[10, 1, 9, 9]), Some(&22));
        assert!(t.remove(&k8));
        assert!(t.remove(&k16));
        assert_eq!(t.lookup(&[10, 9, 9, 9]), None);
        assert_eq!(t.lookup(&[10, 1, 2, 9]), Some(&33));
    }

    /// Two same-prefix entries whose values differ only past the prefix
    /// alias to one masked key: the earliest wins lookups (as the
    /// reference scan dictates), and MODIFY still reaches the shadowed one.
    #[test]
    fn lpm_shadowed_same_prefix_entry() {
        let mut t = MatchActionTable::new("fwd", MatchKind::Lpm);
        t.insert(Key::Lpm { value: vec![10, 1, 2, 3], prefix_len: 8 }, 1);
        t.insert(Key::Lpm { value: vec![10, 9, 9, 9], prefix_len: 8 }, 2);
        assert_eq!(t.len(), 2, "distinct keys, both installed");
        assert_eq!(t.lookup(&[10, 0, 0, 1]), Some(&1), "earliest same-mask entry wins");
        assert_eq!(t.lookup(&[10, 0, 0, 1]), t.lookup_linear(&[10, 0, 0, 1]));
        t.insert(Key::Lpm { value: vec![10, 9, 9, 9], prefix_len: 8 }, 22);
        assert_eq!(t.len(), 2, "MODIFY hit the shadowed entry");
        t.remove(&Key::Lpm { value: vec![10, 1, 2, 3], prefix_len: 8 });
        assert_eq!(t.lookup(&[10, 0, 0, 1]), Some(&22), "shadowed entry surfaces after removal");
    }

    /// A prefix length past the key width can never match (mirroring
    /// `prefix_matches`), indexed or not.
    #[test]
    fn lpm_dead_prefix_never_matches() {
        let mut t = MatchActionTable::new("fwd", MatchKind::Lpm);
        t.insert(Key::Lpm { value: vec![10, 0], prefix_len: 24 }, ());
        assert_eq!(t.lookup(&[10, 0]), None);
        assert_eq!(t.lookup_linear(&[10, 0]), None);
        // But a full-width prefix (with stray trailing bits) matches whole.
        t.insert(Key::Lpm { value: vec![10, 1], prefix_len: 16 }, ());
        assert!(t.lookup(&[10, 1]).is_some());
    }

    /// Keys longer than the index's mask buffer drop the table to the
    /// linear path without changing answers.
    #[test]
    fn lpm_oversize_key_falls_back_to_linear() {
        let mut t = MatchActionTable::new("fwd", MatchKind::Lpm);
        let long = vec![7u8; MAX_LPM_KEY + 8];
        t.insert(Key::Lpm { value: long.clone(), prefix_len: 16 }, 1);
        t.insert(Key::Lpm { value: vec![10, 0, 0, 0], prefix_len: 8 }, 2);
        let mut probe = vec![0u8; MAX_LPM_KEY + 8];
        probe[0] = 7;
        probe[1] = 7;
        assert_eq!(t.lookup(&probe), Some(&1));
        assert_eq!(t.lookup(&[10, 5, 5, 5]), Some(&2));
        assert_eq!(t.lookup(&probe), t.lookup_linear(&probe));
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        /// `lookup` (indexed) must agree with `lookup_linear` (the
        /// reference) on every probe.
        fn check_agreement(t: &MatchActionTable<u32>, probes: &[Vec<u8>]) {
            for p in probes {
                prop_assert_eq!(
                    t.lookup(p),
                    t.lookup_linear(p),
                    "indexed vs reference disagree on probe {:?}",
                    p
                );
            }
        }

        proptest! {
            /// Exact tables: random inserts (duplicate values exercise
            /// MODIFY), removes, and probes drawn from the same byte pool
            /// so hits are common.
            #[test]
            fn exact_agrees_with_reference(
                inserts in proptest::collection::vec((0u8..8, 0u8..8, 0u32..100), 1..60),
                removes in proptest::collection::vec(0usize..60, 0..12),
            ) {
                let mut t = MatchActionTable::new("t", MatchKind::Exact);
                let keys: Vec<Vec<u8>> =
                    inserts.iter().map(|&(a, b, _)| vec![a, b]).collect();
                let probes: Vec<Vec<u8>> = keys.iter().cloned()
                    .chain([vec![], vec![0], vec![0, 0, 0]])
                    .collect();
                for (i, &(a, b, act)) in inserts.iter().enumerate() {
                    t.insert(Key::Exact(vec![a, b]), act);
                    if i % 5 == 0 {
                        check_agreement(&t, &probes);
                    }
                }
                for &r in &removes {
                    t.remove(&Key::Exact(keys[r % keys.len()].clone()));
                }
                check_agreement(&t, &probes);
            }

            /// LPM tables: random values (non-canonical bits past the
            /// prefix included), prefix lengths past the key width
            /// included, interleaved removes; probes drawn from installed
            /// values plus mutations.
            #[test]
            fn lpm_agrees_with_reference(
                inserts in proptest::collection::vec(
                    (any::<[u8; 4]>(), 0u16..40, 0u32..100), 1..60),
                removes in proptest::collection::vec(0usize..60, 0..12),
                flips in proptest::collection::vec((0usize..60, 0u8..32), 0..20),
            ) {
                let mut t = MatchActionTable::new("fwd", MatchKind::Lpm);
                let mut probes: Vec<Vec<u8>> =
                    inserts.iter().map(|&(v, _, _)| v.to_vec()).collect();
                // Perturb single bits so shorter prefixes get exercised.
                for &(i, bit) in &flips {
                    let mut p = probes[i % probes.len()].clone();
                    p[bit as usize / 8] ^= 1 << (bit % 8);
                    probes.push(p);
                }
                probes.push(vec![10, 0]); // length mismatch
                for (i, &(v, plen, act)) in inserts.iter().enumerate() {
                    t.insert(Key::Lpm { value: v.to_vec(), prefix_len: plen }, act);
                    if i % 5 == 0 {
                        check_agreement(&t, &probes);
                    }
                }
                check_agreement(&t, &probes);
                for &r in &removes {
                    let (v, plen, _) = inserts[r % inserts.len()];
                    t.remove(&Key::Lpm { value: v.to_vec(), prefix_len: plen });
                }
                check_agreement(&t, &probes);
            }

            /// Ternary tables: random value/mask/priority triples
            /// (duplicate priorities exercise the insertion-order
            /// tie-break), interleaved removes.
            #[test]
            fn ternary_agrees_with_reference(
                inserts in proptest::collection::vec(
                    (any::<[u8; 2]>(), any::<[u8; 2]>(), 0i32..4, 0u32..100), 1..40),
                removes in proptest::collection::vec(0usize..40, 0..8),
                probes in proptest::collection::vec(any::<[u8; 2]>(), 1..30),
            ) {
                let mut t = MatchActionTable::new("acl", MatchKind::Ternary);
                let probes: Vec<Vec<u8>> = probes.iter().map(|p| p.to_vec())
                    .chain(inserts.iter().map(|&(v, _, _, _)| v.to_vec()))
                    .collect();
                for (i, &(v, m, prio, act)) in inserts.iter().enumerate() {
                    t.insert(
                        Key::Ternary {
                            value: v.to_vec(),
                            mask: m.to_vec(),
                            priority: prio,
                        },
                        act,
                    );
                    if i % 5 == 0 {
                        check_agreement(&t, &probes);
                    }
                }
                for &r in &removes {
                    let (v, m, prio, _) = &inserts[r % inserts.len()];
                    t.remove(&Key::Ternary {
                        value: v.to_vec(),
                        mask: m.to_vec(),
                        priority: *prio,
                    });
                }
                check_agreement(&t, &probes);
            }
        }
    }
}
