//! Match-action tables — the P4 `table { key; actions; }` construct.
//!
//! A table is declared with a [`MatchKind`] and holds entries installed by
//! the control plane. Lookup takes the packet's key bytes and returns the
//! bound action data (generic `A`), falling back to the default action.
//!
//! Three match kinds are supported, mirroring `p4runtime`:
//! * **exact** — byte-for-byte equality,
//! * **lpm** — longest-prefix match on a big-endian key (IPv4 forwarding),
//! * **ternary** — value/mask with an explicit priority.

use serde::{Deserialize, Serialize};

/// How a table matches its key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MatchKind {
    /// Exact equality on the full key.
    Exact,
    /// Longest-prefix match.
    Lpm,
    /// Value/mask match with priority.
    Ternary,
}

/// One installed key.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Key {
    /// Exact key bytes.
    Exact(Vec<u8>),
    /// LPM: value plus prefix length in bits.
    Lpm {
        /// Key value (only the first `prefix_len` bits are significant).
        value: Vec<u8>,
        /// Number of leading significant bits.
        prefix_len: u16,
    },
    /// Ternary: value, bit mask, and match priority (higher wins).
    Ternary {
        /// Key value.
        value: Vec<u8>,
        /// Significant-bit mask (same length as `value`).
        mask: Vec<u8>,
        /// Priority among overlapping entries; higher wins.
        priority: i32,
    },
}

impl Key {
    fn kind(&self) -> MatchKind {
        match self {
            Key::Exact(_) => MatchKind::Exact,
            Key::Lpm { .. } => MatchKind::Lpm,
            Key::Ternary { .. } => MatchKind::Ternary,
        }
    }

    /// Does this key match `bytes`?
    fn matches(&self, bytes: &[u8]) -> bool {
        match self {
            Key::Exact(v) => v == bytes,
            Key::Lpm { value, prefix_len } => {
                if value.len() != bytes.len() {
                    return false;
                }
                prefix_matches(value, bytes, *prefix_len)
            }
            Key::Ternary { value, mask, .. } => {
                if value.len() != bytes.len() || mask.len() != bytes.len() {
                    return false;
                }
                value
                    .iter()
                    .zip(mask)
                    .zip(bytes)
                    .all(|((v, m), b)| (v & m) == (b & m))
            }
        }
    }

    /// Specificity used to pick the winner among matches: prefix length for
    /// LPM, priority for ternary, `i64::MAX` for exact.
    fn specificity(&self) -> i64 {
        match self {
            Key::Exact(_) => i64::MAX,
            Key::Lpm { prefix_len, .. } => *prefix_len as i64,
            Key::Ternary { priority, .. } => *priority as i64,
        }
    }
}

fn prefix_matches(value: &[u8], bytes: &[u8], prefix_len: u16) -> bool {
    let full = (prefix_len / 8) as usize;
    let rem = (prefix_len % 8) as u32;
    if full > value.len() {
        return false;
    }
    if value[..full] != bytes[..full] {
        return false;
    }
    if rem == 0 || full >= value.len() {
        return true;
    }
    let mask = !(0xFFu8 >> rem);
    (value[full] & mask) == (bytes[full] & mask)
}

/// A match-action table with entries bound to action data `A`.
#[derive(Debug, Clone)]
pub struct MatchActionTable<A> {
    name: &'static str,
    kind: MatchKind,
    entries: Vec<(Key, A)>,
    default_action: Option<A>,
}

impl<A: Clone> MatchActionTable<A> {
    /// Declare an empty table.
    pub fn new(name: &'static str, kind: MatchKind) -> Self {
        MatchActionTable { name, kind, entries: Vec::new(), default_action: None }
    }

    /// Table name (diagnostics).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of installed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries are installed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Set the action used when no entry matches.
    pub fn set_default(&mut self, action: A) {
        self.default_action = Some(action);
    }

    /// Install an entry. Panics if the key kind does not match the table's
    /// declared kind — that is a control-plane programming error, the same
    /// class of failure p4runtime rejects at insert time.
    pub fn insert(&mut self, key: Key, action: A) {
        assert_eq!(
            key.kind(),
            self.kind,
            "key kind mismatch inserting into table `{}`",
            self.name
        );
        // Replace an identical key in place (p4runtime MODIFY semantics).
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = action;
            return;
        }
        self.entries.push((key, action));
        // Keep most-specific-first so lookup can take the first match.
        self.entries.sort_by_key(|(k, _)| std::cmp::Reverse(k.specificity()));
    }

    /// Remove an entry by exact key equality; returns true if removed.
    pub fn remove(&mut self, key: &Key) -> bool {
        let before = self.entries.len();
        self.entries.retain(|(k, _)| k != key);
        before != self.entries.len()
    }

    /// Look up the action for `key_bytes`: most specific matching entry, or
    /// the default action.
    pub fn lookup(&self, key_bytes: &[u8]) -> Option<&A> {
        self.entries
            .iter()
            .find(|(k, _)| k.matches(key_bytes))
            .map(|(_, a)| a)
            .or(self.default_action.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match() {
        let mut t = MatchActionTable::new("t", MatchKind::Exact);
        t.insert(Key::Exact(vec![10, 0, 0, 1]), "to-h1");
        t.insert(Key::Exact(vec![10, 0, 0, 2]), "to-h2");
        assert_eq!(t.lookup(&[10, 0, 0, 2]), Some(&"to-h2"));
        assert_eq!(t.lookup(&[10, 0, 0, 3]), None);
    }

    #[test]
    fn lpm_longest_prefix_wins() {
        let mut t = MatchActionTable::new("fwd", MatchKind::Lpm);
        t.insert(Key::Lpm { value: vec![10, 0, 0, 0], prefix_len: 8 }, 1u16);
        t.insert(Key::Lpm { value: vec![10, 1, 0, 0], prefix_len: 16 }, 2u16);
        t.insert(Key::Lpm { value: vec![10, 1, 2, 0], prefix_len: 24 }, 3u16);
        assert_eq!(t.lookup(&[10, 9, 9, 9]), Some(&1));
        assert_eq!(t.lookup(&[10, 1, 9, 9]), Some(&2));
        assert_eq!(t.lookup(&[10, 1, 2, 9]), Some(&3));
        assert_eq!(t.lookup(&[11, 0, 0, 1]), None);
    }

    #[test]
    fn lpm_non_byte_aligned_prefix() {
        let mut t = MatchActionTable::new("fwd", MatchKind::Lpm);
        // 10.0.0.0/12 covers 10.0.x.x – 10.15.x.x
        t.insert(Key::Lpm { value: vec![10, 0, 0, 0], prefix_len: 12 }, ());
        assert!(t.lookup(&[10, 15, 0, 1]).is_some());
        assert!(t.lookup(&[10, 16, 0, 1]).is_none());
    }

    #[test]
    fn lpm_zero_prefix_is_catch_all() {
        let mut t = MatchActionTable::new("fwd", MatchKind::Lpm);
        t.insert(Key::Lpm { value: vec![0, 0, 0, 0], prefix_len: 0 }, "default-route");
        assert_eq!(t.lookup(&[192, 168, 1, 1]), Some(&"default-route"));
    }

    #[test]
    fn ternary_priority_breaks_overlap() {
        let mut t = MatchActionTable::new("acl", MatchKind::Ternary);
        t.insert(
            Key::Ternary { value: vec![10, 0, 0, 0], mask: vec![255, 0, 0, 0], priority: 1 },
            "allow",
        );
        t.insert(
            Key::Ternary { value: vec![10, 0, 0, 99], mask: vec![255, 255, 255, 255], priority: 9 },
            "deny",
        );
        assert_eq!(t.lookup(&[10, 0, 0, 99]), Some(&"deny"));
        assert_eq!(t.lookup(&[10, 0, 0, 98]), Some(&"allow"));
    }

    #[test]
    fn default_action_fires_when_nothing_matches() {
        let mut t = MatchActionTable::new("t", MatchKind::Exact);
        t.set_default("drop");
        assert_eq!(t.lookup(&[1]), Some(&"drop"));
    }

    #[test]
    fn reinsert_same_key_modifies() {
        let mut t = MatchActionTable::new("t", MatchKind::Exact);
        t.insert(Key::Exact(vec![1]), 1);
        t.insert(Key::Exact(vec![1]), 2);
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(&[1]), Some(&2));
    }

    #[test]
    fn remove_entry() {
        let mut t = MatchActionTable::new("t", MatchKind::Exact);
        let k = Key::Exact(vec![1]);
        t.insert(k.clone(), 1);
        assert!(t.remove(&k));
        assert!(!t.remove(&k));
        assert!(t.lookup(&[1]).is_none());
    }

    #[test]
    #[should_panic(expected = "key kind mismatch")]
    fn wrong_kind_insert_panics() {
        let mut t = MatchActionTable::<u8>::new("t", MatchKind::Exact);
        t.insert(Key::Lpm { value: vec![1], prefix_len: 8 }, 0);
    }

    #[test]
    fn length_mismatch_never_matches() {
        let mut t = MatchActionTable::new("t", MatchKind::Lpm);
        t.insert(Key::Lpm { value: vec![10, 0, 0, 0], prefix_len: 8 }, ());
        assert!(t.lookup(&[10, 0]).is_none());
    }
}
