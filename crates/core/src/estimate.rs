//! End-to-end path estimation from the learned map.
//!
//! * [`DelayEstimator`] — paper §III-C / Algorithm 1:
//!   `Delay(e_n, e_m) = Σ delay(l_i) + Σ k · Q(h_i)` where `Q(h_i)` is the
//!   max queue occupancy of hop *i* in the last probing interval and *k*
//!   converts queued packets to latency (20 ms by default).
//! * [`BandwidthEstimator`] — paper §III-D:
//!   `throughput(e_n, e_m) = min(b_1 … b_k)` where each `b_i` is the
//!   available bandwidth inferred from the hop's queue occupancy via the
//!   Fig. 3 utilization curve.

use crate::config::CoreConfig;
use crate::map::{NetNode, NetworkMap};
use std::sync::Arc;

/// Components of a delay estimate (useful for diagnostics and ablations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DelayBreakdown {
    /// Σ measured link transmission delays, ns.
    pub link_delay_ns: u64,
    /// Σ k·Q inferred hop (queuing) delays, ns.
    pub hop_delay_ns: u64,
    /// Number of links on the path.
    pub links: usize,
    /// Number of switch hops on the path.
    pub hops: usize,
}

impl DelayBreakdown {
    /// Total estimated one-way delay, ns. Saturating: on a long Clos path
    /// the two sums can each approach `u64::MAX` (the per-hop penalty is
    /// `k · Q` with k = 20 ms), and a wrapping total would rank a
    /// saturated path *best* instead of worst.
    pub fn total_ns(&self) -> u64 {
        self.link_delay_ns.saturating_add(self.hop_delay_ns)
    }
}

/// Algorithm 1's delay model.
#[derive(Debug, Clone)]
pub struct DelayEstimator {
    /// Shared, not cloned: the ranker, both estimators, and the scheduler
    /// shards all point at one `CoreConfig` allocation.
    cfg: Arc<CoreConfig>,
}

impl DelayEstimator {
    /// Estimator with the given configuration. Accepts either an owned
    /// `CoreConfig` or an already-shared `Arc<CoreConfig>`.
    pub fn new(cfg: impl Into<Arc<CoreConfig>>) -> Self {
        DelayEstimator { cfg: cfg.into() }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Estimate the one-way delay between two hosts over the learned map.
    /// Returns `None` when the map has no path between them yet.
    ///
    /// Routes via the reference [`NetworkMap::path`]; the query hot path
    /// ([`crate::rank::Ranker`]) resolves the path once through the
    /// indexed engine and calls [`DelayEstimator::estimate_along`], which
    /// yields identical numbers.
    pub fn estimate(
        &self,
        map: &NetworkMap,
        from: NetNode,
        to: NetNode,
        now_ns: u64,
    ) -> Option<DelayBreakdown> {
        let path = map.path(&self.cfg, from, to)?;
        Some(self.estimate_along(map, &path, now_ns))
    }

    /// Estimate along an explicit node path (exposed for ablations).
    pub fn estimate_along(
        &self,
        map: &NetworkMap,
        path: &[NetNode],
        now_ns: u64,
    ) -> DelayBreakdown {
        let mut link_delay_ns = 0u64;
        let mut hop_delay_ns = 0u64;
        let mut links = 0usize;
        let mut hops = 0usize;

        // All sums saturate: 8+-hop fabric paths of near-sentinel samples
        // (an unrefreshed edge can legitimately carry a huge EWMA'd delay)
        // must pin at `u64::MAX`, not wrap around to "nearby".
        for w in path.windows(2) {
            let (a, b) = (w[0], w[1]);
            // Unmeasured links contribute the configured nominal delay —
            // the same value `NetworkMap::path` uses as traversal weight,
            // so routing and estimation cannot diverge on warm-up links.
            link_delay_ns = link_delay_ns.saturating_add(
                map.effective_delay_ns(&self.cfg, a, b).unwrap_or(self.cfg.unmeasured_delay_ns),
            );
            links += 1;
            if matches!(a, NetNode::Switch(_)) {
                let q = map.effective_qlen(&self.cfg, a, b, now_ns);
                hop_delay_ns =
                    hop_delay_ns.saturating_add(self.cfg.k_ns_per_pkt.saturating_mul(q as u64));
                hops += 1;
            }
        }
        DelayBreakdown { link_delay_ns, hop_delay_ns, links, hops }
    }
}

/// §III-D's bottleneck available-bandwidth model.
#[derive(Debug, Clone)]
pub struct BandwidthEstimator {
    cfg: Arc<CoreConfig>,
}

impl BandwidthEstimator {
    /// Estimator with the given configuration (owned or shared).
    pub fn new(cfg: impl Into<Arc<CoreConfig>>) -> Self {
        BandwidthEstimator { cfg: cfg.into() }
    }

    /// Estimate available path bandwidth between two hosts, bit/s.
    pub fn estimate(
        &self,
        map: &NetworkMap,
        from: NetNode,
        to: NetNode,
        now_ns: u64,
    ) -> Option<u64> {
        let path = map.path(&self.cfg, from, to)?;
        Some(self.estimate_along(map, &path, now_ns))
    }

    /// Estimate along an explicit node path.
    pub fn estimate_along(&self, map: &NetworkMap, path: &[NetNode], now_ns: u64) -> u64 {
        let mut bottleneck = self.cfg.link_capacity_bps;
        for w in path.windows(2) {
            let (a, b) = (w[0], w[1]);
            if matches!(a, NetNode::Switch(_)) {
                let q = map.effective_qlen(&self.cfg, a, b, now_ns);
                bottleneck = bottleneck.min(self.cfg.available_bw_for_qlen(q));
            }
        }
        bottleneck
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use int_packet::int::IntRecord;
    use int_packet::ProbePayload;

    fn rec(switch_id: u32, maxq: u32, egress_ts_ms: u64) -> IntRecord {
        IntRecord {
            switch_id,
            ingress_port: 0,
            egress_port: 1,
            max_qlen_pkts: maxq,
            qlen_at_probe_pkts: 0,
            link_latency_ns: 10_000_000,
            egress_ts_ns: egress_ts_ms * 1_000_000,
        }
    }

    /// Map learned from probes of two servers (hosts 1, 2) through distinct
    /// switch chains to scheduler host 6: 1→[10,11]→6, 2→[12,11]→6.
    /// Switch 10's egress queue is congested (20 pkts); 12's is idle.
    fn map() -> NetworkMap {
        let mut m = NetworkMap::new();
        let mut p1 = ProbePayload::new(1, 1, 0);
        p1.int.push(rec(10, 20, 11));
        p1.int.push(rec(11, 0, 22));
        m.apply_probe(&p1, 6, 32_000_000);
        let mut p2 = ProbePayload::new(2, 1, 0);
        p2.int.push(rec(12, 0, 11));
        p2.int.push(rec(11, 0, 22));
        m.apply_probe(&p2, 6, 32_000_000);
        m
    }

    #[test]
    fn delay_is_links_plus_k_times_queue() {
        let m = map();
        let est = DelayEstimator::new(CoreConfig::default());
        // Path 6 → 11 → 10 → 1: three 10 ms links.
        // Hops: switch 11 egress→10 (reverse of 10→11 qlen 20) and switch
        // 10 egress→host1 (reverse of host1→10, qlen 0).
        let d = est.estimate(&m, NetNode::Host(6), NetNode::Host(1), 32_000_000).unwrap();
        assert_eq!(d.links, 3);
        assert_eq!(d.hops, 2);
        assert_eq!(d.link_delay_ns, 30_000_000);
        assert_eq!(d.hop_delay_ns, 20 * 20_000_000, "k=20ms × 20 queued packets");
        assert_eq!(d.total_ns(), 430_000_000);
    }

    #[test]
    fn uncongested_path_has_zero_hop_delay() {
        let m = map();
        let est = DelayEstimator::new(CoreConfig::default());
        let d = est.estimate(&m, NetNode::Host(6), NetNode::Host(2), 32_000_000).unwrap();
        assert_eq!(d.hop_delay_ns, 0);
        assert_eq!(d.total_ns(), 30_000_000);
    }

    #[test]
    fn congestion_ranks_host2_closer_than_host1() {
        let m = map();
        let est = DelayEstimator::new(CoreConfig::default());
        let d1 = est.estimate(&m, NetNode::Host(6), NetNode::Host(1), 32_000_000).unwrap();
        let d2 = est.estimate(&m, NetNode::Host(6), NetNode::Host(2), 32_000_000).unwrap();
        assert!(d2.total_ns() < d1.total_ns());
    }

    #[test]
    fn bandwidth_bottleneck_is_min_over_path() {
        let m = map();
        let est = BandwidthEstimator::new(CoreConfig::default());
        let b1 = est.estimate(&m, NetNode::Host(6), NetNode::Host(1), 32_000_000).unwrap();
        let b2 = est.estimate(&m, NetNode::Host(6), NetNode::Host(2), 32_000_000).unwrap();
        // qlen 20 → util 0.8 → 4 Mbit/s available; idle path → full 20.
        assert_eq!(b1, 4_000_000);
        assert_eq!(b2, 20_000_000);
    }

    #[test]
    fn unknown_destination_yields_none() {
        let m = map();
        let est = DelayEstimator::new(CoreConfig::default());
        assert!(est.estimate(&m, NetNode::Host(6), NetNode::Host(42), 0).is_none());
    }

    #[test]
    fn self_path_is_free() {
        let m = map();
        let est = DelayEstimator::new(CoreConfig::default());
        let d = est.estimate(&m, NetNode::Host(1), NetNode::Host(1), 0).unwrap();
        assert_eq!(d.total_ns(), 0);
        assert_eq!(d.links, 0);
    }

    /// Regression (the 10 ms unmeasured-link fallback used to be hardcoded
    /// twice, in `NetworkMap::path` and here): a non-default
    /// `unmeasured_delay_ns` must flow into *both* the traversal weight
    /// (route choice) and the per-link estimate.
    #[test]
    fn unmeasured_fallback_flows_to_traversal_and_estimate() {
        use crate::config::DirectionFallback;
        // Route A (via 10, 11): measured at 30 ms per link in the 1→6
        // direction. Route B (via 13, 12): probed only 6→1, so under
        // Strict fallback the 1→6 direction is unmeasured everywhere.
        let mut m = NetworkMap::new();
        let mut pa = ProbePayload::new(1, 1, 0);
        for (i, sw) in [10u32, 11].into_iter().enumerate() {
            pa.int.push(IntRecord {
                switch_id: sw,
                ingress_port: 0,
                egress_port: 1,
                max_qlen_pkts: 0,
                qlen_at_probe_pkts: 0,
                link_latency_ns: 30_000_000,
                egress_ts_ns: (i as u64 + 1) * 30_000_000,
            });
        }
        m.apply_probe(&pa, 6, 90_000_000); // final hop: 90 − 60 = 30 ms
        let mut pb = ProbePayload::new(6, 1, 0);
        for (i, sw) in [13u32, 12].into_iter().enumerate() {
            pb.int.push(rec(sw, 0, (i as u64 + 1) * 10));
        }
        m.apply_probe(&pb, 1, 30_000_000);

        let strict = |fallback_ns: u64| CoreConfig {
            direction_fallback: DirectionFallback::Strict,
            unmeasured_delay_ns: fallback_ns,
            ..CoreConfig::default()
        };

        // Cheap fallback (1 ms): the all-unmeasured route B wins and the
        // estimate prices each of its 3 links at the configured value.
        let cfg = strict(1_000_000);
        let est = DelayEstimator::new(cfg.clone());
        let d = est.estimate(&m, NetNode::Host(1), NetNode::Host(6), 90_000_000).unwrap();
        assert_eq!(d.links, 3);
        assert_eq!(d.link_delay_ns, 3_000_000, "estimate uses the configured fallback");
        let p = m.path(&cfg, NetNode::Host(1), NetNode::Host(6)).unwrap();
        assert!(p.contains(&NetNode::Switch(12)), "traversal weighs it too: {p:?}");

        // Expensive fallback (1 s): the measured route A wins instead.
        let cfg = strict(1_000_000_000);
        let est = DelayEstimator::new(cfg.clone());
        let d = est.estimate(&m, NetNode::Host(1), NetNode::Host(6), 90_000_000).unwrap();
        assert_eq!(d.link_delay_ns, 90_000_000, "3 × 30 ms measured links");
        let p = m.path(&cfg, NetNode::Host(1), NetNode::Host(6)).unwrap();
        assert!(p.contains(&NetNode::Switch(10)), "{p:?}");
    }

    /// Satellite regression for long Clos paths: the per-link and per-hop
    /// accumulators used to wrap on 8+-hop paths whose links carry
    /// near-`u64::MAX` delay samples, ranking the worst path as nearly
    /// free. Saturating arithmetic must pin the total at the ceiling.
    #[test]
    fn long_path_with_saturated_links_pins_at_max_instead_of_wrapping() {
        let mut m = NetworkMap::new();
        // A 9-switch chain, every link at u64::MAX/4 ns and every egress
        // queue deeply congested: both accumulators overflow u64 if summed
        // naively.
        let mut p = ProbePayload::new(1, 1, 0);
        for sw in 10u32..19 {
            p.int.push(IntRecord {
                switch_id: sw,
                ingress_port: 0,
                egress_port: 1,
                max_qlen_pkts: u32::MAX,
                qlen_at_probe_pkts: 0,
                link_latency_ns: u64::MAX / 4,
                egress_ts_ns: 11_000_000,
            });
        }
        m.apply_probe(&p, 6, 32_000_000);

        // Dijkstra refuses paths whose distance saturates, but the k-path
        // machinery prices explicitly supplied node sequences with
        // `estimate_along` — that walk must saturate, not wrap.
        let mut path = vec![NetNode::Host(1)];
        path.extend((10u32..19).map(NetNode::Switch));
        path.push(NetNode::Host(6));
        let est = DelayEstimator::new(CoreConfig::default());
        let d = est.estimate_along(&m, &path, 32_000_000);
        assert_eq!(d.links, 10);
        assert_eq!(d.link_delay_ns, u64::MAX, "4+ links at MAX/4 saturate");
        assert_eq!(d.total_ns(), u64::MAX, "total saturates too");

        // A short, cheap path must still rank strictly better than the
        // saturated one — the property overflow used to violate.
        let mut m2 = NetworkMap::new();
        let mut q = ProbePayload::new(1, 1, 0);
        q.int.push(rec(10, 0, 11));
        m2.apply_probe(&q, 6, 21_000_000);
        let cheap =
            est.estimate(&m2, NetNode::Host(1), NetNode::Host(6), 21_000_000).unwrap().total_ns();
        assert!(cheap < d.total_ns());
    }

    #[test]
    fn hop_penalty_saturates_per_hop_multiply() {
        // k_ns_per_pkt × qlen alone can overflow; the multiply itself must
        // saturate, not just the running sum.
        let cfg = CoreConfig { k_ns_per_pkt: u64::MAX / 2, ..CoreConfig::default() };
        let mut m = NetworkMap::new();
        let mut p = ProbePayload::new(1, 1, 0);
        p.int.push(rec(10, 3, 11));
        p.int.push(rec(11, 3, 22));
        m.apply_probe(&p, 6, 32_000_000);
        let est = DelayEstimator::new(cfg);
        let d = est.estimate(&m, NetNode::Host(6), NetNode::Host(1), 32_000_000).unwrap();
        assert_eq!(d.hop_delay_ns, u64::MAX);
        assert_eq!(d.total_ns(), u64::MAX);
    }
}
