//! Tunables for the scheduler core, with the paper's values as defaults.

use serde::{Deserialize, Serialize};

/// A `(max_queue_pkts, utilization)` control point of the queue-occupancy →
/// link-utilization curve (paper Fig. 3, used by §III-D).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UtilPoint {
    /// Max queue occupancy observed over a probing interval, packets.
    pub qlen: u32,
    /// Inferred link utilization in `[0, 1]`.
    pub util: f64,
}

/// Which queue signal drives hop-delay inference — the paper's ablation:
/// it found per-interval *maximum* queue occupancy informative and averages
/// "inconclusive" (§III-C); the instantaneous sample a probe happens to see
/// behaves like an average and is kept for the ablation harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HopSignal {
    /// Max queue occupancy since the last harvest (the paper's choice).
    MaxQueue,
    /// Queue occupancy at the instant the probe was enqueued.
    InstantaneousQueue,
}

/// What to do when estimating a path direction no probe covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DirectionFallback {
    /// Use the reverse direction's measurements when the forward direction
    /// is unknown (default — probes flow server→scheduler, task data flows
    /// device→server, so the forward direction is often unprobed).
    ReverseOk,
    /// Treat unprobed directions as uncongested with zero queue.
    Strict,
}

/// Configuration of the scheduler core.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Queue-occupancy → hop-latency conversion factor in nanoseconds per
    /// packet — the paper's `k`, fixed at 20 ms (§III-C).
    pub k_ns_per_pkt: u64,
    /// Assumed per-link capacity for available-bandwidth estimation, bit/s.
    /// The paper's testbed bottleneck was ~20 Mbit/s.
    pub link_capacity_bps: u64,
    /// The queue→utilization curve (piecewise linear, sorted by `qlen`).
    pub util_curve: Vec<UtilPoint>,
    /// Measurements older than this are treated as stale (queue assumed
    /// empty): congestion signals must come from the last probing rounds.
    pub staleness_ns: u64,
    /// EWMA weight (numerator of x/8) for link-delay smoothing; 8 = "use
    /// the newest sample only", 1 = heavy smoothing. Default 2 keeps jitter
    /// visible, as the paper intends probes to capture it.
    pub delay_ewma_new_eighths: u32,
    /// Behaviour for unprobed directions.
    pub direction_fallback: DirectionFallback,
    /// Queue signal for hop-delay inference (ablation knob).
    pub hop_signal: HopSignal,
    /// Sliding window over which per-edge max-queue harvests are combined.
    /// With several probes crossing an egress per interval, each harvest
    /// resets the register and sees only a slice of the interval; taking
    /// the max over this window restores the paper's per-interval-max
    /// semantics at the collector.
    pub qlen_window_ns: u64,
    /// Links not refreshed by any probe within this horizon are *evicted*
    /// from the learned map (not merely read as stale): the scheduler must
    /// forget infrastructure that stopped carrying probes, or it keeps
    /// ranking hosts over ghost telemetry after a failure.
    pub eviction_horizon_ns: u64,
    /// An origin that sent probes before but has been silent this long is
    /// presumed unreachable and excluded from INT-based rankings until it
    /// is heard from again.
    pub origin_silence_ns: u64,
    /// Nominal delay assumed for a link the map knows exists but has no
    /// delay sample for in the queried direction (and, under
    /// [`DirectionFallback::Strict`], none in the reverse either). Used
    /// both as the Dijkstra traversal weight and as the per-link term of
    /// delay estimates, so routing and estimation can never silently
    /// diverge on unmeasured links.
    #[serde(default = "default_unmeasured_delay_ns")]
    pub unmeasured_delay_ns: u64,
    /// Number of candidate paths the ranking engine prices per host pair
    /// (k-shortest by successive edge exclusion). 1 (the default) is the
    /// paper's single delay-weighted route; fabrics with ECMP set this to
    /// the spread probes cover so the ranker can pick the best of the
    /// per-path estimates.
    #[serde(default = "default_k_paths")]
    pub k_paths: u32,
}

fn default_unmeasured_delay_ns() -> u64 {
    10_000_000 // 10 ms, comfortably worse than any measured testbed link
}

fn default_k_paths() -> u32 {
    1
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            k_ns_per_pkt: 20_000_000, // k = 20 ms per queued packet
            link_capacity_bps: 20_000_000,
            util_curve: default_util_curve(),
            staleness_ns: 3_000_000_000, // 3 s
            delay_ewma_new_eighths: 2,
            direction_fallback: DirectionFallback::ReverseOk,
            hop_signal: HopSignal::MaxQueue,
            qlen_window_ns: 500_000_000,
            eviction_horizon_ns: 10_000_000_000, // 10 s ≈ 100 default intervals
            origin_silence_ns: 3_000_000_000,    // 3 s ≈ 30 default intervals
            unmeasured_delay_ns: default_unmeasured_delay_ns(),
            k_paths: default_k_paths(),
        }
    }
}

/// The Fig. 3 relationship digitized as control points: queues stay under
/// ~5 packets below 50 % utilization, exceed 30 packets near saturation.
pub fn default_util_curve() -> Vec<UtilPoint> {
    vec![
        UtilPoint { qlen: 0, util: 0.0 },
        UtilPoint { qlen: 2, util: 0.30 },
        UtilPoint { qlen: 5, util: 0.50 },
        UtilPoint { qlen: 10, util: 0.70 },
        UtilPoint { qlen: 30, util: 0.90 },
        UtilPoint { qlen: 60, util: 1.0 },
    ]
}

impl CoreConfig {
    /// Interpolate the utilization for an observed max queue length.
    pub fn utilization_for_qlen(&self, qlen: u32) -> f64 {
        let curve = &self.util_curve;
        debug_assert!(!curve.is_empty(), "empty utilization curve");
        if qlen <= curve[0].qlen {
            return curve[0].util;
        }
        for w in curve.windows(2) {
            let (a, b) = (w[0], w[1]);
            if qlen <= b.qlen {
                let span = (b.qlen - a.qlen) as f64;
                let frac = (qlen - a.qlen) as f64 / span;
                return a.util + frac * (b.util - a.util);
            }
        }
        curve.last().expect("non-empty").util
    }

    /// Estimated available bandwidth on a link with the given observed max
    /// queue length, bit/s.
    pub fn available_bw_for_qlen(&self, qlen: u32) -> u64 {
        let util = self.utilization_for_qlen(qlen).clamp(0.0, 1.0);
        ((1.0 - util) * self.link_capacity_bps as f64).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_endpoints() {
        let c = CoreConfig::default();
        assert_eq!(c.utilization_for_qlen(0), 0.0);
        assert_eq!(c.utilization_for_qlen(60), 1.0);
        assert_eq!(c.utilization_for_qlen(1000), 1.0, "clamps past the last point");
    }

    #[test]
    fn curve_interpolates_between_points() {
        let c = CoreConfig::default();
        // Midway between (5, 0.5) and (10, 0.7).
        let u = c.utilization_for_qlen(7);
        assert!((u - 0.58).abs() < 1e-9, "{u}");
    }

    #[test]
    fn curve_is_monotone() {
        let c = CoreConfig::default();
        let mut prev = -1.0;
        for q in 0..=100 {
            let u = c.utilization_for_qlen(q);
            assert!(u >= prev, "monotone at q={q}");
            prev = u;
        }
    }

    #[test]
    fn available_bw_complements_utilization() {
        let c = CoreConfig::default();
        assert_eq!(c.available_bw_for_qlen(0), 20_000_000);
        assert_eq!(c.available_bw_for_qlen(60), 0);
        let half = c.available_bw_for_qlen(5);
        assert_eq!(half, 10_000_000, "50% utilization leaves half the capacity");
    }

    #[test]
    fn paper_k_default() {
        assert_eq!(CoreConfig::default().k_ns_per_pkt, 20_000_000);
    }
}
