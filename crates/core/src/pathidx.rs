//! The indexed path engine: the scheduler control plane's query hot path.
//!
//! [`NetworkMap::path`] is the reference implementation — a point-to-point
//! Dijkstra over `BTreeMap` edge storage whose `neighbours()` is a full
//! O(E) scan allocating per expansion. Fine at testbed scale, hopeless for
//! large fabrics where every scheduling query used to pay **2N** such runs
//! (N candidates × the delay and bandwidth estimators each recomputing the
//! identical path).
//!
//! [`PathEngine`] replaces that with:
//!
//! 1. **A CSR adjacency snapshot** over dense integer node ids, rebuilt
//!    lazily and keyed on the map's *topology generation* (bumped only on
//!    edge insert/evict and node-set growth). Metric-only refreshes bump a
//!    separate *metrics generation* and never force a structural rebuild —
//!    only a flat per-arc weight refresh.
//! 2. **A shared single-source Dijkstra**: one SSSP run per source serves
//!    every candidate and both estimators. Scratch buffers (`dist`/`prev`
//!    arrays indexed by dense id, one binary heap) are owned by the engine
//!    and reused, so the steady-state query path allocates nothing.
//! 3. **A per-`(from, to)` path cache** holding node sequences, validated
//!    against both generations. Topology changes rebuild the snapshot and
//!    drop the cache; metric refreshes drop the cache too (route choice is
//!    delay-weighted, so fresher metrics can legitimately select a
//!    different path — caching across them would diverge from the oracle).
//!    Delay/bandwidth estimates are always recomputed from live metrics
//!    along the returned node path, so estimates stay exactly as fresh as
//!    with the reference implementation.
//!
//! # Determinism
//!
//! The engine must return *byte-identical* paths to [`NetworkMap::path`]:
//!
//! * Dense ids are assigned in ascending [`NetNode`] order (hosts before
//!   switches, each ascending), so the heap's `(dist, id)` tie-break
//!   equals the reference's `(dist, NetNode)` tie-break.
//! * CSR adjacency rows are sorted ascending, matching the reference's
//!   `BTreeSet`-ordered `neighbours()` relaxation order, so equal-cost
//!   predecessor selection is identical.
//! * The reference early-exits when the target pops; the SSSP runs to
//!   completion. Both agree on every extracted path: a popped node's
//!   `prev` entry is final (weights are clamped ≥ 1, so no later
//!   relaxation can strictly improve a finalized distance), and every
//!   node on a shortest path to `t` pops before `t` does.
//!
//! The agreement is pinned by a proptest oracle driving random maps
//! through interleaved probe updates, evictions and link cuts (see
//! `tests/proptest_core.rs`).

use crate::config::CoreConfig;
use crate::map::{NetNode, NetworkMap};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// Sentinel for "no predecessor" in the SSSP scratch.
const NO_PREV: u32 = u32::MAX;

/// Counters exposed for steady-state tests and diagnostics — the
/// pool-style accounting used to assert that the query path stops doing
/// expensive work (and stops allocating) once warm.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PathEngineStats {
    /// CSR snapshots built (topology-generation misses).
    pub csr_rebuilds: u64,
    /// Per-arc weight refreshes (metrics-generation misses).
    pub weight_refreshes: u64,
    /// Single-source Dijkstra executions.
    pub sssp_runs: u64,
    /// Path-cache hits (no traversal work at all).
    pub cache_hits: u64,
    /// Path-cache misses (path extracted from the shared SSSP).
    pub cache_misses: u64,
}

impl PathEngineStats {
    /// Export the counters as gauges into a metrics registry (last-write
    /// wins, so repeated exports never double-count). The series land in
    /// the registry's deterministic JSON snapshot, making snapshot-rebuild
    /// churn visible in exported artifacts.
    pub fn export(&self, metrics: &mut int_obs::MetricsRegistry, at_ns: u64) {
        use int_obs::Labels;
        let series: [(&'static str, u64); 5] = [
            ("pathidx_csr_rebuilds", self.csr_rebuilds),
            ("pathidx_weight_refreshes", self.weight_refreshes),
            ("pathidx_sssp_runs", self.sssp_runs),
            ("pathidx_cache_hits", self.cache_hits),
            ("pathidx_cache_misses", self.cache_misses),
        ];
        for (name, v) in series {
            metrics.gauge_set(name, Labels::none(), v as i64, at_ns);
        }
    }
}

/// Indexed shortest-path engine over a [`NetworkMap`]. See the module
/// docs for the design; [`NetworkMap::path`] remains the oracle.
///
/// One engine serves one map: queries against a *different* map instance
/// that happens to share generation counters are not detected. The
/// [`crate::rank::Ranker`] owns exactly one and always queries its
/// scheduler's learned map, which satisfies this by construction.
/// Likewise the `cfg` passed in must be stable across calls (weights are
/// revalidated by generation, not by config identity).
#[derive(Debug, Clone)]
pub struct PathEngine {
    /// Topology generation the snapshot was built at.
    snapshot_gen: Option<u64>,
    /// All nodes, sorted ascending — index is the dense id.
    nodes: Vec<NetNode>,
    /// CSR row offsets, `nodes.len() + 1` entries.
    row: Vec<u32>,
    /// CSR column (neighbour dense id) per undirected arc, sorted per row.
    cols: Vec<u32>,
    /// Traversal weight per arc (directed u→v semantics, ≥ 1), parallel
    /// to `cols`; refreshed when the metrics generation moves.
    weights: Vec<u64>,
    /// Metrics generation the weights were refreshed at.
    weights_gen: Option<u64>,
    /// Source dense id of the currently valid SSSP scratch.
    sssp_source: Option<u32>,
    dist: Vec<u64>,
    prev: Vec<u32>,
    heap: BinaryHeap<Reverse<(u64, u32)>>,
    /// Scratch for CSR construction (kept to avoid rebuild allocations).
    arc_scratch: Vec<(u32, u32)>,
    /// `(from, to)` → cached node path (`None` = cached unreachability).
    cache: BTreeMap<(NetNode, NetNode), Option<Vec<NetNode>>>,
    cache_enabled: bool,
    /// Fallback result slot when the cache is force-disabled.
    uncached: Option<Vec<NetNode>>,
    /// Storage for the trivial `from == to` path.
    self_path: [NetNode; 1],
    /// `(from, to)` → cached k-path set (see [`PathEngine::paths`]).
    /// Invalidated together with `cache` — a metrics-generation bump that
    /// re-prices even one path of a k-set must drop the whole set, or a
    /// stale winner could be served.
    kcache: BTreeMap<(NetNode, NetNode), Vec<Vec<NetNode>>>,
    /// Result slot for k-path queries when the cache is force-disabled.
    kuncached: Vec<Vec<NetNode>>,
    /// Per-arc ban mask for successive-exclusion runs, parallel to `cols`.
    arc_mask: Vec<bool>,
    /// Masked-SSSP scratch (separate from `dist`/`prev` so masked runs
    /// never corrupt the memoized shared SSSP).
    mdist: Vec<u64>,
    mprev: Vec<u32>,
    stats: PathEngineStats,
}

impl Default for PathEngine {
    fn default() -> Self {
        PathEngine {
            snapshot_gen: None,
            nodes: Vec::new(),
            row: Vec::new(),
            cols: Vec::new(),
            weights: Vec::new(),
            weights_gen: None,
            sssp_source: None,
            dist: Vec::new(),
            prev: Vec::new(),
            heap: BinaryHeap::new(),
            arc_scratch: Vec::new(),
            cache: BTreeMap::new(),
            cache_enabled: true,
            uncached: None,
            self_path: [NetNode::Host(0)],
            kcache: BTreeMap::new(),
            kuncached: Vec::new(),
            arc_mask: Vec::new(),
            mdist: Vec::new(),
            mprev: Vec::new(),
            stats: PathEngineStats::default(),
        }
    }
}

impl PathEngine {
    /// A fresh engine (cache enabled).
    pub fn new() -> Self {
        Self::default()
    }

    /// Accounting counters.
    pub fn stats(&self) -> PathEngineStats {
        self.stats
    }

    /// Enable or force-disable the path cache (the `INT_PATH_CACHE=0`
    /// determinism override). Disabled, every query re-extracts from the
    /// shared SSSP scratch; results are identical either way.
    pub fn set_cache_enabled(&mut self, on: bool) {
        if self.cache_enabled != on {
            self.cache_enabled = on;
            self.cache.clear();
            self.kcache.clear();
        }
    }

    /// Whether the path cache is active.
    pub fn cache_enabled(&self) -> bool {
        self.cache_enabled
    }

    /// Shortest path from `from` to `to`, byte-identical to
    /// [`NetworkMap::path`], or `None` when disconnected. The returned
    /// slice borrows engine-owned storage (cache entry or scratch).
    pub fn path(
        &mut self,
        map: &NetworkMap,
        cfg: &CoreConfig,
        from: NetNode,
        to: NetNode,
    ) -> Option<&[NetNode]> {
        if from == to {
            self.self_path[0] = from;
            return Some(&self.self_path);
        }
        self.ensure_snapshot(map);
        self.ensure_weights(map, cfg);

        let key = (from, to);
        if self.cache_enabled && self.cache.contains_key(&key) {
            self.stats.cache_hits += 1;
            return self.cache.get(&key).expect("just checked").as_deref();
        }

        let computed = self.compute_path(from, to);
        if self.cache_enabled {
            self.stats.cache_misses += 1;
            self.cache.insert(key, computed);
            self.cache.get(&key).expect("just inserted").as_deref()
        } else {
            self.uncached = computed;
            self.uncached.as_deref()
        }
    }

    /// Up to `cfg.k_paths` candidate paths from `from` to `to` by
    /// successive edge exclusion, byte-identical to
    /// [`NetworkMap::k_paths`]. The first element (when any) equals
    /// [`PathEngine::path`]; an empty slice means disconnected.
    ///
    /// Path 1 comes from the shared memoized SSSP; paths 2..k each run a
    /// *masked* Dijkstra with the interior switch–switch edges of the
    /// previous paths banned (host attachment edges are never banned).
    /// Masked runs use their own scratch, so they never perturb the
    /// shared SSSP that serves single-path queries. Cached k-sets are
    /// dropped whenever either map generation moves, exactly like the
    /// single-path cache.
    pub fn paths(
        &mut self,
        map: &NetworkMap,
        cfg: &CoreConfig,
        from: NetNode,
        to: NetNode,
    ) -> &[Vec<NetNode>] {
        if from == to {
            // Self paths need no map knowledge (mirrors the oracle, which
            // stops after the first duplicate self path).
            self.kuncached.clear();
            self.kuncached.push(vec![from]);
            return &self.kuncached;
        }
        self.ensure_snapshot(map);
        self.ensure_weights(map, cfg);

        let key = (from, to);
        if self.cache_enabled && self.kcache.contains_key(&key) {
            self.stats.cache_hits += 1;
            return self.kcache.get(&key).expect("just checked");
        }

        let computed = self.compute_k_paths(cfg.k_paths, from, to);
        if self.cache_enabled {
            self.stats.cache_misses += 1;
            self.kcache.insert(key, computed);
            self.kcache.get(&key).expect("just inserted")
        } else {
            self.kuncached = computed;
            &self.kuncached
        }
    }

    /// Bring the CSR snapshot and arc weights up to date for `map`/`cfg`
    /// and expose them: `(nodes, row, cols, weights)`. Dense ids are the
    /// indices into `nodes`; `row`/`cols` are the adjacency in CSR form;
    /// `weights` are the ≥1-clamped traversal weights, parallel to
    /// `cols`. This is the extraction hook [`crate::snapshot`] freezes an
    /// epoch from — the snapshot copies these slices, so the engine stays
    /// free to rebuild on the next generation move.
    pub fn csr_view(
        &mut self,
        map: &NetworkMap,
        cfg: &CoreConfig,
    ) -> (&[NetNode], &[u32], &[u32], &[u64]) {
        self.ensure_snapshot(map);
        self.ensure_weights(map, cfg);
        (&self.nodes, &self.row, &self.cols, &self.weights)
    }

    /// Extract the path for one pair from the (memoized) shared SSSP.
    fn compute_path(&mut self, from: NetNode, to: NetNode) -> Option<Vec<NetNode>> {
        let from_id = self.node_id(from)?;
        let to_id = self.node_id(to)?;
        self.ensure_sssp(from_id);
        if self.dist[to_id as usize] == u64::MAX {
            return None;
        }
        let mut path = Vec::new();
        let mut cur = to_id;
        path.push(self.nodes[cur as usize]);
        while cur != from_id {
            cur = self.prev[cur as usize];
            if cur == NO_PREV {
                return None; // unreachable scratch state; mirrors oracle's `?`
            }
            path.push(self.nodes[cur as usize]);
        }
        path.reverse();
        Some(path)
    }

    /// Successive-exclusion k-path computation (snapshot and weights must
    /// already be current). Mirrors [`NetworkMap::k_paths`] exactly: ban
    /// the interior switch–switch edges of each found path, re-run, stop
    /// on no-path or duplicate.
    fn compute_k_paths(&mut self, k: u32, from: NetNode, to: NetNode) -> Vec<Vec<NetNode>> {
        let k = k.max(1);
        let mut out: Vec<Vec<NetNode>> = Vec::new();
        let Some(first) = self.compute_path(from, to) else { return out };
        out.push(first);
        if k == 1 {
            return out;
        }
        let (Some(from_id), Some(to_id)) = (self.node_id(from), self.node_id(to)) else {
            return out;
        };
        self.arc_mask.clear();
        self.arc_mask.resize(self.cols.len(), false);
        for _ in 1..k {
            let last = out.last().expect("non-empty");
            self.ban_interior_edges(last);
            let Some(p) = self.masked_path(from_id, to_id) else { break };
            if out.contains(&p) {
                break;
            }
            out.push(p);
        }
        out
    }

    /// Mask both arc directions of every interior switch–switch edge of a
    /// path. Host attachment edges are never banned: a host's only uplink
    /// is not an alternative to itself.
    fn ban_interior_edges(&mut self, path: &[NetNode]) {
        for w in path.windows(2) {
            let (a, b) = (w[0], w[1]);
            if matches!(a, NetNode::Switch(_)) && matches!(b, NetNode::Switch(_)) {
                if let (Some(ia), Some(ib)) = (self.node_id(a), self.node_id(b)) {
                    self.ban_arc(ia, ib);
                    self.ban_arc(ib, ia);
                }
            }
        }
    }

    /// Mark the CSR arc `u → v` banned, if present.
    fn ban_arc(&mut self, u: u32, v: u32) {
        let (s, e) = (self.row[u as usize] as usize, self.row[u as usize + 1] as usize);
        if let Ok(off) = self.cols[s..e].binary_search(&v) {
            self.arc_mask[s + off] = true;
        }
    }

    /// Point-to-point Dijkstra honouring `arc_mask`, over dedicated
    /// scratch (`mdist`/`mprev`). Tie-breaks match the shared SSSP and
    /// therefore the oracle: dense ids ascend in `NetNode` order and CSR
    /// rows are sorted, so `(dist, id)` ordering equals `(dist, NetNode)`.
    fn masked_path(&mut self, from_id: u32, to_id: u32) -> Option<Vec<NetNode>> {
        let n = self.nodes.len();
        self.mdist.clear();
        self.mdist.resize(n, u64::MAX);
        self.mprev.clear();
        self.mprev.resize(n, NO_PREV);
        self.heap.clear();

        self.mdist[from_id as usize] = 0;
        self.heap.push(Reverse((0, from_id)));
        while let Some(Reverse((d, u))) = self.heap.pop() {
            if self.mdist[u as usize] < d {
                continue;
            }
            if u == to_id {
                break;
            }
            for i in self.row[u as usize] as usize..self.row[u as usize + 1] as usize {
                if self.arc_mask[i] {
                    continue;
                }
                let v = self.cols[i];
                let nd = d.saturating_add(self.weights[i]);
                if nd < self.mdist[v as usize] {
                    self.mdist[v as usize] = nd;
                    self.mprev[v as usize] = u;
                    self.heap.push(Reverse((nd, v)));
                }
            }
        }
        self.heap.clear(); // early exit can leave stale entries behind

        if self.mdist[to_id as usize] == u64::MAX {
            return None;
        }
        let mut path = Vec::new();
        let mut cur = to_id;
        path.push(self.nodes[cur as usize]);
        while cur != from_id {
            cur = self.mprev[cur as usize];
            if cur == NO_PREV {
                return None;
            }
            path.push(self.nodes[cur as usize]);
        }
        path.reverse();
        Some(path)
    }

    /// Dense id of a node, if it is part of the snapshot.
    fn node_id(&self, n: NetNode) -> Option<u32> {
        self.nodes.binary_search(&n).ok().map(|i| i as u32)
    }

    /// Rebuild the CSR snapshot when the topology generation moved.
    fn ensure_snapshot(&mut self, map: &NetworkMap) {
        let gen = map.topology_generation();
        if self.snapshot_gen == Some(gen) {
            return;
        }
        self.stats.csr_rebuilds += 1;

        // Dense ids in ascending NetNode order: hosts then switches, each
        // ascending (the derived Ord puts Host(_) < Switch(_)).
        self.nodes.clear();
        self.nodes.extend(map.hosts().map(NetNode::Host));
        self.nodes.extend(map.switches().map(NetNode::Switch));
        debug_assert!(self.nodes.windows(2).all(|w| w[0] < w[1]), "dense ids must be sorted");

        // Undirected arcs, deduplicated: each directed edge contributes
        // both orientations; (a,b) and (b,a) probed separately collapse.
        self.arc_scratch.clear();
        for (a, b, _) in map.edges() {
            // Edge endpoints are always members of the host/switch sets
            // (apply_probe registers them); skip defensively if not.
            let (Some(ia), Some(ib)) = (self.node_id(a), self.node_id(b)) else {
                debug_assert!(false, "edge endpoint missing from node sets: {a:?}->{b:?}");
                continue;
            };
            self.arc_scratch.push((ia, ib));
            self.arc_scratch.push((ib, ia));
        }
        self.arc_scratch.sort_unstable();
        self.arc_scratch.dedup();

        self.row.clear();
        self.cols.clear();
        self.row.resize(self.nodes.len() + 1, 0);
        for &(u, v) in &self.arc_scratch {
            self.row[u as usize + 1] += 1;
            self.cols.push(v);
        }
        for i in 1..self.row.len() {
            self.row[i] += self.row[i - 1];
        }

        self.snapshot_gen = Some(gen);
        self.weights_gen = None; // arcs changed: weights must be refilled
        self.sssp_source = None;
    }

    /// Refresh per-arc weights when the metrics generation moved. Also
    /// drops the path cache: routes are chosen by these weights.
    fn ensure_weights(&mut self, map: &NetworkMap, cfg: &CoreConfig) {
        let gen = map.metrics_generation();
        if self.weights_gen == Some(gen) {
            return;
        }
        self.stats.weight_refreshes += 1;
        self.weights.clear();
        self.weights.reserve(self.cols.len());
        for u in 0..self.nodes.len() {
            let from = self.nodes[u];
            for i in self.row[u] as usize..self.row[u + 1] as usize {
                let to = self.nodes[self.cols[i] as usize];
                let w = map
                    .effective_delay_ns(cfg, from, to)
                    .unwrap_or(cfg.unmeasured_delay_ns)
                    .max(1);
                self.weights.push(w);
            }
        }
        self.weights_gen = Some(gen);
        self.sssp_source = None;
        self.cache.clear();
        self.kcache.clear();
    }

    /// Run (or reuse) the single-source Dijkstra from `source`. One run
    /// serves every `(source, *)` extraction until the map changes.
    fn ensure_sssp(&mut self, source: u32) {
        if self.sssp_source == Some(source) {
            return;
        }
        self.stats.sssp_runs += 1;
        let n = self.nodes.len();
        self.dist.clear();
        self.dist.resize(n, u64::MAX);
        self.prev.clear();
        self.prev.resize(n, NO_PREV);
        self.heap.clear();

        self.dist[source as usize] = 0;
        self.heap.push(Reverse((0, source)));
        while let Some(Reverse((d, u))) = self.heap.pop() {
            if self.dist[u as usize] < d {
                continue; // stale heap entry
            }
            for i in self.row[u as usize] as usize..self.row[u as usize + 1] as usize {
                let v = self.cols[i];
                let nd = d.saturating_add(self.weights[i]);
                if nd < self.dist[v as usize] {
                    self.dist[v as usize] = nd;
                    self.prev[v as usize] = u;
                    self.heap.push(Reverse((nd, v)));
                }
            }
        }
        self.sssp_source = Some(source);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use int_packet::int::IntRecord;
    use int_packet::ProbePayload;

    fn rec(switch_id: u32, maxq: u32, link_lat_ms: u64, egress_ts_ms: u64) -> IntRecord {
        IntRecord {
            switch_id,
            ingress_port: 0,
            egress_port: 1,
            max_qlen_pkts: maxq,
            qlen_at_probe_pkts: 0,
            link_latency_ns: link_lat_ms * 1_000_000,
            egress_ts_ns: egress_ts_ms * 1_000_000,
        }
    }

    fn probe(origin: u32, seq: u64, chain: &[(u32, u64)]) -> ProbePayload {
        let mut p = ProbePayload::new(origin, seq, 0);
        for (i, &(sw, lat_ms)) in chain.iter().enumerate() {
            p.int.push(rec(sw, 0, lat_ms, (i as u64 + 1) * 11));
        }
        p
    }

    /// Two routes host1→host6: 1–10–11–6 (fast) and 1–12–13–6 (slow).
    fn two_route_map() -> NetworkMap {
        let mut m = NetworkMap::new();
        m.apply_probe(&probe(1, 1, &[(10, 5), (11, 5)]), 6, 22_000_000);
        m.apply_probe(&probe(1, 2, &[(12, 30), (13, 30)]), 6, 70_000_000);
        m
    }

    #[test]
    fn agrees_with_oracle_on_small_map() {
        let m = two_route_map();
        let cfg = CoreConfig::default();
        let mut eng = PathEngine::new();
        for from in [1u32, 6] {
            for to in [1u32, 6, 99] {
                let oracle = m.path(&cfg, NetNode::Host(from), NetNode::Host(to));
                let got = eng
                    .path(&m, &cfg, NetNode::Host(from), NetNode::Host(to))
                    .map(|p| p.to_vec());
                assert_eq!(got, oracle, "{from}->{to}");
            }
        }
    }

    #[test]
    fn sssp_is_shared_across_targets_and_cache_serves_repeats() {
        let m = two_route_map();
        let cfg = CoreConfig::default();
        let mut eng = PathEngine::new();
        let targets = [NetNode::Switch(10), NetNode::Switch(12), NetNode::Host(6)];
        for &t in &targets {
            assert!(eng.path(&m, &cfg, NetNode::Host(1), t).is_some());
        }
        let s = eng.stats();
        assert_eq!(s.sssp_runs, 1, "one SSSP serves all targets");
        assert_eq!(s.cache_misses, 3);

        for &t in &targets {
            assert!(eng.path(&m, &cfg, NetNode::Host(1), t).is_some());
        }
        let s2 = eng.stats();
        assert_eq!(s2.sssp_runs, 1, "repeats hit the cache");
        assert_eq!(s2.cache_hits, 3);
        assert_eq!(s2.csr_rebuilds, 1);
        assert_eq!(s2.weight_refreshes, 1);
    }

    #[test]
    fn metric_refresh_invalidates_cached_route_choice() {
        let mut m = two_route_map();
        let cfg = CoreConfig::default();
        let mut eng = PathEngine::new();
        let fast = eng.path(&m, &cfg, NetNode::Host(1), NetNode::Host(6)).unwrap().to_vec();
        assert!(fast.contains(&NetNode::Switch(10)), "fast route first: {fast:?}");

        // The fast route's links degrade to 100 ms: a metric-only update.
        let topo_before = m.topology_generation();
        for seq in 3..=20 {
            m.apply_probe(&probe(1, seq, &[(10, 100), (11, 100)]), 6, 300_000_000);
        }
        assert_eq!(m.topology_generation(), topo_before, "no structural change");

        let rerouted = eng.path(&m, &cfg, NetNode::Host(1), NetNode::Host(6)).unwrap().to_vec();
        assert_eq!(rerouted, m.path(&cfg, NetNode::Host(1), NetNode::Host(6)).unwrap());
        assert!(rerouted.contains(&NetNode::Switch(12)), "reroutes via slow path: {rerouted:?}");
        assert_eq!(eng.stats().csr_rebuilds, 1, "metric drift never rebuilds the CSR");
    }

    #[test]
    fn eviction_invalidates_cache_no_stale_path_survives() {
        let mut m = NetworkMap::new();
        m.apply_probe(&probe(1, 1, &[(10, 5), (11, 5)]), 6, 22_000_000);
        let cfg = CoreConfig::default();
        let mut eng = PathEngine::new();
        assert!(eng.path(&m, &cfg, NetNode::Host(6), NetNode::Host(1)).is_some());

        m.evict_stale(22_000_000 + 10_000_000_001, 10_000_000_000);
        assert_eq!(
            eng.path(&m, &cfg, NetNode::Host(6), NetNode::Host(1)),
            None,
            "a dead path must not be served from the cache"
        );

        // Re-learning restores it.
        m.apply_probe(&probe(1, 2, &[(10, 5), (11, 5)]), 6, 32_000_000_002);
        assert!(eng.path(&m, &cfg, NetNode::Host(6), NetNode::Host(1)).is_some());
    }

    #[test]
    fn disabled_cache_returns_identical_paths() {
        let m = two_route_map();
        let cfg = CoreConfig::default();
        let mut on = PathEngine::new();
        let mut off = PathEngine::new();
        off.set_cache_enabled(false);
        for from in [1u32, 6] {
            for to in [1u32, 6] {
                let a = on.path(&m, &cfg, NetNode::Host(from), NetNode::Host(to)).map(<[_]>::to_vec);
                let b =
                    off.path(&m, &cfg, NetNode::Host(from), NetNode::Host(to)).map(<[_]>::to_vec);
                assert_eq!(a, b);
            }
        }
        assert_eq!(off.stats().cache_hits + off.stats().cache_misses, 0);
    }

    #[test]
    fn k_paths_agree_with_oracle_and_first_equals_path() {
        let m = two_route_map();
        let cfg = CoreConfig { k_paths: 3, ..CoreConfig::default() };
        let mut eng = PathEngine::new();
        for (a, b) in [(1u32, 6u32), (6, 1)] {
            let (from, to) = (NetNode::Host(a), NetNode::Host(b));
            let oracle = m.k_paths(&cfg, from, to, cfg.k_paths);
            let got = eng.paths(&m, &cfg, from, to).to_vec();
            assert_eq!(got, oracle, "{a}->{b}");
            assert_eq!(got.len(), 2, "both disjoint routes found: {got:?}");
            let single = eng.path(&m, &cfg, from, to).unwrap().to_vec();
            assert_eq!(got[0], single, "first k-path equals the single path");
        }
    }

    #[test]
    fn k_path_cache_drops_on_metric_refresh_of_one_member() {
        // Satellite-3 regression: re-pricing *one* path of a cached k-set
        // must invalidate the set — the winner order can flip.
        let mut m = two_route_map();
        let cfg = CoreConfig { k_paths: 2, ..CoreConfig::default() };
        let mut eng = PathEngine::new();
        let before = eng.paths(&m, &cfg, NetNode::Host(1), NetNode::Host(6)).to_vec();
        assert!(before[0].contains(&NetNode::Switch(10)), "fast route wins first: {before:?}");

        // Degrade only the fast route — a metric-only update.
        let topo_before = m.topology_generation();
        for seq in 3..=20 {
            m.apply_probe(&probe(1, seq, &[(10, 100), (11, 100)]), 6, 300_000_000);
        }
        assert_eq!(m.topology_generation(), topo_before, "no structural change");

        let after = eng.paths(&m, &cfg, NetNode::Host(1), NetNode::Host(6)).to_vec();
        assert_eq!(after, m.k_paths(&cfg, NetNode::Host(1), NetNode::Host(6), 2));
        assert!(
            after[0].contains(&NetNode::Switch(12)),
            "the re-priced set leads with the now-faster route: {after:?}"
        );
    }

    #[test]
    fn masked_runs_do_not_corrupt_the_shared_sssp() {
        let m = two_route_map();
        let cfg = CoreConfig { k_paths: 3, ..CoreConfig::default() };
        let mut eng = PathEngine::new();
        let single_before = eng.path(&m, &cfg, NetNode::Host(1), NetNode::Host(6)).unwrap().to_vec();
        let runs_before = eng.stats().sssp_runs;
        let _ = eng.paths(&m, &cfg, NetNode::Host(1), NetNode::Host(6)).to_vec();
        let single_after = eng.path(&m, &cfg, NetNode::Host(1), NetNode::Host(6)).unwrap().to_vec();
        assert_eq!(single_before, single_after);
        assert_eq!(
            eng.stats().sssp_runs,
            runs_before,
            "k-path queries reuse the memoized shared SSSP for path 1"
        );
    }

    #[test]
    fn unknown_endpoints_are_unreachable_but_self_path_is_free() {
        let m = two_route_map();
        let cfg = CoreConfig::default();
        let mut eng = PathEngine::new();
        assert_eq!(eng.path(&m, &cfg, NetNode::Host(1), NetNode::Host(42)), None);
        assert_eq!(eng.path(&m, &cfg, NetNode::Host(42), NetNode::Host(1)), None);
        assert_eq!(
            eng.path(&m, &cfg, NetNode::Host(42), NetNode::Host(42)),
            Some(&[NetNode::Host(42)][..]),
            "self paths need no map knowledge, as in the oracle"
        );
    }
}
