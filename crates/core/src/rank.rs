//! Edge-server ranking policies.
//!
//! The two INT-driven policies from the paper (§III-C delay, §III-D
//! bandwidth) plus the two baselines it compares against (§IV): *Nearest*
//! (static hop count, precomputed) and *Random* (seeded load spreading).

use crate::config::CoreConfig;
use crate::estimate::{BandwidthEstimator, DelayEstimator};
use crate::map::{NetNode, NetworkMap};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A ranking policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Policy {
    /// Network-aware, delay-based (Algorithm 1).
    IntDelay,
    /// Network-aware, bandwidth-based (§III-D).
    IntBandwidth,
    /// Baseline: fewest static hops from the requester.
    Nearest,
    /// Baseline: uniformly random order (load balancing).
    Random,
}

impl Policy {
    /// Human-readable label matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            Policy::IntDelay => "Network-aware",
            Policy::IntBandwidth => "Network-aware",
            Policy::Nearest => "Nearest",
            Policy::Random => "Random",
        }
    }
}

/// One ranked candidate with its estimated network performance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankedServer {
    /// The edge server's host id.
    pub host: u32,
    /// Estimated one-way delay from the requester, ns.
    pub est_delay_ns: u64,
    /// Estimated available path bandwidth, bit/s.
    pub est_bandwidth_bps: u64,
}

/// Static information the baselines need: hop counts between hosts,
/// computed ahead of time exactly as the paper's Nearest policy assumes.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StaticDistances {
    hops: BTreeMap<(u32, u32), u32>,
}

impl StaticDistances {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the hop count between a pair (stored symmetrically).
    pub fn set(&mut self, a: u32, b: u32, hops: u32) {
        self.hops.insert((a, b), hops);
        self.hops.insert((b, a), hops);
    }

    /// Hop count between two hosts, if known.
    pub fn get(&self, a: u32, b: u32) -> Option<u32> {
        self.hops.get(&(a, b)).copied()
    }
}

/// The ranking engine: owns the estimators and baseline state.
#[derive(Debug, Clone)]
pub struct Ranker {
    delay: DelayEstimator,
    bandwidth: BandwidthEstimator,
    distances: StaticDistances,
    rng: SmallRng,
}

impl Ranker {
    /// Build a ranker. `distances` feeds the Nearest baseline; `seed`
    /// drives the Random baseline.
    pub fn new(cfg: CoreConfig, distances: StaticDistances, seed: u64) -> Self {
        Ranker {
            delay: DelayEstimator::new(cfg.clone()),
            bandwidth: BandwidthEstimator::new(cfg),
            distances,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Rank `candidates` for `requester` under `policy`, best first.
    ///
    /// Candidates the learned map cannot reach are ranked last (worst
    /// estimates), never silently dropped — the requester may still need
    /// them if every server is unreachable during warm-up.
    pub fn rank(
        &mut self,
        map: &NetworkMap,
        requester: u32,
        candidates: &[u32],
        policy: Policy,
        now_ns: u64,
    ) -> Vec<RankedServer> {
        let mut out: Vec<RankedServer> = candidates
            .iter()
            .map(|&host| {
                let delay = self
                    .delay
                    .estimate(map, NetNode::Host(requester), NetNode::Host(host), now_ns);
                let bw = self
                    .bandwidth
                    .estimate(map, NetNode::Host(requester), NetNode::Host(host), now_ns);
                RankedServer {
                    host,
                    est_delay_ns: delay.map(|d| d.total_ns()).unwrap_or(u64::MAX),
                    est_bandwidth_bps: bw.unwrap_or(0),
                }
            })
            .collect();

        match policy {
            Policy::IntDelay => {
                out.sort_by_key(|s| (s.est_delay_ns, s.host));
            }
            Policy::IntBandwidth => {
                // Bandwidth estimates are coarse (a piecewise curve over
                // integer queue lengths), so ties are common; break them by
                // estimated delay, then host id, instead of herding every
                // equal-bandwidth query onto the lowest host id.
                out.sort_by_key(|s| {
                    (std::cmp::Reverse(s.est_bandwidth_bps), s.est_delay_ns, s.host)
                });
            }
            Policy::Nearest => {
                out.sort_by_key(|s| {
                    (self.distances.get(requester, s.host).unwrap_or(u32::MAX), s.host)
                });
            }
            Policy::Random => {
                out.shuffle(&mut self.rng);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use int_packet::int::IntRecord;
    use int_packet::ProbePayload;

    fn rec(switch_id: u32, maxq: u32, ts_ms: u64) -> IntRecord {
        IntRecord {
            switch_id,
            ingress_port: 0,
            egress_port: 1,
            max_qlen_pkts: maxq,
            qlen_at_probe_pkts: 0,
            link_latency_ns: 10_000_000,
            egress_ts_ns: ts_ms * 1_000_000,
        }
    }

    /// Scheduler host 6. Server 1 behind congested switch 10 (q=20);
    /// server 2 behind idle switch 12; both join switch 11 next to 6.
    fn map() -> NetworkMap {
        let mut m = NetworkMap::new();
        let mut p1 = ProbePayload::new(1, 1, 0);
        p1.int.push(rec(10, 20, 11));
        p1.int.push(rec(11, 0, 22));
        m.apply_probe(&p1, 6, 32_000_000);
        let mut p2 = ProbePayload::new(2, 1, 0);
        p2.int.push(rec(12, 0, 11));
        p2.int.push(rec(11, 0, 22));
        m.apply_probe(&p2, 6, 32_000_000);
        m
    }

    fn distances() -> StaticDistances {
        let mut d = StaticDistances::new();
        d.set(6, 1, 3);
        d.set(6, 2, 5); // nearest would pick 1 even though it is congested
        d
    }

    #[test]
    fn int_delay_prefers_uncongested_server() {
        let mut r = Ranker::new(CoreConfig::default(), distances(), 1);
        let ranked = r.rank(&map(), 6, &[1, 2], Policy::IntDelay, 32_000_000);
        assert_eq!(ranked[0].host, 2, "uncongested server wins: {ranked:?}");
        assert!(ranked[0].est_delay_ns < ranked[1].est_delay_ns);
    }

    #[test]
    fn int_bandwidth_prefers_higher_available_bw() {
        let mut r = Ranker::new(CoreConfig::default(), distances(), 1);
        let ranked = r.rank(&map(), 6, &[1, 2], Policy::IntBandwidth, 32_000_000);
        assert_eq!(ranked[0].host, 2);
        assert!(ranked[0].est_bandwidth_bps > ranked[1].est_bandwidth_bps);
    }

    #[test]
    fn nearest_ignores_congestion() {
        let mut r = Ranker::new(CoreConfig::default(), distances(), 1);
        let ranked = r.rank(&map(), 6, &[1, 2], Policy::Nearest, 32_000_000);
        assert_eq!(ranked[0].host, 1, "nearest picks the congested-but-close server");
    }

    #[test]
    fn random_is_seed_deterministic() {
        let rank_with = |seed| {
            let mut r = Ranker::new(CoreConfig::default(), distances(), seed);
            r.rank(&map(), 6, &[1, 2], Policy::Random, 0)
                .iter()
                .map(|s| s.host)
                .collect::<Vec<_>>()
        };
        assert_eq!(rank_with(7), rank_with(7));
        // Over several draws with different seeds both orders appear.
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..16 {
            seen.insert(rank_with(seed));
        }
        assert!(seen.len() > 1, "random actually varies across seeds");
    }

    #[test]
    fn unreachable_candidates_rank_last() {
        let mut r = Ranker::new(CoreConfig::default(), distances(), 1);
        let ranked = r.rank(&map(), 6, &[99, 2], Policy::IntDelay, 32_000_000);
        assert_eq!(ranked[0].host, 2);
        assert_eq!(ranked[1].host, 99);
        assert_eq!(ranked[1].est_delay_ns, u64::MAX);
        assert_eq!(ranked[1].est_bandwidth_bps, 0);
    }

    #[test]
    fn ties_break_by_host_id() {
        // Empty map: every candidate unreachable ⇒ equal keys ⇒ id order.
        let mut r = Ranker::new(CoreConfig::default(), StaticDistances::new(), 1);
        let ranked = r.rank(&NetworkMap::new(), 6, &[5, 3, 9], Policy::IntDelay, 0);
        let hosts: Vec<u32> = ranked.iter().map(|s| s.host).collect();
        assert_eq!(hosts, vec![3, 5, 9]);
    }
}
