//! Edge-server ranking policies.
//!
//! The two INT-driven policies from the paper (§III-C delay, §III-D
//! bandwidth) plus the two baselines it compares against (§IV): *Nearest*
//! (static hop count, precomputed) and *Random* (seeded load spreading).

use crate::config::CoreConfig;
use crate::estimate::{BandwidthEstimator, DelayEstimator};
use crate::map::{NetNode, NetworkMap};
use crate::pathidx::{PathEngine, PathEngineStats};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A ranking policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Policy {
    /// Network-aware, delay-based (Algorithm 1).
    IntDelay,
    /// Network-aware, bandwidth-based (§III-D).
    IntBandwidth,
    /// Baseline: fewest static hops from the requester.
    Nearest,
    /// Baseline: uniformly random order (load balancing).
    Random,
}

impl Policy {
    /// Human-readable label matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            Policy::IntDelay => "Network-aware",
            Policy::IntBandwidth => "Network-aware",
            Policy::Nearest => "Nearest",
            Policy::Random => "Random",
        }
    }

    /// Stable variant name, one per policy (unlike [`Policy::label`],
    /// which merges both INT policies). Used in audit exports and tables.
    pub fn name(&self) -> &'static str {
        match self {
            Policy::IntDelay => "IntDelay",
            Policy::IntBandwidth => "IntBandwidth",
            Policy::Nearest => "Nearest",
            Policy::Random => "Random",
        }
    }
}

/// One ranked candidate with its estimated network performance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankedServer {
    /// The edge server's host id.
    pub host: u32,
    /// Estimated one-way delay from the requester, ns.
    pub est_delay_ns: u64,
    /// Estimated available path bandwidth, bit/s.
    pub est_bandwidth_bps: u64,
}

/// Why a candidate was left out of an INT-based ranking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExcludeReason {
    /// The learned map has no live path to the host (its telemetry was
    /// evicted, or it was never probed while others were).
    NoFreshPath,
    /// The host originated probes before but has been silent beyond the
    /// configured horizon — presumed unreachable.
    OriginSilent,
}

impl ExcludeReason {
    /// Stable label used in audit exports.
    pub fn as_str(&self) -> &'static str {
        match self {
            ExcludeReason::NoFreshPath => "NoFreshPath",
            ExcludeReason::OriginSilent => "OriginSilent",
        }
    }
}

/// The result of a failure-aware ranking: the usable candidates, ranked
/// best first, plus everyone excluded and why.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankOutcome {
    /// Usable candidates, best first.
    pub ranked: Vec<RankedServer>,
    /// Excluded candidates with the reason, in host-id order.
    pub excluded: Vec<(u32, ExcludeReason)>,
}

/// Static information the baselines need: hop counts between hosts,
/// computed ahead of time exactly as the paper's Nearest policy assumes.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StaticDistances {
    hops: BTreeMap<(u32, u32), u32>,
}

impl StaticDistances {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the hop count between a pair (stored symmetrically).
    pub fn set(&mut self, a: u32, b: u32, hops: u32) {
        self.hops.insert((a, b), hops);
        self.hops.insert((b, a), hops);
    }

    /// Hop count between two hosts, if known.
    pub fn get(&self, a: u32, b: u32) -> Option<u32> {
        self.hops.get(&(a, b)).copied()
    }
}

/// The ranking engine: owns the estimators, the indexed path engine with
/// its reusable scratch buffers and path cache, and baseline state.
#[derive(Debug, Clone)]
pub struct Ranker {
    delay: DelayEstimator,
    bandwidth: BandwidthEstimator,
    distances: Arc<StaticDistances>,
    rng: SmallRng,
    /// One shared allocation: the estimators hold clones of this `Arc`,
    /// not clones of the config itself.
    cfg: Arc<CoreConfig>,
    engine: PathEngine,
    /// Scratch for [`Ranker::rank_detailed_into`]: estimates of pathless
    /// candidates, kept across calls so the warm-up fallback allocates
    /// nothing in steady state.
    pathless: Vec<RankedServer>,
}

impl Ranker {
    /// Build a ranker. `distances` feeds the Nearest baseline; `seed`
    /// drives the Random baseline. Both `cfg` and `distances` accept
    /// owned values or pre-shared `Arc`s. `INT_PATH_CACHE=0` (or `off`)
    /// in the environment force-disables the path cache — a determinism
    /// A/B switch; results are identical either way.
    pub fn new(
        cfg: impl Into<Arc<CoreConfig>>,
        distances: impl Into<Arc<StaticDistances>>,
        seed: u64,
    ) -> Self {
        let cfg = cfg.into();
        let mut engine = PathEngine::new();
        if matches!(
            std::env::var("INT_PATH_CACHE").as_deref(),
            Ok("0") | Ok("off") | Ok("false")
        ) {
            engine.set_cache_enabled(false);
        }
        Ranker {
            delay: DelayEstimator::new(Arc::clone(&cfg)),
            bandwidth: BandwidthEstimator::new(Arc::clone(&cfg)),
            distances: distances.into(),
            rng: SmallRng::seed_from_u64(seed),
            cfg,
            engine,
            pathless: Vec::new(),
        }
    }

    /// The shared configuration handle (cloning it clones the `Arc`).
    pub fn config_arc(&self) -> Arc<CoreConfig> {
        Arc::clone(&self.cfg)
    }

    /// The shared static-distance table handle.
    pub fn distances_arc(&self) -> Arc<StaticDistances> {
        Arc::clone(&self.distances)
    }

    /// Enable or force-disable the path cache (see [`PathEngine`]).
    pub fn set_path_cache_enabled(&mut self, on: bool) {
        self.engine.set_cache_enabled(on);
    }

    /// Path-engine accounting counters (steady-state tests).
    pub fn path_stats(&self) -> PathEngineStats {
        self.engine.stats()
    }

    /// The path the ranking hot path would use between two nodes — the
    /// indexed engine's answer, owned (tests and diagnostics).
    pub fn learned_path(
        &mut self,
        map: &NetworkMap,
        from: NetNode,
        to: NetNode,
    ) -> Option<Vec<NetNode>> {
        self.engine.path(map, &self.cfg, from, to).map(<[NetNode]>::to_vec)
    }

    /// Rank `candidates` for `requester` under `policy`, best first.
    ///
    /// Candidates the learned map cannot reach are ranked last (worst
    /// estimates), never silently dropped — the requester may still need
    /// them if every server is unreachable during warm-up.
    pub fn rank(
        &mut self,
        map: &NetworkMap,
        requester: u32,
        candidates: &[u32],
        policy: Policy,
        now_ns: u64,
    ) -> Vec<RankedServer> {
        let mut out = Vec::new();
        self.rank_into(map, requester, candidates, policy, now_ns, &mut out);
        out
    }

    /// [`Ranker::rank`] into a caller-owned buffer: the steady-state query
    /// path (warm path cache, reused buffer) performs zero heap
    /// allocations.
    pub fn rank_into(
        &mut self,
        map: &NetworkMap,
        requester: u32,
        candidates: &[u32],
        policy: Policy,
        now_ns: u64,
        out: &mut Vec<RankedServer>,
    ) {
        out.clear();
        out.reserve(candidates.len());
        for &host in candidates {
            let est = self.estimate(map, requester, host, now_ns);
            out.push(est);
        }
        self.sort(out, requester, policy);
    }

    /// Failure-aware ranking: candidates the map has no live path to, or
    /// whose probes went silent (`silent`, from the collector), are set
    /// aside with an explicit reason instead of being ranked on ghost
    /// telemetry.
    ///
    /// The baselines ignore telemetry and therefore exclude nothing — the
    /// asymmetry the failover experiment measures. As a warm-up escape
    /// hatch, if *no* candidate has a path and none is silent (an empty
    /// map, not a failure), everyone is ranked as [`Ranker::rank`] would.
    ///
    /// `silent` must be sorted ascending (as
    /// [`crate::collector::IntCollector::silent_origins`] returns it) —
    /// membership is a binary search.
    pub fn rank_detailed(
        &mut self,
        map: &NetworkMap,
        requester: u32,
        candidates: &[u32],
        policy: Policy,
        now_ns: u64,
        silent: &[u32],
    ) -> RankOutcome {
        let mut out = RankOutcome::default();
        self.rank_detailed_into(map, requester, candidates, policy, now_ns, silent, &mut out);
        out
    }

    /// [`Ranker::rank_detailed`] into a caller-owned outcome: all scratch
    /// (including the warm-up `pathless` estimates) is engine-owned, so
    /// the steady-state query path performs zero heap allocations.
    #[allow(clippy::too_many_arguments)]
    pub fn rank_detailed_into(
        &mut self,
        map: &NetworkMap,
        requester: u32,
        candidates: &[u32],
        policy: Policy,
        now_ns: u64,
        silent: &[u32],
        out: &mut RankOutcome,
    ) {
        debug_assert!(silent.windows(2).all(|w| w[0] <= w[1]), "silent must be sorted");
        out.ranked.clear();
        out.excluded.clear();
        if matches!(policy, Policy::Nearest | Policy::Random) {
            self.rank_into(map, requester, candidates, policy, now_ns, &mut out.ranked);
            return;
        }

        // Estimates of the pathless candidates, kept so the warm-up
        // fallback can reuse them instead of re-estimating from scratch.
        let mut pathless = std::mem::take(&mut self.pathless);
        pathless.clear();
        out.ranked.reserve(candidates.len());
        for &host in candidates {
            if silent.binary_search(&host).is_ok() {
                out.excluded.push((host, ExcludeReason::OriginSilent));
                continue;
            }
            let est = self.estimate(map, requester, host, now_ns);
            if est.est_delay_ns == u64::MAX {
                out.excluded.push((host, ExcludeReason::NoFreshPath));
                pathless.push(est);
            } else {
                out.ranked.push(est);
            }
        }

        if out.ranked.is_empty()
            && out.excluded.iter().all(|(_, r)| *r == ExcludeReason::NoFreshPath)
        {
            // The map knows no paths at all: warm-up, not a failure. Every
            // candidate's estimate is already in `pathless` (nobody was
            // silent); rank those instead of recomputing each one.
            out.ranked.extend_from_slice(&pathless);
            out.excluded.clear();
            self.sort(&mut out.ranked, requester, policy);
            self.pathless = pathless;
            return;
        }

        self.sort(&mut out.ranked, requester, policy);
        out.excluded.sort_unstable_by_key(|(h, _)| *h);
        self.pathless = pathless;
    }

    /// Estimate one candidate. With `k_paths == 1` (the default) the path
    /// is computed **once** via the indexed engine and fed to both
    /// estimators — the delay and bandwidth figures always describe the
    /// same route (and the engine's shared SSSP means all candidates of
    /// one query reuse a single Dijkstra). With `k_paths > 1` every
    /// candidate path is priced and the cheapest wins: ties break to the
    /// lowest path index, and both reported figures come from the *same*
    /// winning path.
    ///
    /// Reachable totals are clamped to `u64::MAX - 1`: `u64::MAX` is the
    /// no-fresh-path sentinel, and a saturated-but-reachable estimate
    /// must rank worst, not read as unreachable.
    fn estimate(&mut self, map: &NetworkMap, requester: u32, host: u32, now_ns: u64) -> RankedServer {
        if self.cfg.k_paths <= 1 {
            return match self.engine.path(map, &self.cfg, NetNode::Host(requester), NetNode::Host(host))
            {
                None => RankedServer { host, est_delay_ns: u64::MAX, est_bandwidth_bps: 0 },
                Some(path) => RankedServer {
                    host,
                    est_delay_ns: self
                        .delay
                        .estimate_along(map, path, now_ns)
                        .total_ns()
                        .min(u64::MAX - 1),
                    est_bandwidth_bps: self.bandwidth.estimate_along(map, path, now_ns),
                },
            };
        }
        let paths =
            self.engine.paths(map, &self.cfg, NetNode::Host(requester), NetNode::Host(host));
        let mut best_delay = u64::MAX;
        let mut best_bw = 0;
        for path in paths {
            let d = self.delay.estimate_along(map, path, now_ns).total_ns().min(u64::MAX - 1);
            if d < best_delay {
                best_delay = d;
                best_bw = self.bandwidth.estimate_along(map, path, now_ns);
            }
        }
        RankedServer { host, est_delay_ns: best_delay, est_bandwidth_bps: best_bw }
    }

    fn sort(&mut self, out: &mut [RankedServer], requester: u32, policy: Policy) {
        // All sort keys include the host id, so every key is unique and
        // `sort_unstable` orders exactly as the stable sort did — without
        // the stable sort's scratch allocation on larger candidate sets.
        match policy {
            Policy::IntDelay => {
                out.sort_unstable_by_key(|s| (s.est_delay_ns, s.host));
            }
            Policy::IntBandwidth => {
                // Bandwidth estimates are coarse (a piecewise curve over
                // integer queue lengths), so ties are common; break them by
                // estimated delay, then host id, instead of herding every
                // equal-bandwidth query onto the lowest host id.
                out.sort_unstable_by_key(|s| {
                    (std::cmp::Reverse(s.est_bandwidth_bps), s.est_delay_ns, s.host)
                });
            }
            Policy::Nearest => {
                out.sort_unstable_by_key(|s| {
                    (self.distances.get(requester, s.host).unwrap_or(u32::MAX), s.host)
                });
            }
            Policy::Random => {
                out.shuffle(&mut self.rng);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use int_packet::int::IntRecord;
    use int_packet::ProbePayload;

    fn rec(switch_id: u32, maxq: u32, ts_ms: u64) -> IntRecord {
        IntRecord {
            switch_id,
            ingress_port: 0,
            egress_port: 1,
            max_qlen_pkts: maxq,
            qlen_at_probe_pkts: 0,
            link_latency_ns: 10_000_000,
            egress_ts_ns: ts_ms * 1_000_000,
        }
    }

    /// Scheduler host 6. Server 1 behind congested switch 10 (q=20);
    /// server 2 behind idle switch 12; both join switch 11 next to 6.
    fn map() -> NetworkMap {
        let mut m = NetworkMap::new();
        let mut p1 = ProbePayload::new(1, 1, 0);
        p1.int.push(rec(10, 20, 11));
        p1.int.push(rec(11, 0, 22));
        m.apply_probe(&p1, 6, 32_000_000);
        let mut p2 = ProbePayload::new(2, 1, 0);
        p2.int.push(rec(12, 0, 11));
        p2.int.push(rec(11, 0, 22));
        m.apply_probe(&p2, 6, 32_000_000);
        m
    }

    fn distances() -> StaticDistances {
        let mut d = StaticDistances::new();
        d.set(6, 1, 3);
        d.set(6, 2, 5); // nearest would pick 1 even though it is congested
        d
    }

    #[test]
    fn int_delay_prefers_uncongested_server() {
        let mut r = Ranker::new(CoreConfig::default(), distances(), 1);
        let ranked = r.rank(&map(), 6, &[1, 2], Policy::IntDelay, 32_000_000);
        assert_eq!(ranked[0].host, 2, "uncongested server wins: {ranked:?}");
        assert!(ranked[0].est_delay_ns < ranked[1].est_delay_ns);
    }

    #[test]
    fn int_bandwidth_prefers_higher_available_bw() {
        let mut r = Ranker::new(CoreConfig::default(), distances(), 1);
        let ranked = r.rank(&map(), 6, &[1, 2], Policy::IntBandwidth, 32_000_000);
        assert_eq!(ranked[0].host, 2);
        assert!(ranked[0].est_bandwidth_bps > ranked[1].est_bandwidth_bps);
    }

    #[test]
    fn nearest_ignores_congestion() {
        let mut r = Ranker::new(CoreConfig::default(), distances(), 1);
        let ranked = r.rank(&map(), 6, &[1, 2], Policy::Nearest, 32_000_000);
        assert_eq!(ranked[0].host, 1, "nearest picks the congested-but-close server");
    }

    #[test]
    fn random_is_seed_deterministic() {
        let rank_with = |seed| {
            let mut r = Ranker::new(CoreConfig::default(), distances(), seed);
            r.rank(&map(), 6, &[1, 2], Policy::Random, 0)
                .iter()
                .map(|s| s.host)
                .collect::<Vec<_>>()
        };
        assert_eq!(rank_with(7), rank_with(7));
        // Over several draws with different seeds both orders appear.
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..16 {
            seen.insert(rank_with(seed));
        }
        assert!(seen.len() > 1, "random actually varies across seeds");
    }

    #[test]
    fn unreachable_candidates_rank_last() {
        let mut r = Ranker::new(CoreConfig::default(), distances(), 1);
        let ranked = r.rank(&map(), 6, &[99, 2], Policy::IntDelay, 32_000_000);
        assert_eq!(ranked[0].host, 2);
        assert_eq!(ranked[1].host, 99);
        assert_eq!(ranked[1].est_delay_ns, u64::MAX);
        assert_eq!(ranked[1].est_bandwidth_bps, 0);
    }

    #[test]
    fn rank_detailed_excludes_silent_and_pathless_with_reasons() {
        let mut r = Ranker::new(CoreConfig::default(), distances(), 1);
        // 99 has no telemetry at all; 1 is marked silent by the collector.
        let out =
            r.rank_detailed(&map(), 6, &[1, 2, 99], Policy::IntDelay, 32_000_000, &[1]);
        assert_eq!(out.ranked.len(), 1);
        assert_eq!(out.ranked[0].host, 2);
        assert_eq!(
            out.excluded,
            vec![(1, ExcludeReason::OriginSilent), (99, ExcludeReason::NoFreshPath)]
        );
    }

    #[test]
    fn rank_detailed_warm_up_falls_back_to_plain_ranking() {
        // Empty map, nobody silent: every candidate is pathless, which is
        // ignorance, not failure — rank them all.
        let mut r = Ranker::new(CoreConfig::default(), StaticDistances::new(), 1);
        let out = r.rank_detailed(&NetworkMap::new(), 6, &[5, 3], Policy::IntDelay, 0, &[]);
        assert_eq!(out.ranked.len(), 2);
        assert!(out.excluded.is_empty());

        // But one silent origin among pathless candidates is a failure
        // signal, not warm-up.
        let mut r = Ranker::new(CoreConfig::default(), StaticDistances::new(), 1);
        let out = r.rank_detailed(&NetworkMap::new(), 6, &[5, 3], Policy::IntDelay, 0, &[3]);
        assert_eq!(
            out.excluded,
            vec![(3, ExcludeReason::OriginSilent), (5, ExcludeReason::NoFreshPath)]
        );
        assert!(out.ranked.is_empty(), "pathless peers stay out once failure is evident");
    }

    #[test]
    fn rank_detailed_baselines_never_exclude() {
        let mut r = Ranker::new(CoreConfig::default(), distances(), 1);
        for policy in [Policy::Nearest, Policy::Random] {
            let out = r.rank_detailed(&map(), 6, &[1, 2], policy, 32_000_000, &[1]);
            assert_eq!(out.ranked.len(), 2, "{policy:?} ignores telemetry silence");
            assert!(out.excluded.is_empty());
        }
    }

    #[test]
    fn rank_detailed_matches_rank_when_healthy() {
        let mut a = Ranker::new(CoreConfig::default(), distances(), 1);
        let mut b = Ranker::new(CoreConfig::default(), distances(), 1);
        let plain = a.rank(&map(), 6, &[1, 2], Policy::IntDelay, 32_000_000);
        let detailed = b.rank_detailed(&map(), 6, &[1, 2], Policy::IntDelay, 32_000_000, &[]);
        assert_eq!(plain, detailed.ranked);
        assert!(detailed.excluded.is_empty());
    }

    /// Regression (Ranker::estimate used to run two independent Dijkstras
    /// per candidate): the single shared path must yield exactly the
    /// estimates two independent point-to-point computations produce.
    #[test]
    fn delay_and_bandwidth_estimates_match_independent_computations() {
        use crate::estimate::{BandwidthEstimator, DelayEstimator};
        let m = map();
        let cfg = CoreConfig::default();
        let mut r = Ranker::new(cfg.clone(), distances(), 1);
        let ranked = r.rank(&m, 6, &[1, 2], Policy::IntDelay, 32_000_000);

        let de = DelayEstimator::new(cfg.clone());
        let be = BandwidthEstimator::new(cfg);
        for s in &ranked {
            let d = de.estimate(&m, NetNode::Host(6), NetNode::Host(s.host), 32_000_000);
            let b = be.estimate(&m, NetNode::Host(6), NetNode::Host(s.host), 32_000_000);
            assert_eq!(s.est_delay_ns, d.unwrap().total_ns(), "host {}", s.host);
            assert_eq!(s.est_bandwidth_bps, b.unwrap(), "host {}", s.host);
        }
    }

    /// One query = one SSSP shared by all candidates and both estimators;
    /// repeat queries against an unchanged map do no traversal work at
    /// all (pool-style steady-state accounting, as in PR 1).
    #[test]
    fn query_shares_one_sssp_and_steady_state_does_no_work() {
        let m = map();
        let mut r = Ranker::new(CoreConfig::default(), distances(), 1);
        r.rank(&m, 6, &[1, 2], Policy::IntDelay, 32_000_000);
        let s = r.path_stats();
        assert_eq!(s.sssp_runs, 1, "2 candidates × 2 estimators share one Dijkstra");
        assert_eq!(s.csr_rebuilds, 1);

        let mut out = Vec::new();
        for _ in 0..50 {
            r.rank_into(&m, 6, &[1, 2], Policy::IntDelay, 32_000_000, &mut out);
            r.rank_into(&m, 6, &[1, 2], Policy::IntBandwidth, 32_000_000, &mut out);
        }
        let s2 = r.path_stats();
        assert_eq!(s2.sssp_runs, 1, "steady state never re-runs Dijkstra");
        assert_eq!(s2.csr_rebuilds, 1, "…nor rebuilds the CSR");
        assert_eq!(s2.cache_misses, s.cache_misses, "…nor misses the path cache");
        assert_eq!(s2.cache_hits, s.cache_hits + 200, "every steady-state path is a hit");
    }

    /// The ranking hot path and the reference `NetworkMap::path` agree on
    /// routes even as telemetry updates and evictions churn the map.
    #[test]
    fn learned_path_tracks_oracle_through_churn() {
        let mut m = map();
        let cfg = CoreConfig::default();
        let mut r = Ranker::new(cfg.clone(), distances(), 1);
        let check = |r: &mut Ranker, m: &NetworkMap| {
            for (from, to) in [(6u32, 1u32), (6, 2), (1, 2), (1, 99)] {
                let oracle = m.path(&cfg, NetNode::Host(from), NetNode::Host(to));
                let got = r.learned_path(m, NetNode::Host(from), NetNode::Host(to));
                assert_eq!(got, oracle, "{from}->{to}");
            }
        };
        check(&mut r, &m);
        // Metric churn on an existing edge.
        let mut p = ProbePayload::new(1, 9, 0);
        p.int.push(rec(10, 50, 11));
        p.int.push(rec(11, 3, 22));
        m.apply_probe(&p, 6, 64_000_000);
        check(&mut r, &m);
        // Structural churn: evict everything, then relearn one branch.
        m.evict_stale(64_000_000 + 10_000_000_001, 10_000_000_000);
        check(&mut r, &m);
        let mut p = ProbePayload::new(2, 9, 0);
        p.int.push(rec(12, 0, 11));
        p.int.push(rec(11, 0, 22));
        m.apply_probe(&p, 6, 64_000_000 + 10_100_000_000);
        check(&mut r, &m);
    }

    #[test]
    fn ties_break_by_host_id() {
        // Empty map: every candidate unreachable ⇒ equal keys ⇒ id order.
        let mut r = Ranker::new(CoreConfig::default(), StaticDistances::new(), 1);
        let ranked = r.rank(&NetworkMap::new(), 6, &[5, 3, 9], Policy::IntDelay, 0);
        let hosts: Vec<u32> = ranked.iter().map(|s| s.host).collect();
        assert_eq!(hosts, vec![3, 5, 9]);
    }
}
