//! Immutable epoch snapshots of the scheduler control plane.
//!
//! The sharded scheduler (see [`crate::shard`]) splits `core::sched` into
//! an **ingest half** that keeps mutating the live [`NetworkMap`] and a
//! **read half** that serves `rank`/`rank_detailed` queries. The bridge
//! is [`SchedSnapshot`]: a frozen, `Send + Sync` copy of everything a
//! query needs, built from the [`PathEngine`](crate::pathidx::PathEngine)
//! CSR machinery whenever the map's topology or metrics generation moves.
//!
//! A snapshot carries:
//!
//! * the CSR adjacency and ≥1-clamped traversal weights (byte-identical
//!   to what the live engine would compute for the same generations);
//! * per-arc *estimate* inputs: the unclamped effective link delay and
//!   the resolved queue-occupancy evidence (which directed edge answers
//!   for this arc under the direction-fallback policy, its harvest
//!   timestamps and windowed history) — resolved once at publish so
//!   query-time evaluation never touches the map;
//! * freshness/silence metadata: every known host (the candidate set)
//!   and every probe origin's last-receive time, so origin-silence
//!   exclusion is a pure function of the query's `now`.
//!
//! Queries evaluate against a per-shard [`SnapshotScratch`] (the PR-5
//! dist/prev/heap Dijkstra buffers plus a per-epoch path cache), so N
//! shards serve concurrently with zero shared mutable state. The
//! evaluation mirrors [`Ranker`](crate::rank::Ranker) decision-for-
//! decision; `tests/shard_determinism.rs` pins byte-equality against the
//! single-threaded oracle across churn, eviction, and faults.
//!
//! The only sanctioned divergence is [`Policy::Random`]: the sequential
//! ranker draws from one long-lived RNG stream, which cannot be
//! reproduced when queries are served concurrently. Snapshot evaluation
//! derives an RNG per query from `(seed, epoch, slot)` instead —
//! deterministic for any worker count, but a *different* (equally
//! uniform) shuffle than the sequential stream.

use crate::collector::IntCollector;
use crate::config::{CoreConfig, DirectionFallback, HopSignal};
use crate::map::{NetNode, NetworkMap};
use crate::pathidx::PathEngine;
use crate::rank::{ExcludeReason, Policy, RankOutcome, RankedServer, StaticDistances};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::Arc;

/// Sentinel for "no predecessor" in the SSSP scratch.
const NO_PREV: u32 = u32::MAX;

/// Queue-occupancy evidence for one CSR arc, resolved at publish time.
///
/// Mirrors [`NetworkMap::effective_qlen`]: the forward directed edge
/// answers if it exists (even if its harvest is stale — staleness reads
/// as an empty queue, it does not fall through to the reverse edge);
/// otherwise, under [`DirectionFallback::ReverseOk`], the reverse edge
/// answers; otherwise the queue reads as empty.
#[derive(Debug, Clone, Copy)]
struct ArcQlen {
    /// Does any directed edge answer for this arc?
    present: bool,
    /// When the answering edge's queue measurement was taken, ns.
    updated_ns: u64,
    /// Instantaneous occupancy at the probe (the ablation signal).
    at_probe_pkts: u32,
    /// Offset/length of this arc's harvest history in `qlen_hist`.
    hist_start: u32,
    hist_len: u32,
    /// Slot capacity reserved for this arc's run in `qlen_hist` (full
    /// builds leave headroom so incremental publishes can splice longer
    /// runs in place; a run outgrowing its slot forces a full rebuild).
    hist_cap: u32,
}

const NO_QLEN: ArcQlen = ArcQlen {
    present: false,
    updated_ns: 0,
    at_probe_pkts: 0,
    hist_start: 0,
    hist_len: 0,
    hist_cap: 0,
};

/// The structural half of a snapshot: CSR adjacency and the candidate
/// host universe. Immutable for as long as the map's `topo_gen` holds,
/// so consecutive incremental epochs share one allocation via `Arc`.
#[derive(Debug)]
struct CsrTopo {
    /// All nodes in ascending `NetNode` order; index = dense id.
    nodes: Vec<NetNode>,
    /// CSR row offsets (`nodes.len() + 1` entries).
    row: Vec<u32>,
    /// CSR columns (neighbour dense ids, sorted per row).
    cols: Vec<u32>,
    /// Every known host, ascending — the candidate universe.
    hosts: Vec<u32>,
}

/// One frozen epoch of the scheduler control plane. Immutable and
/// `Send + Sync`: any number of shards may evaluate queries against it
/// concurrently, each with its own [`SnapshotScratch`].
#[derive(Debug)]
pub struct SchedSnapshot {
    epoch: u64,
    published_at_ns: u64,
    cfg: Arc<CoreConfig>,
    distances: Arc<StaticDistances>,
    /// Base seed for the per-query Random-policy RNG derivation.
    seed: u64,
    /// Structure (nodes/adjacency/hosts), shared across incremental
    /// epochs while the map's topology generation holds.
    topo: Arc<CsrTopo>,
    /// Map topology generation this snapshot's structure was frozen at;
    /// the publisher's incremental path requires it unchanged.
    topo_gen: u64,
    /// Identity of the `qlen_hist` slot layout (bumped per full build);
    /// two snapshots with equal `layout_gen` share slot offsets/caps.
    layout_gen: u64,
    /// ≥1-clamped traversal weight per arc (parallel to `cols`).
    weights: Vec<u64>,
    /// Unclamped effective link delay per arc — the estimate's per-link
    /// term (`effective_delay_ns` with the unmeasured fallback applied,
    /// *without* the traversal `.max(1)` clamp).
    est_delay: Vec<u64>,
    /// Queue evidence per arc (parallel to `cols`).
    arc_q: Vec<ArcQlen>,
    /// Flat slotted storage for all arcs' harvest histories (runs padded
    /// to their slot capacity).
    qlen_hist: Vec<(u64, u32)>,
    /// `(origin, last_rx_ns)` per probe origin with ≥1 probe, ascending.
    origins: Vec<(u32, u64)>,
}

impl SchedSnapshot {
    /// Freeze the current state of `collector`'s map into an immutable
    /// epoch. `engine` provides (and retains) the CSR build machinery —
    /// pass the same engine across publishes so unchanged topology costs
    /// a generation check, not a rebuild.
    pub fn build(
        collector: &IntCollector,
        engine: &mut PathEngine,
        cfg: &Arc<CoreConfig>,
        distances: &Arc<StaticDistances>,
        seed: u64,
        epoch: u64,
        published_at_ns: u64,
    ) -> Self {
        Self::build_full(collector, engine, cfg, distances, seed, epoch, published_at_ns, 0, 0)
    }

    /// The full (re)build: freeze everything from the live map. The
    /// publisher passes `hist_hint` (the previous epoch's `qlen_hist`
    /// length) to pre-size the flat history store, and a `layout_gen`
    /// identifying the slot layout this build creates.
    #[allow(clippy::too_many_arguments)]
    fn build_full(
        collector: &IntCollector,
        engine: &mut PathEngine,
        cfg: &Arc<CoreConfig>,
        distances: &Arc<StaticDistances>,
        seed: u64,
        epoch: u64,
        published_at_ns: u64,
        hist_hint: usize,
        layout_gen: u64,
    ) -> Self {
        let map = collector.map();
        let topo_gen = map.topology_generation();
        let (nodes, row, cols, weights) = engine.csr_view(map, cfg);
        let nodes = nodes.to_vec();
        let row = row.to_vec();
        let cols = cols.to_vec();
        let weights = weights.to_vec();

        // Per-arc estimate inputs, resolved in CSR order.
        let mut est_delay = Vec::with_capacity(cols.len());
        let mut arc_q = Vec::with_capacity(cols.len());
        let mut qlen_hist = Vec::with_capacity(hist_hint);
        for u in 0..nodes.len() {
            let from = nodes[u];
            for i in row[u] as usize..row[u + 1] as usize {
                let to = nodes[cols[i] as usize];
                est_delay.push(
                    map.effective_delay_ns(cfg, from, to).unwrap_or(cfg.unmeasured_delay_ns),
                );
                arc_q.push(resolve_qlen(map, cfg, from, to, &mut qlen_hist));
            }
        }

        SchedSnapshot {
            epoch,
            published_at_ns,
            cfg: Arc::clone(cfg),
            distances: Arc::clone(distances),
            seed,
            topo: Arc::new(CsrTopo { nodes, row, cols, hosts: map.hosts().collect() }),
            topo_gen,
            layout_gen,
            weights,
            est_delay,
            arc_q,
            qlen_hist,
            origins: collector
                .origin_stats_all()
                .filter(|(_, st)| st.received > 0)
                .map(|(o, st)| (o, st.last_rx_ns))
                .collect(),
        }
    }

    /// Semantic equality of everything a query can observe: structure,
    /// weights, delays, origins, and per-arc queue evidence with history
    /// *runs* compared by content. (Byte-comparing `qlen_hist` directly
    /// would also compare slot padding, which legitimately differs
    /// between a fresh full build and an incrementally patched epoch.)
    pub fn content_eq(&self, other: &SchedSnapshot) -> bool {
        self.epoch == other.epoch
            && self.published_at_ns == other.published_at_ns
            && self.seed == other.seed
            && self.topo.nodes == other.topo.nodes
            && self.topo.row == other.topo.row
            && self.topo.cols == other.topo.cols
            && self.topo.hosts == other.topo.hosts
            && self.weights == other.weights
            && self.est_delay == other.est_delay
            && self.origins == other.origins
            && self.arc_q.len() == other.arc_q.len()
            && self.arc_q.iter().zip(&other.arc_q).all(|(a, b)| {
                a.present == b.present
                    && a.updated_ns == b.updated_ns
                    && a.at_probe_pkts == b.at_probe_pkts
                    && self.hist_run(a) == other.hist_run(b)
            })
    }

    /// The live entries of one arc's history slot (padding excluded).
    fn hist_run(&self, a: &ArcQlen) -> &[(u64, u32)] {
        &self.qlen_hist[a.hist_start as usize..(a.hist_start + a.hist_len) as usize]
    }

    /// The epoch counter this snapshot was published as.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Collector-clock time this snapshot was published at, ns.
    pub fn published_at_ns(&self) -> u64 {
        self.published_at_ns
    }

    /// Nodes in the frozen graph (diagnostics).
    pub fn node_count(&self) -> usize {
        self.topo.nodes.len()
    }

    /// Directed arcs in the frozen graph (diagnostics).
    pub fn arc_count(&self) -> usize {
        self.topo.cols.len()
    }

    /// Candidate hosts known to this epoch, ascending.
    pub fn hosts(&self) -> &[u32] {
        &self.topo.hosts
    }

    /// Rank for `requester` under `policy`, evaluated purely against this
    /// snapshot. `slot` is the query's pre-assigned batch slot (it seeds
    /// the Random-policy shuffle, so results are independent of which
    /// shard serves the slot). Decision-for-decision identical to
    /// [`crate::sched::SchedulerCore::rank_detailed_with`] evaluated at
    /// the same map state and `now_ns` (except `Policy::Random`, see the
    /// module docs).
    pub fn rank_detailed(
        &self,
        scratch: &mut SnapshotScratch,
        requester: u32,
        policy: Policy,
        now_ns: u64,
        slot: u64,
    ) -> RankOutcome {
        let mut out = RankOutcome::default();
        self.rank_detailed_into(scratch, requester, policy, now_ns, slot, &mut out);
        out
    }

    /// [`SchedSnapshot::rank_detailed`] into a caller-owned outcome (the
    /// zero-alloc steady-state path).
    pub fn rank_detailed_into(
        &self,
        scratch: &mut SnapshotScratch,
        requester: u32,
        policy: Policy,
        now_ns: u64,
        slot: u64,
        out: &mut RankOutcome,
    ) {
        scratch.bind(self);
        scratch.stats.queries += 1;
        out.ranked.clear();
        out.excluded.clear();

        // Candidate set: every known host except the requester — the same
        // rule as `SchedulerCore::candidates_for`.
        let mut candidates = std::mem::take(&mut scratch.candidates);
        candidates.clear();
        candidates.extend(self.topo.hosts.iter().copied().filter(|&h| h != requester));

        if matches!(policy, Policy::Nearest | Policy::Random) {
            out.ranked.reserve(candidates.len());
            for &host in &candidates {
                let est = self.estimate(scratch, requester, host, now_ns);
                out.ranked.push(est);
            }
            self.sort(&mut out.ranked, requester, policy, slot);
            scratch.candidates = candidates;
            return;
        }

        let mut pathless = std::mem::take(&mut scratch.pathless);
        pathless.clear();
        out.ranked.reserve(candidates.len());
        for &host in &candidates {
            if self.is_silent(host, now_ns) {
                out.excluded.push((host, ExcludeReason::OriginSilent));
                continue;
            }
            let est = self.estimate(scratch, requester, host, now_ns);
            if est.est_delay_ns == u64::MAX {
                out.excluded.push((host, ExcludeReason::NoFreshPath));
                pathless.push(est);
            } else {
                out.ranked.push(est);
            }
        }

        if out.ranked.is_empty()
            && out.excluded.iter().all(|(_, r)| *r == ExcludeReason::NoFreshPath)
        {
            // Warm-up, not failure: rank the pathless estimates instead.
            out.ranked.extend_from_slice(&pathless);
            out.excluded.clear();
            self.sort(&mut out.ranked, requester, policy, slot);
        } else {
            self.sort(&mut out.ranked, requester, policy, slot);
            out.excluded.sort_unstable_by_key(|(h, _)| *h);
        }
        scratch.pathless = pathless;
        scratch.candidates = candidates;
    }

    /// Is `host` a probe origin that has gone silent beyond the horizon?
    /// Pure function of the snapshot's origin table and the query `now`
    /// — exactly `IntCollector::silent_origins` membership.
    fn is_silent(&self, host: u32, now_ns: u64) -> bool {
        match self.origins.binary_search_by_key(&host, |&(o, _)| o) {
            Ok(i) => {
                now_ns.saturating_sub(self.origins[i].1) > self.cfg.origin_silence_ns
            }
            Err(_) => false,
        }
    }

    /// Estimate one candidate: resolve the path (shared SSSP + path cache
    /// in the scratch) and price it with the frozen per-arc delay and
    /// queue evidence — the same numbers the live estimators produce
    /// against the map state this snapshot froze. With `k_paths > 1`,
    /// resolve the whole k-set (decision-identical to
    /// [`PathEngine::paths`]) and report the cheapest path's figures,
    /// ties breaking to the lowest path index — exactly the live
    /// `Ranker::estimate` rule.
    fn estimate(
        &self,
        scratch: &mut SnapshotScratch,
        requester: u32,
        host: u32,
        now_ns: u64,
    ) -> RankedServer {
        let (Some(from), Some(to)) =
            (self.node_id(NetNode::Host(requester)), self.node_id(NetNode::Host(host)))
        else {
            return RankedServer { host, est_delay_ns: u64::MAX, est_bandwidth_bps: 0 };
        };
        if from == to {
            return RankedServer {
                host,
                est_delay_ns: 0,
                est_bandwidth_bps: self.cfg.link_capacity_bps,
            };
        }
        if self.cfg.k_paths <= 1 {
            if !self.resolve_path(scratch, from, to) {
                return RankedServer { host, est_delay_ns: u64::MAX, est_bandwidth_bps: 0 };
            }
            let (est_delay_ns, est_bandwidth_bps) = self.price_path(&scratch.path_buf, now_ns);
            return RankedServer { host, est_delay_ns, est_bandwidth_bps };
        }

        if !self.ensure_k_paths(scratch, from, to) {
            return RankedServer { host, est_delay_ns: u64::MAX, est_bandwidth_bps: 0 };
        }
        let kset = scratch.kcache.get(&(from, to)).expect("just ensured");
        let mut best_delay = u64::MAX;
        let mut best_bw = 0;
        for path in kset {
            let (d, bw) = self.price_path(path, now_ns);
            if d < best_delay {
                best_delay = d;
                best_bw = bw;
            }
        }
        RankedServer { host, est_delay_ns: best_delay, est_bandwidth_bps: best_bw }
    }

    /// Price one resolved dense-id path with the frozen per-arc evidence,
    /// mirroring `DelayEstimator`/`BandwidthEstimator::estimate_along` —
    /// including their saturating arithmetic (8+-hop fabric paths with
    /// saturated link estimates must pin at the ceiling, not wrap) and
    /// the `u64::MAX - 1` clamp that keeps reachable totals distinct
    /// from the no-fresh-path sentinel.
    fn price_path(&self, path: &[u32], now_ns: u64) -> (u64, u64) {
        let mut link_delay_ns = 0u64;
        let mut hop_delay_ns = 0u64;
        let mut bottleneck = self.cfg.link_capacity_bps;
        for w in path.windows(2) {
            let (u, v) = (w[0], w[1]);
            let ai = self.arc_index(u, v).expect("path arcs exist in the CSR");
            link_delay_ns = link_delay_ns.saturating_add(self.est_delay[ai]);
            if matches!(self.topo.nodes[u as usize], NetNode::Switch(_)) {
                let q = self.arc_qlen(ai, now_ns);
                hop_delay_ns =
                    hop_delay_ns.saturating_add(self.cfg.k_ns_per_pkt.saturating_mul(q as u64));
                bottleneck = bottleneck.min(self.cfg.available_bw_for_qlen(q));
            }
        }
        (link_delay_ns.saturating_add(hop_delay_ns).min(u64::MAX - 1), bottleneck)
    }

    /// Resolve (and cache) the k-path set for `from → to` into the
    /// scratch, mirroring [`PathEngine::paths`]: first path from the
    /// shared SSSP, successors from masked Dijkstra runs with the
    /// previous paths' interior switch–switch edges banned. Returns
    /// false when disconnected (cached as an empty set).
    fn ensure_k_paths(&self, scratch: &mut SnapshotScratch, from: u32, to: u32) -> bool {
        if let Some(kset) = scratch.kcache.get(&(from, to)) {
            scratch.stats.cache_hits += 1;
            return !kset.is_empty();
        }
        scratch.stats.cache_misses += 1;
        let mut out: Vec<Vec<u32>> = Vec::new();
        // First path straight off the shared SSSP into the cache-owned
        // Vec — no detour through `path_buf` + clone, and no entry in the
        // single-path cache (the k-set cache alone answers k > 1).
        self.ensure_sssp(scratch, from);
        let mut first = Vec::new();
        if self.extract_path_into(scratch, from, to, &mut first) {
            out.push(first);
            let k = self.cfg.k_paths.max(1);
            if k > 1 {
                scratch.arc_mask.clear();
                scratch.arc_mask.resize(self.topo.cols.len(), false);
                for _ in 1..k {
                    let last = out.last().expect("non-empty");
                    self.ban_interior_edges(scratch, last);
                    let Some(p) = self.masked_path(scratch, from, to) else { break };
                    if out.contains(&p) {
                        break;
                    }
                    out.push(p);
                }
            }
        }
        let ok = !out.is_empty();
        scratch.kcache.insert((from, to), out);
        ok
    }

    /// Mask both arc directions of every interior switch–switch edge of
    /// a path (host attachment edges are never banned).
    fn ban_interior_edges(&self, scratch: &mut SnapshotScratch, path: &[u32]) {
        for w in path.windows(2) {
            let (u, v) = (w[0], w[1]);
            if matches!(self.topo.nodes[u as usize], NetNode::Switch(_))
                && matches!(self.topo.nodes[v as usize], NetNode::Switch(_))
            {
                for (a, b) in [(u, v), (v, u)] {
                    if let Some(ai) = self.arc_index(a, b) {
                        scratch.arc_mask[ai] = true;
                    }
                }
            }
        }
    }

    /// Point-to-point Dijkstra honouring `scratch.arc_mask`, over the
    /// masked scratch buffers — never the shared SSSP's, so memoized
    /// single-path state survives. Tie-breaks equal the shared SSSP's.
    fn masked_path(&self, scratch: &mut SnapshotScratch, from: u32, to: u32) -> Option<Vec<u32>> {
        let n = self.topo.nodes.len();
        scratch.mdist.clear();
        scratch.mdist.resize(n, u64::MAX);
        scratch.mprev.clear();
        scratch.mprev.resize(n, NO_PREV);
        scratch.heap.clear();

        scratch.mdist[from as usize] = 0;
        scratch.heap.push(Reverse((0, from)));
        while let Some(Reverse((d, u))) = scratch.heap.pop() {
            if scratch.mdist[u as usize] < d {
                continue;
            }
            if u == to {
                break;
            }
            for i in self.topo.row[u as usize] as usize..self.topo.row[u as usize + 1] as usize {
                if scratch.arc_mask[i] {
                    continue;
                }
                let v = self.topo.cols[i];
                let nd = d.saturating_add(self.weights[i]);
                if nd < scratch.mdist[v as usize] {
                    scratch.mdist[v as usize] = nd;
                    scratch.mprev[v as usize] = u;
                    scratch.heap.push(Reverse((nd, v)));
                }
            }
        }
        scratch.heap.clear(); // early exit can leave stale entries behind

        if scratch.mdist[to as usize] == u64::MAX {
            return None;
        }
        let mut path = vec![to];
        let mut cur = to;
        while cur != from {
            cur = scratch.mprev[cur as usize];
            if cur == NO_PREV {
                return None;
            }
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }

    /// Resolve the `from → to` path into `scratch.path_buf` (endpoints
    /// included, dense ids). Returns false when disconnected. Uses the
    /// scratch's per-epoch path cache and memoized shared SSSP, exactly
    /// like the live `PathEngine`.
    fn resolve_path(&self, scratch: &mut SnapshotScratch, from: u32, to: u32) -> bool {
        if let Some(cached) = scratch.cache.get(&(from, to)) {
            scratch.stats.cache_hits += 1;
            match cached {
                Some(p) => {
                    scratch.path_buf.clear();
                    scratch.path_buf.extend_from_slice(p);
                    return true;
                }
                None => return false,
            }
        }
        scratch.stats.cache_misses += 1;
        self.ensure_sssp(scratch, from);
        // Extract once into the Vec the cache will own; `path_buf` takes
        // a copy for the caller — no second clone per miss.
        let mut owned = Vec::new();
        let reachable = self.extract_path_into(scratch, from, to, &mut owned);
        if reachable {
            scratch.path_buf.clear();
            scratch.path_buf.extend_from_slice(&owned);
        }
        scratch.cache.insert((from, to), reachable.then_some(owned));
        reachable
    }

    /// Walk the shared SSSP's predecessor chain into `out` (endpoints
    /// included, forward order). Requires `ensure_sssp(scratch, from)`
    /// to have run. Returns false (clearing `out`) when unreachable.
    fn extract_path_into(
        &self,
        scratch: &SnapshotScratch,
        from: u32,
        to: u32,
        out: &mut Vec<u32>,
    ) -> bool {
        out.clear();
        if scratch.dist[to as usize] == u64::MAX {
            return false;
        }
        let mut cur = to;
        out.push(cur);
        loop {
            if cur == from {
                out.reverse();
                return true;
            }
            cur = scratch.prev[cur as usize];
            if cur == NO_PREV {
                out.clear();
                return false;
            }
            out.push(cur);
        }
    }

    /// Run (or reuse) the shared single-source Dijkstra from `source` in
    /// the scratch buffers. Identical algorithm, tie-breaks, and weights
    /// to `PathEngine::ensure_sssp` — and therefore to `NetworkMap::path`.
    fn ensure_sssp(&self, scratch: &mut SnapshotScratch, source: u32) {
        if scratch.sssp_source == Some(source) {
            return;
        }
        scratch.stats.sssp_runs += 1;
        let n = self.topo.nodes.len();
        scratch.dist.clear();
        scratch.dist.resize(n, u64::MAX);
        scratch.prev.clear();
        scratch.prev.resize(n, NO_PREV);
        scratch.heap.clear();

        scratch.dist[source as usize] = 0;
        scratch.heap.push(Reverse((0, source)));
        while let Some(Reverse((d, u))) = scratch.heap.pop() {
            if scratch.dist[u as usize] < d {
                continue; // stale heap entry
            }
            for i in self.topo.row[u as usize] as usize..self.topo.row[u as usize + 1] as usize {
                let v = self.topo.cols[i];
                let nd = d.saturating_add(self.weights[i]);
                if nd < scratch.dist[v as usize] {
                    scratch.dist[v as usize] = nd;
                    scratch.prev[v as usize] = u;
                    scratch.heap.push(Reverse((nd, v)));
                }
            }
        }
        scratch.sssp_source = Some(source);
    }

    /// Dense id of a node, if it is part of the snapshot.
    fn node_id(&self, n: NetNode) -> Option<u32> {
        self.topo.nodes.binary_search(&n).ok().map(|i| i as u32)
    }

    /// Index of the `u → v` arc in the CSR (binary search within the row).
    fn arc_index(&self, u: u32, v: u32) -> Option<usize> {
        let start = self.topo.row[u as usize] as usize;
        let end = self.topo.row[u as usize + 1] as usize;
        self.topo.cols[start..end].binary_search(&v).ok().map(|i| start + i)
    }

    /// Effective queue length of an arc at `now_ns` — the frozen-evidence
    /// equivalent of [`NetworkMap::effective_qlen`].
    fn arc_qlen(&self, ai: usize, now_ns: u64) -> u32 {
        let a = self.arc_q[ai];
        if !a.present {
            return 0;
        }
        if now_ns.saturating_sub(a.updated_ns) > self.cfg.staleness_ns {
            return 0; // stale measurements read as an empty queue
        }
        match self.cfg.hop_signal {
            HopSignal::MaxQueue => {
                let cutoff = now_ns.saturating_sub(self.cfg.qlen_window_ns);
                let start = a.hist_start as usize;
                self.qlen_hist[start..start + a.hist_len as usize]
                    .iter()
                    .filter(|(ts, _)| *ts >= cutoff)
                    .map(|(_, q)| *q)
                    .max()
                    .unwrap_or(0)
            }
            HopSignal::InstantaneousQueue => a.at_probe_pkts,
        }
    }

    /// Order `out` best-first — the same keys as `Ranker::sort`, with the
    /// Random shuffle drawn from the per-query derived RNG.
    fn sort(&self, out: &mut [RankedServer], requester: u32, policy: Policy, slot: u64) {
        match policy {
            Policy::IntDelay => {
                out.sort_unstable_by_key(|s| (s.est_delay_ns, s.host));
            }
            Policy::IntBandwidth => {
                out.sort_unstable_by_key(|s| {
                    (Reverse(s.est_bandwidth_bps), s.est_delay_ns, s.host)
                });
            }
            Policy::Nearest => {
                out.sort_unstable_by_key(|s| {
                    (self.distances.get(requester, s.host).unwrap_or(u32::MAX), s.host)
                });
            }
            Policy::Random => {
                let mut rng = SmallRng::seed_from_u64(mix(
                    self.seed ^ mix(self.epoch) ^ mix(slot.wrapping_add(0x9E37_79B9)),
                ));
                out.shuffle(&mut rng);
            }
        }
    }
}

/// SplitMix64's finalizer: a cheap, well-distributed u64 → u64 mix for
/// deriving per-query RNG seeds from `(seed, epoch, slot)`.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Serving counters for one shard's scratch (diagnostics and tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotServeStats {
    /// Queries evaluated through this scratch.
    pub queries: u64,
    /// Shared-SSSP runs (once per distinct source per epoch).
    pub sssp_runs: u64,
    /// Path-cache hits.
    pub cache_hits: u64,
    /// Path-cache misses.
    pub cache_misses: u64,
}

/// Per-shard mutable state for evaluating queries against a
/// [`SchedSnapshot`]: the reusable Dijkstra buffers and a per-epoch path
/// cache. One scratch must only ever be used by one thread at a time
/// (each shard owns its own); it revalidates itself against the
/// snapshot's epoch on every query, so handing it snapshots of advancing
/// epochs is safe and cheap.
#[derive(Debug, Default)]
pub struct SnapshotScratch {
    /// Epoch the cache/SSSP state below belongs to.
    epoch: Option<u64>,
    sssp_source: Option<u32>,
    dist: Vec<u64>,
    prev: Vec<u32>,
    heap: BinaryHeap<Reverse<(u64, u32)>>,
    /// `(from, to)` dense-id pair → cached path (`None` = unreachable).
    cache: BTreeMap<(u32, u32), Option<Vec<u32>>>,
    path_buf: Vec<u32>,
    /// `(from, to)` → cached k-path set (empty = unreachable); used only
    /// when `k_paths > 1`, invalidated with `cache` on epoch moves.
    kcache: BTreeMap<(u32, u32), Vec<Vec<u32>>>,
    /// Per-arc ban mask for successive-exclusion runs.
    arc_mask: Vec<bool>,
    /// Masked-Dijkstra scratch, separate from the shared SSSP's buffers.
    mdist: Vec<u64>,
    mprev: Vec<u32>,
    candidates: Vec<u32>,
    pathless: Vec<RankedServer>,
    stats: SnapshotServeStats,
}

impl SnapshotScratch {
    /// Fresh scratch (typically one per shard).
    pub fn new() -> Self {
        Self::default()
    }

    /// Serving counters.
    pub fn stats(&self) -> SnapshotServeStats {
        self.stats
    }

    /// Revalidate against `snap`'s epoch: a moved epoch invalidates the
    /// path cache and the memoized SSSP (the graph may have changed).
    fn bind(&mut self, snap: &SchedSnapshot) {
        if self.epoch != Some(snap.epoch) {
            self.epoch = Some(snap.epoch);
            self.sssp_source = None;
            self.cache.clear();
            self.kcache.clear();
        }
    }
}

/// Publish counters (diagnostics, tests, benches).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PublishStats {
    /// Epochs built by the full O(topology) rebuild.
    pub full_builds: u64,
    /// Epochs built by the O(dirty) incremental patch path.
    pub incremental_builds: u64,
}

/// The epoch publisher: owns the CSR build machinery and the previous
/// epochs needed for O(dirty) incremental publication.
///
/// While the map's topology generation holds, each publish starts from
/// the previous epoch's arrays (structure shared via `Arc`, per-epoch
/// arrays recycled from the epoch-before-last when no reader holds it),
/// reprices only the arcs of edges on the map's dirty list, and splices
/// only their `qlen_hist` runs. Any structural change — or a history run
/// outgrowing its reserved slot — falls back to the full rebuild, which
/// remains the oracle: an incremental epoch is pinned `content_eq` to
/// what the full build would have produced (proptests).
///
/// The escape hatch `INT_SNAP_INCREMENTAL=0` forces every publish down
/// the full-rebuild path.
#[derive(Debug)]
pub struct SnapshotPublisher {
    engine: PathEngine,
    incremental: bool,
    /// Most recently published epoch.
    prev: Option<Arc<SchedSnapshot>>,
    /// Epoch before that — the recycling candidate: once every shard has
    /// moved on, `Arc::try_unwrap` reclaims its arrays for the next build.
    older: Option<Arc<SchedSnapshot>>,
    /// Dirty edges drained from the map for the in-flight publish.
    dirty: Vec<crate::map::EdgeId>,
    /// Dirty set of the *previous* publish (the diff `older → prev`);
    /// recycling `older`'s arrays patches the union of both sets.
    prev_dirty: Vec<crate::map::EdgeId>,
    /// Monotone id source for `SchedSnapshot::layout_gen`.
    layout_counter: u64,
    stats: PublishStats,
}

impl Default for SnapshotPublisher {
    fn default() -> Self {
        Self::new()
    }
}

impl SnapshotPublisher {
    /// A publisher with incremental publication enabled unless the
    /// `INT_SNAP_INCREMENTAL=0` escape hatch is set.
    pub fn new() -> Self {
        let incremental =
            std::env::var("INT_SNAP_INCREMENTAL").map(|v| v != "0").unwrap_or(true);
        SnapshotPublisher {
            engine: PathEngine::new(),
            incremental,
            prev: None,
            older: None,
            dirty: Vec::new(),
            prev_dirty: Vec::new(),
            layout_counter: 0,
            stats: PublishStats::default(),
        }
    }

    /// Force the incremental path on or off (benches, A/B smokes).
    pub fn set_incremental(&mut self, on: bool) {
        self.incremental = on;
    }

    /// Is the incremental path enabled?
    pub fn incremental_enabled(&self) -> bool {
        self.incremental
    }

    /// Publish counters so far.
    pub fn stats(&self) -> PublishStats {
        self.stats
    }

    /// Freeze the collector's current state as epoch `epoch`. Drains the
    /// map's dirty-edge list; takes the incremental path when enabled,
    /// the topology generation is unchanged since the previous publish,
    /// and the publish inputs (cfg/distances/seed) are the same.
    pub fn publish(
        &mut self,
        collector: &mut IntCollector,
        cfg: &Arc<CoreConfig>,
        distances: &Arc<StaticDistances>,
        seed: u64,
        epoch: u64,
        published_at_ns: u64,
    ) -> Arc<SchedSnapshot> {
        collector.map_mut().take_dirty_into(&mut self.dirty);
        let topo_gen = collector.map().topology_generation();
        let reusable = self.incremental
            && self.prev.as_ref().is_some_and(|p| {
                p.topo_gen == topo_gen
                    && p.seed == seed
                    && Arc::ptr_eq(&p.cfg, cfg)
                    && Arc::ptr_eq(&p.distances, distances)
            });
        let snap = if reusable {
            match self.build_incremental(collector, cfg, epoch, published_at_ns) {
                Some(s) => {
                    self.stats.incremental_builds += 1;
                    s
                }
                None => self.full(collector, cfg, distances, seed, epoch, published_at_ns),
            }
        } else {
            self.full(collector, cfg, distances, seed, epoch, published_at_ns)
        };
        let snap = Arc::new(snap);
        self.older = self.prev.take();
        self.prev = Some(Arc::clone(&snap));
        // The in-flight dirty set becomes the `older → prev` diff.
        std::mem::swap(&mut self.prev_dirty, &mut self.dirty);
        snap
    }

    /// The full-rebuild path, pre-sizing `qlen_hist` from the previous
    /// epoch and stamping a fresh slot-layout id.
    fn full(
        &mut self,
        collector: &IntCollector,
        cfg: &Arc<CoreConfig>,
        distances: &Arc<StaticDistances>,
        seed: u64,
        epoch: u64,
        published_at_ns: u64,
    ) -> SchedSnapshot {
        self.stats.full_builds += 1;
        self.layout_counter += 1;
        let hist_hint = self.prev.as_ref().map_or(0, |p| p.qlen_hist.len());
        SchedSnapshot::build_full(
            collector,
            &mut self.engine,
            cfg,
            distances,
            seed,
            epoch,
            published_at_ns,
            hist_hint,
            self.layout_counter,
        )
    }

    /// The O(dirty) path: start from the previous epoch's arrays and
    /// reprice only the dirty edges' arcs. Returns `None` (caller falls
    /// back to the full rebuild) if any history run outgrew its slot or
    /// a dirty edge can no longer be resolved against the structure.
    fn build_incremental(
        &mut self,
        collector: &IntCollector,
        cfg: &CoreConfig,
        epoch: u64,
        published_at_ns: u64,
    ) -> Option<SchedSnapshot> {
        let map = collector.map();
        let prev = self.prev.as_ref().expect("incremental requires a previous epoch");

        // Reclaim the epoch-before-last's arrays if no reader holds them.
        let spare = self.older.take().and_then(|a| Arc::try_unwrap(a).ok());
        let (mut weights, mut est_delay, mut arc_q, mut qlen_hist, mut origins, patch_union);
        match spare {
            Some(s) if s.layout_gen == prev.layout_gen && s.epoch + 1 == prev.epoch => {
                // `s` differs from `prev` exactly by `prev_dirty`: patch
                // the union of both dirty sets in place, copy nothing.
                weights = s.weights;
                est_delay = s.est_delay;
                arc_q = s.arc_q;
                qlen_hist = s.qlen_hist;
                origins = s.origins;
                patch_union = true;
            }
            Some(s) => {
                // Layout lineage broken (full rebuild in between): reuse
                // the allocations but copy the previous epoch wholesale.
                weights = s.weights;
                weights.clone_from(&prev.weights);
                est_delay = s.est_delay;
                est_delay.clone_from(&prev.est_delay);
                arc_q = s.arc_q;
                arc_q.clone_from(&prev.arc_q);
                qlen_hist = s.qlen_hist;
                qlen_hist.clone_from(&prev.qlen_hist);
                origins = s.origins;
                patch_union = false;
            }
            None => {
                weights = prev.weights.clone();
                est_delay = prev.est_delay.clone();
                arc_q = prev.arc_q.clone();
                qlen_hist = prev.qlen_hist.clone();
                origins = Vec::new();
                patch_union = false;
            }
        }

        // Patch is idempotent per edge (recomputed from the current map),
        // so overlapping union entries are harmless.
        let lists: &[&[crate::map::EdgeId]] =
            if patch_union { &[&self.prev_dirty, &self.dirty] } else { &[&self.dirty] };
        for list in lists {
            for &id in *list {
                patch_edge(map, cfg, prev, id, &mut weights, &mut est_delay, &mut arc_q, &mut qlen_hist)?;
            }
        }

        origins.clear();
        origins.extend(
            collector
                .origin_stats_all()
                .filter(|(_, st)| st.received > 0)
                .map(|(o, st)| (o, st.last_rx_ns)),
        );

        Some(SchedSnapshot {
            epoch,
            published_at_ns,
            cfg: Arc::clone(&prev.cfg),
            distances: Arc::clone(&prev.distances),
            seed: prev.seed,
            topo: Arc::clone(&prev.topo),
            topo_gen: prev.topo_gen,
            layout_gen: prev.layout_gen,
            weights,
            est_delay,
            arc_q,
            qlen_hist,
            origins,
        })
    }
}

/// Reprice both CSR arc orientations of one dirty edge from the current
/// map state: traversal weight, unclamped estimate delay, and queue
/// evidence (history run spliced into the arc's reserved slot). Returns
/// `None` when the arc's slot can't absorb the run (or the edge/nodes
/// can't be resolved), signalling a full rebuild.
#[allow(clippy::too_many_arguments)]
fn patch_edge(
    map: &NetworkMap,
    cfg: &CoreConfig,
    prev: &SchedSnapshot,
    id: crate::map::EdgeId,
    weights: &mut [u64],
    est_delay: &mut [u64],
    arc_q: &mut [ArcQlen],
    qlen_hist: &mut [(u64, u32)],
) -> Option<()> {
    // A dirty edge that died implies an eviction, which bumps `topo_gen`
    // and routes to the full rebuild — reaching here means stale state.
    let (a, b, _) = map.edge_by_id(id)?;
    let ia = prev.node_id(a)?;
    let ib = prev.node_id(b)?;
    // Evidence on edge (a,b) feeds arc (a,b) directly and arc (b,a) via
    // the reverse-direction fallback: recompute both orientations.
    for (u, v) in [(ia, ib), (ib, ia)] {
        let Some(ai) = prev.arc_index(u, v) else { continue };
        let from = prev.topo.nodes[u as usize];
        let to = prev.topo.nodes[v as usize];
        let est = map.effective_delay_ns(cfg, from, to).unwrap_or(cfg.unmeasured_delay_ns);
        est_delay[ai] = est;
        weights[ai] = est.max(1);
        // Same edge resolution as `resolve_qlen`.
        let edge = map.edge(from, to).or_else(|| {
            if cfg.direction_fallback == DirectionFallback::ReverseOk {
                map.edge(to, from)
            } else {
                None
            }
        });
        if let Some(e) = edge {
            let q = &mut arc_q[ai];
            let len = e.qlen_history.len();
            if !q.present || len > q.hist_cap as usize {
                return None; // structure drifted or run outgrew its slot
            }
            let start = q.hist_start as usize;
            qlen_hist[start..start + len].copy_from_slice(&e.qlen_history);
            q.hist_len = len as u32;
            q.updated_ns = e.qlen_updated_ns;
            q.at_probe_pkts = e.qlen_at_probe_pkts;
        }
        // `edge == None` (Strict fallback, unprobed orientation) leaves
        // the arc's `NO_QLEN` evidence untouched — same as a full build.
    }
    Some(())
}

/// Resolve which directed edge answers queue questions for the `from → to`
/// arc, copying its harvest history into the snapshot's flat store.
fn resolve_qlen(
    map: &NetworkMap,
    cfg: &CoreConfig,
    from: NetNode,
    to: NetNode,
    qlen_hist: &mut Vec<(u64, u32)>,
) -> ArcQlen {
    let edge = map.edge(from, to).or_else(|| {
        if cfg.direction_fallback == DirectionFallback::ReverseOk {
            map.edge(to, from)
        } else {
            None
        }
    });
    let Some(e) = edge else { return NO_QLEN };
    let hist_start = qlen_hist.len() as u32;
    qlen_hist.extend_from_slice(&e.qlen_history);
    let hist_len = (qlen_hist.len() as u32) - hist_start;
    // Reserve headroom (≥4 entries, ~1.5× the current run) so incremental
    // publishes can splice a grown run in place; pad with inert entries.
    let hist_cap = hist_len + (hist_len / 2).max(4);
    qlen_hist.resize(hist_start as usize + hist_cap as usize, (0, 0));
    ArcQlen {
        present: true,
        updated_ns: e.qlen_updated_ns,
        at_probe_pkts: e.qlen_at_probe_pkts,
        hist_start,
        hist_len,
        hist_cap,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::SchedulerCore;
    use int_packet::int::IntRecord;
    use int_packet::ProbePayload;

    fn rec(switch_id: u32, maxq: u32, ts_ms: u64) -> IntRecord {
        IntRecord {
            switch_id,
            ingress_port: 0,
            egress_port: 1,
            max_qlen_pkts: maxq,
            qlen_at_probe_pkts: maxq / 2,
            link_latency_ns: 10_000_000,
            egress_ts_ns: ts_ms * 1_000_000,
        }
    }

    fn probe(origin: u32, seq: u64, chain: &[(u32, u32)]) -> ProbePayload {
        let mut p = ProbePayload::new(origin, seq, 0);
        for (i, &(sw, q)) in chain.iter().enumerate() {
            p.int.push(rec(sw, q, (i as u64 + 1) * 11));
        }
        p
    }

    /// A scheduler with two servers behind distinct switch chains, one
    /// congested — the same shape the rank/sched tests use.
    fn core_with_two_servers() -> SchedulerCore {
        let mut d = StaticDistances::new();
        d.set(6, 1, 3);
        d.set(6, 2, 5);
        let mut core = SchedulerCore::new(6, CoreConfig::default(), d, 42);
        core.collector_mut().ingest(&probe(1, 1, &[(10, 20), (11, 0)]), 32_000_000);
        core.collector_mut().ingest(&probe(2, 1, &[(12, 0), (11, 0)]), 32_000_000);
        core
    }

    fn snap_of(core: &SchedulerCore, epoch: u64, at: u64) -> SchedSnapshot {
        let mut engine = PathEngine::new();
        SchedSnapshot::build(
            core.collector(),
            &mut engine,
            &core.config_arc(),
            &core.distances_arc(),
            42,
            epoch,
            at,
        )
    }

    #[test]
    fn snapshot_matches_oracle_for_all_policies_and_requesters() {
        let mut core = core_with_two_servers();
        let now = 32_000_000;
        let snap = snap_of(&core, 1, now);
        let mut scratch = SnapshotScratch::new();
        for requester in [6u32, 1, 2] {
            for policy in [Policy::IntDelay, Policy::IntBandwidth, Policy::Nearest] {
                let want = core.rank_detailed_with(requester, policy, now);
                let got = snap.rank_detailed(&mut scratch, requester, policy, now, 7);
                assert_eq!(got, want, "{requester} {policy:?}");
            }
        }
    }

    #[test]
    fn snapshot_honours_staleness_at_query_time() {
        // Silence horizon widened so the only time-dependent effect in
        // play is queue staleness (defaults tie both at 3 s).
        let cfg = CoreConfig { origin_silence_ns: 60_000_000_000, ..CoreConfig::default() };
        let mut d = StaticDistances::new();
        d.set(6, 1, 3);
        d.set(6, 2, 5);
        let mut core = SchedulerCore::new(6, cfg, d, 42);
        core.collector_mut().ingest(&probe(1, 1, &[(10, 20), (11, 0)]), 32_000_000);
        core.collector_mut().ingest(&probe(2, 1, &[(12, 0), (11, 0)]), 32_000_000);
        let now = 32_000_000;
        let snap = snap_of(&core, 1, now);
        let mut scratch = SnapshotScratch::new();
        // Query far past the staleness horizon (but before eviction):
        // queues read as empty in both planes, so the congested server's
        // hop penalty vanishes identically.
        let later = now + 4_000_000_000; // > 3 s staleness, < 10 s eviction
        let want = core.rank_detailed_with(6, Policy::IntDelay, later);
        let got = snap.rank_detailed(&mut scratch, 6, Policy::IntDelay, later, 0);
        assert_eq!(got, want);
        assert_eq!(got.ranked.len(), 2);
        assert_eq!(
            got.ranked[0].est_delay_ns, got.ranked[1].est_delay_ns,
            "stale queues erase the congestion difference"
        );
    }

    #[test]
    fn snapshot_excludes_silent_origins_by_query_now() {
        let mut core = core_with_two_servers();
        // Server 2 keeps probing; server 1 goes dark.
        let ms = 1_000_000u64;
        for i in 1..=60u64 {
            core.collector_mut()
                .ingest(&probe(2, 1 + i, &[(12, 0), (11, 0)]), 32 * ms + i * 100 * ms);
        }
        let now = 32 * ms + 6_000 * ms; // ≫ 3 s silence horizon for origin 1
        let horizon = core.config().eviction_horizon_ns;
        core.collector_mut().map_mut().evict_stale(now, horizon);
        let snap = snap_of(&core, 3, now);
        let mut scratch = SnapshotScratch::new();
        let want = core.rank_detailed_with(6, Policy::IntDelay, now);
        let got = snap.rank_detailed(&mut scratch, 6, Policy::IntDelay, now, 0);
        assert_eq!(got, want);
        assert_eq!(got.excluded, vec![(1, ExcludeReason::OriginSilent)]);
    }

    #[test]
    fn scratch_shares_one_sssp_per_source_and_caches_paths() {
        let core = core_with_two_servers();
        let snap = snap_of(&core, 1, 32_000_000);
        let mut scratch = SnapshotScratch::new();
        for _ in 0..10 {
            snap.rank_detailed(&mut scratch, 6, Policy::IntDelay, 32_000_000, 0);
        }
        let s = scratch.stats();
        assert_eq!(s.sssp_runs, 1, "one Dijkstra serves every query from host 6");
        assert_eq!(s.cache_misses, 2, "one path extraction per candidate");
        assert_eq!(s.cache_hits, 2 * 9, "repeat queries hit the cache");
    }

    #[test]
    fn random_policy_is_slot_deterministic() {
        let core = core_with_two_servers();
        let snap = snap_of(&core, 1, 32_000_000);
        let mut a = SnapshotScratch::new();
        let mut b = SnapshotScratch::new();
        let one = snap.rank_detailed(&mut a, 6, Policy::Random, 32_000_000, 5);
        let two = snap.rank_detailed(&mut b, 6, Policy::Random, 32_000_000, 5);
        assert_eq!(one, two, "same slot ⇒ same shuffle, regardless of scratch");
        // Different slots eventually differ (2 candidates ⇒ 2 orders).
        let mut seen = std::collections::BTreeSet::new();
        for slot in 0..16 {
            let mut s = SnapshotScratch::new();
            let out = snap.rank_detailed(&mut s, 6, Policy::Random, 32_000_000, slot);
            seen.insert(out.ranked.iter().map(|r| r.host).collect::<Vec<_>>());
        }
        assert!(seen.len() > 1, "the shuffle actually varies across slots");
    }

    #[test]
    fn k_path_snapshot_matches_oracle_under_multipath_config() {
        // Two disjoint routes 1↔6 (one congested) plus a second server —
        // with k_paths = 2 both planes must price both routes and agree
        // decision-for-decision on the winner.
        let cfg = CoreConfig { k_paths: 2, ..CoreConfig::default() };
        let mut d = StaticDistances::new();
        d.set(6, 1, 3);
        d.set(6, 2, 5);
        let mut core = SchedulerCore::new(6, cfg, d, 42);
        core.collector_mut().ingest(&probe(1, 1, &[(10, 20), (11, 0)]), 32_000_000);
        core.collector_mut().ingest(&probe(1, 2, &[(12, 0), (13, 0)]), 33_000_000);
        core.collector_mut().ingest(&probe(2, 1, &[(14, 5), (11, 0)]), 32_000_000);
        let now = 33_000_000;
        let snap = snap_of(&core, 1, now);
        let mut scratch = SnapshotScratch::new();
        for requester in [6u32, 1, 2] {
            for policy in [Policy::IntDelay, Policy::IntBandwidth, Policy::Nearest] {
                let want = core.rank_detailed_with(requester, policy, now);
                let got = snap.rank_detailed(&mut scratch, requester, policy, now, 3);
                assert_eq!(got, want, "{requester} {policy:?}");
            }
        }
    }

    #[test]
    fn warm_up_fallback_matches_oracle_on_empty_map() {
        let mut core = SchedulerCore::new(6, CoreConfig::default(), StaticDistances::new(), 1);
        core.register_host(3);
        core.register_host(5);
        let snap = snap_of(&core, 1, 0);
        let mut scratch = SnapshotScratch::new();
        let want = core.rank_detailed_with(9, Policy::IntDelay, 0);
        let got = snap.rank_detailed(&mut scratch, 9, Policy::IntDelay, 0, 0);
        assert_eq!(got, want);
        assert_eq!(got.ranked.len(), 3, "warm-up ranks everyone: {got:?}");
        assert!(got.excluded.is_empty());
    }
}
