//! The scheduler frontend (paper Fig. 1): accepts edge-device queries and
//! answers with ranked candidate edge servers.

use crate::collector::IntCollector;
use crate::config::CoreConfig;
use crate::rank::{Policy, RankOutcome, RankedServer, Ranker, StaticDistances};
use int_obs::{CandidateEstimate, DecisionAudit, DecisionRecord};
use int_packet::msgs::{Candidate, RankingKind};
use std::sync::Arc;

/// The complete scheduler state: collector + ranking engine.
pub struct SchedulerCore {
    collector: IntCollector,
    ranker: Ranker,
    /// Shared with the ranker and both estimators — one allocation for
    /// the whole control plane (and for every shard of the sharded one).
    cfg: Arc<CoreConfig>,
    /// Policy used for INT-based queries (the baselines are selected
    /// explicitly via [`SchedulerCore::rank_with`]).
    default_policy: Policy,
    /// Decision audit trail (disabled by default: one branch per query).
    audit: DecisionAudit,
    /// Query-path scratch: candidate list, silent-origin list, and the
    /// outcome buffer behind the by-value entry points.
    cand_scratch: Vec<u32>,
    silent_scratch: Vec<u32>,
    outcome_scratch: RankOutcome,
}

impl SchedulerCore {
    /// Scheduler on `scheduler_host` with the given configuration.
    /// `distances` feeds the Nearest baseline; `seed` the Random baseline.
    /// `cfg` and `distances` accept owned values or pre-shared `Arc`s.
    pub fn new(
        scheduler_host: u32,
        cfg: impl Into<Arc<CoreConfig>>,
        distances: impl Into<Arc<StaticDistances>>,
        seed: u64,
    ) -> Self {
        let cfg = cfg.into();
        let mut collector = IntCollector::new(scheduler_host);
        // Thread the map-side tunables into the learned map.
        collector.map_mut().set_delay_ewma(cfg.delay_ewma_new_eighths);
        collector.map_mut().set_qlen_retention(cfg.qlen_window_ns);
        SchedulerCore {
            collector,
            ranker: Ranker::new(Arc::clone(&cfg), distances, seed),
            cfg,
            default_policy: Policy::IntDelay,
            audit: DecisionAudit::default(),
            cand_scratch: Vec::new(),
            silent_scratch: Vec::new(),
            outcome_scratch: RankOutcome::default(),
        }
    }

    /// The decision audit trail (disabled unless
    /// [`SchedulerCore::set_audit_enabled`] turned it on).
    pub fn audit(&self) -> &DecisionAudit {
        &self.audit
    }

    /// Enable or disable per-query decision auditing.
    pub fn set_audit_enabled(&mut self, on: bool) {
        self.audit.set_enabled(on);
    }

    /// The configuration this scheduler runs with.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// The shared configuration handle (one allocation across scheduler,
    /// ranker, estimators, and shards).
    pub fn config_arc(&self) -> Arc<CoreConfig> {
        Arc::clone(&self.cfg)
    }

    /// The shared static-distance table handle (Nearest baseline).
    pub fn distances_arc(&self) -> Arc<StaticDistances> {
        self.ranker.distances_arc()
    }

    /// Enable or force-disable the ranker's path cache (determinism A/B
    /// switch; results are identical either way, only the work differs).
    pub fn set_path_cache_enabled(&mut self, on: bool) {
        self.ranker.set_path_cache_enabled(on);
    }

    /// Path-engine accounting counters (steady-state and invalidation
    /// tests).
    pub fn path_stats(&self) -> crate::pathidx::PathEngineStats {
        self.ranker.path_stats()
    }

    /// The route the ranking hot path would use between two hosts right
    /// now — the indexed engine's answer over the learned map (tests and
    /// diagnostics; agrees with `NetworkMap::path` by construction).
    pub fn learned_path(
        &mut self,
        from: u32,
        to: u32,
    ) -> Option<Vec<crate::map::NetNode>> {
        use crate::map::NetNode;
        self.ranker.learned_path(self.collector.map(), NetNode::Host(from), NetNode::Host(to))
    }

    /// The telemetry collector (probe ingest + learned map).
    pub fn collector(&self) -> &IntCollector {
        &self.collector
    }

    /// Mutable access to the collector (probe ingest).
    pub fn collector_mut(&mut self) -> &mut IntCollector {
        &mut self.collector
    }

    /// Ingest a probe payload received over the network.
    pub fn on_probe(&mut self, payload: &[u8], now_ns: u64) {
        let _ = self.collector.ingest_bytes(payload, now_ns);
    }

    /// Register a host as a known candidate without waiting for probes —
    /// required for the baseline policies, which run with INT disabled and
    /// therefore never learn hosts from telemetry.
    pub fn register_host(&mut self, host: u32) {
        self.collector.map_mut().register_host(host);
    }

    /// Candidate edge servers for `requester`: every known host except the
    /// requester itself (paper §IV: all nodes can execute tasks unless they
    /// are the submitter).
    pub fn candidates_for(&self, requester: u32) -> Vec<u32> {
        self.collector.map().hosts().filter(|&h| h != requester).collect()
    }

    /// Answer a query with the given wire-level ranking kind (Fig. 1
    /// steps 3–4), best candidate first.
    pub fn handle_request(
        &mut self,
        requester: u32,
        ranking: RankingKind,
        now_ns: u64,
    ) -> Vec<Candidate> {
        let policy = match ranking {
            RankingKind::Delay => Policy::IntDelay,
            RankingKind::Bandwidth => Policy::IntBandwidth,
        };
        self.rank_with(requester, policy, now_ns)
            .into_iter()
            .map(|r| Candidate {
                node: r.host,
                est_delay_ns: r.est_delay_ns,
                est_bandwidth_bps: r.est_bandwidth_bps,
            })
            .collect()
    }

    /// Rank under an explicit policy (INT-based or baseline).
    pub fn rank_with(&mut self, requester: u32, policy: Policy, now_ns: u64) -> Vec<RankedServer> {
        let mut out = Vec::new();
        self.rank_with_into(requester, policy, now_ns, &mut out);
        out
    }

    /// [`SchedulerCore::rank_with`] into a caller-owned buffer: steady
    /// state performs zero heap allocations (all intermediate buffers are
    /// scheduler-owned scratch).
    pub fn rank_with_into(
        &mut self,
        requester: u32,
        policy: Policy,
        now_ns: u64,
        out: &mut Vec<RankedServer>,
    ) {
        let mut scratch = std::mem::take(&mut self.outcome_scratch);
        self.rank_detailed_into_with(requester, policy, now_ns, &mut scratch);
        out.clear();
        out.extend_from_slice(&scratch.ranked);
        self.outcome_scratch = scratch;
    }

    /// Rank under an explicit policy, reporting exclusions.
    ///
    /// Failure handling happens here: telemetry older than the eviction
    /// horizon is removed from the map first, and origins silent beyond
    /// the silence horizon are handed to the ranker for exclusion — a host
    /// behind a dead link is never ranked on ghost telemetry.
    pub fn rank_detailed_with(
        &mut self,
        requester: u32,
        policy: Policy,
        now_ns: u64,
    ) -> RankOutcome {
        let mut out = RankOutcome::default();
        self.rank_detailed_into_with(requester, policy, now_ns, &mut out);
        out
    }

    /// [`SchedulerCore::rank_detailed_with`] into a caller-owned outcome
    /// (the zero-alloc query path).
    pub fn rank_detailed_into_with(
        &mut self,
        requester: u32,
        policy: Policy,
        now_ns: u64,
        out: &mut RankOutcome,
    ) {
        self.collector.map_mut().evict_stale(now_ns, self.cfg.eviction_horizon_ns);
        self.collector.silent_origins_into(
            now_ns,
            self.cfg.origin_silence_ns,
            &mut self.silent_scratch,
        );
        self.cand_scratch.clear();
        self.cand_scratch.extend(self.collector.map().hosts().filter(|&h| h != requester));
        self.ranker.rank_detailed_into(
            self.collector.map(),
            requester,
            &self.cand_scratch,
            policy,
            now_ns,
            &self.silent_scratch,
            out,
        );
        if self.audit.enabled() {
            self.audit.record(DecisionRecord {
                at_ns: now_ns,
                requester,
                policy: policy.name(),
                chosen: out.ranked.first().map(|r| r.host),
                ranked: out
                    .ranked
                    .iter()
                    .map(|r| CandidateEstimate {
                        host: r.host,
                        est_delay_ns: r.est_delay_ns,
                        est_bandwidth_bps: r.est_bandwidth_bps,
                    })
                    .collect(),
                excluded: out.excluded.iter().map(|(h, r)| (*h, r.as_str())).collect(),
            });
        }
    }

    /// The paper's second serving option (§III-B): an *unsorted* list of
    /// every candidate with its estimated delay and bandwidth, so the edge
    /// device can run its own selection algorithm. Candidates come back in
    /// ascending host-id order, carrying the same estimates `rank_with`
    /// would sort by.
    pub fn candidates_with_estimates(&mut self, requester: u32, now_ns: u64) -> Vec<RankedServer> {
        let mut all = Vec::new();
        self.candidates_with_estimates_into(requester, now_ns, &mut all);
        all
    }

    /// [`SchedulerCore::candidates_with_estimates`] into a caller-owned
    /// buffer (zero-alloc steady state). Host ids are unique, so the
    /// in-place unstable sort orders exactly as a stable sort would.
    pub fn candidates_with_estimates_into(
        &mut self,
        requester: u32,
        now_ns: u64,
        out: &mut Vec<RankedServer>,
    ) {
        self.rank_with_into(requester, Policy::IntDelay, now_ns, out);
        out.sort_unstable_by_key(|s| s.host);
    }

    /// The policy used when no explicit policy is requested.
    pub fn default_policy(&self) -> Policy {
        self.default_policy
    }

    /// Override the default policy.
    pub fn set_default_policy(&mut self, policy: Policy) {
        self.default_policy = policy;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use int_packet::int::IntRecord;
    use int_packet::wire::WireEncode;
    use int_packet::ProbePayload;

    fn rec(switch_id: u32, maxq: u32, ts_ms: u64) -> IntRecord {
        IntRecord {
            switch_id,
            ingress_port: 0,
            egress_port: 1,
            max_qlen_pkts: maxq,
            qlen_at_probe_pkts: 0,
            link_latency_ns: 10_000_000,
            egress_ts_ns: ts_ms * 1_000_000,
        }
    }

    fn core_with_two_servers() -> SchedulerCore {
        let mut d = StaticDistances::new();
        d.set(6, 1, 3);
        d.set(6, 2, 5);
        let mut core = SchedulerCore::new(6, CoreConfig::default(), d, 42);
        // Server 1 congested (switch 10 q=20), server 2 clean.
        let mut p1 = ProbePayload::new(1, 1, 0);
        p1.int.push(rec(10, 20, 11));
        p1.int.push(rec(11, 0, 22));
        core.on_probe(&p1.to_bytes(), 32_000_000);
        let mut p2 = ProbePayload::new(2, 1, 0);
        p2.int.push(rec(12, 0, 11));
        p2.int.push(rec(11, 0, 22));
        core.on_probe(&p2.to_bytes(), 32_000_000);
        core
    }

    #[test]
    fn request_excludes_requester_and_ranks() {
        let mut core = core_with_two_servers();
        let resp = core.handle_request(6, RankingKind::Delay, 32_000_000);
        let hosts: Vec<u32> = resp.iter().map(|c| c.node).collect();
        assert_eq!(hosts, vec![2, 1], "clean server first, requester absent");

        let resp = core.handle_request(1, RankingKind::Delay, 32_000_000);
        assert!(resp.iter().all(|c| c.node != 1));
    }

    #[test]
    fn bandwidth_request_sorts_by_bandwidth() {
        let mut core = core_with_two_servers();
        let resp = core.handle_request(6, RankingKind::Bandwidth, 32_000_000);
        assert_eq!(resp[0].node, 2);
        assert!(resp[0].est_bandwidth_bps > resp[1].est_bandwidth_bps);
    }

    #[test]
    fn baseline_policies_available() {
        let mut core = core_with_two_servers();
        let nearest = core.rank_with(6, Policy::Nearest, 32_000_000);
        assert_eq!(nearest[0].host, 1, "nearest ignores congestion");
        let random = core.rank_with(6, Policy::Random, 32_000_000);
        assert_eq!(random.len(), 2);
    }

    #[test]
    fn empty_map_yields_empty_candidates() {
        let mut core = SchedulerCore::new(6, CoreConfig::default(), StaticDistances::new(), 1);
        assert!(core.handle_request(6, RankingKind::Delay, 0).is_empty());
        // Only the scheduler itself is known; a different requester sees it.
        let resp = core.handle_request(1, RankingKind::Delay, 0);
        assert_eq!(resp.len(), 1);
        assert_eq!(resp[0].node, 6);
    }

    #[test]
    fn unsorted_option_returns_all_candidates_with_estimates() {
        let mut core = core_with_two_servers();
        let all = core.candidates_with_estimates(6, 32_000_000);
        let hosts: Vec<u32> = all.iter().map(|s| s.host).collect();
        assert_eq!(hosts, vec![1, 2], "host-id order, not ranked order");
        // Same estimates the sorted path computes.
        let ranked = core.rank_with(6, Policy::IntDelay, 32_000_000);
        for s in &all {
            let r = ranked.iter().find(|r| r.host == s.host).unwrap();
            assert_eq!(r.est_delay_ns, s.est_delay_ns);
            assert_eq!(r.est_bandwidth_bps, s.est_bandwidth_bps);
        }
    }

    /// A host whose probes stop arriving is excluded from INT rankings
    /// (origin silence) and comes back as soon as it is heard from again.
    #[test]
    fn silent_host_excluded_until_it_returns() {
        use crate::rank::ExcludeReason;
        let ms = 1_000_000u64;
        let mut core = core_with_two_servers(); // both probed at t=32 ms
        // Only server 2 keeps probing; server 1 goes dark.
        for i in 1..=60u64 {
            let mut p2 = ProbePayload::new(2, 1 + i, 0);
            p2.int.push(rec(12, 0, 11));
            p2.int.push(rec(11, 0, 22));
            core.on_probe(&p2.to_bytes(), 32 * ms + i * 100 * ms);
        }
        let now = 32 * ms + 6_000 * ms; // 6 s ≫ the 3 s silence horizon
        let out = core.rank_detailed_with(6, Policy::IntDelay, now);
        assert_eq!(out.ranked.iter().map(|s| s.host).collect::<Vec<_>>(), vec![2]);
        assert_eq!(out.excluded, vec![(1, ExcludeReason::OriginSilent)]);
        assert!(
            core.rank_with(6, Policy::IntDelay, now).iter().all(|s| s.host != 1),
            "the plain ranking path honours the exclusion too"
        );

        // Server 1 resumes probing: it rejoins the ranking.
        let mut p1 = ProbePayload::new(1, 2, 0);
        p1.int.push(rec(10, 0, 11));
        p1.int.push(rec(11, 0, 22));
        core.on_probe(&p1.to_bytes(), now + 100 * ms);
        let out = core.rank_detailed_with(6, Policy::IntDelay, now + 200 * ms);
        assert_eq!(out.ranked.len(), 2, "recovered host is ranked again: {out:?}");
        assert!(out.excluded.is_empty());
    }

    /// With silence detection effectively off, eviction still removes the
    /// dead host's telemetry from the map, so it is excluded for having no
    /// fresh path — never ranked on ghost measurements.
    #[test]
    fn evicted_telemetry_excludes_host_from_ranking_inputs() {
        use crate::rank::ExcludeReason;
        let ms = 1_000_000u64;
        let cfg = CoreConfig {
            eviction_horizon_ns: 1_000 * ms,
            origin_silence_ns: u64::MAX,
            ..CoreConfig::default()
        };
        let mut d = StaticDistances::new();
        d.set(6, 1, 3);
        d.set(6, 2, 5);
        let mut core = SchedulerCore::new(6, cfg, d, 42);
        let mut p1 = ProbePayload::new(1, 1, 0);
        p1.int.push(rec(10, 0, 11));
        p1.int.push(rec(11, 0, 22));
        core.on_probe(&p1.to_bytes(), 32 * ms);
        // Server 2 keeps probing past the horizon; server 1 does not.
        for i in 1..=30u64 {
            let mut p2 = ProbePayload::new(2, i, 0);
            p2.int.push(rec(12, 0, 11));
            p2.int.push(rec(11, 0, 22));
            core.on_probe(&p2.to_bytes(), 32 * ms + i * 100 * ms);
        }
        let now = 32 * ms + 3_000 * ms;
        let out = core.rank_detailed_with(6, Policy::IntDelay, now);
        assert_eq!(out.ranked.iter().map(|s| s.host).collect::<Vec<_>>(), vec![2]);
        assert_eq!(out.excluded, vec![(1, ExcludeReason::NoFreshPath)]);
        assert!(
            core.collector().map().dead_edges().count() >= 2,
            "the dead path is reported, not silently dropped"
        );

        // Baselines are oblivious: they still schedule onto the dead host.
        let nearest = core.rank_with(6, Policy::Nearest, now);
        assert_eq!(nearest.first().map(|s| s.host), Some(1));
    }

    /// The audit trail captures what the scheduler believed per query:
    /// candidate estimates, exclusions with reasons, and the chosen host.
    /// Off by default; deterministic JSON once on.
    #[test]
    fn audit_trail_records_decisions() {
        let mut core = core_with_two_servers();
        core.rank_with(6, Policy::IntDelay, 32_000_000);
        assert_eq!(core.audit().total(), 0, "audit off by default");

        core.set_audit_enabled(true);
        core.rank_with(6, Policy::IntDelay, 33_000_000);
        let ms = 1_000_000u64;
        // Server 2 keeps probing; server 1 goes silent past the horizon.
        for i in 1..=60u64 {
            let mut p2 = ProbePayload::new(2, 100 + i, 0);
            p2.int.push(rec(12, 0, 11));
            p2.int.push(rec(11, 0, 22));
            core.on_probe(&p2.to_bytes(), 32 * ms + i * 100 * ms);
        }
        core.rank_with(6, Policy::IntDelay, 32 * ms + 6_000 * ms);

        let records = core.audit().records();
        assert_eq!(records.len(), 2);
        let healthy = &records[0];
        assert_eq!(healthy.requester, 6);
        assert_eq!(healthy.policy, "IntDelay");
        assert_eq!(healthy.chosen, Some(2), "clean server chosen");
        assert_eq!(healthy.ranked.len(), 2);
        assert!(healthy.ranked[0].est_delay_ns < healthy.ranked[1].est_delay_ns);

        let failed = &records[1];
        assert_eq!(failed.chosen, Some(2));
        assert_eq!(failed.excluded, vec![(1, "OriginSilent")]);

        let json = core.audit().to_json();
        assert!(json.contains(r#""reason":"OriginSilent""#), "{json}");
        assert!(json.contains(r#""policy":"IntDelay""#));
    }

    #[test]
    fn default_policy_settable() {
        let mut core = core_with_two_servers();
        assert_eq!(core.default_policy(), Policy::IntDelay);
        core.set_default_policy(Policy::IntBandwidth);
        assert_eq!(core.default_policy(), Policy::IntBandwidth);
    }
}
