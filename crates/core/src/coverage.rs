//! Probe coverage audit.
//!
//! The paper assumes "probe packets visit each device at least once" per
//! interval and leaves probe route optimization as future work. This
//! module makes the assumption checkable: given the learned map and a
//! freshness horizon, report which directed links are fresh, stale, or
//! known only via their reverse direction.

use crate::config::CoreConfig;
use crate::map::{NetNode, NetworkMap};
use serde::{Deserialize, Serialize};

/// Freshness classification of a directed link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkCoverage {
    /// Probed in this direction within the horizon.
    Fresh,
    /// Probed in this direction, but not recently.
    Stale,
    /// Never probed in this direction; reverse data exists.
    ReverseOnly,
}

/// A full coverage report.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CoverageReport {
    /// (from, to, classification) for every directed link with any data in
    /// either direction. Deterministic order.
    pub links: Vec<(NetNode, NetNode, LinkCoverage)>,
    /// Directed links *evicted* from the map by aging and not re-learned
    /// since, with their eviction times — infrastructure that went dark,
    /// as opposed to merely stale. Deterministic order.
    pub dead: Vec<(NetNode, NetNode, u64)>,
}

impl CoverageReport {
    /// Build a report at time `now_ns` with freshness horizon
    /// `cfg.staleness_ns`.
    pub fn build(map: &NetworkMap, cfg: &CoreConfig, now_ns: u64) -> CoverageReport {
        let mut links = Vec::new();
        let mut seen = std::collections::BTreeSet::new();

        for (a, b, state) in map.edges() {
            seen.insert((a, b));
            let cls = if now_ns.saturating_sub(state.updated_ns) <= cfg.staleness_ns {
                LinkCoverage::Fresh
            } else {
                LinkCoverage::Stale
            };
            links.push((a, b, cls));
        }
        // Reverse-only entries: (b, a) has data, (a, b) does not.
        let mut reverse_only = Vec::new();
        for (a, b, _) in map.edges() {
            if !seen.contains(&(b, a)) {
                reverse_only.push((b, a, LinkCoverage::ReverseOnly));
            }
        }
        links.extend(reverse_only);
        links.sort_by_key(|(a, b, _)| (*a, *b));
        CoverageReport { links, dead: map.dead_edges().collect() }
    }

    /// Count of links in each class: `(fresh, stale, reverse_only)`.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut f = 0;
        let mut s = 0;
        let mut r = 0;
        for (_, _, c) in &self.links {
            match c {
                LinkCoverage::Fresh => f += 1,
                LinkCoverage::Stale => s += 1,
                LinkCoverage::ReverseOnly => r += 1,
            }
        }
        (f, s, r)
    }

    /// Fraction of directed links with fresh same-direction data.
    pub fn fresh_fraction(&self) -> f64 {
        if self.links.is_empty() {
            return 0.0;
        }
        let (f, _, _) = self.counts();
        f as f64 / self.links.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use int_packet::int::IntRecord;
    use int_packet::ProbePayload;

    fn probe(origin: u32, switches: &[u32]) -> ProbePayload {
        let mut p = ProbePayload::new(origin, 1, 0);
        for (i, &s) in switches.iter().enumerate() {
            p.int.push(IntRecord {
                switch_id: s,
                ingress_port: 0,
                egress_port: 1,
                max_qlen_pkts: 0,
                qlen_at_probe_pkts: 0,
                link_latency_ns: 10_000_000,
                egress_ts_ns: (i as u64 + 1) * 11_000_000,
            });
        }
        p
    }

    #[test]
    fn fresh_and_reverse_classification() {
        let mut m = NetworkMap::new();
        m.apply_probe(&probe(1, &[10, 11]), 6, 32_000_000);
        let cfg = CoreConfig::default();
        let report = CoverageReport::build(&m, &cfg, 40_000_000);
        let (fresh, stale, reverse) = report.counts();
        assert_eq!(fresh, 3, "h1→s10, s10→s11, s11→h6");
        assert_eq!(stale, 0);
        assert_eq!(reverse, 3, "the three opposite directions");
        assert!((report.fresh_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn staleness_detected() {
        let mut m = NetworkMap::new();
        m.apply_probe(&probe(1, &[10]), 6, 32_000_000);
        let cfg = CoreConfig::default();
        let later = 32_000_000 + cfg.staleness_ns + 1;
        let report = CoverageReport::build(&m, &cfg, later);
        let (fresh, stale, _) = report.counts();
        assert_eq!(fresh, 0);
        assert_eq!(stale, 2);
    }

    #[test]
    fn bidirectional_probing_removes_reverse_only() {
        let mut m = NetworkMap::new();
        m.apply_probe(&probe(1, &[10]), 6, 32_000_000);
        // Scheduler-side probe back toward host 1 covers the reverse.
        m.apply_probe(&probe(6, &[10]), 1, 32_000_000);
        let report = CoverageReport::build(&m, &CoreConfig::default(), 33_000_000);
        let (_, _, reverse) = report.counts();
        assert_eq!(reverse, 0);
    }

    #[test]
    fn empty_map_report() {
        let report = CoverageReport::build(&NetworkMap::new(), &CoreConfig::default(), 0);
        assert!(report.links.is_empty());
        assert!(report.dead.is_empty());
        assert_eq!(report.fresh_fraction(), 0.0);
    }

    /// Links evicted by aging show up as dead in the report, and leave it
    /// once a probe re-learns them.
    #[test]
    fn dead_links_reported_until_relearned() {
        let mut m = NetworkMap::new();
        m.apply_probe(&probe(1, &[10, 11]), 6, 32_000_000);
        let cfg = CoreConfig::default();
        let later = 32_000_000 + cfg.eviction_horizon_ns + 1;
        m.evict_stale(later, cfg.eviction_horizon_ns);

        let report = CoverageReport::build(&m, &cfg, later);
        assert!(report.links.is_empty(), "evicted links are not merely stale");
        assert_eq!(report.dead.len(), 3, "h1→s10, s10→s11, s11→h6 went dark");
        assert!(report.dead.iter().all(|(_, _, at)| *at == later));

        m.apply_probe(&probe(1, &[10, 11]), 6, later + 1);
        let report = CoverageReport::build(&m, &cfg, later + 2);
        assert!(report.dead.is_empty(), "recovery clears the dead list");
        assert_eq!(report.counts().0, 3, "and the links are fresh again");
    }
}
