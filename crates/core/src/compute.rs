//! Compute-aware and heterogeneity-aware scheduling extensions.
//!
//! The paper's conclusion names two future-work directions: (1) take the
//! availability of compute on edge servers into account and (2) respect
//! hardware/software requirements (e.g. GPU, specific frameworks). This
//! module implements both as a post-processing layer over the network
//! ranking: filter candidates by capability, then re-order by a blend of
//! network estimate and current server load.

use crate::rank::RankedServer;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Capabilities an edge server advertises (GPU, ISA, installed runtimes…).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Capabilities {
    tags: BTreeSet<String>,
}

impl Capabilities {
    /// No capabilities.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style tag addition.
    pub fn with(mut self, tag: &str) -> Self {
        self.tags.insert(tag.to_string());
        self
    }

    /// Does this server satisfy every required tag?
    pub fn satisfies(&self, required: &Capabilities) -> bool {
        required.tags.is_subset(&self.tags)
    }
}

/// Tracked compute state of the fleet.
#[derive(Debug, Clone, Default)]
pub struct ComputeTracker {
    caps: BTreeMap<u32, Capabilities>,
    /// Outstanding tasks per server (incremented on dispatch, decremented
    /// on completion callbacks).
    load: BTreeMap<u32, u32>,
    /// Task slots per server (1 = serial executor).
    slots: BTreeMap<u32, u32>,
}

impl ComputeTracker {
    /// Empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a server with its capabilities and parallel slots.
    pub fn register(&mut self, host: u32, caps: Capabilities, slots: u32) {
        self.caps.insert(host, caps);
        self.slots.insert(host, slots.max(1));
        self.load.entry(host).or_insert(0);
    }

    /// A task was dispatched to `host`.
    pub fn on_dispatch(&mut self, host: u32) {
        *self.load.entry(host).or_insert(0) += 1;
    }

    /// A task finished on `host`.
    pub fn on_complete(&mut self, host: u32) {
        if let Some(l) = self.load.get_mut(&host) {
            *l = l.saturating_sub(1);
        }
    }

    /// Overwrite `host`'s outstanding-task count from an absolute load
    /// report (executors push these; reports win over the dispatch /
    /// complete deltas because they come from the ground truth).
    pub fn set_load(&mut self, host: u32, outstanding: u32) {
        self.load.insert(host, outstanding);
    }

    /// Current outstanding tasks on `host`.
    pub fn load(&self, host: u32) -> u32 {
        self.load.get(&host).copied().unwrap_or(0)
    }

    /// Parallel slots registered for `host` (1 when unregistered).
    pub fn slots(&self, host: u32) -> u32 {
        self.slots.get(&host).copied().unwrap_or(1).max(1)
    }

    /// Queue pressure: outstanding tasks beyond the server's slots, i.e.
    /// tasks that are actually *waiting* (0 while every task has a slot).
    pub fn pressure(&self, host: u32) -> u32 {
        self.load(host).saturating_sub(self.slots(host))
    }

    /// Filter a network ranking down to servers satisfying `required`,
    /// preserving order. Unregistered servers are assumed capable (the
    /// tracker may simply not know them yet).
    pub fn filter_capable<'a>(
        &self,
        ranked: &'a [RankedServer],
        required: &Capabilities,
    ) -> Vec<&'a RankedServer> {
        ranked
            .iter()
            .filter(|s| {
                self.caps.get(&s.host).map(|c| c.satisfies(required)).unwrap_or(true)
            })
            .collect()
    }

    /// Compute-aware re-ranking: stable-sort a network ranking by queue
    /// pressure so equally loaded servers keep their network order, but a
    /// backlogged server drops behind an idle one. `exec_est_ns` is the
    /// caller's estimate of one task's execution time, used to convert
    /// pressure into a delay penalty comparable with network delay. The
    /// queued backlog drains across all of the server's slots in parallel,
    /// so the wait estimate divides by the slot count.
    pub fn rerank(&self, ranked: &[RankedServer], exec_est_ns: u64) -> Vec<RankedServer> {
        let mut out: Vec<RankedServer> = ranked.to_vec();
        out.sort_by_key(|s| (self.queue_wait_est_ns(s.host, exec_est_ns).saturating_add(s.est_delay_ns), s.host));
        out
    }

    /// Estimated queue wait for a task newly dispatched to `host`: the
    /// queued backlog, drained across the server's parallel slots.
    pub fn queue_wait_est_ns(&self, host: u32, exec_est_ns: u64) -> u64 {
        self.pressure(host) as u64 * exec_est_ns / self.slots(host) as u64
    }
}

/// Composite scheduling policies blending the INT network ranking with the
/// tracked compute load (ROADMAP item 4; the paper's compute-availability
/// future work). Applied by the scheduler as a post-processing step over
/// the network ranking produced by a base [`crate::Policy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CompositePolicy {
    /// Pure network ranking (the paper's scheme); compute load ignored.
    NetworkOnly,
    /// Pure load ranking: fewest outstanding tasks first, network ignored.
    LeastLoaded,
    /// INT network delay plus estimated queue wait ([`ComputeTracker::rerank`]).
    IntLeastLoaded,
    /// Same placement as [`CompositePolicy::IntLeastLoaded`], but executors
    /// drain their run queues earliest-deadline-first.
    IntEdf,
}

impl CompositePolicy {
    /// All composites, baseline order (the workflow experiment's grid).
    pub const ALL: [CompositePolicy; 4] = [
        CompositePolicy::NetworkOnly,
        CompositePolicy::LeastLoaded,
        CompositePolicy::IntLeastLoaded,
        CompositePolicy::IntEdf,
    ];

    /// Stable name for artifacts and tables.
    pub fn name(&self) -> &'static str {
        match self {
            CompositePolicy::NetworkOnly => "NetworkOnly",
            CompositePolicy::LeastLoaded => "LeastLoaded",
            CompositePolicy::IntLeastLoaded => "IntLeastLoaded",
            CompositePolicy::IntEdf => "IntEdf",
        }
    }

    /// Does this composite consult INT telemetry (vs. load/static only)?
    pub fn uses_int(&self) -> bool {
        !matches!(self, CompositePolicy::LeastLoaded)
    }

    /// Should executors order their run queues earliest-deadline-first?
    pub fn edf_executor(&self) -> bool {
        matches!(self, CompositePolicy::IntEdf)
    }

    /// Re-order a network ranking in place according to this composite.
    pub fn apply(&self, tracker: &ComputeTracker, ranked: &mut Vec<RankedServer>, exec_est_ns: u64) {
        match self {
            CompositePolicy::NetworkOnly => {}
            CompositePolicy::LeastLoaded => {
                ranked.sort_by_key(|s| (tracker.load(s.host), s.host));
            }
            CompositePolicy::IntLeastLoaded | CompositePolicy::IntEdf => {
                *ranked = tracker.rerank(ranked, exec_est_ns);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server(host: u32, delay_ms: u64) -> RankedServer {
        RankedServer {
            host,
            est_delay_ns: delay_ms * 1_000_000,
            est_bandwidth_bps: 10_000_000,
        }
    }

    #[test]
    fn capability_subset_check() {
        let gpu_server = Capabilities::new().with("gpu").with("keras");
        let needs_gpu = Capabilities::new().with("gpu");
        let needs_tpu = Capabilities::new().with("tpu");
        assert!(gpu_server.satisfies(&needs_gpu));
        assert!(!gpu_server.satisfies(&needs_tpu));
        assert!(gpu_server.satisfies(&Capabilities::new()), "no requirements always pass");
    }

    #[test]
    fn filter_keeps_order_and_unknown_servers() {
        let mut t = ComputeTracker::new();
        t.register(1, Capabilities::new().with("gpu"), 1);
        t.register(2, Capabilities::new(), 1);
        // host 3 never registered.
        let ranked = vec![server(2, 10), server(1, 20), server(3, 30)];
        let need_gpu = Capabilities::new().with("gpu");
        let hosts: Vec<u32> = t.filter_capable(&ranked, &need_gpu).iter().map(|s| s.host).collect();
        assert_eq!(hosts, vec![1, 3], "non-GPU host 2 dropped, unknown host 3 kept");
    }

    #[test]
    fn load_tracking_and_pressure() {
        let mut t = ComputeTracker::new();
        t.register(1, Capabilities::new(), 2);
        assert_eq!(t.pressure(1), 0);
        t.on_dispatch(1);
        assert_eq!(t.load(1), 1);
        assert_eq!(t.pressure(1), 0, "one free slot left");
        t.on_dispatch(1);
        assert_eq!(t.pressure(1), 0, "both slots busy but nothing queued");
        t.on_dispatch(1);
        assert_eq!(t.pressure(1), 1, "one task actually waits");
        t.on_complete(1);
        assert_eq!(t.load(1), 2);
        t.on_complete(1);
        t.on_complete(1);
        t.on_complete(1); // extra completion must not underflow
        assert_eq!(t.load(1), 0);
    }

    #[test]
    fn set_load_overwrites_deltas() {
        let mut t = ComputeTracker::new();
        t.register(1, Capabilities::new(), 1);
        t.on_dispatch(1);
        t.set_load(1, 5);
        assert_eq!(t.load(1), 5);
        assert_eq!(t.pressure(1), 4);
        t.set_load(1, 0);
        assert_eq!(t.pressure(1), 0);
    }

    #[test]
    fn queue_wait_drains_across_slots() {
        let mut t = ComputeTracker::new();
        t.register(1, Capabilities::new(), 1);
        t.register(2, Capabilities::new(), 4);
        // Same backlog of 4 queued tasks on both…
        for _ in 0..5 {
            t.on_dispatch(1);
        }
        for _ in 0..8 {
            t.on_dispatch(2);
        }
        assert_eq!(t.pressure(1), 4);
        assert_eq!(t.pressure(2), 4);
        // …but host 2 drains it 4× as fast.
        assert_eq!(t.queue_wait_est_ns(1, 100), 400);
        assert_eq!(t.queue_wait_est_ns(2, 100), 100);
    }

    #[test]
    fn rerank_pushes_backlogged_server_down() {
        let mut t = ComputeTracker::new();
        t.register(1, Capabilities::new(), 1);
        t.register(2, Capabilities::new(), 1);
        // Network prefers host 1 (30 ms vs 50 ms)…
        let ranked = vec![server(1, 30), server(2, 50)];
        // …but host 1 has 3 outstanding tasks of ~100 ms each.
        for _ in 0..3 {
            t.on_dispatch(1);
        }
        let out = t.rerank(&ranked, 100_000_000);
        assert_eq!(out[0].host, 2, "idle-but-farther server wins under load");
        // With negligible execution estimates the network order returns.
        let out = t.rerank(&ranked, 1);
        assert_eq!(out[0].host, 1);
    }

    #[test]
    fn composite_policies_reorder_as_documented() {
        let mut t = ComputeTracker::new();
        t.register(1, Capabilities::new(), 1);
        t.register(2, Capabilities::new(), 1);
        // Network prefers host 1; host 1 carries a 3-task backlog.
        let base = vec![server(1, 30), server(2, 50)];
        for _ in 0..3 {
            t.on_dispatch(1);
        }

        let mut r = base.clone();
        CompositePolicy::NetworkOnly.apply(&t, &mut r, 100_000_000);
        assert_eq!(r[0].host, 1, "network-only ignores load");

        let mut r = base.clone();
        CompositePolicy::LeastLoaded.apply(&t, &mut r, 100_000_000);
        assert_eq!(r[0].host, 2, "least-loaded ignores network");

        for p in [CompositePolicy::IntLeastLoaded, CompositePolicy::IntEdf] {
            let mut r = base.clone();
            p.apply(&t, &mut r, 100_000_000);
            assert_eq!(r[0].host, 2, "{p:?} penalizes the backlog");
            let mut r = base.clone();
            p.apply(&t, &mut r, 1);
            assert_eq!(r[0].host, 1, "{p:?} keeps network order when exec is negligible");
        }

        assert!(CompositePolicy::IntEdf.edf_executor());
        assert!(!CompositePolicy::IntLeastLoaded.edf_executor());
        assert!(!CompositePolicy::LeastLoaded.uses_int());
        let names: Vec<&str> = CompositePolicy::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names, ["NetworkOnly", "LeastLoaded", "IntLeastLoaded", "IntEdf"]);
    }
}
