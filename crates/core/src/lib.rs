//! # int-core
//!
//! The paper's primary contribution: an **INT-driven network-aware task
//! scheduler for edge computing** (Shrestha, Cziva, Arslan — IPDPSW 2021).
//!
//! The crate consumes *only bytes* — parsed probe payloads from
//! `int-packet` — so it can sit behind a real INT deployment just as well
//! as behind the bundled simulator. The pipeline:
//!
//! 1. [`collector::IntCollector`] ingests probe packets arriving at the
//!    scheduler, validates them, tracks per-origin loss/reordering, and
//!    feeds the network map.
//! 2. [`map::NetworkMap`] reconstructs the topology from the *order* of INT
//!    records (paper §III-B) and maintains per-directed-link state: the
//!    measured link latency and the max queue occupancy harvested from each
//!    switch's registers.
//! 3. [`estimate`] turns that state into end-to-end path estimates: delay
//!    via `Σ link_delay + Σ k·maxQ` (paper §III-C, Algorithm 1) and
//!    available bandwidth via a queue-occupancy→utilization curve with
//!    bottleneck aggregation (paper §III-D).
//! 4. [`rank`] orders candidate edge servers for a requesting device under
//!    a [`rank::Policy`]: the two INT-based policies plus the paper's
//!    baselines (*Nearest*, *Random*).
//! 5. [`sched::SchedulerCore`] glues it together behind the
//!    request/response interface of Fig. 1 (steps 3–4).
//!
//! Extensions the paper lists as future work are also implemented:
//! [`tuning`] (data-driven calibration of the conversion factor *k*),
//! [`compute`] (compute-aware and heterogeneity-aware filtering), and
//! [`coverage`] (probe route coverage audit).

pub mod collector;
pub mod compute;
pub mod config;
pub mod coverage;
pub mod estimate;
pub mod map;
pub mod pathidx;
pub mod rank;
pub mod sched;
pub mod shard;
pub mod snapshot;
pub mod tuning;

pub use collector::IntCollector;
pub use compute::{Capabilities, CompositePolicy, ComputeTracker};
pub use config::CoreConfig;
pub use estimate::{BandwidthEstimator, DelayEstimator};
pub use map::{EdgeId, EdgeState, NetNode, NetworkMap};
pub use pathidx::{PathEngine, PathEngineStats};
pub use rank::{ExcludeReason, Policy, RankOutcome, RankedServer};
pub use sched::SchedulerCore;
pub use shard::{EpochSlot, RankQuery, ShardedScheduler};
pub use snapshot::{
    PublishStats, SchedSnapshot, SnapshotPublisher, SnapshotScratch, SnapshotServeStats,
};
