//! The dynamically learned network map (paper §III-B).
//!
//! The scheduler never receives a topology file: it deduces adjacency from
//! the *order* of INT records in probe packets ("if a probe packet contains
//! INT data in S1-S3-S4 order, S1–S3 and S3–S4 are connected") and
//! annotates each directed link with the latest measured latency and the
//! max queue occupancy harvested from the upstream switch's register.

use crate::config::{CoreConfig, DirectionFallback, HopSignal};
use int_packet::ProbePayload;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A node in the learned map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum NetNode {
    /// An edge host (device, server, or the scheduler itself).
    Host(u32),
    /// A switch, identified by the id it stamps into INT records.
    Switch(u32),
}

/// Telemetry state of one *directed* link.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeState {
    /// Smoothed link latency, ns (EWMA over probe measurements).
    pub delay_ns: u64,
    /// Latest raw latency sample, ns.
    pub last_delay_ns: u64,
    /// Max queue occupancy of the upstream egress port during the last
    /// probing interval, packets.
    pub max_qlen_pkts: u32,
    /// Queue occupancy at the instant the probe was enqueued, packets
    /// (the ablation's "average-like" signal).
    pub qlen_at_probe_pkts: u32,
    /// When the queue measurement was taken (collector clock, ns).
    pub qlen_updated_ns: u64,
    /// When any field was last updated (collector clock, ns).
    pub updated_ns: u64,
    /// Total probe samples folded into this edge.
    pub samples: u64,
    /// Recent (timestamp, harvested max-queue) samples, newest last; the
    /// effective queue signal is the max over a configurable window.
    pub qlen_history: Vec<(u64, u32)>,
}

impl EdgeState {
    fn new(now_ns: u64) -> Self {
        EdgeState {
            delay_ns: 0,
            last_delay_ns: 0,
            max_qlen_pkts: 0,
            qlen_at_probe_pkts: 0,
            qlen_updated_ns: now_ns,
            updated_ns: now_ns,
            samples: 0,
            qlen_history: Vec::new(),
        }
    }

    /// Max harvested queue length over `[now - window, now]`.
    pub fn windowed_max_qlen(&self, now_ns: u64, window_ns: u64) -> u32 {
        let cutoff = now_ns.saturating_sub(window_ns);
        self.qlen_history
            .iter()
            .filter(|(ts, _)| *ts >= cutoff)
            .map(|(_, q)| *q)
            .max()
            .unwrap_or(0)
    }
}

/// Hard backstop on per-edge history length, far above anything the
/// timestamp window retains in practice.
const QLEN_HISTORY_HARD_CAP: usize = 1024;

/// Stable identifier of an interned directed edge. Ids are assigned on
/// first sighting and never reused: an evicted edge keeps its id (slot
/// marked dead) and a probe that re-learns it revives the same id.
pub type EdgeId = u32;

/// Sentinel for an empty bucket in the open-addressed edge lookup table.
const EMPTY_SLOT: u32 = u32::MAX;

/// One interned directed edge: endpoints, liveness, dirty stamp, state.
#[derive(Debug, Clone)]
struct EdgeSlot {
    from: NetNode,
    to: NetNode,
    /// Dead slots (evicted edges) keep their id and lookup entry so a
    /// re-learning probe revives the same `EdgeId`.
    live: bool,
    /// Last dirty epoch this edge was recorded in; dedupes the dirty list
    /// to one entry per edge per publish interval.
    stamp: u64,
    state: EdgeState,
}

/// SplitMix64 finalizer — cheap, well-mixed hash for the edge lookup.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// Injective 64-bit encoding of a node (hosts and switches never collide).
fn node_key(n: NetNode) -> u64 {
    match n {
        NetNode::Host(h) => h as u64,
        NetNode::Switch(s) => (1u64 << 32) | s as u64,
    }
}

/// Hash of a *directed* edge; asymmetric so (a,b) and (b,a) differ.
fn pair_hash(from: NetNode, to: NetNode) -> u64 {
    mix64(node_key(from) ^ mix64(node_key(to).wrapping_add(0x9E37_79B9_7F4A_7C15)))
}

/// The learned network graph.
///
/// Edge storage is a dense interned slab: each directed edge gets a stable
/// [`EdgeId`] on first sighting, hot-path updates are O(1) hash-probe +
/// array write, and deterministic iteration goes through a sorted id list
/// maintained only on structural changes. Edges touched since the last
/// [`NetworkMap::take_dirty_into`] accumulate in a deduped dirty list so
/// the snapshot publisher can reprice only what changed.
#[derive(Debug, Clone)]
pub struct NetworkMap {
    /// Edge slab, indexed by `EdgeId`. Append-only; eviction marks slots
    /// dead instead of removing them.
    slots: Vec<EdgeSlot>,
    /// Open-addressed (linear probing, power-of-two capacity) table from
    /// directed endpoint pair to `EdgeId`. Entries are never removed —
    /// dead slots keep theirs for revival.
    lookup: Vec<u32>,
    /// Live edge ids sorted by `(from, to)`; gives `edges()` the same
    /// deterministic order the old `BTreeMap` store had. Maintained on
    /// structural changes only (insert/revive/evict).
    order: Vec<EdgeId>,
    hosts: BTreeSet<u32>,
    switches: BTreeSet<u32>,
    /// Edges evicted for not being refreshed within the aging horizon,
    /// keyed to their eviction time — the "newly dead" set surfaced by the
    /// coverage report. Cleared per edge when a probe re-learns it.
    evicted: BTreeMap<(NetNode, NetNode), u64>,
    /// EWMA weight (numerator of x/8) applied to new delay samples;
    /// mirrors [`CoreConfig::delay_ewma_new_eighths`].
    delay_ewma_new_eighths: u32,
    /// Retention horizon for per-edge queue-harvest history; mirrors
    /// [`CoreConfig::qlen_window_ns`].
    qlen_retention_ns: u64,
    /// Bumped whenever the *structure* of the graph changes: an edge is
    /// inserted or evicted, or a node joins the host/switch sets. The
    /// indexed path engine keys its CSR adjacency snapshot on this.
    topo_gen: u64,
    /// Bumped on metric-only updates (delay/queue refresh of an existing
    /// edge). Does not invalidate adjacency structure, only edge weights
    /// and cached shortest paths.
    metrics_gen: u64,
    /// Edge ids touched since the last `take_dirty_into`, one entry per
    /// edge (deduped via `EdgeSlot::stamp` against `dirty_epoch`).
    dirty: Vec<EdgeId>,
    /// Current dirty interval; bumped when the dirty list is drained.
    /// Starts at 1 so freshly interned slots (stamp 0) always differ.
    dirty_epoch: u64,
    /// Reusable node-path buffer for `apply_probe`.
    path_scratch: Vec<NetNode>,
}

impl Default for NetworkMap {
    fn default() -> Self {
        let defaults = CoreConfig::default();
        NetworkMap {
            slots: Vec::new(),
            lookup: Vec::new(),
            order: Vec::new(),
            hosts: BTreeSet::new(),
            switches: BTreeSet::new(),
            evicted: BTreeMap::new(),
            delay_ewma_new_eighths: defaults.delay_ewma_new_eighths,
            qlen_retention_ns: defaults.qlen_window_ns,
            topo_gen: 0,
            metrics_gen: 0,
            dirty: Vec::new(),
            dirty_epoch: 1,
            path_scratch: Vec::new(),
        }
    }
}

impl NetworkMap {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the delay-EWMA weight (numerator of x/8, clamped to `1..=8`).
    /// 8 = trust only the newest sample; 1 = heavy smoothing.
    pub fn set_delay_ewma(&mut self, new_eighths: u32) {
        self.delay_ewma_new_eighths = new_eighths.clamp(1, 8);
    }

    /// Set the retention horizon for queue-harvest history. Harvests older
    /// than this relative to the newest sample are pruned.
    pub fn set_qlen_retention(&mut self, window_ns: u64) {
        self.qlen_retention_ns = window_ns;
    }

    /// Known edge hosts (probe origins and the scheduler).
    pub fn hosts(&self) -> impl Iterator<Item = u32> + '_ {
        self.hosts.iter().copied()
    }

    /// Known switches.
    pub fn switches(&self) -> impl Iterator<Item = u32> + '_ {
        self.switches.iter().copied()
    }

    /// Number of directed edges with state.
    pub fn edge_count(&self) -> usize {
        self.order.len()
    }

    /// All directed edges (deterministic `(from, to)` order).
    pub fn edges(&self) -> impl Iterator<Item = (NetNode, NetNode, &EdgeState)> + '_ {
        self.order.iter().map(|&id| {
            let s = &self.slots[id as usize];
            (s.from, s.to, &s.state)
        })
    }

    /// Directed edge state, if probed.
    pub fn edge(&self, from: NetNode, to: NetNode) -> Option<&EdgeState> {
        let s = &self.slots[self.find_slot(from, to)? as usize];
        s.live.then_some(&s.state)
    }

    /// Endpoints and state of a *live* edge by id; `None` when the id is
    /// unknown or the edge is currently dead (evicted).
    pub fn edge_by_id(&self, id: EdgeId) -> Option<(NetNode, NetNode, &EdgeState)> {
        let s = self.slots.get(id as usize)?;
        s.live.then_some((s.from, s.to, &s.state))
    }

    /// Drain the dirty-edge list (edge ids touched since the previous
    /// drain, deduped) into `out`, clearing it first. Starts a new dirty
    /// interval: subsequent touches re-record their edges.
    pub fn take_dirty_into(&mut self, out: &mut Vec<EdgeId>) {
        out.clear();
        out.extend_from_slice(&self.dirty);
        self.dirty.clear();
        self.dirty_epoch += 1;
    }

    /// Number of distinct edges touched since the last dirty drain.
    pub fn dirty_count(&self) -> usize {
        self.dirty.len()
    }

    /// Look up the slot id of a directed edge (live or dead).
    fn find_slot(&self, from: NetNode, to: NetNode) -> Option<u32> {
        if self.lookup.is_empty() {
            return None;
        }
        let mask = self.lookup.len() - 1;
        let mut i = (pair_hash(from, to) as usize) & mask;
        loop {
            match self.lookup[i] {
                EMPTY_SLOT => return None,
                id => {
                    let s = &self.slots[id as usize];
                    if s.from == from && s.to == to {
                        return Some(id);
                    }
                }
            }
            i = (i + 1) & mask;
        }
    }

    /// Record `id` as touched in the current dirty interval (deduped).
    fn mark_dirty(&mut self, id: EdgeId) {
        let s = &mut self.slots[id as usize];
        if s.stamp != self.dirty_epoch {
            s.stamp = self.dirty_epoch;
            self.dirty.push(id);
        }
    }

    /// Resolve-or-create the slot for a directed edge, with generation
    /// accounting: refresh of a live edge is metric-only; a brand-new or
    /// revived (previously evicted) edge is a structural change.
    fn intern(&mut self, from: NetNode, to: NetNode, now_ns: u64) -> EdgeId {
        let id = if let Some(id) = self.find_slot(from, to) {
            if self.slots[id as usize].live {
                self.metrics_gen += 1;
            } else {
                // Revive a dead edge: same id, fresh state, structural.
                let s = &mut self.slots[id as usize];
                s.live = true;
                s.state = EdgeState::new(now_ns);
                self.topo_gen += 1;
                self.evicted.remove(&(from, to));
                self.insert_order(id);
            }
            id
        } else {
            let id = self.slots.len() as u32;
            self.slots.push(EdgeSlot {
                from,
                to,
                live: true,
                stamp: 0,
                state: EdgeState::new(now_ns),
            });
            self.topo_gen += 1;
            self.index_insert(id);
            self.insert_order(id);
            id
        };
        self.mark_dirty(id);
        id
    }

    /// Add a freshly pushed slot to the lookup table, growing as needed.
    fn index_insert(&mut self, id: u32) {
        // Grow at 7/8 load counting every slot (dead ones keep entries).
        if self.slots.len() * 8 >= self.lookup.len() * 7 {
            self.rebuild_lookup();
            return; // rebuild indexed every slot, including `id`
        }
        let (from, to) = {
            let s = &self.slots[id as usize];
            (s.from, s.to)
        };
        let mask = self.lookup.len() - 1;
        let mut i = (pair_hash(from, to) as usize) & mask;
        while self.lookup[i] != EMPTY_SLOT {
            i = (i + 1) & mask;
        }
        self.lookup[i] = id;
    }

    /// Rebuild the lookup table at double capacity over the whole slab.
    fn rebuild_lookup(&mut self) {
        let cap = (self.lookup.len() * 2).max(16);
        self.lookup.clear();
        self.lookup.resize(cap, EMPTY_SLOT);
        let mask = cap - 1;
        for (id, s) in self.slots.iter().enumerate() {
            let mut i = (pair_hash(s.from, s.to) as usize) & mask;
            while self.lookup[i] != EMPTY_SLOT {
                i = (i + 1) & mask;
            }
            self.lookup[i] = id as u32;
        }
    }

    /// Insert a (newly live) id into the sorted iteration order.
    fn insert_order(&mut self, id: EdgeId) {
        let key = {
            let s = &self.slots[id as usize];
            (s.from, s.to)
        };
        let pos = self
            .order
            .binary_search_by(|&o| {
                let s = &self.slots[o as usize];
                (s.from, s.to).cmp(&key)
            })
            .unwrap_or_else(|p| p);
        self.order.insert(pos, id);
    }

    /// Topology generation: incremented on every structural change (edge
    /// insert/evict, node-set growth). Snapshots keyed on this stay valid
    /// across metric-only refreshes.
    pub fn topology_generation(&self) -> u64 {
        self.topo_gen
    }

    /// Metrics generation: incremented on every metric refresh of an
    /// existing edge (and on map-side tunable changes). Cached shortest
    /// paths must be revalidated when this moves — route choice is
    /// delay-weighted, so fresher metrics can select a different path.
    pub fn metrics_generation(&self) -> u64 {
        self.metrics_gen
    }

    /// Register a host that may not originate probes (e.g. the scheduler
    /// itself, or a device that only submits queries).
    pub fn register_host(&mut self, host: u32) {
        if self.hosts.insert(host) {
            self.topo_gen += 1;
        }
    }

    /// Fold one probe into the map (paper Fig. 2 semantics).
    ///
    /// `scheduler_host` is the node the probe terminated at; `now_ns` is
    /// the collector's receive timestamp, used to measure the final hop's
    /// link latency from the last switch's egress stamp.
    pub fn apply_probe(&mut self, probe: &ProbePayload, scheduler_host: u32, now_ns: u64) {
        if self.hosts.insert(probe.origin_node) {
            self.topo_gen += 1;
        }
        if self.hosts.insert(scheduler_host) {
            self.topo_gen += 1;
        }

        let records = &probe.int.records;
        if records.is_empty() {
            return; // a probe that saw no switch teaches us nothing
        }
        for r in records {
            if self.switches.insert(r.switch_id) {
                self.topo_gen += 1;
            }
        }

        // Build the node path: origin → s1 → … → sk → scheduler.
        let mut path = std::mem::take(&mut self.path_scratch);
        path.clear();
        path.reserve(records.len() + 2);
        path.push(NetNode::Host(probe.origin_node));
        path.extend(records.iter().map(|r| NetNode::Switch(r.switch_id)));
        path.push(NetNode::Host(scheduler_host));

        // Link latencies: record i measured the latency of the link
        // *into* switch i; the final hop is measured at the collector.
        for (i, r) in records.iter().enumerate() {
            self.update_delay(path[i], path[i + 1], r.link_latency_ns, now_ns);
        }
        let last = records.last().expect("non-empty");
        let final_hop = now_ns.saturating_sub(last.egress_ts_ns);
        self.update_delay(path[records.len()], path[records.len() + 1], final_hop, now_ns);

        // Queue occupancies: record i harvested the max queue of switch
        // i's egress toward path[i+2] (the node after the switch).
        for (i, r) in records.iter().enumerate() {
            self.update_qlen(path[i + 1], path[i + 2], r.max_qlen_pkts, r.qlen_at_probe_pkts, now_ns);
        }
        self.path_scratch = path;
    }

    fn update_delay(&mut self, from: NetNode, to: NetNode, sample_ns: u64, now_ns: u64) {
        let w = self.delay_ewma_new_eighths as u64;
        let id = self.intern(from, to, now_ns);
        let e = &mut self.slots[id as usize].state;
        e.last_delay_ns = sample_ns;
        e.delay_ns = if e.samples == 0 {
            sample_ns
        } else {
            // Widen before multiplying: `(8 - w) * delay_ns` overflows u64
            // once the smoothed delay passes ~2.6e18 ns, which long Clos
            // paths with saturated estimates can legitimately reach.
            let blended = ((8 - w) as u128 * e.delay_ns as u128 + w as u128 * sample_ns as u128) / 8;
            blended.min(u64::MAX as u128) as u64
        };
        e.samples += 1;
        e.updated_ns = now_ns;
    }

    fn update_qlen(&mut self, from: NetNode, to: NetNode, max_q: u32, inst_q: u32, now_ns: u64) {
        let retention = self.qlen_retention_ns;
        let id = self.intern(from, to, now_ns);
        let e = &mut self.slots[id as usize].state;
        e.max_qlen_pkts = max_q;
        e.qlen_at_probe_pkts = inst_q;
        e.qlen_updated_ns = now_ns;
        e.updated_ns = now_ns;
        e.qlen_history.push((now_ns, max_q));
        // Prune by age against the configured window (harvests outside it
        // can never contribute to the windowed max), with a hard cap as a
        // memory backstop for pathological window/interval combinations.
        let cutoff = now_ns.saturating_sub(retention);
        e.qlen_history.retain(|(ts, _)| *ts >= cutoff);
        if e.qlen_history.len() > QLEN_HISTORY_HARD_CAP {
            let excess = e.qlen_history.len() - QLEN_HISTORY_HARD_CAP;
            e.qlen_history.drain(..excess);
        }
    }

    /// Evict every edge not refreshed within `horizon_ns` of `now_ns`, and
    /// forget switches left with no edges. Evicted edges are remembered as
    /// *dead* (see [`NetworkMap::dead_edges`]) until a probe re-learns
    /// them. Returns the edges evicted by this call, in deterministic
    /// order.
    pub fn evict_stale(&mut self, now_ns: u64, horizon_ns: u64) -> Vec<(NetNode, NetNode)> {
        // `order` is sorted by (from, to), so the dead list comes out in
        // the same deterministic order the BTreeMap store produced.
        let dead_ids: Vec<EdgeId> = self
            .order
            .iter()
            .copied()
            .filter(|&id| {
                let s = &self.slots[id as usize];
                now_ns.saturating_sub(s.state.updated_ns) > horizon_ns
            })
            .collect();
        if dead_ids.is_empty() {
            return Vec::new();
        }
        let mut dead = Vec::with_capacity(dead_ids.len());
        for &id in &dead_ids {
            let (from, to) = {
                let s = &mut self.slots[id as usize];
                s.live = false;
                // Release dead history memory; revival resets state anyway.
                s.state.qlen_history = Vec::new();
                (s.from, s.to)
            };
            self.evicted.insert((from, to), now_ns);
            dead.push((from, to));
        }
        let mut order = std::mem::take(&mut self.order);
        order.retain(|&id| self.slots[id as usize].live);
        self.order = order;
        self.topo_gen += 1;
        // A switch is only known through its edges; drop the ones that
        // no longer appear on any.
        let mut live = BTreeSet::new();
        for (a, b, _) in self.edges() {
            for n in [a, b] {
                if let NetNode::Switch(s) = n {
                    live.insert(s);
                }
            }
        }
        self.switches = live;
        dead
    }

    /// Edges evicted by aging and not re-learned since, with their
    /// eviction times (deterministic order).
    pub fn dead_edges(&self) -> impl Iterator<Item = (NetNode, NetNode, u64)> + '_ {
        self.evicted.iter().map(|((a, b), at)| (*a, *b, *at))
    }

    /// Effective delay of a directed edge for estimation, honouring the
    /// direction-fallback policy; `None` if neither direction was probed.
    pub fn effective_delay_ns(&self, cfg: &CoreConfig, from: NetNode, to: NetNode) -> Option<u64> {
        if let Some(e) = self.edge(from, to) {
            if e.samples > 0 {
                return Some(e.delay_ns);
            }
        }
        match cfg.direction_fallback {
            DirectionFallback::ReverseOk => {
                self.edge(to, from).filter(|e| e.samples > 0).map(|e| e.delay_ns)
            }
            DirectionFallback::Strict => None,
        }
    }

    /// Effective max queue length of a directed edge, honouring fallback
    /// and staleness (stale measurements read as an empty queue).
    pub fn effective_qlen(&self, cfg: &CoreConfig, from: NetNode, to: NetNode, now_ns: u64) -> u32 {
        let fresh = |e: &EdgeState| {
            if now_ns.saturating_sub(e.qlen_updated_ns) <= cfg.staleness_ns {
                Some(match cfg.hop_signal {
                    HopSignal::MaxQueue => e.windowed_max_qlen(now_ns, cfg.qlen_window_ns),
                    HopSignal::InstantaneousQueue => e.qlen_at_probe_pkts,
                })
            } else {
                Some(0)
            }
        };
        if let Some(e) = self.edge(from, to) {
            if let Some(q) = fresh(e) {
                return q;
            }
        }
        if cfg.direction_fallback == DirectionFallback::ReverseOk {
            if let Some(e) = self.edge(to, from) {
                if let Some(q) = fresh(e) {
                    return q;
                }
            }
        }
        0
    }

    /// Undirected neighbours of a node (for graph traversal).
    pub fn neighbours(&self, node: NetNode) -> Vec<NetNode> {
        let mut out = BTreeSet::new();
        for (a, b, _) in self.edges() {
            if a == node {
                out.insert(b);
            }
            if b == node {
                out.insert(a);
            }
        }
        out.into_iter().collect()
    }

    /// Shortest path (by effective delay, deterministic tie-break) between
    /// two nodes over the learned graph. Returns the node sequence
    /// including endpoints, or `None` if disconnected.
    ///
    /// This is the *reference* implementation: the query hot path goes
    /// through [`crate::pathidx::PathEngine`], which must agree with this
    /// byte-for-byte (pinned by the oracle proptest). Keep the two in
    /// lockstep when changing traversal semantics.
    pub fn path(&self, cfg: &CoreConfig, from: NetNode, to: NetNode) -> Option<Vec<NetNode>> {
        self.path_banned(cfg, from, to, &BTreeSet::new())
    }

    /// [`NetworkMap::path`] with an undirected ban list: edges whose
    /// normalized `(min, max)` pair appears in `banned` are skipped in both
    /// directions. With an empty ban list this *is* the reference shortest
    /// path; [`NetworkMap::k_paths`] layers successive bans on top.
    fn path_banned(
        &self,
        cfg: &CoreConfig,
        from: NetNode,
        to: NetNode,
        banned: &BTreeSet<(NetNode, NetNode)>,
    ) -> Option<Vec<NetNode>> {
        if from == to {
            return Some(vec![from]);
        }
        // Dijkstra over the undirected learned graph with directed-delay
        // weights (fallback applies).
        let mut dist: BTreeMap<NetNode, u64> = BTreeMap::new();
        let mut prev: BTreeMap<NetNode, NetNode> = BTreeMap::new();
        let mut heap = std::collections::BinaryHeap::new();
        dist.insert(from, 0);
        heap.push(std::cmp::Reverse((0u64, from)));

        while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
            if dist.get(&u).copied().unwrap_or(u64::MAX) < d {
                continue;
            }
            if u == to {
                break;
            }
            for v in self.neighbours(u) {
                if !banned.is_empty() && banned.contains(&undirected_key(u, v)) {
                    continue;
                }
                // Unmeasured edges get a nominal fallback weight so
                // traversal still works while the map is warming up.
                let w = self.effective_delay_ns(cfg, u, v).unwrap_or(cfg.unmeasured_delay_ns);
                let nd = d.saturating_add(w.max(1));
                if nd < dist.get(&v).copied().unwrap_or(u64::MAX) {
                    dist.insert(v, nd);
                    prev.insert(v, u);
                    heap.push(std::cmp::Reverse((nd, v)));
                }
            }
        }

        if !dist.contains_key(&to) {
            return None;
        }
        let mut path = vec![to];
        let mut cur = to;
        while cur != from {
            cur = *prev.get(&cur)?;
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }

    /// Up to `k` candidate paths between two nodes by successive edge
    /// exclusion: path *j+1* is the shortest path with the interior
    /// switch–switch edges of paths *1..=j* banned (host attachment edges
    /// are never banned — a host's only uplink is not an alternative to
    /// itself). Stops early when banning yields no path or a duplicate.
    ///
    /// The first element always equals [`NetworkMap::path`] exactly. Like
    /// `path`, this is the *reference* implementation for the k-path rank:
    /// [`crate::pathidx::PathEngine::paths`] must agree byte-for-byte.
    pub fn k_paths(&self, cfg: &CoreConfig, from: NetNode, to: NetNode, k: u32) -> Vec<Vec<NetNode>> {
        let mut out: Vec<Vec<NetNode>> = Vec::new();
        let mut banned: BTreeSet<(NetNode, NetNode)> = BTreeSet::new();
        for _ in 0..k.max(1) {
            let Some(path) = self.path_banned(cfg, from, to, &banned) else { break };
            if out.contains(&path) {
                break;
            }
            for w in path.windows(2) {
                let (a, b) = (w[0], w[1]);
                if matches!(a, NetNode::Switch(_)) && matches!(b, NetNode::Switch(_)) {
                    banned.insert(undirected_key(a, b));
                }
            }
            out.push(path);
        }
        out
    }
}

/// Normalize an undirected edge to a canonical `(min, max)` key.
fn undirected_key(a: NetNode, b: NetNode) -> (NetNode, NetNode) {
    if a <= b { (a, b) } else { (b, a) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use int_packet::int::IntRecord;

    fn rec(switch_id: u32, maxq: u32, link_lat_ms: u64, egress_ts_ms: u64) -> IntRecord {
        IntRecord {
            switch_id,
            ingress_port: 0,
            egress_port: 1,
            max_qlen_pkts: maxq,
            qlen_at_probe_pkts: 0,
            link_latency_ns: link_lat_ms * 1_000_000,
            egress_ts_ns: egress_ts_ms * 1_000_000,
        }
    }

    /// Probe from host 1 through switches 10, 11 to scheduler host 6.
    fn two_hop_probe() -> ProbePayload {
        let mut p = ProbePayload::new(1, 1, 0);
        p.int.push(rec(10, 4, 10, 11));
        p.int.push(rec(11, 9, 10, 22));
        p
    }

    #[test]
    fn topology_learned_from_record_order() {
        let mut m = NetworkMap::new();
        m.apply_probe(&two_hop_probe(), 6, 32_000_000);

        assert_eq!(m.hosts().collect::<Vec<_>>(), vec![1, 6]);
        assert_eq!(m.switches().collect::<Vec<_>>(), vec![10, 11]);
        // Edges: h1→s10, s10→s11, s11→h6 (probe direction).
        assert!(m.edge(NetNode::Host(1), NetNode::Switch(10)).is_some());
        assert!(m.edge(NetNode::Switch(10), NetNode::Switch(11)).is_some());
        assert!(m.edge(NetNode::Switch(11), NetNode::Host(6)).is_some());
        assert_eq!(m.edge_count(), 3);
    }

    #[test]
    fn delays_assigned_to_correct_edges() {
        let mut m = NetworkMap::new();
        m.apply_probe(&two_hop_probe(), 6, 32_000_000);
        let d1 = m.edge(NetNode::Host(1), NetNode::Switch(10)).unwrap();
        assert_eq!(d1.delay_ns, 10_000_000);
        let d2 = m.edge(NetNode::Switch(10), NetNode::Switch(11)).unwrap();
        assert_eq!(d2.delay_ns, 10_000_000);
        // Final hop: now (32 ms) − egress stamp of s11 (22 ms) = 10 ms.
        let d3 = m.edge(NetNode::Switch(11), NetNode::Host(6)).unwrap();
        assert_eq!(d3.delay_ns, 10_000_000);
    }

    #[test]
    fn qlens_assigned_to_switch_egress_edges() {
        let mut m = NetworkMap::new();
        m.apply_probe(&two_hop_probe(), 6, 32_000_000);
        // s10's register snapshot describes its egress toward s11.
        assert_eq!(m.edge(NetNode::Switch(10), NetNode::Switch(11)).unwrap().max_qlen_pkts, 4);
        // s11's snapshot describes its egress toward the scheduler.
        assert_eq!(m.edge(NetNode::Switch(11), NetNode::Host(6)).unwrap().max_qlen_pkts, 9);
    }

    #[test]
    fn delay_ewma_smooths() {
        let mut m = NetworkMap::new();
        m.apply_probe(&two_hop_probe(), 6, 32_000_000);
        // Second probe with a 20 ms first-link sample.
        let mut p = ProbePayload::new(1, 2, 0);
        p.int.push(rec(10, 0, 20, 120));
        p.int.push(rec(11, 0, 10, 130));
        m.apply_probe(&p, 6, 140_000_000);
        let e = m.edge(NetNode::Host(1), NetNode::Switch(10)).unwrap();
        assert_eq!(e.last_delay_ns, 20_000_000);
        // EWMA: (6·10 + 2·20)/8 = 12.5 ms
        assert_eq!(e.delay_ns, 12_500_000);
        assert_eq!(e.samples, 2);
    }

    /// Regression (the map used to hardcode a 2/8 weight): with the knob
    /// at 8/8 the smoothed delay must equal the newest sample exactly.
    #[test]
    fn delay_ewma_weight_is_configurable() {
        let mut m = NetworkMap::new();
        m.set_delay_ewma(8);
        m.apply_probe(&two_hop_probe(), 6, 32_000_000);
        let mut p = ProbePayload::new(1, 2, 0);
        p.int.push(rec(10, 0, 20, 120));
        p.int.push(rec(11, 0, 10, 130));
        m.apply_probe(&p, 6, 140_000_000);
        let e = m.edge(NetNode::Host(1), NetNode::Switch(10)).unwrap();
        assert_eq!(e.delay_ns, 20_000_000, "8/8 tracks the newest sample");

        // Heavy smoothing at 1/8: (7·10 + 1·20)/8 = 11.25 ms.
        let mut m = NetworkMap::new();
        m.set_delay_ewma(1);
        m.apply_probe(&two_hop_probe(), 6, 32_000_000);
        let mut p = ProbePayload::new(1, 2, 0);
        p.int.push(rec(10, 0, 20, 120));
        p.int.push(rec(11, 0, 10, 130));
        m.apply_probe(&p, 6, 140_000_000);
        let e = m.edge(NetNode::Host(1), NetNode::Switch(10)).unwrap();
        assert_eq!(e.delay_ns, 11_250_000);

        // Out-of-range weights clamp instead of zeroing the delay.
        let mut m = NetworkMap::new();
        m.set_delay_ewma(0);
        m.apply_probe(&two_hop_probe(), 6, 32_000_000);
        let e = m.edge(NetNode::Host(1), NetNode::Switch(10)).unwrap();
        assert_eq!(e.delay_ns, 10_000_000);
    }

    /// Regression (history used to be capped at the 32 most recent
    /// entries): a window wider than 32 probing intervals must still see
    /// an early congestion spike inside the window.
    #[test]
    fn qlen_history_prunes_by_window_not_by_count() {
        let ms = 1_000_000u64;
        let mut m = NetworkMap::new();
        m.set_qlen_retention(10_000 * ms); // 10 s window, 100 ms samples
        let spike_at = 100 * ms;

        // Sample 0 carries the spike (q=50); 39 quiet samples follow, so a
        // count-of-32 cap would have dropped the spike by the end.
        for i in 0..40u64 {
            let mut p = ProbePayload::new(1, i, 0);
            let q = if i == 0 { 50 } else { 0 };
            p.int.push(rec(10, q, 10, 11));
            p.int.push(rec(11, 0, 10, 22));
            m.apply_probe(&p, 6, spike_at + i * 100 * ms);
        }
        let e = m.edge(NetNode::Switch(10), NetNode::Switch(11)).unwrap();
        assert_eq!(e.qlen_history.len(), 40, "window keeps everything inside it");
        let now = spike_at + 39 * 100 * ms;
        assert_eq!(
            e.windowed_max_qlen(now, 10_000 * ms),
            50,
            "the early spike is still visible inside the configured window"
        );

        // And samples that age out of the window are gone.
        let mut p = ProbePayload::new(1, 40, 0);
        p.int.push(rec(10, 0, 10, 11));
        p.int.push(rec(11, 0, 10, 22));
        m.apply_probe(&p, 6, spike_at + 10_001 * ms);
        let e = m.edge(NetNode::Switch(10), NetNode::Switch(11)).unwrap();
        assert!(
            e.qlen_history.iter().all(|(ts, _)| *ts >= 101 * ms),
            "aged-out harvests pruned: {:?}",
            e.qlen_history
        );
    }

    #[test]
    fn eviction_removes_unrefreshed_edges_and_remembers_them() {
        let mut m = NetworkMap::new();
        m.apply_probe(&two_hop_probe(), 6, 32_000_000);
        assert_eq!(m.edge_count(), 3);

        // Within the horizon nothing happens.
        assert!(m.evict_stale(32_000_000 + 1_000_000, 10_000_000_000).is_empty());
        assert_eq!(m.edge_count(), 3);

        // Past the horizon everything learned from that probe dies.
        let later = 32_000_000 + 10_000_000_001;
        let dead = m.evict_stale(later, 10_000_000_000);
        assert_eq!(dead.len(), 3);
        assert_eq!(m.edge_count(), 0);
        assert_eq!(m.switches().count(), 0, "switches with no edges are forgotten");
        assert_eq!(m.dead_edges().count(), 3);
        assert!(m.dead_edges().all(|(_, _, at)| at == later));
        // Hosts stay registered: they are candidates, not telemetry.
        assert_eq!(m.hosts().collect::<Vec<_>>(), vec![1, 6]);
    }

    #[test]
    fn relearned_edge_leaves_the_dead_set() {
        let mut m = NetworkMap::new();
        m.apply_probe(&two_hop_probe(), 6, 32_000_000);
        let later = 32_000_000 + 10_000_000_001;
        m.evict_stale(later, 10_000_000_000);
        assert_eq!(m.dead_edges().count(), 3);

        // The same path comes back: re-learning clears its dead markers.
        m.apply_probe(&two_hop_probe(), 6, later + 1);
        assert_eq!(m.dead_edges().count(), 0);
        assert_eq!(m.edge_count(), 3);
        assert_eq!(m.switches().collect::<Vec<_>>(), vec![10, 11]);
    }

    #[test]
    fn eviction_disconnects_paths() {
        let mut m = NetworkMap::new();
        m.apply_probe(&two_hop_probe(), 6, 32_000_000);
        let cfg = CoreConfig::default();
        assert!(m.path(&cfg, NetNode::Host(6), NetNode::Host(1)).is_some());
        m.evict_stale(32_000_000 + 10_000_000_001, 10_000_000_000);
        assert!(
            m.path(&cfg, NetNode::Host(6), NetNode::Host(1)).is_none(),
            "a dead path must not be traversable"
        );
    }

    #[test]
    fn reverse_fallback_supplies_unprobed_direction() {
        let mut m = NetworkMap::new();
        m.apply_probe(&two_hop_probe(), 6, 32_000_000);
        let cfg = CoreConfig::default();
        // Forward (device→server) direction s11→s10 was never probed.
        let d = m.effective_delay_ns(&cfg, NetNode::Switch(11), NetNode::Switch(10));
        assert_eq!(d, Some(10_000_000), "reverse measurement reused");
        let q =
            m.effective_qlen(&cfg, NetNode::Switch(11), NetNode::Switch(10), 32_000_000);
        assert_eq!(q, 4);

        let strict = CoreConfig {
            direction_fallback: DirectionFallback::Strict,
            ..CoreConfig::default()
        };
        assert_eq!(m.effective_delay_ns(&strict, NetNode::Switch(11), NetNode::Switch(10)), None);
        assert_eq!(
            m.effective_qlen(&strict, NetNode::Switch(11), NetNode::Switch(10), 32_000_000),
            0
        );
    }

    #[test]
    fn stale_qlen_reads_as_empty() {
        let mut m = NetworkMap::new();
        m.apply_probe(&two_hop_probe(), 6, 32_000_000);
        let cfg = CoreConfig::default();
        let fresh = m.effective_qlen(&cfg, NetNode::Switch(10), NetNode::Switch(11), 32_000_000);
        assert_eq!(fresh, 4);
        let later = 32_000_000 + cfg.staleness_ns + 1;
        let stale = m.effective_qlen(&cfg, NetNode::Switch(10), NetNode::Switch(11), later);
        assert_eq!(stale, 0, "stale measurements must not signal congestion");
    }

    #[test]
    fn path_over_learned_graph() {
        let mut m = NetworkMap::new();
        m.apply_probe(&two_hop_probe(), 6, 32_000_000);
        let cfg = CoreConfig::default();
        let p = m.path(&cfg, NetNode::Host(6), NetNode::Host(1)).unwrap();
        assert_eq!(
            p,
            vec![NetNode::Host(6), NetNode::Switch(11), NetNode::Switch(10), NetNode::Host(1)]
        );
        assert_eq!(m.path(&cfg, NetNode::Host(1), NetNode::Host(1)).unwrap().len(), 1);
        assert!(m.path(&cfg, NetNode::Host(1), NetNode::Host(99)).is_none());
    }

    #[test]
    fn empty_probe_is_ignored() {
        let mut m = NetworkMap::new();
        m.apply_probe(&ProbePayload::new(1, 1, 0), 6, 1);
        assert_eq!(m.edge_count(), 0);
        assert_eq!(m.switches().count(), 0);
    }

    #[test]
    fn probes_from_multiple_origins_merge() {
        let mut m = NetworkMap::new();
        m.apply_probe(&two_hop_probe(), 6, 32_000_000);
        // Host 2 probes through switches 12 → 11.
        let mut p = ProbePayload::new(2, 1, 0);
        p.int.push(rec(12, 1, 10, 11));
        p.int.push(rec(11, 2, 10, 22));
        m.apply_probe(&p, 6, 32_000_000);

        assert_eq!(m.hosts().collect::<Vec<_>>(), vec![1, 2, 6]);
        assert_eq!(m.switches().collect::<Vec<_>>(), vec![10, 11, 12]);
        assert!(m.edge(NetNode::Switch(12), NetNode::Switch(11)).is_some());
    }

    /// Two disjoint switch chains host1→host6: 10–11 (fast), 12–13 (slow).
    fn two_route_map() -> NetworkMap {
        let mut m = NetworkMap::new();
        let mut fast = ProbePayload::new(1, 1, 0);
        fast.int.push(rec(10, 0, 5, 11));
        fast.int.push(rec(11, 0, 5, 22));
        m.apply_probe(&fast, 6, 22_000_000);
        let mut slow = ProbePayload::new(1, 2, 0);
        slow.int.push(rec(12, 0, 30, 11));
        slow.int.push(rec(13, 0, 30, 22));
        m.apply_probe(&slow, 6, 70_000_000);
        m
    }

    #[test]
    fn k_paths_first_is_the_shortest_path_and_banning_finds_the_alternate() {
        let m = two_route_map();
        let cfg = CoreConfig::default();
        let (a, b) = (NetNode::Host(1), NetNode::Host(6));
        let ks = m.k_paths(&cfg, a, b, 3);
        assert_eq!(ks.len(), 2, "two disjoint routes exist: {ks:?}");
        assert_eq!(ks[0], m.path(&cfg, a, b).unwrap(), "first k-path is the oracle path");
        assert!(ks[0].contains(&NetNode::Switch(10)), "fast route first: {ks:?}");
        assert!(ks[1].contains(&NetNode::Switch(12)), "banning reveals the slow route: {ks:?}");
    }

    #[test]
    fn k_paths_never_bans_host_attachment_edges() {
        // Single chain: the only route shares the host attachments; k>1
        // must return exactly one path, not sever the hosts.
        let mut m = NetworkMap::new();
        m.apply_probe(&two_hop_probe(), 6, 32_000_000);
        let cfg = CoreConfig::default();
        let ks = m.k_paths(&cfg, NetNode::Host(1), NetNode::Host(6), 4);
        assert_eq!(ks.len(), 1, "the lone interior edge bans out: {ks:?}");
        assert_eq!(ks[0], m.path(&cfg, NetNode::Host(1), NetNode::Host(6)).unwrap());
    }

    #[test]
    fn k_paths_of_one_reduces_to_path() {
        let m = two_route_map();
        let cfg = CoreConfig::default();
        for (a, b) in [(1u32, 6u32), (6, 1)] {
            let ks = m.k_paths(&cfg, NetNode::Host(a), NetNode::Host(b), 1);
            assert_eq!(ks.len(), 1);
            assert_eq!(ks[0], m.path(&cfg, NetNode::Host(a), NetNode::Host(b)).unwrap());
        }
    }

    #[test]
    fn k_paths_self_and_unknown_endpoints() {
        let m = two_route_map();
        let cfg = CoreConfig::default();
        let selfp = m.k_paths(&cfg, NetNode::Host(1), NetNode::Host(1), 3);
        assert_eq!(selfp, vec![vec![NetNode::Host(1)]]);
        assert!(m.k_paths(&cfg, NetNode::Host(1), NetNode::Host(42), 3).is_empty());
    }

    #[test]
    fn dirty_list_dedupes_per_interval_and_drains() {
        let mut m = NetworkMap::new();
        m.apply_probe(&two_hop_probe(), 6, 32_000_000);
        // 3 delay edges + 2 qlen edges, overlapping: 3 distinct edges.
        assert_eq!(m.dirty_count(), 3);
        let mut dirty = Vec::new();
        m.take_dirty_into(&mut dirty);
        assert_eq!(dirty.len(), 3);
        assert_eq!(m.dirty_count(), 0);
        for &id in &dirty {
            assert!(m.edge_by_id(id).is_some(), "dirty ids resolve to live edges");
        }

        // Re-probing the same path re-dirties the same edges once each.
        m.apply_probe(&two_hop_probe(), 6, 64_000_000);
        assert_eq!(m.dirty_count(), 3);
        let mut again = Vec::new();
        m.take_dirty_into(&mut again);
        assert_eq!(dirty, again, "stable ids: the same edges re-report");
    }

    #[test]
    fn edge_ids_are_stable_across_eviction_and_revival() {
        let mut m = NetworkMap::new();
        m.apply_probe(&two_hop_probe(), 6, 32_000_000);
        let mut before = Vec::new();
        m.take_dirty_into(&mut before);
        before.sort_unstable();

        let later = 32_000_000 + 10_000_000_001;
        m.evict_stale(later, 10_000_000_000);
        for &id in &before {
            assert!(m.edge_by_id(id).is_none(), "dead edges resolve to None");
        }

        m.apply_probe(&two_hop_probe(), 6, later + 1);
        let mut after = Vec::new();
        m.take_dirty_into(&mut after);
        after.sort_unstable();
        assert_eq!(before, after, "revived edges keep their interned ids");
        for &id in &after {
            assert!(m.edge_by_id(id).is_some());
        }
    }

    #[test]
    fn interned_lookup_survives_table_growth() {
        // Enough distinct edges to force several lookup-table rebuilds.
        let mut m = NetworkMap::new();
        for i in 0..200u32 {
            let mut p = ProbePayload::new(1 + i % 7, i as u64, 0);
            p.int.push(rec(100 + i, 1, 5, 11));
            p.int.push(rec(500 + i, 2, 5, 22));
            m.apply_probe(&p, 6, 32_000_000 + i as u64);
        }
        // Every learned edge is still addressable and iteration is sorted.
        let keys: Vec<_> = m.edges().map(|(a, b, _)| (a, b)).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "edges() iterates in (from, to) order");
        for (a, b) in keys {
            assert!(m.edge(a, b).is_some());
        }
        assert!(m.edge(NetNode::Host(1), NetNode::Switch(999)).is_none());
    }

    #[test]
    fn delay_ewma_survives_near_max_samples() {
        // Regression: the EWMA blend `(8-w)*delay + w*sample` used to be
        // computed in u64 and wrapped once the smoothed delay passed
        // ~2.6e18 ns, ranking a saturated path as nearly free.
        let mut m = NetworkMap::new();
        let huge = u64::MAX / 2;
        let mk = |seq: u64| {
            let mut p = ProbePayload::new(1, seq, 0);
            p.int.push(IntRecord {
                switch_id: 10,
                ingress_port: 0,
                egress_port: 1,
                max_qlen_pkts: 0,
                qlen_at_probe_pkts: 0,
                link_latency_ns: huge,
                egress_ts_ns: 11_000_000,
            });
            p
        };
        m.apply_probe(&mk(1), 6, 21_000_000);
        m.apply_probe(&mk(2), 6, 22_000_000);
        let e = m.edge(NetNode::Host(1), NetNode::Switch(10)).expect("edge learned");
        assert!(
            e.delay_ns >= huge - 8 && e.delay_ns <= huge,
            "EWMA of two equal huge samples stays at the sample, got {}",
            e.delay_ns
        );
    }
}

impl NetworkMap {
    /// Export the learned graph as Graphviz DOT, annotating each directed
    /// edge with its smoothed delay and current max-queue signal — handy
    /// for eyeballing what the scheduler believes about the network.
    pub fn to_dot(&self, cfg: &CoreConfig, now_ns: u64) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph int_map {\n  rankdir=LR;\n");
        for h in self.hosts() {
            let _ = writeln!(out, "  h{h} [shape=box, label=\"host {h}\"];");
        }
        for s in self.switches() {
            let _ = writeln!(out, "  s{s} [shape=ellipse, label=\"sw {s}\"];");
        }
        let name = |n: NetNode| match n {
            NetNode::Host(h) => format!("h{h}"),
            NetNode::Switch(s) => format!("s{s}"),
        };
        for (a, b, e) in self.edges() {
            let q = e.windowed_max_qlen(now_ns, cfg.qlen_window_ns);
            let style = if q >= 3 { ", color=red, penwidth=2" } else { "" };
            let _ = writeln!(
                out,
                "  {} -> {} [label=\"{:.1}ms q{}\"{}];",
                name(a),
                name(b),
                e.delay_ns as f64 / 1e6,
                q,
                style
            );
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod dot_tests {
    use super::*;
    use int_packet::int::IntRecord;

    #[test]
    fn dot_export_contains_nodes_and_congestion_highlight() {
        let mut m = NetworkMap::new();
        let mut p = ProbePayload::new(1, 1, 0);
        p.int.push(IntRecord {
            switch_id: 10,
            ingress_port: 0,
            egress_port: 1,
            max_qlen_pkts: 9,
            qlen_at_probe_pkts: 4,
            link_latency_ns: 10_000_000,
            egress_ts_ns: 11_000_000,
        });
        m.apply_probe(&p, 6, 21_000_000);

        let dot = m.to_dot(&CoreConfig::default(), 21_000_000);
        assert!(dot.starts_with("digraph int_map {"));
        assert!(dot.contains("h1 [shape=box"));
        assert!(dot.contains("s10 [shape=ellipse"));
        assert!(dot.contains("h1 -> s10"));
        assert!(dot.contains("color=red"), "congested edge highlighted: {dot}");
        assert!(dot.trim_end().ends_with('}'));
    }
}
