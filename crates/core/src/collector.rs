//! The scheduler-side INT collector (paper Fig. 1, step 2).
//!
//! Receives probe payloads, validates them, tracks per-origin sequence
//! continuity (probe loss / reordering), and folds telemetry into the
//! [`NetworkMap`].

use crate::map::NetworkMap;
use int_packet::wire::WireDecode;
use int_packet::{ProbePayload, Result as PacketResult};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-origin probe accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OriginStats {
    /// Probes accepted from this origin.
    pub received: u64,
    /// Highest sequence number seen.
    pub max_seq: u64,
    /// Sequence gaps observed (probes presumed lost in the network).
    pub lost: u64,
    /// Probes that arrived with a lower-than-expected sequence — genuinely
    /// late arrivals, not re-deliveries of the newest probe.
    pub reordered: u64,
    /// Exact re-deliveries of the highest sequence seen (`seq == max_seq`).
    /// Formerly misfiled under `reordered`: a duplicated packet is a
    /// network-duplication signal, not an ordering one.
    pub duplicate: u64,
    /// Receive time of the most recent probe, ns.
    pub last_rx_ns: u64,
}

impl OriginStats {
    /// Fold one accepted probe into the sequence accounting. Shared by the
    /// direct and relayed ingest paths so loss/reordering is counted over
    /// the origin's single sequence stream regardless of which terminal a
    /// probe reached.
    fn note_probe(&mut self, seq: u64, rx_ns: u64) {
        self.received += 1;
        self.last_rx_ns = rx_ns;
        if self.received == 1 {
            self.max_seq = seq;
        } else if seq > self.max_seq {
            // Gap: sequences between max_seq+1 and seq-1 never arrived.
            self.lost += seq - self.max_seq - 1;
            self.max_seq = seq;
        } else if seq == self.max_seq {
            self.duplicate += 1;
        } else {
            self.reordered += 1;
        }
    }
}

/// The INT collector.
#[derive(Debug, Clone, Default)]
pub struct IntCollector {
    map: NetworkMap,
    scheduler_host: u32,
    origins: BTreeMap<u32, OriginStats>,
    parse_errors: u64,
    /// Total probes accepted (direct + relayed). Monotone; lets the
    /// snapshot publisher detect ingest activity that touched only
    /// per-origin accounting (e.g. an empty-record probe refreshing
    /// `last_rx_ns`) without scanning the origin table.
    probes_accepted: u64,
}

impl IntCollector {
    /// Collector running on `scheduler_host`.
    pub fn new(scheduler_host: u32) -> Self {
        let mut map = NetworkMap::new();
        map.register_host(scheduler_host);
        IntCollector {
            map,
            scheduler_host,
            origins: BTreeMap::new(),
            parse_errors: 0,
            probes_accepted: 0,
        }
    }

    /// The learned network map.
    pub fn map(&self) -> &NetworkMap {
        &self.map
    }

    /// Mutable access to the map (host pre-registration).
    pub fn map_mut(&mut self) -> &mut NetworkMap {
        &mut self.map
    }

    /// Host this collector runs on.
    pub fn scheduler_host(&self) -> u32 {
        self.scheduler_host
    }

    /// Per-origin accounting.
    pub fn origin_stats(&self, origin: u32) -> OriginStats {
        self.origins.get(&origin).copied().unwrap_or_default()
    }

    /// All probe origins seen so far.
    pub fn origins(&self) -> impl Iterator<Item = u32> + '_ {
        self.origins.keys().copied()
    }

    /// Per-origin accounting for every origin, in ascending origin order
    /// (snapshot construction).
    pub fn origin_stats_all(&self) -> impl Iterator<Item = (u32, OriginStats)> + '_ {
        self.origins.iter().map(|(&o, st)| (o, *st))
    }

    /// Total probes accepted so far (direct + relayed ingest).
    pub fn probes_accepted(&self) -> u64 {
        self.probes_accepted
    }

    /// Number of probe payloads that failed to parse.
    pub fn parse_errors(&self) -> u64 {
        self.parse_errors
    }

    /// Ingest a raw probe payload (UDP payload bytes as received).
    /// Returns the decoded probe on success.
    pub fn ingest_bytes(&mut self, payload: &[u8], now_ns: u64) -> PacketResult<ProbePayload> {
        match ProbePayload::decode(&mut &payload[..]) {
            Ok(probe) => {
                self.ingest(&probe, now_ns);
                Ok(probe)
            }
            Err(e) => {
                self.parse_errors += 1;
                Err(e)
            }
        }
    }

    /// Ingest a relayed probe: one that terminated at `terminal` (not at
    /// the scheduler) and was forwarded here (all-pairs probing mode).
    /// `rx_ts_ns` is the terminal's receive timestamp.
    pub fn ingest_relayed(&mut self, probe: &ProbePayload, terminal: u32, rx_ts_ns: u64) {
        self.origins.entry(probe.origin_node).or_default().note_probe(probe.seq, rx_ts_ns);
        self.probes_accepted += 1;
        self.map.register_host(terminal);
        self.map.apply_probe(probe, terminal, rx_ts_ns);
    }

    /// Ingest an already-decoded probe.
    pub fn ingest(&mut self, probe: &ProbePayload, now_ns: u64) {
        self.origins.entry(probe.origin_node).or_default().note_probe(probe.seq, now_ns);
        self.probes_accepted += 1;
        self.map.apply_probe(probe, self.scheduler_host, now_ns);
    }

    /// Drain a backlog of decoded probes accumulated over one collection
    /// interval, all stamped with the interval's receive time. Equivalent
    /// to calling [`IntCollector::ingest`] per probe in order; exists so
    /// the publish loop runs once per *batch* instead of once per probe.
    pub fn ingest_batch<'a, I>(&mut self, probes: I, now_ns: u64)
    where
        I: IntoIterator<Item = &'a ProbePayload>,
    {
        for p in probes {
            self.ingest(p, now_ns);
        }
    }

    /// Origins presumed unreachable: they sent probes before but nothing
    /// within `horizon_ns` of `now_ns` (deterministic order).
    pub fn silent_origins(&self, now_ns: u64, horizon_ns: u64) -> Vec<u32> {
        let mut out = Vec::new();
        self.silent_origins_into(now_ns, horizon_ns, &mut out);
        out
    }

    /// [`IntCollector::silent_origins`] into a caller-owned buffer (the
    /// zero-alloc query path). The buffer comes back sorted ascending.
    pub fn silent_origins_into(&self, now_ns: u64, horizon_ns: u64, out: &mut Vec<u32>) {
        out.clear();
        out.extend(
            self.origins
                .iter()
                .filter(|(_, st)| {
                    st.received > 0 && now_ns.saturating_sub(st.last_rx_ns) > horizon_ns
                })
                .map(|(&o, _)| o),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use int_packet::int::IntRecord;
    use int_packet::wire::WireEncode;

    fn probe(origin: u32, seq: u64) -> ProbePayload {
        let mut p = ProbePayload::new(origin, seq, 0);
        p.int.push(IntRecord {
            switch_id: 10,
            ingress_port: 0,
            egress_port: 1,
            max_qlen_pkts: 3,
            qlen_at_probe_pkts: 1,
            link_latency_ns: 10_000_000,
            egress_ts_ns: 11_000_000,
        });
        p
    }

    #[test]
    fn ingest_updates_map_and_stats() {
        let mut c = IntCollector::new(6);
        c.ingest(&probe(1, 0), 21_000_000);
        assert_eq!(c.origin_stats(1).received, 1);
        assert!(c.map().edge_count() > 0);
        assert_eq!(c.origins().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn sequence_gaps_count_as_loss() {
        let mut c = IntCollector::new(6);
        c.ingest(&probe(1, 0), 1);
        c.ingest(&probe(1, 1), 2);
        c.ingest(&probe(1, 5), 3); // 2,3,4 lost
        let st = c.origin_stats(1);
        assert_eq!(st.received, 3);
        assert_eq!(st.lost, 3);
        assert_eq!(st.reordered, 0);
        assert_eq!(st.max_seq, 5);
    }

    #[test]
    fn reordering_detected() {
        let mut c = IntCollector::new(6);
        c.ingest(&probe(1, 3), 1);
        c.ingest(&probe(1, 2), 2);
        assert_eq!(c.origin_stats(1).reordered, 1);
    }

    #[test]
    fn bytes_roundtrip_and_parse_errors() {
        let mut c = IntCollector::new(6);
        let p = probe(2, 7);
        assert_eq!(c.ingest_bytes(&p.to_bytes(), 50_000_000).unwrap(), p);
        assert_eq!(c.origin_stats(2).received, 1);

        assert!(c.ingest_bytes(b"garbage", 1).is_err());
        assert_eq!(c.parse_errors(), 1);
    }

    #[test]
    fn scheduler_host_pre_registered() {
        let c = IntCollector::new(6);
        assert!(c.map().hosts().any(|h| h == 6));
    }

    #[test]
    fn duplicate_seq_counts_as_duplicate_not_lost_or_reordered() {
        let mut c = IntCollector::new(6);
        c.ingest(&probe(1, 5), 1);
        c.ingest(&probe(1, 5), 2);
        let st = c.origin_stats(1);
        assert_eq!(st.received, 2);
        assert_eq!(st.lost, 0, "a duplicate is not a gap");
        assert_eq!(st.duplicate, 1);
        assert_eq!(st.reordered, 0, "an exact re-delivery is not reordering");
        assert_eq!(st.max_seq, 5);
    }

    /// Regression: `seq == max_seq` used to be misfiled under `reordered`.
    /// The two signals must stay distinguishable — a duplicated newest
    /// probe and a genuinely late straggler are different network events.
    #[test]
    fn duplicate_and_late_probes_count_separately() {
        let mut c = IntCollector::new(6);
        c.ingest(&probe(1, 0), 1);
        c.ingest(&probe(1, 10), 2); // gap 1..=9
        c.ingest(&probe(1, 10), 3); // exact duplicate of the newest
        c.ingest(&probe(1, 7), 4); // straggler from inside the gap
        let st = c.origin_stats(1);
        assert_eq!(st.duplicate, 1, "only the re-delivered 10");
        assert_eq!(st.reordered, 1, "only the late 7");
        assert_eq!(st.lost, 9);
        assert_eq!(st.max_seq, 10);
    }

    #[test]
    fn seq_regression_after_gap_does_not_inflate_loss() {
        let mut c = IntCollector::new(6);
        c.ingest(&probe(1, 0), 1);
        c.ingest(&probe(1, 10), 2); // gap of 9
        c.ingest(&probe(1, 3), 3); // one of the "lost" probes shows up late
        let st = c.origin_stats(1);
        assert_eq!(st.lost, 9, "late arrival does not re-count the gap");
        assert_eq!(st.reordered, 1);
        assert_eq!(st.max_seq, 10);
    }

    /// Regression: the relayed path used to skip loss/reordering
    /// accounting entirely. An identical probe stream must produce
    /// identical `OriginStats` whether it arrives directly or via a relay
    /// terminal.
    #[test]
    fn relayed_and_direct_paths_account_identically() {
        let seqs = [0u64, 1, 5, 3, 6, 6, 10];
        let mut direct = IntCollector::new(6);
        let mut relayed = IntCollector::new(6);
        for (i, &s) in seqs.iter().enumerate() {
            let rx = (i as u64 + 1) * 1_000_000;
            direct.ingest(&probe(1, s), rx);
            relayed.ingest_relayed(&probe(1, s), 2, rx);
        }
        let d = direct.origin_stats(1);
        let r = relayed.origin_stats(1);
        assert_eq!(d, r, "relayed accounting must match direct accounting");
        assert_eq!(d.lost, 3 + 3, "gaps 2..=4 and 7..=9");
        assert_eq!(d.reordered, 1, "the late 3");
        assert_eq!(d.duplicate, 1, "the re-delivered 6");
    }

    /// A batch drain is byte-equivalent to per-probe ingest in the same
    /// order with the same timestamp.
    #[test]
    fn ingest_batch_matches_per_probe_ingest() {
        let backlog: Vec<ProbePayload> =
            [(1u32, 0u64), (2, 0), (1, 1), (3, 5), (1, 1)].iter().map(|&(o, s)| probe(o, s)).collect();
        let mut one_by_one = IntCollector::new(6);
        for p in &backlog {
            one_by_one.ingest(p, 7_000_000);
        }
        let mut batched = IntCollector::new(6);
        batched.ingest_batch(&backlog, 7_000_000);

        assert_eq!(batched.probes_accepted(), one_by_one.probes_accepted());
        assert_eq!(
            batched.origin_stats_all().collect::<Vec<_>>(),
            one_by_one.origin_stats_all().collect::<Vec<_>>()
        );
        assert_eq!(batched.map().edge_count(), one_by_one.map().edge_count());
        assert_eq!(
            batched.map().metrics_generation(),
            one_by_one.map().metrics_generation()
        );
    }

    /// Relayed probes keep the first-probe special case: a large initial
    /// sequence (collector restart, origin long-lived) is a baseline, not
    /// a thousand lost probes.
    #[test]
    fn relayed_first_probe_sets_baseline_without_loss() {
        let mut c = IntCollector::new(6);
        c.ingest_relayed(&probe(1, 1000), 2, 1);
        let st = c.origin_stats(1);
        assert_eq!(st.lost, 0);
        assert_eq!(st.max_seq, 1000);
    }

    #[test]
    fn silent_origins_detected_and_recover() {
        let ms = 1_000_000u64;
        let mut c = IntCollector::new(6);
        c.ingest(&probe(1, 0), 100 * ms);
        c.ingest(&probe(2, 0), 3_000 * ms);
        assert!(c.silent_origins(3_100 * ms, 1_000 * ms).contains(&1));
        assert!(!c.silent_origins(3_100 * ms, 1_000 * ms).contains(&2));
        // Origin 1 speaks again: silence clears.
        c.ingest(&probe(1, 1), 3_200 * ms);
        assert!(c.silent_origins(3_300 * ms, 1_000 * ms).is_empty());
        // An origin never heard from is not "silent" — it is unknown.
        assert!(!c.silent_origins(u64::MAX, 0).contains(&99));
    }
}
