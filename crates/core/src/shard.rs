//! Sharded, snapshot-based rank serving.
//!
//! [`ShardedScheduler`] splits the scheduler control plane in two:
//!
//! * an **ingest half** — the wrapped [`SchedulerCore`], which keeps
//!   mutating the live map exactly as before (probe harvest, host
//!   registration, eviction), plus a publisher that freezes the map
//!   into an immutable [`SchedSnapshot`] whenever a generation moved;
//! * a **read half** — N worker shards, each owning a private
//!   [`SnapshotScratch`], serving `rank_detailed` queries against the
//!   current snapshot through an [`EpochSlot`]. Readers never take a
//!   lock the publisher holds while it builds (the build happens
//!   entirely outside the slot; publication is a store), and the
//!   publisher never waits for readers (shards clone the `Arc` out of
//!   the slot and drop it when done).
//!
//! **Determinism.** Queries are admitted in batches. Every query in a
//! batch is evaluated against the *same* snapshot (the one current when
//! `serve_batch` is entered) and carries a pre-assigned global slot
//! number: its absolute position in the scheduler's query stream. The
//! batch is split into contiguous chunks of `ceil(len / workers)` — the
//! same discipline as `experiments::par` — so slot numbers, and
//! therefore results, are independent of the worker count: worker
//! boundaries move, slot assignments don't. Because snapshot evaluation
//! is a pure function of `(snapshot, query, slot)`, the outcome vector
//! is byte-identical for 1, 2, or 8 shards, and equal to the
//! single-threaded oracle evaluated at the same map state.

use crate::config::CoreConfig;
use crate::rank::{Policy, RankOutcome, RankedServer, StaticDistances};
use crate::sched::SchedulerCore;
use crate::snapshot::{PublishStats, SchedSnapshot, SnapshotPublisher, SnapshotScratch};
use int_packet::ProbePayload;
use int_obs::{Labels, MetricsRegistry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One admitted rank query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankQuery {
    /// The requesting edge device's host id.
    pub requester: u32,
    /// Ranking policy to apply.
    pub policy: Policy,
    /// Query time on the collector clock, ns.
    pub now_ns: u64,
}

/// The publication point between the ingest half and the read shards.
///
/// The publisher stores a new snapshot `Arc` and then advances the
/// epoch counter with `Release`; readers check the counter with
/// `Acquire` and only touch the slot's mutex when the epoch moved, so
/// the steady-state read path is one atomic load plus an `Arc` the
/// shard already holds. The mutex is held only for the duration of an
/// `Arc` clone or store — never while building a snapshot or serving a
/// query — so neither side can block the other for meaningful time.
#[derive(Debug, Default)]
pub struct EpochSlot {
    /// Epoch of the snapshot currently in `slot` (0 = none published).
    epoch: AtomicU64,
    slot: Mutex<Option<Arc<SchedSnapshot>>>,
}

impl EpochSlot {
    /// An empty slot (no snapshot published yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Publish `snap` as the current snapshot.
    pub fn publish(&self, snap: Arc<SchedSnapshot>) {
        let epoch = snap.epoch();
        *self.slot.lock().expect("epoch slot poisoned") = Some(snap);
        self.epoch.store(epoch, Ordering::Release);
    }

    /// Epoch of the currently published snapshot (0 if none). This is a
    /// fast-path hint: a reader holding a snapshot of this epoch knows
    /// it is (momentarily) current without touching the slot.
    pub fn current_epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The current snapshot, refreshing `cached` only if the epoch moved
    /// past it. Returns `false` while nothing has been published.
    pub fn refresh(&self, cached: &mut Option<Arc<SchedSnapshot>>) -> bool {
        let current = self.epoch.load(Ordering::Acquire);
        if current == 0 {
            return false;
        }
        match cached {
            Some(s) if s.epoch() >= current => true,
            _ => {
                *cached = self.slot.lock().expect("epoch slot poisoned").clone();
                cached.is_some()
            }
        }
    }

    /// The current snapshot, if any (allocating convenience wrapper).
    pub fn current(&self) -> Option<Arc<SchedSnapshot>> {
        let mut c = None;
        self.refresh(&mut c);
        c
    }
}

/// One worker shard: a cached snapshot `Arc` plus private scratch.
#[derive(Debug, Default)]
struct RankShard {
    scratch: SnapshotScratch,
    cached: Option<Arc<SchedSnapshot>>,
    served: u64,
}

/// The sharded scheduler control plane: ingest + publish + N read shards.
pub struct ShardedScheduler {
    core: SchedulerCore,
    /// Epoch publisher: full CSR builds on topology change, O(dirty)
    /// incremental patches otherwise.
    publisher: SnapshotPublisher,
    slot: Arc<EpochSlot>,
    shards: Vec<Mutex<RankShard>>,
    seed: u64,
    epoch: u64,
    /// `(topology_generation, metrics_generation, probes_accepted)` of the
    /// last published snapshot — publishing is keyed on this triple.
    published_key: Option<(u64, u64, u64)>,
    /// Global query counter: the next query's slot number.
    queries_total: u64,
    metrics: MetricsRegistry,
}

impl ShardedScheduler {
    /// A sharded scheduler on `scheduler_host` with `shards` read workers.
    /// `shards` is clamped to ≥1; pass [`default_shard_count`] to honour
    /// the `INT_SCHED_SHARDS` override.
    pub fn new(
        scheduler_host: u32,
        cfg: impl Into<Arc<CoreConfig>>,
        distances: impl Into<Arc<StaticDistances>>,
        seed: u64,
        shards: usize,
    ) -> Self {
        let core = SchedulerCore::new(scheduler_host, cfg, distances, seed);
        let n = shards.max(1);
        ShardedScheduler {
            core,
            publisher: SnapshotPublisher::new(),
            slot: Arc::new(EpochSlot::new()),
            shards: (0..n).map(|_| Mutex::new(RankShard::default())).collect(),
            seed,
            epoch: 0,
            published_key: None,
            queries_total: 0,
            metrics: MetricsRegistry::new(),
        }
    }

    /// The wrapped ingest half (probe ingest, host registration, audit).
    pub fn core(&self) -> &SchedulerCore {
        &self.core
    }

    /// Mutable access to the ingest half. Mutations become visible to
    /// the read shards at the next [`ShardedScheduler::advance`].
    pub fn core_mut(&mut self) -> &mut SchedulerCore {
        &mut self.core
    }

    /// Number of read shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Epoch of the most recently published snapshot (0 = none yet).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Total queries admitted so far (the next query's slot number).
    pub fn queries_total(&self) -> u64 {
        self.queries_total
    }

    /// The publication point, for external readers (e.g. a churn test's
    /// concurrent query threads) that want to follow epochs themselves.
    pub fn epoch_slot(&self) -> Arc<EpochSlot> {
        Arc::clone(&self.slot)
    }

    /// Snapshot-publish counters and per-shard serving histograms.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Mutable metrics access (enable/disable, export merging).
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    /// Run eviction at `now_ns` and publish a fresh snapshot if anything
    /// about the map changed since the last publish. Returns `true` if a
    /// new epoch was published.
    ///
    /// The publish key is the `(topology_generation, metrics_generation,
    /// probes_accepted)` triple: topology or metrics movement obviously
    /// invalidates the frozen state, and `probes_accepted` catches
    /// ingest that only touched per-origin accounting (a probe with no
    /// records still refreshes `last_rx_ns`, which feeds the silence
    /// exclusion).
    pub fn advance(&mut self, now_ns: u64) -> bool {
        let horizon = self.core.config().eviction_horizon_ns;
        self.core.collector_mut().map_mut().evict_stale(now_ns, horizon);
        let c = self.core.collector();
        let key = (
            c.map().topology_generation(),
            c.map().metrics_generation(),
            c.probes_accepted(),
        );
        if self.published_key == Some(key) {
            return false;
        }
        self.epoch += 1;
        let cfg = self.core.config_arc();
        let distances = self.core.distances_arc();
        let snap = self.publisher.publish(
            self.core.collector_mut(),
            &cfg,
            &distances,
            self.seed,
            self.epoch,
            now_ns,
        );
        self.slot.publish(snap);
        self.published_key = Some(key);
        self.metrics.counter_inc("sched_snapshot_publishes", Labels::none());
        self.metrics.gauge_set("sched_epoch", Labels::none(), self.epoch as i64, now_ns);
        true
    }

    /// Drain a probe backlog into the collector and publish (at most)
    /// one epoch covering all of it — the batched ingest entry point for
    /// epoch-paced scenarios, instead of interleaving one publish per
    /// probe. Returns `true` if a new epoch was published.
    pub fn ingest_batch<'a, I>(&mut self, probes: I, now_ns: u64) -> bool
    where
        I: IntoIterator<Item = &'a ProbePayload>,
    {
        self.core.collector_mut().ingest_batch(probes, now_ns);
        self.advance(now_ns)
    }

    /// Full vs incremental publish counters.
    pub fn publish_stats(&self) -> PublishStats {
        self.publisher.stats()
    }

    /// Force the publisher's incremental path on or off (benches, A/B
    /// smokes); normally governed by `INT_SNAP_INCREMENTAL`.
    pub fn set_incremental_publish(&mut self, on: bool) {
        self.publisher.set_incremental(on);
    }

    /// Serve a batch of queries against the current snapshot, one
    /// outcome per query (same order). With no snapshot published yet
    /// every outcome is empty — call [`ShardedScheduler::advance`]
    /// first.
    ///
    /// The batch is split into contiguous chunks of `ceil(len / n)` and
    /// each chunk is served by one shard on its own thread (serially
    /// when one shard suffices). Query *i* carries global slot
    /// `queries_total + i` regardless of which shard serves it, so the
    /// outcome vector is identical for any shard count.
    pub fn serve_batch(&mut self, queries: &[RankQuery], out: &mut Vec<RankOutcome>) {
        out.resize(queries.len(), RankOutcome::default());
        if queries.is_empty() {
            return;
        }
        let tag_base = self.queries_total;
        self.queries_total += queries.len() as u64;
        let n = self.shards.len().min(queries.len());
        let chunk = queries.len().div_ceil(n);

        if n <= 1 {
            serve_chunk(&self.slot, &self.shards[0], queries, out, tag_base);
        } else {
            std::thread::scope(|scope| {
                let slot = &self.slot;
                let shards = &self.shards;
                for (i, (qs, os)) in
                    queries.chunks(chunk).zip(out.chunks_mut(chunk)).enumerate()
                {
                    let base = tag_base + (i * chunk) as u64;
                    scope.spawn(move || serve_chunk(slot, &shards[i], qs, os, base));
                }
            });
        }

        if self.metrics.enabled() {
            for (i, shard) in self.shards.iter().enumerate() {
                let served = shard.lock().expect("shard poisoned").served;
                self.metrics.gauge_set(
                    "shard_queries_served",
                    Labels::one("shard", i as u64),
                    served as i64,
                    tag_base,
                );
            }
            self.metrics.histogram_record(
                "sched_batch_size",
                Labels::none(),
                queries.len() as u64,
            );
        }
    }

    /// Serve one query (slot-assigned, counted). Convenience wrapper over
    /// a one-element batch, without the thread machinery.
    pub fn serve_one(&mut self, query: RankQuery) -> RankOutcome {
        let tag = self.queries_total;
        self.queries_total += 1;
        let mut out = RankOutcome::default();
        let mut shard = self.shards[0].lock().expect("shard poisoned");
        let RankShard { scratch, cached, served } = &mut *shard;
        if self.slot.refresh(cached) {
            let snap = cached.as_ref().expect("refresh returned true");
            snap.rank_detailed_into(
                scratch,
                query.requester,
                query.policy,
                query.now_ns,
                tag,
                &mut out,
            );
            *served += 1;
        }
        out
    }

    /// First-ranked host for `requester` under the core's default policy
    /// — the sharded analogue of `SchedulerCore::handle_request`.
    pub fn handle_request(&mut self, requester: u32, now_ns: u64) -> Option<RankedServer> {
        let policy = self.core.default_policy();
        let out = self.serve_one(RankQuery { requester, policy, now_ns });
        out.ranked.first().copied()
    }
}

/// Serve a contiguous chunk on one shard. `tag_base` is the global slot
/// number of `queries[0]`.
fn serve_chunk(
    slot: &EpochSlot,
    shard: &Mutex<RankShard>,
    queries: &[RankQuery],
    out: &mut [RankOutcome],
    tag_base: u64,
) {
    let mut shard = shard.lock().expect("shard poisoned");
    let RankShard { scratch, cached, served } = &mut *shard;
    if !slot.refresh(cached) {
        return; // nothing published yet; outcomes stay empty
    }
    let snap = cached.as_ref().expect("refresh returned true");
    for (j, (q, o)) in queries.iter().zip(out.iter_mut()).enumerate() {
        snap.rank_detailed_into(scratch, q.requester, q.policy, q.now_ns, tag_base + j as u64, o);
    }
    *served += queries.len() as u64;
}

/// Number of read shards to use: the `INT_SCHED_SHARDS` environment
/// variable if set (clamped to ≥1), else the machine's available
/// parallelism.
pub fn default_shard_count() -> usize {
    if let Ok(v) = std::env::var("INT_SCHED_SHARDS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CoreConfig;
    use int_packet::int::IntRecord;
    use int_packet::ProbePayload;

    fn rec(switch_id: u32, maxq: u32, ts_ms: u64) -> IntRecord {
        IntRecord {
            switch_id,
            ingress_port: 0,
            egress_port: 1,
            max_qlen_pkts: maxq,
            qlen_at_probe_pkts: maxq / 2,
            link_latency_ns: 10_000_000,
            egress_ts_ns: ts_ms * 1_000_000,
        }
    }

    fn probe(origin: u32, seq: u64, chain: &[(u32, u32)]) -> ProbePayload {
        let mut p = ProbePayload::new(origin, seq, 0);
        for (i, &(sw, q)) in chain.iter().enumerate() {
            p.int.push(rec(sw, q, (i as u64 + 1) * 11));
        }
        p
    }

    fn sharded(n: usize) -> ShardedScheduler {
        let mut s = ShardedScheduler::new(
            6,
            CoreConfig::default(),
            StaticDistances::new(),
            42,
            n,
        );
        s.core_mut().collector_mut().ingest(&probe(1, 1, &[(10, 20), (11, 0)]), 32_000_000);
        s.core_mut().collector_mut().ingest(&probe(2, 1, &[(12, 0), (11, 0)]), 32_000_000);
        s
    }

    fn queries(count: usize, now: u64) -> Vec<RankQuery> {
        (0..count)
            .map(|i| RankQuery {
                requester: 6,
                policy: match i % 3 {
                    0 => Policy::IntDelay,
                    1 => Policy::IntBandwidth,
                    _ => Policy::Nearest,
                },
                now_ns: now + (i as u64) * 1_000,
            })
            .collect()
    }

    #[test]
    fn advance_publishes_only_on_change() {
        let mut s = sharded(2);
        assert!(s.advance(32_000_000), "first advance publishes");
        assert_eq!(s.epoch(), 1);
        assert!(!s.advance(33_000_000), "no ingest, no new epoch");
        s.core_mut().collector_mut().ingest(&probe(1, 2, &[(10, 5), (11, 0)]), 34_000_000);
        assert!(s.advance(34_000_000), "new probe forces a publish");
        assert_eq!(s.epoch(), 2);
    }

    #[test]
    fn empty_record_probe_still_publishes() {
        // A probe with no INT records moves neither generation, but it
        // refreshes the origin's last_rx_ns — silence exclusion depends
        // on it, so it must reach the snapshot.
        let mut s = sharded(1);
        s.advance(32_000_000);
        let before = s.epoch();
        s.core_mut().collector_mut().ingest(&ProbePayload::new(1, 9, 0), 35_000_000);
        assert!(s.advance(35_000_000));
        assert_eq!(s.epoch(), before + 1);
    }

    #[test]
    fn batch_results_match_oracle_and_are_shard_count_invariant() {
        let now = 32_000_000;
        let qs = queries(64, now);

        // Oracle: the plain single-threaded core at the same map state.
        let mut oracle = sharded(1);
        let want: Vec<RankOutcome> = qs
            .iter()
            .map(|q| oracle.core_mut().rank_detailed_with(q.requester, q.policy, q.now_ns))
            .collect();

        let mut baseline: Option<Vec<RankOutcome>> = None;
        for n in [1usize, 2, 3, 8] {
            let mut s = sharded(n);
            s.advance(now);
            let mut got = Vec::new();
            s.serve_batch(&qs, &mut got);
            assert_eq!(got, want, "shards={n} vs oracle");
            match &baseline {
                None => baseline = Some(got),
                Some(b) => assert_eq!(&got, b, "shards={n} vs shards=1"),
            }
        }
    }

    #[test]
    fn slot_numbers_survive_multiple_batches() {
        let mut s = sharded(2);
        s.advance(32_000_000);
        let qs = queries(10, 32_000_000);
        let mut out = Vec::new();
        s.serve_batch(&qs, &mut out);
        assert_eq!(s.queries_total(), 10);
        s.serve_batch(&qs[..3], &mut out);
        assert_eq!(out.len(), 3);
        assert_eq!(s.queries_total(), 13);
    }

    #[test]
    fn serve_before_publish_yields_empty_outcomes() {
        let mut s = sharded(2);
        let qs = queries(4, 32_000_000);
        let mut out = Vec::new();
        s.serve_batch(&qs, &mut out);
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(|o| o.ranked.is_empty() && o.excluded.is_empty()));
        assert!(s.handle_request(6, 32_000_000).is_none());
    }

    #[test]
    fn handle_request_matches_core_after_publish() {
        let mut s = sharded(2);
        s.advance(32_000_000);
        let got = s.handle_request(6, 32_000_000).expect("publish happened");
        let want = s.core_mut().rank_with(6, Policy::IntDelay, 32_000_000)[0];
        assert_eq!(got, want);
    }

    #[test]
    fn publish_metrics_exported() {
        let mut s = sharded(2);
        s.metrics_mut().set_enabled(true);
        s.advance(32_000_000);
        s.core_mut().collector_mut().ingest(&probe(1, 2, &[(10, 1), (11, 0)]), 33_000_000);
        s.advance(33_000_000);
        assert_eq!(s.metrics().counter("sched_snapshot_publishes", Labels::none()), 2);
        assert_eq!(s.metrics().gauge("sched_epoch", Labels::none()), Some(2));
        let mut out = Vec::new();
        s.serve_batch(&queries(8, 33_000_000), &mut out);
        assert_eq!(
            s.metrics().gauge("shard_queries_served", Labels::one("shard", 0)),
            Some(4)
        );
        assert_eq!(
            s.metrics().gauge("shard_queries_served", Labels::one("shard", 1)),
            Some(4)
        );
    }

    #[test]
    fn epoch_slot_refresh_is_idempotent_and_epoch_keyed() {
        let s = {
            let mut s = sharded(1);
            s.advance(32_000_000);
            s
        };
        let slot = s.epoch_slot();
        assert_eq!(slot.current_epoch(), 1);
        let mut cached = None;
        assert!(slot.refresh(&mut cached));
        let first = Arc::clone(cached.as_ref().unwrap());
        assert!(slot.refresh(&mut cached), "second refresh is a no-op");
        assert!(Arc::ptr_eq(&first, cached.as_ref().unwrap()));
    }
}
