//! Data-driven calibration of the conversion factor *k* (paper §III-C
//! leaves "automation and fine-tuning" of k as future work — implemented
//! here as an extension).
//!
//! The idea: the scheduler can observe `(max queue length, measured extra
//! delay)` pairs — e.g. from RTT probes or from comparing INT link
//! latencies under load against their uncongested baseline — and fit
//! `extra_delay ≈ k · qlen` by least squares through the origin.

use serde::{Deserialize, Serialize};

/// Online least-squares fit of `delay = k · qlen` (regression through the
/// origin, so an empty queue always predicts zero queuing delay).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct KFactorTuner {
    sum_qq: f64,
    sum_qd: f64,
    samples: u64,
}

impl KFactorTuner {
    /// Fresh tuner with no samples.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an observation: a queue of `qlen` packets coincided with
    /// `extra_delay_ns` of queuing delay.
    pub fn observe(&mut self, qlen: u32, extra_delay_ns: u64) {
        let q = qlen as f64;
        self.sum_qq += q * q;
        self.sum_qd += q * extra_delay_ns as f64;
        self.samples += 1;
    }

    /// Number of observations folded in.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The fitted k in ns/packet, or `None` before any informative sample
    /// (all-zero queues carry no slope information).
    pub fn k_ns_per_pkt(&self) -> Option<u64> {
        if self.sum_qq <= 0.0 {
            return None;
        }
        let k = self.sum_qd / self.sum_qq;
        if !k.is_finite() || k < 0.0 {
            return None;
        }
        Some(k.round() as u64)
    }

    /// The fitted k, falling back to `default_ns` (typically the paper's
    /// 20 ms) until enough data arrived.
    pub fn k_or(&self, default_ns: u64, min_samples: u64) -> u64 {
        if self.samples >= min_samples {
            self.k_ns_per_pkt().unwrap_or(default_ns)
        } else {
            default_ns
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_linear_data_recovers_k() {
        let mut t = KFactorTuner::new();
        for q in 1..=30u32 {
            t.observe(q, q as u64 * 5_000_000); // true k = 5 ms/pkt
        }
        assert_eq!(t.k_ns_per_pkt(), Some(5_000_000));
        assert_eq!(t.samples(), 30);
    }

    #[test]
    fn noisy_data_recovers_k_approximately() {
        let mut t = KFactorTuner::new();
        // Deterministic ±10% "noise" via alternating signs.
        for q in 1..=100u32 {
            let noise = if q % 2 == 0 { 1.1 } else { 0.9 };
            t.observe(q, (q as f64 * 8_000_000.0 * noise) as u64);
        }
        let k = t.k_ns_per_pkt().unwrap();
        assert!((7_500_000..8_500_000).contains(&k), "{k}");
    }

    #[test]
    fn zero_queues_are_uninformative() {
        let mut t = KFactorTuner::new();
        for _ in 0..10 {
            t.observe(0, 0);
        }
        assert_eq!(t.k_ns_per_pkt(), None);
        assert_eq!(t.k_or(20_000_000, 1), 20_000_000);
    }

    #[test]
    fn k_or_respects_min_samples() {
        let mut t = KFactorTuner::new();
        t.observe(10, 100_000_000); // k would be 10 ms
        assert_eq!(t.k_or(20_000_000, 5), 20_000_000, "too few samples → default");
        for _ in 0..5 {
            t.observe(10, 100_000_000);
        }
        assert_eq!(t.k_or(20_000_000, 5), 10_000_000);
    }
}
