//! Deterministic metrics registry: counters, gauges and histograms keyed
//! by a `'static` name plus a small label set, timestamped in **sim
//! time** (never wall clock), owned per instrumented component (one per
//! `Simulator`) — no global state, no interior mutability.
//!
//! Determinism rules (DESIGN.md §5.3):
//! * values are integers only — no float accumulation order to worry
//!   about;
//! * storage is a `BTreeMap` so the JSON snapshot iterates in one fixed
//!   order regardless of insertion order;
//! * a **disabled** registry (the default) returns from every `record`
//!   call after a single branch, so the hot path of an uninstrumented
//!   simulation pays ~one predictable branch per event.

use crate::json::JsonBuf;
use std::collections::BTreeMap;

/// Up to two `(key, value)` integer labels attached to a series.
///
/// Two is enough for every site in this workspace (`node` + `port`);
/// keeping the set inline and `Copy` means building a key allocates
/// nothing. Label *keys* are `'static` by construction so a series name
/// can never be built from runtime strings (another determinism rule —
/// and it keeps the record path allocation-free).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct Labels {
    labels: [Option<(&'static str, u64)>; 2],
}

impl Labels {
    /// No labels.
    pub const fn none() -> Self {
        Self { labels: [None, None] }
    }

    /// One label.
    pub const fn one(k: &'static str, v: u64) -> Self {
        Self { labels: [Some((k, v)), None] }
    }

    /// Two labels.
    pub const fn two(k1: &'static str, v1: u64, k2: &'static str, v2: u64) -> Self {
        Self { labels: [Some((k1, v1)), Some((k2, v2))] }
    }

    /// Render as `{k=v,k=v}`, or the empty string when unlabelled.
    fn suffix(&self) -> String {
        let mut s = String::new();
        for (k, v) in self.labels.iter().flatten() {
            s.push(if s.is_empty() { '{' } else { ',' });
            s.push_str(k);
            s.push('=');
            s.push_str(&v.to_string());
        }
        if !s.is_empty() {
            s.push('}');
        }
        s
    }
}

type Key = (&'static str, Labels);

/// A gauge sample: last value and the sim time it was set.
#[derive(Debug, Clone, Copy)]
struct Gauge {
    value: i64,
    at_ns: u64,
}

/// Power-of-two bucketed histogram (bucket `i` counts values whose
/// bit-length is `i`, i.e. `0`, `1`, `2–3`, `4–7`, …). Coarse, but
/// integer-exact and fixed-shape, which is what the determinism
/// guarantee needs.
#[derive(Debug, Clone)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; 65],
}

impl Default for Histogram {
    fn default() -> Self {
        Self { count: 0, sum: 0, min: 0, max: 0, buckets: [0; 65] }
    }
}

impl Histogram {
    fn record(&mut self, v: u64) {
        if self.count == 0 || v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(v);
        let b = &mut self.buckets[(64 - v.leading_zeros()) as usize];
        *b = b.saturating_add(1);
    }

    /// Fold another histogram into this one (fieldwise: counts and
    /// buckets add, min/max widen, sum saturates). Exact regardless of
    /// merge order, which is what lets per-domain registries reproduce
    /// the single-loop registry byte-for-byte.
    fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 || other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b = b.saturating_add(*o);
        }
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }
}

/// The registry. One per instrumented component; dropped with it.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    enabled: bool,
    counters: BTreeMap<Key, u64>,
    gauges: BTreeMap<Key, Gauge>,
    histograms: BTreeMap<Key, Histogram>,
}

impl MetricsRegistry {
    /// A disabled registry: every record call is a single branch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enable or disable recording. Series recorded so far are kept.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Is the registry recording?
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Add `delta` to a counter.
    #[inline]
    pub fn counter_add(&mut self, name: &'static str, labels: Labels, delta: u64) {
        if !self.enabled {
            return;
        }
        let c = self.counters.entry((name, labels)).or_insert(0);
        *c = c.saturating_add(delta);
    }

    /// Increment a counter by one.
    #[inline]
    pub fn counter_inc(&mut self, name: &'static str, labels: Labels) {
        self.counter_add(name, labels, 1);
    }

    /// Set a gauge to `value` at sim time `at_ns`.
    #[inline]
    pub fn gauge_set(&mut self, name: &'static str, labels: Labels, value: i64, at_ns: u64) {
        if !self.enabled {
            return;
        }
        self.gauges.insert((name, labels), Gauge { value, at_ns });
    }

    /// Record one histogram observation.
    #[inline]
    pub fn histogram_record(&mut self, name: &'static str, labels: Labels, value: u64) {
        if !self.enabled {
            return;
        }
        self.histograms.entry((name, labels)).or_default().record(value);
    }

    /// Current value of a counter (0 when never recorded).
    pub fn counter(&self, name: &'static str, labels: Labels) -> u64 {
        self.counters.get(&(name, labels)).copied().unwrap_or(0)
    }

    /// Current value of a gauge.
    pub fn gauge(&self, name: &'static str, labels: Labels) -> Option<i64> {
        self.gauges.get(&(name, labels)).map(|g| g.value)
    }

    /// Histogram for a series, if any observation was recorded.
    pub fn histogram(&self, name: &'static str, labels: Labels) -> Option<&Histogram> {
        self.histograms.get(&(name, labels))
    }

    /// Number of live series across all kinds.
    pub fn series(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    /// Fold another registry's series into this one: counters add
    /// (saturating), histograms merge fieldwise, and a gauge keeps the
    /// sample with the larger `at_ns` (on a tie, the already-held one).
    ///
    /// Counter and histogram merging is exact and order-independent, so
    /// per-domain registries folded in any order reproduce the registry
    /// a single event loop would have built. Gauge merging is only
    /// well-defined when at most one source writes each gauge series
    /// (true in this workspace: the engine records no gauges).
    ///
    /// Aggregation ignores the `enabled` flags — a disabled accumulator
    /// can collect from enabled sources.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            let c = self.counters.entry(*k).or_insert(0);
            *c = c.saturating_add(*v);
        }
        for (k, g) in &other.gauges {
            match self.gauges.get(k) {
                Some(held) if held.at_ns >= g.at_ns => {}
                _ => {
                    self.gauges.insert(*k, *g);
                }
            }
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(*k).or_default().merge(h);
        }
    }

    /// Deterministic JSON snapshot.
    ///
    /// Series keys flatten to `name{k=v,k=v}`; kinds are grouped under
    /// `"counters"` / `"gauges"` / `"histograms"`; everything iterates
    /// `BTreeMap` order, so two registries holding the same data render
    /// byte-identically.
    pub fn snapshot_json(&self) -> String {
        let mut j = JsonBuf::new();
        self.snapshot_into(&mut j);
        j.finish()
    }

    /// Render the snapshot as the next value in an existing [`JsonBuf`]
    /// — the embedding hook the streaming epoch writer uses to put a
    /// metrics snapshot inside each epoch line without an intermediate
    /// `String` per epoch.
    pub fn snapshot_into(&self, j: &mut JsonBuf) {
        j.obj_open();
        j.key("counters").obj_open();
        for ((name, labels), v) in &self.counters {
            j.key(&format!("{name}{}", labels.suffix())).u64(*v);
        }
        j.obj_close();
        j.key("gauges").obj_open();
        for ((name, labels), g) in &self.gauges {
            j.key(&format!("{name}{}", labels.suffix()));
            j.obj_open();
            j.key("value").i64(g.value);
            j.key("at_ns").u64(g.at_ns);
            j.obj_close();
        }
        j.obj_close();
        j.key("histograms").obj_open();
        for ((name, labels), h) in &self.histograms {
            j.key(&format!("{name}{}", labels.suffix()));
            j.obj_open();
            j.key("count").u64(h.count);
            j.key("sum").u64(h.sum);
            j.key("min").u64(h.min);
            j.key("max").u64(h.max);
            j.key("log2_buckets").obj_open();
            for (i, n) in h.buckets.iter().enumerate() {
                if *n > 0 {
                    j.key(&i.to_string()).u64(*n);
                }
            }
            j.obj_close();
            j.obj_close();
        }
        j.obj_close();
        j.obj_close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let mut m = MetricsRegistry::new();
        m.counter_inc("x", Labels::none());
        m.gauge_set("g", Labels::none(), 5, 1);
        m.histogram_record("h", Labels::none(), 9);
        assert_eq!(m.series(), 0);
        assert_eq!(m.counter("x", Labels::none()), 0);
    }

    #[test]
    fn counters_gauges_histograms_round_trip() {
        let mut m = MetricsRegistry::new();
        m.set_enabled(true);
        m.counter_add("frames", Labels::one("node", 3), 2);
        m.counter_inc("frames", Labels::one("node", 3));
        m.gauge_set("depth", Labels::two("node", 1, "port", 0), -4, 77);
        m.histogram_record("qlen", Labels::none(), 0);
        m.histogram_record("qlen", Labels::none(), 7);
        assert_eq!(m.counter("frames", Labels::one("node", 3)), 3);
        assert_eq!(m.gauge("depth", Labels::two("node", 1, "port", 0)), Some(-4));
        let h = m.histogram("qlen", Labels::none()).unwrap();
        assert_eq!((h.count(), h.sum(), h.max()), (2, 7, 7));
    }

    #[test]
    fn snapshot_is_order_independent() {
        let build = |order_flip: bool| {
            let mut m = MetricsRegistry::new();
            m.set_enabled(true);
            let keys = if order_flip { ["b", "a"] } else { ["a", "b"] };
            for k in keys {
                m.counter_inc(if k == "a" { "a" } else { "b" }, Labels::none());
            }
            m.snapshot_json()
        };
        assert_eq!(build(false), build(true));
        assert_eq!(
            build(false),
            r#"{"counters":{"a":1,"b":1},"gauges":{},"histograms":{}}"#
        );
    }

    #[test]
    fn label_suffix_renders_in_key() {
        let mut m = MetricsRegistry::new();
        m.set_enabled(true);
        m.counter_inc("drops", Labels::two("node", 2, "port", 1));
        assert!(m.snapshot_json().contains(r#""drops{node=2,port=1}":1"#));
    }

    #[test]
    fn counter_saturates_at_u64_max() {
        // Satellite audit: giant-run counters must saturate, not wrap or
        // panic, at the u64 boundary.
        let mut m = MetricsRegistry::new();
        m.set_enabled(true);
        m.counter_add("big", Labels::none(), u64::MAX - 1);
        m.counter_add("big", Labels::none(), 5);
        assert_eq!(m.counter("big", Labels::none()), u64::MAX);
        m.counter_inc("big", Labels::none());
        assert_eq!(m.counter("big", Labels::none()), u64::MAX);
    }

    #[test]
    fn histogram_boundary_values_round_trip() {
        let mut m = MetricsRegistry::new();
        m.set_enabled(true);
        m.histogram_record("h", Labels::none(), u64::MAX);
        m.histogram_record("h", Labels::none(), u64::MAX);
        let h = m.histogram("h", Labels::none()).unwrap();
        assert_eq!((h.count(), h.min(), h.max()), (2, u64::MAX, u64::MAX));
        assert_eq!(h.sum(), u64::MAX, "sum saturates instead of wrapping");
    }

    #[test]
    fn merged_shards_render_like_one_registry() {
        // The parallel-DES aggregation contract: split the same record
        // stream across registries, merge in any order, and the snapshot
        // must match the one an unsplit registry renders.
        let record = |m: &mut MetricsRegistry, i: u64| {
            m.counter_add("frames", Labels::one("node", i % 3), i);
            m.histogram_record("qlen", Labels::none(), i * 7);
        };
        let mut whole = MetricsRegistry::new();
        whole.set_enabled(true);
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.set_enabled(true);
        b.set_enabled(true);
        for i in 0..100 {
            record(&mut whole, i);
            record(if i % 2 == 0 { &mut a } else { &mut b }, i);
        }
        let mut ab = MetricsRegistry::new();
        ab.merge(&a);
        ab.merge(&b);
        let mut ba = MetricsRegistry::new();
        ba.merge(&b);
        ba.merge(&a);
        assert_eq!(ab.snapshot_json(), whole.snapshot_json());
        assert_eq!(ba.snapshot_json(), whole.snapshot_json());
    }

    #[test]
    fn gauge_merge_keeps_latest_sample() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.set_enabled(true);
        b.set_enabled(true);
        a.gauge_set("g", Labels::none(), 1, 10);
        b.gauge_set("g", Labels::none(), 2, 20);
        let mut m = MetricsRegistry::new();
        m.merge(&a);
        m.merge(&b);
        assert_eq!(m.gauge("g", Labels::none()), Some(2));
        let mut rev = MetricsRegistry::new();
        rev.merge(&b);
        rev.merge(&a);
        assert_eq!(rev.gauge("g", Labels::none()), Some(2), "order-independent");
    }

    #[test]
    fn snapshot_into_composes_with_outer_document() {
        let mut m = MetricsRegistry::new();
        m.set_enabled(true);
        m.counter_inc("x", Labels::none());
        let mut j = JsonBuf::new();
        j.obj_open();
        j.key("metrics");
        m.snapshot_into(&mut j);
        j.key("tail").u64(1);
        j.obj_close();
        assert_eq!(
            j.finish(),
            format!(r#"{{"metrics":{},"tail":1}}"#, m.snapshot_json())
        );
    }
}
