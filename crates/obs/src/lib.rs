//! # int-obs — deterministic observability
//!
//! Zero-dependency observability layer for the INT scheduling stack:
//!
//! * [`MetricsRegistry`] — counters / gauges / histograms keyed by a
//!   `'static` name plus a small label set, sim-time-stamped, owned per
//!   component (no global state), with a deterministic JSON snapshot.
//! * [`TraceRing`] — a bounded, sampling-capable ring of typed
//!   [`TraceEvent`]s (enqueue / dequeue / drop / fault / probe-harvest /
//!   register-reset), the replacement for ad-hoc debug prints in the
//!   simulator and data plane.
//! * [`DecisionAudit`] — the scheduler decision audit trail: per query,
//!   the candidate set with per-host estimates, exclusions with their
//!   reason, and the chosen host.
//! * [`EpochWriter`] — bounded-memory artifact streaming: epoch lines
//!   go to disk as each epoch closes (instead of accumulating in RAM
//!   for the whole run), with an in-core fallback mode that produces a
//!   byte-identical file — the equivalence the CI smoke `cmp`s.
//!
//! Everything is **deterministic** (sim time only, integer values,
//! `BTreeMap`-ordered exports, counter-based sampling) so exports are
//! byte-identical across `INT_EXP_THREADS` values and same-seed reruns,
//! and **cheap when off** — every record call on a disabled sink returns
//! after a single branch, which the engine bench confirms costs ≤2 %.
//!
//! The crate deliberately has no dependencies (not even the vendored
//! serde): it sits below every other crate in the workspace, and its
//! exports are rendered by the in-crate [`json::JsonBuf`] writer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod json;
pub mod metrics;
pub mod stream;
pub mod trace;

pub use audit::{CandidateEstimate, DecisionAudit, DecisionRecord};
pub use metrics::{Histogram, Labels, MetricsRegistry};
pub use stream::{EpochWriter, EpochWriterStats};
pub use trace::{DropReason, TraceEvent, TraceKind, TraceRing};
