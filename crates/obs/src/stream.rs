//! Bounded-memory streaming for epoch-structured artifacts.
//!
//! Pre-PR-9 exports accumulated the whole artifact in RAM and serialized
//! it once at the end of the run — fine for a 30-second testbed, fatal
//! for a 10k-host multi-minute fabric where the epoch stream is the bulk
//! of the output. [`EpochWriter`] inverts that: each epoch line is
//! written (and flushed) to disk the moment the epoch closes, so peak
//! memory is one epoch line regardless of run length.
//!
//! The writer keeps an **in-core mode** that accumulates lines and
//! writes them in one shot at [`EpochWriter::finish`]. Both modes emit
//! the same bytes by construction (same lines, same `\n` framing), and
//! the CI streaming smoke `cmp`s the two files to pin that equivalence.
//! Mode selection for experiments comes from the `INT_OBS_STREAM` env
//! var via [`streaming_enabled`]: streaming is the default, `0` forces
//! the in-core path (the A-side of the PR-9 memory benchmark).
//!
//! Lines are produced by the caller with [`JsonBuf`](crate::json::JsonBuf)
//! — integer-only, deterministic — so a streamed artifact is still
//! byte-identical across reruns, thread counts, and domain counts.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

/// What a finished writer did, for run summaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochWriterStats {
    /// Lines written.
    pub lines: u64,
    /// Total bytes written, including the newline framing.
    pub bytes: u64,
}

enum Sink {
    /// Write + flush every line as it arrives; RAM holds nothing.
    Streamed(BufWriter<File>),
    /// Accumulate everything, write once at `finish` — the pre-PR-9
    /// behavior, kept as the A/B baseline and equivalence oracle.
    InCore(Vec<u8>),
}

/// Line-oriented artifact writer with streamed and in-core modes that
/// produce byte-identical files.
pub struct EpochWriter {
    path: PathBuf,
    sink: Sink,
    lines: u64,
    bytes: u64,
}

impl EpochWriter {
    /// Create (truncate) `path`. `streamed` picks the sink mode.
    pub fn create(path: &Path, streamed: bool) -> io::Result<Self> {
        let sink = if streamed {
            Sink::Streamed(BufWriter::new(File::create(path)?))
        } else {
            Sink::InCore(Vec::new())
        };
        Ok(Self { path: path.to_path_buf(), sink, lines: 0, bytes: 0 })
    }

    /// Append one line (a `\n` is added). In streamed mode the line is
    /// on disk when this returns; in in-core mode it is buffered.
    pub fn write_line(&mut self, line: &str) -> io::Result<()> {
        self.lines += 1;
        self.bytes += line.len() as u64 + 1;
        match &mut self.sink {
            Sink::Streamed(w) => {
                w.write_all(line.as_bytes())?;
                w.write_all(b"\n")?;
                w.flush()
            }
            Sink::InCore(buf) => {
                buf.extend_from_slice(line.as_bytes());
                buf.push(b'\n');
                Ok(())
            }
        }
    }

    /// Lines written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Finish the artifact: in-core mode writes the accumulated bytes,
    /// streamed mode just flushes. Returns what was written.
    pub fn finish(self) -> io::Result<EpochWriterStats> {
        match self.sink {
            Sink::Streamed(mut w) => w.flush()?,
            Sink::InCore(buf) => std::fs::write(&self.path, buf)?,
        }
        Ok(EpochWriterStats { lines: self.lines, bytes: self.bytes })
    }
}

/// Should experiments stream their epoch artifacts? Controlled by the
/// `INT_OBS_STREAM` env var: unset or any value other than `0` means
/// stream (the default); `0` forces the in-core accumulate-then-write
/// path, the A-side of the PR-9 memory comparison.
pub fn streaming_enabled() -> bool {
    std::env::var("INT_OBS_STREAM").map(|v| v != "0").unwrap_or(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "int_obs_stream_{}_{tag}_{n}.jsonl",
            std::process::id()
        ))
    }

    #[test]
    fn streamed_and_in_core_files_are_byte_identical() {
        let lines = ["{\"epoch\":0,\"x\":1}", "{\"epoch\":1,\"x\":2}", "{\"epoch\":2,\"x\":3}"];
        let p_stream = scratch("s");
        let p_core = scratch("c");
        for (path, streamed) in [(&p_stream, true), (&p_core, false)] {
            let mut w = EpochWriter::create(path, streamed).unwrap();
            for l in &lines {
                w.write_line(l).unwrap();
            }
            let stats = w.finish().unwrap();
            assert_eq!(stats.lines, 3);
        }
        let a = std::fs::read(&p_stream).unwrap();
        let b = std::fs::read(&p_core).unwrap();
        assert_eq!(a, b);
        assert_eq!(a, b"{\"epoch\":0,\"x\":1}\n{\"epoch\":1,\"x\":2}\n{\"epoch\":2,\"x\":3}\n");
        let _ = std::fs::remove_file(&p_stream);
        let _ = std::fs::remove_file(&p_core);
    }

    #[test]
    fn streamed_lines_are_on_disk_before_finish() {
        let p = scratch("early");
        let mut w = EpochWriter::create(&p, true).unwrap();
        w.write_line("{\"epoch\":0}").unwrap();
        // The streaming guarantee: the line is durable before finish(),
        // so a run killed mid-way still leaves every closed epoch.
        let on_disk = std::fs::read_to_string(&p).unwrap();
        assert_eq!(on_disk, "{\"epoch\":0}\n");
        w.finish().unwrap();
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn stats_count_newline_framing() {
        let p = scratch("stats");
        let mut w = EpochWriter::create(&p, false).unwrap();
        w.write_line("ab").unwrap();
        w.write_line("c").unwrap();
        assert_eq!(w.lines(), 2);
        let stats = w.finish().unwrap();
        assert_eq!(stats, EpochWriterStats { lines: 2, bytes: 5 });
        assert_eq!(std::fs::metadata(&p).unwrap().len(), 5);
        let _ = std::fs::remove_file(&p);
    }
}
