//! Scheduler decision audit trail.
//!
//! Records, per scheduling query, everything the scheduler believed at
//! the moment it decided: the candidate set with per-host estimated
//! delay and bandwidth, the hosts it excluded and why, and the host it
//! chose. Answers "why was host 7 excluded at t=42 s" from the exported
//! artifact instead of a debugger.

use crate::json::JsonBuf;

/// One ranked candidate with the estimates that ranked it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CandidateEstimate {
    /// Host (simulator node id).
    pub host: u32,
    /// Estimated one-way network delay, nanoseconds.
    pub est_delay_ns: u64,
    /// Estimated available bandwidth, bits/s.
    pub est_bandwidth_bps: u64,
}

/// One scheduling decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecisionRecord {
    /// Sim time of the query, nanoseconds.
    pub at_ns: u64,
    /// Requesting host (simulator node id).
    pub requester: u32,
    /// Ranking policy label (`Policy::name()`).
    pub policy: &'static str,
    /// Chosen host — the top-ranked candidate, if any survived.
    pub chosen: Option<u32>,
    /// Candidates in rank order with the estimates used.
    pub ranked: Vec<CandidateEstimate>,
    /// Excluded hosts with the stable `ExcludeReason` label.
    pub excluded: Vec<(u32, &'static str)>,
}

/// Bounded audit trail; disabled by default (one branch per record).
#[derive(Debug)]
pub struct DecisionAudit {
    enabled: bool,
    capacity: usize,
    total: u64,
    evicted: u64,
    records: Vec<DecisionRecord>,
}

impl Default for DecisionAudit {
    fn default() -> Self {
        Self::new(4096)
    }
}

impl DecisionAudit {
    /// A disabled trail holding at most `capacity` records once enabled.
    pub fn new(capacity: usize) -> Self {
        Self {
            enabled: false,
            capacity: capacity.max(1),
            total: 0,
            evicted: 0,
            records: Vec::new(),
        }
    }

    /// Enable or disable recording.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Is the trail recording?
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Record a decision (single branch when disabled). Oldest records
    /// are evicted to respect the capacity bound.
    #[inline]
    pub fn record(&mut self, rec: DecisionRecord) {
        if !self.enabled {
            return;
        }
        self.total += 1;
        if self.records.len() == self.capacity {
            self.records.remove(0);
            self.evicted += 1;
        }
        self.records.push(rec);
    }

    /// Decisions recorded while enabled (before eviction).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Records currently held, oldest first.
    pub fn records(&self) -> &[DecisionRecord] {
        &self.records
    }

    /// Drain the held records, keeping the cumulative `total`/`evicted`
    /// counters — the per-epoch hook for streaming exports (each epoch
    /// takes what accumulated since the last one, bounding what the
    /// trail holds in memory to one epoch's worth of decisions).
    pub fn take_records(&mut self) -> Vec<DecisionRecord> {
        std::mem::take(&mut self.records)
    }

    /// Deterministic JSON export:
    /// `{"total":…,"evicted":…,"decisions":[{…}]}` with ranked
    /// candidates and exclusions in the order the scheduler produced
    /// them.
    pub fn to_json(&self) -> String {
        let mut j = JsonBuf::new();
        j.obj_open();
        j.key("total").u64(self.total);
        j.key("evicted").u64(self.evicted);
        j.key("decisions").arr_open();
        for rec in &self.records {
            write_record(&mut j, rec);
        }
        j.arr_close();
        j.obj_close();
        j.finish()
    }
}

/// Render one decision record as the next value in `j` — the single
/// definition of the record shape, shared by [`DecisionAudit::to_json`]
/// and the streaming epoch writer (a stream of `write_record` lines
/// concatenates to exactly the in-core `"decisions"` array, element for
/// element).
pub fn write_record(j: &mut JsonBuf, rec: &DecisionRecord) {
    j.obj_open();
    j.key("at_ns").u64(rec.at_ns);
    j.key("requester").u64(rec.requester as u64);
    j.key("policy").str(rec.policy);
    match rec.chosen {
        Some(h) => j.key("chosen").u64(h as u64),
        None => j.key("chosen").null(),
    };
    j.key("ranked").arr_open();
    for c in &rec.ranked {
        j.obj_open();
        j.key("host").u64(c.host as u64);
        j.key("est_delay_ns").u64(c.est_delay_ns);
        j.key("est_bandwidth_bps").u64(c.est_bandwidth_bps);
        j.obj_close();
    }
    j.arr_close();
    j.key("excluded").arr_open();
    for (h, why) in &rec.excluded {
        j.obj_open();
        j.key("host").u64(*h as u64);
        j.key("reason").str(why);
        j.obj_close();
    }
    j.arr_close();
    j.obj_close();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(at: u64) -> DecisionRecord {
        DecisionRecord {
            at_ns: at,
            requester: 7,
            policy: "IntDelay",
            chosen: Some(8),
            ranked: vec![CandidateEstimate { host: 8, est_delay_ns: 40, est_bandwidth_bps: 1000 }],
            excluded: vec![(3, "NoFreshPath")],
        }
    }

    #[test]
    fn disabled_audit_records_nothing() {
        let mut a = DecisionAudit::new(4);
        a.record(rec(1));
        assert_eq!((a.total(), a.records().len()), (0, 0));
    }

    #[test]
    fn bounded_with_eviction() {
        let mut a = DecisionAudit::new(2);
        a.set_enabled(true);
        for t in 0..4 {
            a.record(rec(t));
        }
        assert_eq!(a.total(), 4);
        let held: Vec<u64> = a.records().iter().map(|r| r.at_ns).collect();
        assert_eq!(held, vec![2, 3]);
    }

    #[test]
    fn json_export_shape() {
        let mut a = DecisionAudit::new(4);
        a.set_enabled(true);
        a.record(rec(42));
        let mut none = rec(43);
        none.chosen = None;
        none.ranked.clear();
        a.record(none);
        assert_eq!(
            a.to_json(),
            concat!(
                r#"{"total":2,"evicted":0,"decisions":["#,
                r#"{"at_ns":42,"requester":7,"policy":"IntDelay","chosen":8,"#,
                r#""ranked":[{"host":8,"est_delay_ns":40,"est_bandwidth_bps":1000}],"#,
                r#""excluded":[{"host":3,"reason":"NoFreshPath"}]},"#,
                r#"{"at_ns":43,"requester":7,"policy":"IntDelay","chosen":null,"#,
                r#""ranked":[],"excluded":[{"host":3,"reason":"NoFreshPath"}]}]}"#
            )
        );
    }

    #[test]
    fn take_records_drains_but_keeps_counters() {
        let mut a = DecisionAudit::new(8);
        a.set_enabled(true);
        a.record(rec(1));
        a.record(rec(2));
        let taken = a.take_records();
        assert_eq!(taken.len(), 2);
        assert_eq!((a.total(), a.records().len()), (2, 0));
        a.record(rec(3));
        assert_eq!((a.total(), a.records().len()), (3, 1));
    }

    #[test]
    fn streamed_records_concatenate_to_the_in_core_array() {
        // Streaming contract: rendering each epoch's drained records
        // with write_record and splicing them into a decisions array
        // reproduces the in-core export byte-for-byte.
        let mut whole = DecisionAudit::new(16);
        whole.set_enabled(true);
        let mut streamed = DecisionAudit::new(16);
        streamed.set_enabled(true);
        let mut parts = Vec::new();
        for t in 0..6 {
            whole.record(rec(t));
            streamed.record(rec(t));
            if t % 2 == 1 {
                // Epoch close: drain and render.
                for r in streamed.take_records() {
                    let mut j = JsonBuf::new();
                    write_record(&mut j, &r);
                    parts.push(j.finish());
                }
            }
        }
        let spliced = format!(
            r#"{{"total":{},"evicted":0,"decisions":[{}]}}"#,
            streamed.total(),
            parts.join(",")
        );
        assert_eq!(spliced, whole.to_json());
    }
}
