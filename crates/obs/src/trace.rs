//! Typed trace-event ring buffer.
//!
//! Replaces ad-hoc `println!` debugging in `netsim`/`dataplane`: the
//! engine and data-plane programs push typed events, the ring keeps the
//! most recent `capacity` of them, and a deterministic counter-based
//! sampler (`keep every Nth event`, never a clock or RNG) thins
//! high-rate streams. Disabled (the default) it costs one branch per
//! emit.

use crate::json::JsonBuf;
use std::collections::VecDeque;

/// Why a frame was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// Drop-tail queue at capacity.
    QueueFull,
    /// Data-plane program verdict (TTL expired, no route, …).
    DataPlane,
    /// Delivered to a host port with no bound application.
    HostUnbound,
    /// In flight on a link that went down (cable-pull semantics).
    LinkDown,
    /// In flight toward or queued on a failed switch.
    SwitchDown,
    /// Probabilistic per-link loss.
    LinkLoss,
}

impl DropReason {
    /// Stable label used in exports.
    pub fn as_str(self) -> &'static str {
        match self {
            DropReason::QueueFull => "queue_full",
            DropReason::DataPlane => "dataplane",
            DropReason::HostUnbound => "host_unbound",
            DropReason::LinkDown => "link_down",
            DropReason::SwitchDown => "switch_down",
            DropReason::LinkLoss => "link_loss",
        }
    }
}

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// Frame accepted by an egress queue.
    Enqueue {
        /// Queue owner node id.
        node: u32,
        /// Egress port.
        port: u8,
        /// Queue depth in packets after the enqueue.
        depth_pkts: u32,
    },
    /// Frame left an egress queue for the wire.
    Dequeue {
        /// Queue owner node id.
        node: u32,
        /// Egress port.
        port: u8,
        /// Queue depth in packets after the dequeue.
        depth_pkts: u32,
    },
    /// Frame dropped.
    Drop {
        /// Node at which the drop happened.
        node: u32,
        /// Port involved (egress for queue drops, ingress otherwise).
        port: u8,
        /// Why.
        reason: DropReason,
    },
    /// A fault-plan action fired.
    Fault {
        /// Action label (`"link_down"`, `"switch_recover"`, …).
        action: &'static str,
        /// Primary subject node.
        subject: u32,
        /// Peer node for link actions (`u32::MAX` when not applicable).
        peer: u32,
    },
    /// An INT probe harvested a switch register at egress.
    ProbeHarvest {
        /// Switch the probe crossed.
        switch: u32,
        /// Egress port whose register was read.
        port: u8,
        /// Harvested max queue depth, packets.
        max_qlen_pkts: u32,
    },
    /// A read-and-reset register was cleared after harvest.
    RegisterReset {
        /// Switch owning the register.
        switch: u32,
        /// Register name.
        register: &'static str,
        /// Port index within the register array.
        port: u8,
    },
}

impl TraceKind {
    /// Stable kind label used in exports.
    pub fn label(&self) -> &'static str {
        match self {
            TraceKind::Enqueue { .. } => "enqueue",
            TraceKind::Dequeue { .. } => "dequeue",
            TraceKind::Drop { .. } => "drop",
            TraceKind::Fault { .. } => "fault",
            TraceKind::ProbeHarvest { .. } => "probe_harvest",
            TraceKind::RegisterReset { .. } => "register_reset",
        }
    }

    /// The node the event is *about* — queue owner, drop site, fault
    /// subject, or register-owning switch. This is the secondary key of
    /// the canonical export order: every event is produced by exactly
    /// one node's dispatch, so per-`(at_ns, node)` groups are invariant
    /// under domain partitioning.
    pub fn node_key(&self) -> u32 {
        match *self {
            TraceKind::Enqueue { node, .. }
            | TraceKind::Dequeue { node, .. }
            | TraceKind::Drop { node, .. } => node,
            TraceKind::Fault { subject, .. } => subject,
            TraceKind::ProbeHarvest { switch, .. }
            | TraceKind::RegisterReset { switch, .. } => switch,
        }
    }
}

/// One trace event, stamped with sim time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Sim time of the event, nanoseconds.
    pub at_ns: u64,
    /// Payload.
    pub kind: TraceKind,
}

/// Bounded ring of [`TraceEvent`]s with deterministic sampling.
#[derive(Debug)]
pub struct TraceRing {
    enabled: bool,
    capacity: usize,
    sample_every: u64,
    seen: u64,
    evicted: u64,
    buf: VecDeque<TraceEvent>,
}

impl Default for TraceRing {
    fn default() -> Self {
        Self::new(1024)
    }
}

impl TraceRing {
    /// A disabled ring holding at most `capacity` events once enabled.
    pub fn new(capacity: usize) -> Self {
        Self {
            enabled: false,
            capacity: capacity.max(1),
            sample_every: 1,
            seen: 0,
            evicted: 0,
            buf: VecDeque::new(),
        }
    }

    /// Enable or disable recording (events recorded so far are kept).
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Is the ring recording?
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Keep every `n`th event (counter-based, so the same event stream
    /// always keeps the same subset — no clocks, no randomness).
    /// `n = 1` keeps everything; `n = 0` is clamped to 1.
    pub fn set_sample_every(&mut self, n: u64) {
        self.sample_every = n.max(1);
    }

    /// Record an event (single branch when disabled).
    #[inline]
    pub fn push(&mut self, at_ns: u64, kind: TraceKind) {
        if !self.enabled {
            return;
        }
        self.push_slow(at_ns, kind);
    }

    #[cold]
    fn push_slow(&mut self, at_ns: u64, kind: TraceKind) {
        self.seen += 1;
        if !self.seen.is_multiple_of(self.sample_every) {
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.evicted += 1;
        }
        self.buf.push_back(TraceEvent { at_ns, kind });
    }

    /// Events seen while enabled (before sampling/eviction).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Events evicted to respect the capacity bound.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Is the ring empty?
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Iterate held events oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Drain the held events, keeping the cumulative `seen`/`evicted`
    /// counters — the per-epoch hook for streaming exports: each epoch
    /// takes what accumulated since the last one, so the ring never
    /// holds more than one epoch of events.
    pub fn take_events(&mut self) -> Vec<TraceEvent> {
        self.buf.drain(..).collect()
    }

    /// Deterministic JSON export: `{"seen":…,"evicted":…,"events":[…]}`,
    /// events oldest-first, each `{"at_ns":…,"kind":…,…fields}`.
    pub fn to_json(&self) -> String {
        render_events_json(self.seen, self.evicted, &self.buf)
    }
}

/// Render one trace event as the next value in `j` — the single
/// definition of the export shape, shared by [`TraceRing::to_json`],
/// the streaming epoch writer, and the parallel-DES merged export.
pub fn write_event(j: &mut JsonBuf, ev: &TraceEvent) {
    j.obj_open();
    j.key("at_ns").u64(ev.at_ns);
    j.key("kind").str(ev.kind.label());
    match ev.kind {
        TraceKind::Enqueue { node, port, depth_pkts }
        | TraceKind::Dequeue { node, port, depth_pkts } => {
            j.key("node").u64(node as u64);
            j.key("port").u64(port as u64);
            j.key("depth_pkts").u64(depth_pkts as u64);
        }
        TraceKind::Drop { node, port, reason } => {
            j.key("node").u64(node as u64);
            j.key("port").u64(port as u64);
            j.key("reason").str(reason.as_str());
        }
        TraceKind::Fault { action, subject, peer } => {
            j.key("action").str(action);
            j.key("subject").u64(subject as u64);
            if peer != u32::MAX {
                j.key("peer").u64(peer as u64);
            }
        }
        TraceKind::ProbeHarvest { switch, port, max_qlen_pkts } => {
            j.key("switch").u64(switch as u64);
            j.key("port").u64(port as u64);
            j.key("max_qlen_pkts").u64(max_qlen_pkts as u64);
        }
        TraceKind::RegisterReset { switch, register, port } => {
            j.key("switch").u64(switch as u64);
            j.key("register").str(register);
            j.key("port").u64(port as u64);
        }
    }
    j.obj_close();
}

/// Render the `{"seen":…,"evicted":…,"events":[…]}` document over an
/// arbitrary event sequence (callers order it; see [`canonical_order`]).
pub fn render_events_json<'a>(
    seen: u64,
    evicted: u64,
    events: impl IntoIterator<Item = &'a TraceEvent>,
) -> String {
    let mut j = JsonBuf::new();
    j.obj_open();
    j.key("seen").u64(seen);
    j.key("evicted").u64(evicted);
    j.key("events").arr_open();
    for ev in events {
        write_event(&mut j, ev);
    }
    j.arr_close();
    j.obj_close();
    j.finish()
}

/// Sort events into the canonical export order: `(at_ns, node_key)`,
/// stable. Every trace event is emitted by exactly one node's event
/// dispatch, and a node's dispatch sequence does not depend on how the
/// fabric is partitioned into domains — so after this sort, a merged
/// multi-domain event stream is byte-identical to the single-loop one
/// (provided nothing was sampled out or evicted differently, i.e.
/// `sample_every == 1` and no eviction).
pub fn canonical_order(events: &mut [TraceEvent]) {
    events.sort_by_key(|e| (e.at_ns, e.kind.node_key()));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(n: u32) -> TraceKind {
        TraceKind::Enqueue { node: n, port: 0, depth_pkts: 1 }
    }

    #[test]
    fn disabled_ring_records_nothing() {
        let mut r = TraceRing::new(4);
        r.push(1, ev(1));
        assert_eq!((r.seen(), r.len()), (0, 0));
    }

    #[test]
    fn capacity_bound_evicts_oldest() {
        let mut r = TraceRing::new(2);
        r.set_enabled(true);
        for i in 0..5u32 {
            r.push(i as u64, ev(i));
        }
        assert_eq!((r.seen(), r.evicted(), r.len()), (5, 3, 2));
        let held: Vec<u64> = r.iter().map(|e| e.at_ns).collect();
        assert_eq!(held, vec![3, 4]);
    }

    #[test]
    fn sampling_keeps_every_nth() {
        let mut r = TraceRing::new(16);
        r.set_enabled(true);
        r.set_sample_every(3);
        for i in 1..=9u32 {
            r.push(i as u64, ev(i));
        }
        let held: Vec<u64> = r.iter().map(|e| e.at_ns).collect();
        assert_eq!(held, vec![3, 6, 9]);
        assert_eq!(r.seen(), 9);
    }

    #[test]
    fn json_export_shape() {
        let mut r = TraceRing::new(4);
        r.set_enabled(true);
        r.push(5, TraceKind::Drop { node: 2, port: 1, reason: DropReason::QueueFull });
        r.push(9, TraceKind::Fault { action: "link_down", subject: 3, peer: 4 });
        assert_eq!(
            r.to_json(),
            r#"{"seen":2,"evicted":0,"events":[{"at_ns":5,"kind":"drop","node":2,"port":1,"reason":"queue_full"},{"at_ns":9,"kind":"fault","action":"link_down","subject":3,"peer":4}]}"#
        );
    }

    #[test]
    fn take_events_drains_but_keeps_counters() {
        let mut r = TraceRing::new(8);
        r.set_enabled(true);
        for i in 0..3u32 {
            r.push(i as u64, ev(i));
        }
        let taken = r.take_events();
        assert_eq!(taken.len(), 3);
        assert_eq!((r.seen(), r.len()), (3, 0), "counters survive the drain");
        r.push(9, ev(9));
        assert_eq!((r.seen(), r.len()), (4, 1));
    }

    #[test]
    fn canonical_order_merges_per_node_streams() {
        // Two "domain" streams, each internally ordered; the merged
        // canonical order must equal the canonical order of the
        // interleaved single-loop stream.
        let mk = |at: u64, node: u32| TraceEvent { at_ns: at, kind: ev(node) };
        let mut merged = vec![mk(1, 5), mk(2, 5), mk(1, 2), mk(3, 2)];
        let mut single = vec![mk(1, 2), mk(1, 5), mk(2, 5), mk(3, 2)];
        canonical_order(&mut merged);
        canonical_order(&mut single);
        assert_eq!(merged, single);
        assert_eq!(
            render_events_json(4, 0, &merged),
            render_events_json(4, 0, &single)
        );
    }

    #[test]
    fn canonical_order_is_stable_within_a_node() {
        // Same (at, node): insertion order is preserved — per-node
        // subsequences are exactly the node's dispatch order.
        let e1 = TraceEvent { at_ns: 7, kind: TraceKind::Enqueue { node: 1, port: 0, depth_pkts: 1 } };
        let e2 = TraceEvent { at_ns: 7, kind: TraceKind::Dequeue { node: 1, port: 0, depth_pkts: 0 } };
        let mut v = vec![e1, e2];
        canonical_order(&mut v);
        assert_eq!(v, vec![e1, e2]);
    }
}
