//! Minimal deterministic JSON writer.
//!
//! The observability exports must be byte-identical across thread counts
//! and reruns, so they are rendered by this tiny writer instead of a
//! serializer crate: integers, booleans, strings, arrays and objects
//! only — **no floats** (float formatting is the classic source of
//! cross-platform byte drift), and object keys are emitted in exactly
//! the order the caller writes them (callers iterate `BTreeMap`s or
//! fixed field lists, so the order is deterministic by construction).

/// Append-only JSON buffer.
///
/// The builder does not validate nesting — callers drive it with
/// structurally correct sequences (`obj_open`/`key`/…/`obj_close`). The
/// `comma` state machine inserts separators automatically: anything
/// written immediately after an `open` gets no comma, everything after
/// does.
#[derive(Debug, Default)]
pub struct JsonBuf {
    out: String,
    comma: bool,
}

impl JsonBuf {
    /// New empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finish and return the rendered JSON text.
    pub fn finish(self) -> String {
        self.out
    }

    fn sep(&mut self) {
        if self.comma {
            self.out.push(',');
        }
        self.comma = true;
    }

    /// `{` — start an object (as a value in the current context).
    pub fn obj_open(&mut self) -> &mut Self {
        self.sep();
        self.out.push('{');
        self.comma = false;
        self
    }

    /// `}` — close the current object.
    pub fn obj_close(&mut self) -> &mut Self {
        self.out.push('}');
        self.comma = true;
        self
    }

    /// `[` — start an array (as a value in the current context).
    pub fn arr_open(&mut self) -> &mut Self {
        self.sep();
        self.out.push('[');
        self.comma = false;
        self
    }

    /// `]` — close the current array.
    pub fn arr_close(&mut self) -> &mut Self {
        self.out.push(']');
        self.comma = true;
        self
    }

    /// `"key":` — object key; the next write is its value.
    pub fn key(&mut self, k: &str) -> &mut Self {
        self.sep();
        write_str(&mut self.out, k);
        self.out.push(':');
        self.comma = false;
        self
    }

    /// String value.
    pub fn str(&mut self, v: &str) -> &mut Self {
        self.sep();
        write_str(&mut self.out, v);
        self
    }

    /// Unsigned integer value.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.sep();
        self.out.push_str(&v.to_string());
        self
    }

    /// Signed integer value.
    pub fn i64(&mut self, v: i64) -> &mut Self {
        self.sep();
        self.out.push_str(&v.to_string());
        self
    }

    /// Boolean value.
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.sep();
        self.out.push_str(if v { "true" } else { "false" });
        self
    }

    /// `null`.
    pub fn null(&mut self) -> &mut Self {
        self.sep();
        self.out.push_str("null");
        self
    }
}

/// JSON string escaping (quotes, backslash, control chars).
fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let mut j = JsonBuf::new();
        j.obj_open();
        j.key("a").u64(1);
        j.key("b").arr_open();
        j.u64(2).str("x").bool(true).null();
        j.arr_close();
        j.key("c").obj_open().key("d").i64(-5).obj_close();
        j.obj_close();
        assert_eq!(j.finish(), r#"{"a":1,"b":[2,"x",true,null],"c":{"d":-5}}"#);
    }

    #[test]
    fn escapes_strings() {
        let mut j = JsonBuf::new();
        j.str("q\"b\\s\nnl\u{1}");
        assert_eq!(j.finish(), r#""q\"b\\s\nnl\u0001""#);
    }

    #[test]
    fn empty_containers() {
        let mut j = JsonBuf::new();
        j.arr_open();
        j.obj_open().obj_close();
        j.arr_open().arr_close();
        j.arr_close();
        assert_eq!(j.finish(), "[{},[]]");
    }
}
