//! # int-bench
//!
//! Benchmark support crate. The benchmarks themselves live in `benches/`:
//!
//! * `codec` — wire-format hot paths: frame build/parse, probe
//!   encode/decode, INT record append,
//! * `dataplane` — P4 pipeline per-packet cost: LPM lookup, ingress,
//!   probe augmentation, register ops,
//! * `engine` — event queue, end-to-end simulated packet throughput, TCP
//!   transfer throughput,
//! * `core` — the scheduler: probe ingestion, graph traversal, ranking,
//! * `figures` — one scaled-down benchmark per paper table/figure (TAB1,
//!   FIG3, FIG5–FIG9), exercising the exact harness code the `repro`
//!   binary runs at paper scale.

/// Common fixture: a standard probe traversing `n` switches.
pub fn probe_with_hops(n: usize) -> int_packet::ProbePayload {
    let mut p = int_packet::ProbePayload::new(1, 7, 1_000);
    for i in 0..n {
        p.int.push(int_packet::int::IntRecord {
            switch_id: i as u32,
            ingress_port: 0,
            egress_port: 1,
            max_qlen_pkts: (i * 3) as u32,
            qlen_at_probe_pkts: i as u32,
            link_latency_ns: 10_000_000,
            egress_ts_ns: (i as u64 + 1) * 11_000_000,
        });
    }
    p
}

#[cfg(test)]
mod tests {
    #[test]
    fn fixture_builds() {
        assert_eq!(super::probe_with_hops(5).int.hop_count(), 5);
    }
}
