//! Simulator-engine throughput: event queue operations, packets simulated
//! per second, and TCP transfer wall-clock cost.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use int_apps::iperf::{IperfConfig, IperfSenderApp, IPERF_UDP_PORT};
use int_apps::UdpSinkApp;
use int_netsim::{
    Event, EventQueue, LinkParams, NodeId, SimConfig, SimDuration, SimTime, Simulator, Topology,
};
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue/push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.push(
                    SimTime(i * 37 % 1000),
                    Event::AppTimer { node: NodeId(0), app_idx: 0, timer_id: i },
                );
            }
            let mut n = 0;
            while q.pop().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });
}

fn line_topo() -> (Topology, NodeId, NodeId) {
    let mut t = Topology::new();
    let h1 = t.add_host("h1");
    let s1 = t.add_switch("s1");
    let h2 = t.add_host("h2");
    let fast = LinkParams {
        bandwidth_bps: 1_000_000_000,
        delay: SimDuration::from_millis(10),
        queue_cap_pkts: 256,
    };
    t.add_link(h1, s1, fast);
    t.add_link(s1, h2, fast);
    (t, h1, h2)
}

fn bench_packet_throughput(c: &mut Criterion) {
    // Simulate 5 seconds of a near-saturating CBR flow through one switch
    // and report simulated-packet throughput.
    let mut g = c.benchmark_group("sim_throughput");
    g.sample_size(10);
    // ~19 Mbit/s of 1472 B payloads ≈ 1600 pkt/s × 5 s ≈ 8000 packets.
    g.throughput(Throughput::Elements(8000));
    g.bench_function("cbr_5s_one_switch", |b| {
        b.iter(|| {
            let (t, h1, h2) = line_topo();
            let mut sim = Simulator::new(t, SimConfig::default());
            sim.install_app(
                h1,
                Box::new(IperfSenderApp::new(IperfConfig::new(
                    Topology::host_ip(h2),
                    19_000_000,
                    SimTime::ZERO,
                    SimDuration::from_secs(5),
                ))),
            );
            sim.install_app(h2, Box::new(UdpSinkApp::new(IPERF_UDP_PORT)));
            sim.run_until(SimTime::ZERO + SimDuration::from_secs(5));
            black_box(sim.stats().frames_delivered)
        })
    });
    g.finish();
}

fn bench_packet_throughput_observed(c: &mut Criterion) {
    // Same workload as `cbr_5s_one_switch`, with every observability
    // sink lit (metrics registry, trace ring, data-plane tracing).
    // Compare against the plain variant to price the instrumentation;
    // the *disabled* registry (the default everywhere else) must stay
    // within ~2% of the plain variant — it costs one branch per record
    // site (see results/bench_pr3.json for the paired numbers).
    let mut g = c.benchmark_group("sim_throughput");
    g.sample_size(10);
    g.throughput(Throughput::Elements(8000));
    g.bench_function("cbr_5s_one_switch_obs_on", |b| {
        b.iter(|| {
            let (t, h1, h2) = line_topo();
            let mut sim = Simulator::new(t, SimConfig::default());
            sim.metrics_mut().set_enabled(true);
            sim.set_tracing(true);
            sim.install_app(
                h1,
                Box::new(IperfSenderApp::new(IperfConfig::new(
                    Topology::host_ip(h2),
                    19_000_000,
                    SimTime::ZERO,
                    SimDuration::from_secs(5),
                ))),
            );
            sim.install_app(h2, Box::new(UdpSinkApp::new(IPERF_UDP_PORT)));
            sim.run_until(SimTime::ZERO + SimDuration::from_secs(5));
            black_box(sim.trace_ring().seen());
            black_box(sim.stats().frames_delivered)
        })
    });
    g.finish();
}

fn bench_tcp_transfer(c: &mut Criterion) {
    use int_netsim::{App, AppCtx, TcpEvent};
    use std::any::Any;
    use std::net::Ipv4Addr;

    struct Client {
        dst: Ipv4Addr,
        len: usize,
    }
    impl App for Client {
        fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
            let conn = ctx.tcp_connect(self.dst, 7100);
            ctx.tcp_send(conn, vec![0u8; self.len]);
            ctx.tcp_close(conn);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }
    #[derive(Default)]
    struct Server {
        bytes: usize,
    }
    impl App for Server {
        fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
            ctx.tcp_listen(7100);
        }
        fn on_tcp(&mut self, _c: &mut AppCtx<'_>, ev: TcpEvent) {
            if let TcpEvent::Data { data, .. } = ev {
                self.bytes += data.len();
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    let mut g = c.benchmark_group("tcp_transfer");
    g.sample_size(10);
    let len = 1_000_000usize;
    g.throughput(Throughput::Bytes(len as u64));
    g.bench_function("1MB_through_switch", |b| {
        b.iter(|| {
            let (t, h1, h2) = line_topo();
            let mut sim = Simulator::new(t, SimConfig::default());
            sim.install_app(h1, Box::new(Client { dst: Topology::host_ip(h2), len }));
            let srv = sim.install_app(h2, Box::new(Server::default()));
            sim.run_until(SimTime::ZERO + SimDuration::from_secs(30));
            let got = sim.app::<Server>(h2, srv).unwrap().bytes;
            assert_eq!(got, len);
            black_box(got)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_packet_throughput,
    bench_packet_throughput_observed,
    bench_tcp_transfer
);
criterion_main!(benches);
