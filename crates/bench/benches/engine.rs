//! Simulator-engine throughput: event queue operations, packets simulated
//! per second, and TCP transfer wall-clock cost.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use int_apps::iperf::{IperfConfig, IperfSenderApp, IPERF_UDP_PORT};
use int_apps::UdpSinkApp;
use int_netsim::{
    Event, EventQueue, LinkParams, NodeId, SimConfig, SimDuration, SimTime, Simulator, Topology,
};
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue/push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.push(
                    SimTime(i * 37 % 1000),
                    Event::AppTimer { node: NodeId(0), app_idx: 0, timer_id: i },
                );
            }
            let mut n = 0;
            while q.pop().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });
}

fn bench_event_queue_far(c: &mut Criterion) {
    // Same push/pop churn with times spread across 10 simulated seconds:
    // most pushes land past the wheel's ~4.29 s L1 horizon and transit the
    // overflow heap, then promote level by level on the way out.
    c.bench_function("event_queue/push_pop_far_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.push(
                    SimTime((i * 37 % 1000) * 10_000_000),
                    Event::AppTimer { node: NodeId(0), app_idx: 0, timer_id: i },
                );
            }
            let mut n = 0;
            while q.pop().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });
}

fn line_topo() -> (Topology, NodeId, NodeId) {
    let mut t = Topology::new();
    let h1 = t.add_host("h1");
    let s1 = t.add_switch("s1");
    let h2 = t.add_host("h2");
    let fast = LinkParams {
        bandwidth_bps: 1_000_000_000,
        delay: SimDuration::from_millis(10),
        queue_cap_pkts: 256,
    };
    t.add_link(h1, s1, fast);
    t.add_link(s1, h2, fast);
    (t, h1, h2)
}

fn bench_packet_throughput(c: &mut Criterion) {
    // Simulate 5 seconds of a near-saturating CBR flow through one switch
    // and report simulated-packet throughput.
    let mut g = c.benchmark_group("sim_throughput");
    g.sample_size(10);
    // ~19 Mbit/s of 1472 B payloads ≈ 1600 pkt/s × 5 s ≈ 8000 packets.
    g.throughput(Throughput::Elements(8000));
    g.bench_function("cbr_5s_one_switch", |b| {
        b.iter(|| {
            let (t, h1, h2) = line_topo();
            let mut sim = Simulator::new(t, SimConfig::default());
            sim.install_app(
                h1,
                Box::new(IperfSenderApp::new(IperfConfig::new(
                    Topology::host_ip(h2),
                    19_000_000,
                    SimTime::ZERO,
                    SimDuration::from_secs(5),
                ))),
            );
            sim.install_app(h2, Box::new(UdpSinkApp::new(IPERF_UDP_PORT)));
            sim.run_until(SimTime::ZERO + SimDuration::from_secs(5));
            black_box(sim.stats().frames_delivered)
        })
    });
    g.finish();
}

fn bench_packet_throughput_observed(c: &mut Criterion) {
    // Same workload as `cbr_5s_one_switch`, with every observability
    // sink lit (metrics registry, trace ring, data-plane tracing).
    // Compare against the plain variant to price the instrumentation;
    // the *disabled* registry (the default everywhere else) must stay
    // within ~2% of the plain variant — it costs one branch per record
    // site (see results/bench_pr3.json for the paired numbers).
    let mut g = c.benchmark_group("sim_throughput");
    g.sample_size(10);
    g.throughput(Throughput::Elements(8000));
    g.bench_function("cbr_5s_one_switch_obs_on", |b| {
        b.iter(|| {
            let (t, h1, h2) = line_topo();
            let mut sim = Simulator::new(t, SimConfig::default());
            sim.metrics_mut().set_enabled(true);
            sim.set_tracing(true);
            sim.install_app(
                h1,
                Box::new(IperfSenderApp::new(IperfConfig::new(
                    Topology::host_ip(h2),
                    19_000_000,
                    SimTime::ZERO,
                    SimDuration::from_secs(5),
                ))),
            );
            sim.install_app(h2, Box::new(UdpSinkApp::new(IPERF_UDP_PORT)));
            sim.run_until(SimTime::ZERO + SimDuration::from_secs(5));
            black_box(sim.trace_ring().seen());
            black_box(sim.stats().frames_delivered)
        })
    });
    g.finish();
}

fn bench_timer_heavy(c: &mut Criterion) {
    use int_netsim::{App, AppCtx};
    use std::any::Any;

    // Periods from 5 ms to 8 s: the long ones park past the wheel's L1
    // horizon (~4.29 s) and exercise overflow promotion; each timer
    // rearms on fire, so every wheel level churns for the whole run.
    const PERIODS_MS: [u64; 8] = [5, 10, 25, 100, 250, 1_000, 5_000, 8_000];

    /// Battery of 16 rearming timers (each period, plus each period ×3).
    struct TimerStorm;
    impl App for TimerStorm {
        fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
            for (id, &ms) in PERIODS_MS.iter().enumerate() {
                ctx.set_timer(SimDuration::from_millis(ms), id as u64);
                ctx.set_timer(SimDuration::from_millis(ms * 3), (id + PERIODS_MS.len()) as u64);
            }
        }
        fn on_timer(&mut self, ctx: &mut AppCtx<'_>, id: u64) {
            let base = PERIODS_MS[id as usize % PERIODS_MS.len()];
            let ms = if id as usize >= PERIODS_MS.len() { base * 3 } else { base };
            ctx.set_timer(SimDuration::from_millis(ms), id);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    let build = || {
        let mut t = Topology::new();
        let s1 = t.add_switch("s1");
        let fast = LinkParams {
            bandwidth_bps: 1_000_000_000,
            delay: SimDuration::from_millis(10),
            queue_cap_pkts: 256,
        };
        let hosts: Vec<NodeId> = (0..4)
            .map(|i| {
                let h = t.add_host(Box::leak(format!("h{i}").into_boxed_str()));
                t.add_link(h, s1, fast);
                h
            })
            .collect();
        let mut sim = Simulator::new(t, SimConfig::default());
        // Timer batteries on every host, plus a steady 2 Mbit/s flow so
        // packet events interleave with the timer churn.
        for &h in &hosts {
            sim.install_app(h, Box::new(TimerStorm));
        }
        sim.install_app(
            hosts[0],
            Box::new(IperfSenderApp::new(IperfConfig::new(
                Topology::host_ip(hosts[1]),
                2_000_000,
                SimTime::ZERO,
                SimDuration::from_secs(20),
            ))),
        );
        sim.install_app(hosts[1], Box::new(UdpSinkApp::new(IPERF_UDP_PORT)));
        sim
    };

    // The sim is deterministic: one throwaway run prices the workload.
    let events = {
        let mut sim = build();
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(20));
        sim.stats().events_processed
    };

    let mut g = c.benchmark_group("sim_throughput");
    g.sample_size(10);
    g.throughput(Throughput::Elements(events));
    g.bench_function("timer_heavy_20s", |b| {
        b.iter(|| {
            let mut sim = build();
            sim.run_until(SimTime::ZERO + SimDuration::from_secs(20));
            black_box(sim.stats().events_processed)
        })
    });
    g.finish();
}

fn bench_tcp_transfer(c: &mut Criterion) {
    use int_netsim::{App, AppCtx, TcpEvent};
    use std::any::Any;
    use std::net::Ipv4Addr;

    struct Client {
        dst: Ipv4Addr,
        len: usize,
    }
    impl App for Client {
        fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
            let conn = ctx.tcp_connect(self.dst, 7100);
            ctx.tcp_send(conn, vec![0u8; self.len]);
            ctx.tcp_close(conn);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }
    #[derive(Default)]
    struct Server {
        bytes: usize,
    }
    impl App for Server {
        fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
            ctx.tcp_listen(7100);
        }
        fn on_tcp(&mut self, _c: &mut AppCtx<'_>, ev: TcpEvent) {
            if let TcpEvent::Data { data, .. } = ev {
                self.bytes += data.len();
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    let mut g = c.benchmark_group("tcp_transfer");
    g.sample_size(10);
    let len = 1_000_000usize;
    g.throughput(Throughput::Bytes(len as u64));
    g.bench_function("1MB_through_switch", |b| {
        b.iter(|| {
            let (t, h1, h2) = line_topo();
            let mut sim = Simulator::new(t, SimConfig::default());
            sim.install_app(h1, Box::new(Client { dst: Topology::host_ip(h2), len }));
            let srv = sim.install_app(h2, Box::new(Server::default()));
            sim.run_until(SimTime::ZERO + SimDuration::from_secs(30));
            let got = sim.app::<Server>(h2, srv).unwrap().bytes;
            assert_eq!(got, len);
            black_box(got)
        })
    });
    g.finish();
}

/// Fabric control-plane build cost: generate a quarter-scale datacenter
/// Clos (128 switches, 240 hosts), then stand up the simulator — all-pairs
/// Dijkstra, per-switch LPM route install (240 host routes × 128 tables,
/// ECMP groups interned), and the per-host multipath uplink memo. This is
/// the fixed cost every fabric experiment cell pays before the first
/// event fires.
fn bench_fabric_build(c: &mut Criterion) {
    use int_netsim::ClosParams;
    let mut g = c.benchmark_group("fabric_build");
    g.sample_size(10);
    let params = ClosParams::datacenter().scaled(0.25);
    g.bench_function("clos_128s_240h", |b| {
        b.iter(|| {
            let fab = params.build();
            let sim = Simulator::new(fab.topo, SimConfig::default());
            black_box(sim.now())
        })
    });
    g.finish();
}

/// Domain-count scaling of the conservative parallel engine: the same
/// cross-leaf CBR workload on a tiered Clos, run through `ParSim` at
/// 1, 2, and 4 latency-partitioned domains. `domains_1` collapses to the
/// plain single-thread engine, so the paired numbers price the barrier
/// windows and cross-domain batching; a wall-clock *speedup* additionally
/// needs cores (compare host_cores in results/bench_pr9.json).
fn bench_domain_scaling(c: &mut Criterion) {
    use int_netsim::{ClosParams, ParSim};

    const END: SimDuration = SimDuration::from_secs(2);

    let build = |domains: u16| {
        let host_link = LinkParams {
            bandwidth_bps: 1_000_000_000,
            delay: SimDuration::from_micros(50),
            queue_cap_pkts: 64,
        };
        let uplink = LinkParams {
            bandwidth_bps: 10_000_000_000,
            delay: SimDuration::from_millis(2),
            queue_cap_pkts: 64,
        };
        let fabric = ClosParams { spines: 2, leaves: 8, hosts_per_leaf: 2, link: host_link }
            .build_tiered(uplink);
        let hosts = fabric.hosts;
        let mut sim = ParSim::new(fabric.topo, SimConfig::default(), domains);
        // Every flow crosses the spine tier (src and dst sit under
        // opposite halves of the leaves), so higher domain counts keep
        // exchanging cross-domain batches every window.
        let n = hosts.len();
        for i in 0..n / 2 {
            let dst = hosts[i + n / 2];
            sim.install_app(
                hosts[i],
                Box::new(IperfSenderApp::new(IperfConfig::new(
                    Topology::host_ip(dst),
                    8_000_000,
                    SimTime::ZERO,
                    END,
                ))),
            );
            sim.install_app(dst, Box::new(UdpSinkApp::new(IPERF_UDP_PORT)));
        }
        sim
    };

    // One throwaway run prices the workload; the engine's determinism
    // contract says every domain count processes the same event total.
    let events = {
        let mut sim = build(1);
        sim.run_until(SimTime::ZERO + END);
        sim.stats().events_processed
    };

    let mut g = c.benchmark_group("sim_throughput");
    g.sample_size(10);
    g.throughput(Throughput::Elements(events));
    for domains in [1u16, 2, 4] {
        g.bench_function(format!("domains_{domains}"), |b| {
            b.iter(|| {
                let mut sim = build(domains);
                sim.run_until(SimTime::ZERO + END);
                let got = sim.stats().events_processed;
                assert_eq!(got, events, "domain count changed the event total");
                black_box(got)
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_event_queue_far,
    bench_fabric_build,
    bench_packet_throughput,
    bench_packet_throughput_observed,
    bench_timer_heavy,
    bench_tcp_transfer,
    bench_domain_scaling
);
criterion_main!(benches);
