//! One benchmark per paper table/figure, exercising the exact harness
//! code `repro` runs — at a small scale so `cargo bench` stays tractable.
//! The paper-scale numbers in EXPERIMENTS.md come from the `repro` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use int_experiments::{ablation, fig3, fig5, fig6, fig7, fig8, fig9, tab1};
use int_netsim::SimDuration;
use std::hint::black_box;

const BENCH_TASKS: usize = 8;

fn bench_tab1(c: &mut Criterion) {
    c.bench_function("tab1_workload", |b| b.iter(|| black_box(tab1::run(1, 200))));
}

fn bench_fig3(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig3_queue_vs_util", |b| {
        let cfg = fig3::Fig3Config {
            utilizations: vec![0.3, 0.9],
            duration: SimDuration::from_secs(10),
            ..fig3::Fig3Config::default()
        };
        b.iter(|| black_box(fig3::run(&cfg)))
    });
    g.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig5_serverless_delay", |b| {
        b.iter(|| black_box(fig5::run(1, BENCH_TASKS)))
    });
    g.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig6_distributed_delay", |b| {
        b.iter(|| black_box(fig6::run(1, BENCH_TASKS)))
    });
    g.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig7_distributed_bw", |b| b.iter(|| black_box(fig7::run(1, BENCH_TASKS))));
    g.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig8_ecdf", |b| b.iter(|| black_box(fig8::run(1, BENCH_TASKS))));
    g.finish();
}

fn bench_fig9(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig9_probe_interval", |b| {
        let intervals = [SimDuration::from_millis(100), SimDuration::from_secs(10)];
        b.iter(|| black_box(fig9::run_sweep(1, BENCH_TASKS, &intervals)))
    });
    g.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("ablation_k_sweep", |b| {
        b.iter(|| black_box(ablation::run_k_sweep(1, BENCH_TASKS, &[0, 20])))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_tab1,
    bench_fig3,
    bench_fig5,
    bench_fig6,
    bench_fig7,
    bench_fig8,
    bench_fig9,
    bench_ablations
);
criterion_main!(benches);
