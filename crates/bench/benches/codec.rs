//! Wire-format hot paths: what every simulated packet pays.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use int_bench::probe_with_hops;
use int_packet::wire::{WireDecode, WireEncode};
use int_packet::{PacketBuilder, ParsedPacket, ProbePayload, TcpFlags, TcpHeader};
use std::hint::black_box;
use std::net::Ipv4Addr;

fn builder() -> PacketBuilder {
    PacketBuilder::between(1, Ipv4Addr::new(10, 0, 0, 1), 2, Ipv4Addr::new(10, 0, 0, 2))
}

fn bench_frame_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("frame_build");
    for payload_len in [64usize, 512, 1400] {
        let payload = vec![0u8; payload_len];
        g.throughput(Throughput::Bytes(payload_len as u64));
        g.bench_with_input(BenchmarkId::new("udp", payload_len), &payload, |b, p| {
            b.iter(|| black_box(builder().udp(5000, 5001, p)));
        });
        let tcp = TcpHeader {
            src_port: 40000,
            dst_port: 7100,
            seq: 1,
            ack: 2,
            flags: TcpFlags::ACK,
            window: 65535,
        };
        g.bench_with_input(BenchmarkId::new("tcp", payload_len), &payload, |b, p| {
            b.iter(|| black_box(builder().tcp(tcp, p)));
        });
    }
    g.finish();
}

fn bench_frame_parse(c: &mut Criterion) {
    let frame = builder().udp(5000, 5001, &vec![0u8; 1400]);
    c.bench_function("frame_parse/udp_1400", |b| {
        b.iter(|| black_box(ParsedPacket::parse(black_box(&frame)).unwrap()))
    });
    let probe_frame = builder().udp_msg(41000, int_packet::PROBE_UDP_PORT, &probe_with_hops(6));
    c.bench_function("frame_parse/probe_detect", |b| {
        b.iter(|| {
            let p = ParsedPacket::parse(black_box(&probe_frame)).unwrap();
            black_box(p.is_int_probe(&probe_frame))
        })
    });
}

fn bench_probe_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("probe_codec");
    for hops in [1usize, 6, 12] {
        let probe = probe_with_hops(hops);
        let bytes = probe.to_bytes();
        g.bench_with_input(BenchmarkId::new("encode", hops), &probe, |b, p| {
            b.iter(|| black_box(p.to_bytes()))
        });
        g.bench_with_input(BenchmarkId::new("decode", hops), &bytes, |b, by| {
            b.iter(|| black_box(ProbePayload::decode(&mut &by[..]).unwrap()))
        });
    }
    g.finish();
}

fn bench_checksum(c: &mut Criterion) {
    let data = vec![0xA5u8; 1500];
    c.bench_function("internet_checksum/1500B", |b| {
        b.iter(|| black_box(int_packet::wire::internet_checksum(black_box(&data))))
    });
}

criterion_group!(benches, bench_frame_build, bench_frame_parse, bench_probe_codec, bench_checksum);
criterion_main!(benches);
