//! P4 pipeline per-packet costs — the simulator's inner loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use int_bench::probe_with_hops;
use int_dataplane::{
    DataPlaneProgram, EgressCtx, EnqueueCtx, Frame, IngressCtx, IntProgramConfig,
    IntTelemetryProgram, Key, MatchActionTable, MatchKind, RegisterArray,
};
use int_packet::wire::WireEncode;
use int_packet::PacketBuilder;
use std::hint::black_box;
use std::net::Ipv4Addr;

fn program(routes: u32) -> IntTelemetryProgram {
    let mut p = IntTelemetryProgram::new(IntProgramConfig {
        switch_id: 1,
        num_ports: 8,
        int_enabled: true,
    });
    for i in 0..routes {
        p.install_host_route(Ipv4Addr::from(0x0A000001u32 + i), (i % 8) as u16);
    }
    p
}

fn data_frame() -> Frame {
    let b = PacketBuilder::between(1, Ipv4Addr::new(10, 0, 0, 5), 2, Ipv4Addr::new(10, 0, 0, 2))
        .udp(5001, 5001, &vec![0u8; 1400]);
    Frame::new(b)
}

fn probe_frame() -> Frame {
    let b = PacketBuilder::between(1, Ipv4Addr::new(10, 0, 0, 5), 2, Ipv4Addr::new(10, 0, 0, 2))
        .udp_msg(41000, int_packet::PROBE_UDP_PORT, &probe_with_hops(4));
    Frame::new(b)
}

fn bench_flow_table(c: &mut Criterion) {
    // Flow-table microbench (PR 4, results/bench_pr4.json): the indexed
    // lookup against the reference linear scan at 8, 64, and 512 installed
    // /32 routes. Probes rotate through every installed route so the
    // single-entry caches upstream can't mask the table cost.
    let mut g = c.benchmark_group("flow_table");
    for n in [8usize, 64, 512] {
        let mut t = MatchActionTable::new("fwd", MatchKind::Lpm);
        let keys: Vec<[u8; 4]> =
            (0..n as u32).map(|i| (0x0A000000u32 + i * 7).to_be_bytes()).collect();
        for (i, k) in keys.iter().enumerate() {
            t.insert(Key::Lpm { value: k.to_vec(), prefix_len: 32 }, i as u16);
        }
        g.bench_with_input(BenchmarkId::new("lpm_indexed", n), &keys, |b, keys| {
            let mut i = 0usize;
            b.iter(|| {
                i += 1;
                if i == keys.len() {
                    i = 0;
                }
                black_box(t.lookup(black_box(&keys[i])))
            })
        });
        g.bench_with_input(BenchmarkId::new("lpm_linear", n), &keys, |b, keys| {
            let mut i = 0usize;
            b.iter(|| {
                i += 1;
                if i == keys.len() {
                    i = 0;
                }
                black_box(t.lookup_linear(black_box(&keys[i])))
            })
        });
    }
    g.finish();
}

fn bench_ingress(c: &mut Criterion) {
    let mut p = program(16);
    let ctx = IngressCtx { now_ns: 1_000, switch_id: 1, ingress_port: 0 };
    c.bench_function("pipeline/ingress_data_pkt", |b| {
        b.iter_batched(
            data_frame,
            |mut f| black_box(p.ingress(&mut f, &ctx)),
            criterion::BatchSize::SmallInput,
        )
    });
    let mut p2 = program(16);
    c.bench_function("pipeline/ingress_probe_pkt", |b| {
        b.iter_batched(
            probe_frame,
            |mut f| black_box(p2.ingress(&mut f, &ctx)),
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_probe_augment(c: &mut Criterion) {
    // Full probe path through one switch: ingress + enqueue + egress
    // (including the re-deparse that grows the INT stack).
    let mut p = program(16);
    let ictx = IngressCtx { now_ns: 1_000, switch_id: 1, ingress_port: 0 };
    c.bench_function("pipeline/probe_full_transit", |b| {
        b.iter_batched(
            probe_frame,
            |mut f| {
                let v = p.ingress(&mut f, &ictx);
                p.on_enqueue(&f, &EnqueueCtx { now_ns: 1_000, port: 0, qdepth_after_pkts: 3 });
                p.egress(
                    &mut f,
                    &EgressCtx { now_ns: 2_000, switch_id: 1, egress_port: 0, qdepth_at_deq_pkts: 2 },
                );
                black_box((v, f.wire_len()))
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_registers(c: &mut Criterion) {
    let mut a = RegisterArray::new(64);
    c.bench_function("registers/write_max", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            a.write_max((i % 64) as usize, black_box(i));
        })
    });
    c.bench_function("registers/take", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(a.take((i % 64) as usize))
        })
    });
}

fn bench_probe_wire_growth(c: &mut Criterion) {
    // Cost of serializing probes as they grow per hop (overhead model of
    // §III-A: record size × hops).
    let mut g = c.benchmark_group("probe_wire_len");
    for hops in [0usize, 4, 12] {
        let p = probe_with_hops(hops);
        g.bench_with_input(BenchmarkId::from_parameter(hops), &p, |b, p| {
            b.iter(|| black_box(p.to_bytes().len()))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_flow_table,
    bench_ingress,
    bench_probe_augment,
    bench_registers,
    bench_probe_wire_growth
);
criterion_main!(benches);
