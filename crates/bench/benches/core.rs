//! Scheduler-core hot paths: probe ingestion, graph traversal, estimation,
//! and ranking — what the scheduler pays per probe and per query.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use int_core::rank::{Ranker, StaticDistances};
use int_core::shard::{RankQuery, ShardedScheduler};
use int_core::{CoreConfig, DelayEstimator, IntCollector, NetNode, NetworkMap, Policy};
use int_packet::int::IntRecord;
use int_packet::ProbePayload;
use std::hint::black_box;

fn probe_through(origin: u32, switches: &[u32], maxq: u32) -> ProbePayload {
    let mut p = ProbePayload::new(origin, 1, 0);
    for (i, &s) in switches.iter().enumerate() {
        p.int.push(IntRecord {
            switch_id: s,
            ingress_port: 0,
            egress_port: 1,
            max_qlen_pkts: maxq,
            qlen_at_probe_pkts: maxq / 2,
            link_latency_ns: 10_000_000,
            egress_ts_ns: (i as u64 + 1) * 11_000_000,
        });
    }
    p
}

/// A ring-of-12 map as the paper's testbed produces, fully learned.
fn ring_map(hosts: u32) -> NetworkMap {
    let mut m = NetworkMap::new();
    for h in 0..hosts {
        // Host h probes the scheduler (host 100) across 4 ring switches.
        let chain: Vec<u32> = (0..4).map(|i| (h + i) % 12 + 10).collect();
        m.apply_probe(&probe_through(h, &chain, h % 8), 100, 50_000_000);
        // And the reverse path.
        let rev: Vec<u32> = chain.iter().rev().copied().collect();
        m.apply_probe(&probe_through(100, &rev, h % 5), h, 50_000_000);
    }
    m
}

fn bench_probe_ingest(c: &mut Criterion) {
    let mut g = c.benchmark_group("collector_ingest");
    for hops in [2usize, 5, 10] {
        let switches: Vec<u32> = (0..hops as u32).collect();
        let probe = probe_through(1, &switches, 7);
        g.bench_with_input(BenchmarkId::from_parameter(hops), &probe, |b, p| {
            let mut col = IntCollector::new(100);
            let mut t = 0u64;
            b.iter(|| {
                t += 100_000_000;
                col.ingest(black_box(p), t);
            })
        });
    }
    g.finish();
}

fn bench_path_traversal(c: &mut Criterion) {
    let m = ring_map(8);
    let cfg = CoreConfig::default();
    c.bench_function("map/path_lookup", |b| {
        b.iter(|| black_box(m.path(&cfg, NetNode::Host(0), NetNode::Host(4))))
    });
}

fn bench_delay_estimate(c: &mut Criterion) {
    let m = ring_map(8);
    let est = DelayEstimator::new(CoreConfig::default());
    c.bench_function("estimate/delay_one_pair", |b| {
        b.iter(|| black_box(est.estimate(&m, NetNode::Host(0), NetNode::Host(4), 50_000_000)))
    });
}

fn bench_ranking(c: &mut Criterion) {
    let mut g = c.benchmark_group("rank_query");
    for n in [4u32, 8, 16] {
        let m = ring_map(n);
        let candidates: Vec<u32> = (0..n).collect();
        for policy in [Policy::IntDelay, Policy::IntBandwidth, Policy::Nearest] {
            g.bench_with_input(
                BenchmarkId::new(format!("{policy:?}"), n),
                &candidates,
                |b, cands| {
                    let mut r = Ranker::new(CoreConfig::default(), StaticDistances::new(), 1);
                    b.iter(|| black_box(r.rank(&m, 100, cands, policy, 50_000_000)))
                },
            );
        }
    }
    g.finish();
}

/// A synthetic 3-tier fabric far beyond the paper's testbed: 128 hosts
/// behind 32 leaf, 16 aggregation, 8 spine, and 8 core switches (64
/// total), fully learned in both directions.
fn fabric_map(hosts: u32) -> NetworkMap {
    let mut m = NetworkMap::new();
    for h in 0..hosts {
        let chain =
            [100 + h % 32, 200 + h % 16, 300 + h % 8, 400 + (h / 16) % 8];
        m.apply_probe(&probe_through(h, &chain, h % 8), 1000, 50_000_000);
        let rev: Vec<u32> = chain.iter().rev().copied().collect();
        m.apply_probe(&probe_through(1000, &rev, h % 5), h, 50_000_000);
    }
    m
}

/// The PR 5 headline: sustained rank-query throughput of one long-lived
/// ranker. Steady state on an unchanged map — exactly what the scheduler
/// pays per query between probe rounds.
fn bench_rank_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("rank_throughput");

    let m = ring_map(8);
    let candidates: Vec<u32> = (0..8).collect();
    g.bench_function("testbed_8h", |b| {
        let mut r = Ranker::new(CoreConfig::default(), StaticDistances::new(), 1);
        let mut out = Vec::new();
        b.iter(|| {
            r.rank_into(&m, 100, &candidates, Policy::IntDelay, 50_000_000, &mut out);
            black_box(out.len())
        })
    });

    let m = fabric_map(128);
    let candidates: Vec<u32> = (0..128).collect();
    g.bench_function("fabric_64s_128h", |b| {
        let mut r = Ranker::new(CoreConfig::default(), StaticDistances::new(), 1);
        let mut out = Vec::new();
        b.iter(|| {
            r.rank_into(&m, 1000, &candidates, Policy::IntDelay, 50_000_000, &mut out);
            black_box(out.len())
        })
    });

    g.finish();
}

/// A multipath leaf–spine map: every host pair is learned over `spines`
/// alternate 2-switch chains (one per spine), so k-path ranking has real
/// equal-cost diversity to rank over.
fn multipath_map(hosts: u32, spines: u32) -> NetworkMap {
    let mut m = NetworkMap::new();
    for h in 0..hosts {
        for s in 0..spines {
            let chain = [100 + h % 32, 200 + s];
            m.apply_probe(&probe_through(h, &chain, (h + s) % 8), 1000, 50_000_000);
            let rev: Vec<u32> = chain.iter().rev().copied().collect();
            m.apply_probe(&probe_through(1000, &rev, (h + s) % 5), h, 50_000_000);
        }
    }
    m
}

/// The PR 8 headline: steady-state rank throughput when every candidate
/// is priced over k equal-cost paths instead of one — the ECMP fabric's
/// query cost. Same long-lived-ranker shape as `rank_throughput`, so the
/// k = 1 rows there are the direct baseline.
fn bench_rank_throughput_kpaths(c: &mut Criterion) {
    let mut g = c.benchmark_group("rank_throughput_kpaths");
    let m = multipath_map(128, 4);
    let candidates: Vec<u32> = (0..128).collect();
    for k in [1u32, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::new("fabric_mp_128h", k), &k, |b, &k| {
            let cfg = CoreConfig { k_paths: k, ..CoreConfig::default() };
            let mut r = Ranker::new(cfg, StaticDistances::new(), 1);
            let mut out = Vec::new();
            b.iter(|| {
                r.rank_into(&m, 1000, &candidates, Policy::IntDelay, 50_000_000, &mut out);
                black_box(out.len())
            })
        });
    }
    g.finish();
}

/// The PR 6 headline: aggregate rank throughput of the sharded,
/// snapshot-based control plane at 1/2/4/8 read workers. One epoch is
/// published up front (steady state between probe rounds); each
/// iteration admits and serves a 256-query batch through `serve_batch`,
/// so the measurement includes the chunking and thread-scope cost the
/// real scheduler pays. Single-worker batches skip the thread machinery
/// entirely — that is the A in the A/B.
fn bench_rank_throughput_mt(c: &mut Criterion) {
    let mut g = c.benchmark_group("rank_throughput_mt");

    let batch: Vec<RankQuery> = (0..256)
        .map(|i| RankQuery {
            requester: (i * 7) % 128,
            policy: match i % 3 {
                0 => Policy::IntDelay,
                1 => Policy::IntBandwidth,
                _ => Policy::Nearest,
            },
            now_ns: 50_000_000,
        })
        .collect();

    for workers in [1usize, 2, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("fabric_64s_128h", workers),
            &workers,
            |b, &workers| {
                let mut s = ShardedScheduler::new(
                    1000,
                    CoreConfig::default(),
                    StaticDistances::new(),
                    1,
                    workers,
                );
                for h in 0..128u32 {
                    let chain = [100 + h % 32, 200 + h % 16, 300 + h % 8, 400 + (h / 16) % 8];
                    s.core_mut()
                        .collector_mut()
                        .ingest(&probe_through(h, &chain, h % 8), 50_000_000);
                    let rev: Vec<u32> = chain.iter().rev().copied().collect();
                    s.core_mut()
                        .collector_mut()
                        .ingest_relayed(&probe_through(1000, &rev, h % 5), h, 50_000_000);
                }
                s.advance(50_000_000);
                let mut out = Vec::new();
                b.iter(|| {
                    s.serve_batch(&batch, &mut out);
                    black_box(out.len())
                })
            },
        );
    }

    g.finish();
}

/// The PR-10 datacenter shape: a 512-switch Clos (256 leaf / 128 agg /
/// 64 spine / 64 core) probed by 960 hosts toward scheduler host 10000.
fn clos_chain(h: u32) -> [u32; 4] {
    [1000 + h % 256, 2000 + h % 128, 3000 + h % 64, 4000 + h % 64]
}

/// A fully learned 512-switch Clos behind a one-shard scheduler, with
/// two epochs already published so the incremental publisher holds its
/// prev/older lineage. Eviction is parked out of reach: the bench
/// prices publication, and an eviction mid-measurement would flip every
/// epoch back to the full rebuild.
fn clos_512_sched(incremental: bool) -> ShardedScheduler {
    let cfg = CoreConfig { eviction_horizon_ns: u64::MAX, ..CoreConfig::default() };
    let mut s = ShardedScheduler::new(10_000, cfg, StaticDistances::new(), 1, 1);
    s.set_incremental_publish(incremental);
    for h in 0..960u32 {
        s.core_mut().collector_mut().ingest(&probe_through(h, &clos_chain(h), h % 8), 50_000_000);
    }
    s.advance(50_000_000);
    s.core_mut().collector_mut().ingest(&probe_through(0, &clos_chain(0), 3), 50_100_000);
    s.advance(50_100_000);
    s
}

/// Epoch publication cost at 512-switch scale with a sparse update (two
/// probes sharing the agg/spine/core tiers → 7 distinct dirty edges per
/// epoch, within the ≤8 the sustained cadence produces): the full
/// rebuild reprices every CSR arc, the incremental path only the dirty
/// ones — the ratio is the PR-10 headline number.
fn bench_publish_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("publish_throughput");
    for mode in ["full", "incremental"] {
        g.bench_function(BenchmarkId::new("clos_512s", mode), |b| {
            let mut s = clos_512_sched(mode == "incremental");
            let mut t = 50_100_000u64;
            let mut seq = 10u64;
            b.iter(|| {
                t += 100_000_000;
                seq += 1;
                let mut p0 = probe_through(0, &clos_chain(0), (seq % 8) as u32);
                p0.seq = seq;
                let mut p1 = probe_through(128, &clos_chain(128), (seq % 8) as u32);
                p1.seq = seq;
                s.core_mut().collector_mut().ingest(&p0, t);
                s.core_mut().collector_mut().ingest(&p1, t);
                black_box(s.advance(t))
            })
        });
    }
    g.finish();
}

/// Batched probe drain on the dense edge-indexed map: one epoch's
/// backlog (every host re-probing its learned chain) through
/// `ingest_batch`, all O(1) interned-edge metric writes.
fn bench_ingest_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("ingest_throughput");
    let backlog: Vec<ProbePayload> =
        (0..960u32).map(|h| probe_through(h, &clos_chain(h), h % 8)).collect();
    g.throughput(Throughput::Elements(backlog.len() as u64));
    g.bench_function("clos_512s_960probes", |b| {
        let mut col = IntCollector::new(10_000);
        col.ingest_batch(&backlog, 50_000_000); // learn topology once
        let mut t = 50_000_000u64;
        b.iter(|| {
            t += 100_000_000;
            col.ingest_batch(black_box(&backlog), t);
            black_box(col.probes_accepted())
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_probe_ingest,
    bench_path_traversal,
    bench_delay_estimate,
    bench_ranking,
    bench_rank_throughput,
    bench_rank_throughput_kpaths,
    bench_rank_throughput_mt,
    bench_publish_throughput,
    bench_ingest_throughput
);
criterion_main!(benches);
