//! Conservative parallel execution over latency-partitioned domains.
//!
//! [`ParSim`] runs one [`Simulator`] per [`DomainPartition`] domain, each
//! on its own scoped thread, in lockstep *barrier windows* of the
//! partition's lookahead `L` (the minimum propagation delay over every
//! cut link). Within a window `[cur, cur + L - 1]` no domain can be
//! affected by a frame another domain transmits in the same window — the
//! frame arrives at `sent_at + tx + delay ≥ sent_at + L > window end` —
//! so each domain may process its local events independently and
//! exchange the frames that crossed a boundary at the barrier.
//!
//! Determinism: cross-domain frames carry a `(at, sent_at, src_domain,
//! seq)` key; every domain sorts the batch it receives at a barrier by
//! that key before scheduling, so injection order — and therefore the
//! event queue's tie-break order among same-instant arrivals — is a pure
//! function of the traffic, not of thread scheduling. Same-seed runs are
//! byte-identical across domain counts and to the single-thread oracle
//! (DESIGN.md §5.9 gives the argument; the test below enforces it).
//!
//! `INT_SIM_DOMAINS` selects the domain count at runtime
//! ([`domains_from_env`]); `1` (the default) collapses to a plain
//! single-thread simulator with zero overhead.

use crate::app::App;
use crate::domain::DomainPartition;
use crate::engine::{CrossMsg, DomainCtx, SimConfig, Simulator};
use crate::fault::FaultPlan;
use crate::routing::{ClosRoutes, RouteTable, Routes};
use crate::stats::NetStats;
use crate::time::SimTime;
use crate::topology::{NodeId, Topology};
use int_obs::MetricsRegistry;
use std::sync::mpsc::sync_channel;
use std::sync::{Arc, Barrier};

/// Domain count requested via `INT_SIM_DOMAINS` (default 1; values < 1
/// are clamped to 1).
pub fn domains_from_env() -> u16 {
    std::env::var("INT_SIM_DOMAINS")
        .ok()
        .and_then(|v| v.trim().parse::<u16>().ok())
        .map(|d| d.max(1))
        .unwrap_or(1)
}

/// A partitioned simulation: one engine per domain, run in conservative
/// lockstep windows. With one domain it degenerates to a plain
/// [`Simulator`] (no threads, no barriers, no ownership checks).
pub struct ParSim {
    sims: Vec<Simulator>,
    part: DomainPartition,
    now: SimTime,
}

impl ParSim {
    /// Partitioned simulator over a dense route table (computed once,
    /// shared by every domain).
    pub fn new(topo: Topology, cfg: SimConfig, domains: u16) -> ParSim {
        topo.validate().expect("invalid topology");
        let routes = Routes::Table(RouteTable::compute(&topo));
        Self::build(Arc::new(topo), Arc::new(routes), cfg, domains)
    }

    /// Partitioned simulator over structural Clos routes (the giant-run
    /// configuration: no dense table is ever materialized).
    pub fn new_clos(topo: Topology, clos: ClosRoutes, cfg: SimConfig, domains: u16) -> ParSim {
        topo.validate().expect("invalid topology");
        Self::build(Arc::new(topo), Arc::new(Routes::Clos(clos)), cfg, domains)
    }

    fn build(topo: Arc<Topology>, routes: Arc<Routes>, cfg: SimConfig, want: u16) -> ParSim {
        let part = DomainPartition::compute(&topo, want);
        debug_assert!(part.validate(&topo).is_ok());
        let sims = if part.domains == 1 {
            vec![Simulator::build(topo, routes, cfg, None)]
        } else {
            let of = Arc::new(part.domain_of.clone());
            (0..part.domains)
                .map(|d| {
                    Simulator::build(
                        topo.clone(),
                        routes.clone(),
                        cfg,
                        Some(DomainCtx::new(d, of.clone())),
                    )
                })
                .collect()
        };
        ParSim { sims, part, now: SimTime::ZERO }
    }

    /// The partition in effect (1 domain means single-thread execution).
    pub fn partition(&self) -> &DomainPartition {
        &self.part
    }

    /// Number of engines actually running.
    pub fn domains(&self) -> u16 {
        self.part.domains
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The engine owning `node`.
    fn sim_of(&self, node: NodeId) -> usize {
        if self.sims.len() == 1 { 0 } else { self.part.domain(node) as usize }
    }

    /// Install an application on its owner domain's engine. The returned
    /// index is scoped to that engine — pass it back to [`ParSim::app`].
    pub fn install_app(&mut self, node: NodeId, app: Box<dyn App>) -> usize {
        let d = self.sim_of(node);
        self.sims[d].install_app(node, app)
    }

    /// Install a fault plan into *every* domain: each engine mirrors the
    /// state transitions (its local liveness checks need them), while
    /// counting and tracing stay owner-only so merged stats match the
    /// single-thread oracle.
    pub fn install_fault_plan(&mut self, plan: &FaultPlan) {
        for sim in &mut self.sims {
            sim.install_fault_plan(plan);
        }
    }

    /// Downcast an installed app's state for inspection.
    pub fn app<T: 'static>(&self, node: NodeId, app_idx: usize) -> Option<&T> {
        self.sims[self.sim_of(node)].app(node, app_idx)
    }

    /// Enable (or disable) trace recording in every domain.
    pub fn set_tracing(&mut self, on: bool) {
        for sim in &mut self.sims {
            sim.set_tracing(on);
        }
    }

    /// Enable (or disable) metrics recording in every domain.
    pub fn set_metrics_enabled(&mut self, on: bool) {
        for sim in &mut self.sims {
            sim.metrics_mut().set_enabled(on);
        }
    }

    /// The per-domain engines (for trace-ring configuration and other
    /// per-engine inspection; mutating topology-level state through this
    /// asymmetrically across domains breaks the determinism contract).
    pub fn sims_mut(&mut self) -> &mut [Simulator] {
        &mut self.sims
    }

    /// Read-only view of the per-domain engines.
    pub fn sims(&self) -> &[Simulator] {
        &self.sims
    }

    /// Merged ground-truth counters: the exact fieldwise sum of every
    /// domain (fault events are counted owner-only, so nothing is
    /// double-counted).
    pub fn stats(&self) -> NetStats {
        let mut total = NetStats::default();
        for sim in &self.sims {
            total.merge(&sim.stats());
        }
        total
    }

    /// Total pending events across domains (diagnostics).
    pub fn pending_events(&self) -> usize {
        self.sims.iter().map(|s| s.pending_events()).sum()
    }

    /// Merged metrics: every domain's registry folded into one (counters
    /// sum, histograms merge fieldwise, gauges keep the latest sample).
    pub fn merged_metrics(&self) -> MetricsRegistry {
        let mut out = MetricsRegistry::new();
        for sim in &self.sims {
            out.merge(sim.metrics());
        }
        out
    }

    /// Run every domain until simulated time `t` (inclusive).
    ///
    /// Multi-domain runs proceed in lockstep windows of the lookahead:
    /// each thread runs its engine to the window end, publishes its
    /// outbound cross-domain frames (one batch per peer, always sent,
    /// possibly empty), receives exactly one batch from every peer, sorts
    /// the union by the deterministic merge key, schedules it, and waits
    /// at the barrier. The bounded channels hold at most one window's
    /// batches, so memory stays O(domains² + in-flight frames).
    pub fn run_until(&mut self, t: SimTime) {
        assert!(t >= self.now, "time went backwards");
        if self.sims.len() == 1 {
            self.sims[0].run_until(t);
            self.now = t;
            return;
        }
        let n = self.sims.len();
        let la = self.part.lookahead.as_nanos();
        assert!(la > 0, "zero lookahead cannot advance");
        let start = self.now.as_nanos();
        let end = t.as_nanos();

        let barrier = Barrier::new(n);
        let mut txs = Vec::with_capacity(n);
        let mut rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = sync_channel::<Vec<CrossMsg>>(n);
            txs.push(tx);
            rxs.push(rx);
        }
        let domain_of: &[u16] = &self.part.domain_of;
        std::thread::scope(|s| {
            for (i, (sim, rx)) in self.sims.iter_mut().zip(rxs).enumerate() {
                let txs = txs.clone();
                let barrier = &barrier;
                s.spawn(move || {
                    let mut cur = start;
                    loop {
                        let w_end = cur.saturating_add(la - 1).min(end);
                        sim.run_until(SimTime(w_end));

                        let mut buckets: Vec<Vec<CrossMsg>> = (0..n).map(|_| Vec::new()).collect();
                        for m in sim.take_outbox() {
                            buckets[domain_of[m.node.0 as usize] as usize].push(m);
                        }
                        for (j, b) in buckets.into_iter().enumerate() {
                            if j != i {
                                txs[j].send(b).expect("peer domain hung up");
                            } else {
                                debug_assert!(b.is_empty(), "outbox held a local frame");
                            }
                        }
                        let mut pending: Vec<CrossMsg> = Vec::new();
                        for _ in 0..n - 1 {
                            pending.extend(rx.recv().expect("peer domain hung up"));
                        }
                        pending.sort_by_key(|m| (m.at, m.sent_at, m.src_domain, m.seq));
                        sim.inject_cross(pending);

                        // The barrier separates windows: nobody starts
                        // window k+1 (and sends its batches) until every
                        // domain has drained window k's batches.
                        barrier.wait();
                        if w_end >= end {
                            break;
                        }
                        cur = w_end + 1;
                    }
                });
            }
        });
        self.now = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::AppCtx;
    use crate::fault::FaultPlan;
    use crate::time::SimDuration;
    use crate::topology::{ClosParams, LinkParams};
    use int_dataplane::EcmpSelect;
    use int_obs::trace::{canonical_order, render_events_json};
    use int_obs::TraceRing;
    use std::any::Any;
    use std::net::Ipv4Addr;

    /// CBR sender: a datagram to `dst` every `period`, forever.
    struct Blaster {
        dst: Ipv4Addr,
        period: SimDuration,
        sent: u64,
    }

    impl App for Blaster {
        fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
            ctx.bind_udp(7000);
            ctx.set_timer(self.period, 1);
        }
        fn on_timer(&mut self, ctx: &mut AppCtx<'_>, _timer_id: u64) {
            ctx.send_udp(7000, self.dst, 7000, vec![0xAB; 400]);
            self.sent += 1;
            ctx.set_timer(self.period, 1);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Counts datagrams received on port 7000.
    #[derive(Default)]
    struct Sink {
        got: u64,
    }

    impl App for Sink {
        fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
            ctx.bind_udp(7000);
        }
        fn on_udp(
            &mut self,
            _ctx: &mut AppCtx<'_>,
            _from: Ipv4Addr,
            _from_port: u16,
            _to_port: u16,
            _payload: &[u8],
        ) {
            self.got += 1;
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// A congested, fault-injected tiered Clos scenario: every host on
    /// leaves 0..2 blasts a partner two leaves over (all traffic crosses
    /// the spine tier, i.e. every potential domain cut), one uplink flaps,
    /// and one lossy period is active. Narrow queues force drops.
    fn scenario() -> (Topology, Vec<(NodeId, NodeId)>, FaultPlan) {
        let host = LinkParams {
            bandwidth_bps: 100_000_000,
            delay: SimDuration::from_micros(50),
            queue_cap_pkts: 8,
        };
        let uplink = LinkParams {
            bandwidth_bps: 200_000_000,
            delay: SimDuration::from_millis(2),
            queue_cap_pkts: 8,
        };
        let params = ClosParams { spines: 2, leaves: 4, hosts_per_leaf: 3, link: host };
        let fabric = params.build_tiered(uplink);
        let hosts = fabric.hosts.clone();
        let pairs: Vec<(NodeId, NodeId)> = (0..6)
            .map(|i| (hosts[i], hosts[i + 6]))
            .collect();

        // Flap the leaf0–spine0 uplink mid-run and make both of leaf2's
        // uplinks lossy — every flow into leaf2 crosses one of them, so
        // the loss path fires regardless of how flows hash.
        let (leaves, spines) = (&fabric.tiers[0], &fabric.tiers[1]);
        let plan = FaultPlan::new()
            .link_down(leaves[0], spines[0], SimTime(SimDuration::from_millis(20).as_nanos()))
            .link_up(leaves[0], spines[0], SimTime(SimDuration::from_millis(60).as_nanos()))
            .link_loss(leaves[2], spines[0], 0.2)
            .link_loss(leaves[2], spines[1], 0.2);
        (fabric.topo, pairs, plan)
    }

    fn run_par(domains: u16) -> (NetStats, String, String, u64) {
        let (topo, pairs, plan) = scenario();
        let cfg = SimConfig { seed: 77, ecmp: EcmpSelect::FlowHash, ..SimConfig::default() };
        let mut sim = ParSim::new(topo, cfg, domains);
        if domains > 1 {
            assert_eq!(sim.domains(), domains, "scenario must actually split");
        }
        sim.install_fault_plan(&plan);
        for sim_ in sim.sims_mut() {
            *sim_.trace_ring_mut() = TraceRing::new(1 << 20);
        }
        sim.set_tracing(true);
        sim.set_metrics_enabled(true);
        let mut sinks = Vec::new();
        for &(src, dst) in &pairs {
            sim.install_app(
                src,
                Box::new(Blaster {
                    dst: Topology::host_ip(dst),
                    period: SimDuration::from_micros(200),
                    sent: 0,
                }),
            );
            sinks.push((dst, sim.install_app(dst, Box::new(Sink::default()))));
        }
        sim.run_until(SimTime(SimDuration::from_millis(80).as_nanos()));

        let delivered: u64 =
            sinks.iter().map(|&(n, i)| sim.app::<Sink>(n, i).unwrap().got).sum();
        let metrics = sim.merged_metrics().snapshot_json();
        let (mut events, mut seen, mut evicted) = (Vec::new(), 0u64, 0u64);
        for sim_ in sim.sims_mut() {
            let ring = sim_.trace_ring_mut();
            assert_eq!(ring.evicted(), 0, "ring too small for byte-equality");
            seen += ring.seen();
            evicted += ring.evicted();
            events.extend(ring.take_events());
        }
        canonical_order(&mut events);
        let trace = render_events_json(seen, evicted, &events);
        (sim.stats(), metrics, trace, delivered)
    }

    /// The tentpole determinism contract: a congested, fault-injected run
    /// produces identical stats, metrics, and canonical traces at 1, 2,
    /// and 4 domains.
    #[test]
    fn partitioned_runs_match_the_single_thread_oracle() {
        let (s1, m1, t1, d1) = run_par(1);
        assert!(s1.frames_delivered > 500, "scenario is too quiet: {s1:?}");
        assert!(s1.total_drops() > 0, "scenario must congest");
        assert!(s1.drops_link_loss > 0, "loss must fire");
        assert!(d1 > 0);
        for domains in [2u16, 4] {
            let (s, m, t, d) = run_par(domains);
            assert_eq!(s, s1, "stats diverge at {domains} domains");
            assert_eq!(m, m1, "metrics diverge at {domains} domains");
            assert_eq!(t, t1, "trace diverges at {domains} domains");
            assert_eq!(d, d1, "deliveries diverge at {domains} domains");
        }
    }

    /// Cross-window scheduling: repeated short `run_until` calls (epoch
    /// style) land on the same artifacts as one long call.
    #[test]
    fn epoch_stepping_matches_one_shot() {
        let run = |steps: u64| -> (NetStats, String) {
            let (topo, pairs, plan) = scenario();
            let cfg = SimConfig { seed: 9, ecmp: EcmpSelect::FlowHash, ..SimConfig::default() };
            let mut sim = ParSim::new(topo, cfg, 2);
            sim.install_fault_plan(&plan);
            sim.set_metrics_enabled(true);
            for &(src, dst) in &pairs {
                sim.install_app(
                    src,
                    Box::new(Blaster {
                        dst: Topology::host_ip(dst),
                        period: SimDuration::from_micros(500),
                        sent: 0,
                    }),
                );
            }
            let end = SimDuration::from_millis(40).as_nanos();
            for k in 1..=steps {
                sim.run_until(SimTime(end * k / steps));
            }
            (sim.stats(), sim.merged_metrics().snapshot_json())
        };
        assert_eq!(run(1), run(8));
    }

    /// One domain must behave exactly like the plain engine — same type
    /// of run, no threads involved.
    #[test]
    fn single_domain_collapses_to_plain_engine() {
        let (topo, pairs, plan) = scenario();
        let cfg = SimConfig { seed: 5, ecmp: EcmpSelect::FlowHash, ..SimConfig::default() };

        let mut plain = Simulator::new(topo.clone(), cfg);
        plain.install_fault_plan(&plan);
        for &(src, dst) in &pairs {
            plain.install_app(
                src,
                Box::new(Blaster {
                    dst: Topology::host_ip(dst),
                    period: SimDuration::from_micros(300),
                    sent: 0,
                }),
            );
        }
        plain.run_until(SimTime(SimDuration::from_millis(30).as_nanos()));

        let mut par = ParSim::new(topo, cfg, 1);
        par.install_fault_plan(&plan);
        for &(src, dst) in &pairs {
            par.install_app(
                src,
                Box::new(Blaster {
                    dst: Topology::host_ip(dst),
                    period: SimDuration::from_micros(300),
                    sent: 0,
                }),
            );
        }
        par.run_until(SimTime(SimDuration::from_millis(30).as_nanos()));

        assert_eq!(par.domains(), 1);
        assert_eq!(par.stats(), plain.stats());
    }

    #[test]
    fn env_override_parses_and_clamps() {
        // Not using set_var: tests run multi-threaded. Parse logic only.
        assert_eq!(domains_from_env(), 1); // unset in the test env
    }
}
