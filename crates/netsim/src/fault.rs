//! Fault injection: scheduled link/switch failures and probabilistic
//! per-link frame loss.
//!
//! A [`FaultPlan`] is a declarative schedule authored in terms of the
//! topology the experimenter sees — node pairs for links, node ids for
//! switches — and resolved against the [`Topology`] when installed into
//! the engine. Execution is event-driven: each transition becomes an
//! [`Event::Fault`](crate::event::Event) at its scheduled time, so fault
//! timing composes deterministically with the rest of the event queue
//! (FIFO among same-time events, identical replay for identical seeds).
//!
//! The failure semantics mirror a cable pull, not a graceful drain:
//!
//! * **Link down** — frames starting serialization on the link are
//!   transmitted into the void (the port still spends the serialization
//!   time, so queues drain at line rate), and frames already in flight
//!   when the link goes down are lost on arrival.
//! * **Switch fail** — the node stops forwarding: anything arriving at it
//!   is dropped, and anything still queued on its ports is dropped as the
//!   ports drain.
//! * **Probabilistic loss** — each frame entering a lossy link is dropped
//!   with probability `p`, rolled on a dedicated RNG stream **per link
//!   and direction**, derived purely from the master seed and the
//!   `(link, direction)` pair (so loss perturbs neither application RNG
//!   streams nor other links' streams). Per-direction streams matter for
//!   the parallel engine: all transmissions in one direction of a link
//!   are serialized by the transmitting node, so the stream is consumed
//!   in the same order no matter how the fabric is partitioned into
//!   domains.
//!
//! Routing is static (computed at construction), so a failed link is a
//! blackhole for every pair routed across it — exactly the condition the
//! `failover` experiment needs the scheduler to detect from telemetry
//! silence rather than from rerouting.

use crate::time::SimTime;
use crate::topology::{LinkId, NodeId, NodeKind, Topology};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// A resolved fault transition, ready for the event queue.
///
/// Kept to two words so [`Event`](crate::event::Event) stays within its
/// compact-layout budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// The link stops carrying frames.
    LinkDown(LinkId),
    /// The link carries frames again.
    LinkUp(LinkId),
    /// The switch stops forwarding.
    SwitchFail(NodeId),
    /// The switch forwards again.
    SwitchRecover(NodeId),
}

/// One scheduled transition in experimenter terms (node pairs, not link
/// ids — resolved at install time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultSpec {
    LinkDown(NodeId, NodeId),
    LinkUp(NodeId, NodeId),
    SwitchFail(NodeId),
    SwitchRecover(NodeId),
}

/// A declarative schedule of failures plus per-link loss probabilities.
///
/// Build one with the fluent methods, then hand it to
/// [`Simulator::install_fault_plan`](crate::engine::Simulator::install_fault_plan).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    events: Vec<(SimTime, FaultSpec)>,
    loss: Vec<(NodeId, NodeId, f64)>,
}

impl FaultPlan {
    /// Empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Take the link between `a` and `b` down at time `at`.
    pub fn link_down(mut self, a: NodeId, b: NodeId, at: SimTime) -> Self {
        self.events.push((at, FaultSpec::LinkDown(a, b)));
        self
    }

    /// Bring the link between `a` and `b` back up at time `at`.
    pub fn link_up(mut self, a: NodeId, b: NodeId, at: SimTime) -> Self {
        self.events.push((at, FaultSpec::LinkUp(a, b)));
        self
    }

    /// Fail switch `sw` at time `at`.
    pub fn switch_fail(mut self, sw: NodeId, at: SimTime) -> Self {
        self.events.push((at, FaultSpec::SwitchFail(sw)));
        self
    }

    /// Recover switch `sw` at time `at`.
    pub fn switch_recover(mut self, sw: NodeId, at: SimTime) -> Self {
        self.events.push((at, FaultSpec::SwitchRecover(sw)));
        self
    }

    /// Drop each frame entering the link between `a` and `b` with
    /// probability `p` (both directions), for the whole run.
    pub fn link_loss(mut self, a: NodeId, b: NodeId, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "loss probability {p} outside [0, 1]");
        self.loss.push((a, b, p));
        self
    }

    /// True if the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.loss.is_empty()
    }

    /// Resolve the plan against a topology: node pairs become link ids,
    /// switch ids are checked to actually be switches.
    pub(crate) fn resolve(&self, topo: &Topology) -> Result<ResolvedFaultPlan, String> {
        let mut events = Vec::with_capacity(self.events.len());
        for &(at, spec) in &self.events {
            let action = match spec {
                FaultSpec::LinkDown(a, b) => FaultAction::LinkDown(Self::find_link(topo, a, b)?),
                FaultSpec::LinkUp(a, b) => FaultAction::LinkUp(Self::find_link(topo, a, b)?),
                FaultSpec::SwitchFail(sw) => FaultAction::SwitchFail(Self::check_switch(topo, sw)?),
                FaultSpec::SwitchRecover(sw) => {
                    FaultAction::SwitchRecover(Self::check_switch(topo, sw)?)
                }
            };
            events.push((at, action));
        }
        let mut loss = Vec::with_capacity(self.loss.len());
        for &(a, b, p) in &self.loss {
            loss.push((Self::find_link(topo, a, b)?, p));
        }
        Ok(ResolvedFaultPlan { events, loss })
    }

    fn find_link(topo: &Topology, a: NodeId, b: NodeId) -> Result<LinkId, String> {
        topo.link_between(a, b).ok_or_else(|| format!("no link between {a} and {b}"))
    }

    fn check_switch(topo: &Topology, sw: NodeId) -> Result<NodeId, String> {
        if topo.nodes.get(sw.0 as usize).map(|n| n.kind) == Some(NodeKind::Switch) {
            Ok(sw)
        } else {
            Err(format!("{sw} is not a switch"))
        }
    }
}

/// A plan resolved against a concrete topology.
#[derive(Debug, Clone)]
pub(crate) struct ResolvedFaultPlan {
    pub(crate) events: Vec<(SimTime, FaultAction)>,
    pub(crate) loss: Vec<(LinkId, f64)>,
}

/// Runtime fault state the engine consults on the data path.
///
/// Only simulations with an installed plan carry one; fault-free runs pay
/// a single `Option` check per transmission.
#[derive(Debug)]
pub struct FaultState {
    /// Per-link up/down (index = `LinkId.0`).
    link_up: Vec<bool>,
    /// Per-node up/down (index = `NodeId.0`; hosts never fail).
    node_up: Vec<bool>,
    /// Per-link loss probability (index = `LinkId.0`; 0.0 = lossless).
    loss: Vec<f64>,
    /// True if any link has nonzero loss (skips the per-frame lookup).
    any_loss: bool,
    /// Master seed, mixed into each `(link, direction)` stream seed.
    seed: u64,
    /// Lazily created loss-roll streams, one per `(link, direction)`.
    /// Seeded purely from `(seed, link, direction)`, so a stream's roll
    /// sequence depends only on how many frames crossed *that* link in
    /// *that* direction — not on global event interleaving. That makes
    /// loss outcomes invariant under domain partitioning: each direction
    /// is consumed by exactly one transmitting node's serialized port.
    streams: HashMap<(u32, bool), SmallRng>,
}

impl FaultState {
    pub(crate) fn new(topo: &Topology, plan: &ResolvedFaultPlan, seed: u64) -> Self {
        let mut loss = vec![0.0; topo.links.len()];
        for &(id, p) in &plan.loss {
            loss[id.0 as usize] = p;
        }
        let any_loss = loss.iter().any(|&p| p > 0.0);
        FaultState {
            link_up: vec![true; topo.links.len()],
            node_up: vec![true; topo.nodes.len()],
            loss,
            any_loss,
            seed,
            streams: HashMap::new(),
        }
    }

    /// Apply one transition.
    pub(crate) fn apply(&mut self, action: FaultAction) {
        match action {
            FaultAction::LinkDown(l) => self.link_up[l.0 as usize] = false,
            FaultAction::LinkUp(l) => self.link_up[l.0 as usize] = true,
            FaultAction::SwitchFail(n) => self.node_up[n.0 as usize] = false,
            FaultAction::SwitchRecover(n) => self.node_up[n.0 as usize] = true,
        }
    }

    /// Is the link currently carrying frames?
    pub fn link_is_up(&self, id: LinkId) -> bool {
        self.link_up[id.0 as usize]
    }

    /// Is the node currently forwarding?
    pub fn node_is_up(&self, id: NodeId) -> bool {
        self.node_up[id.0 as usize]
    }

    /// Roll the loss dice for a frame entering `link` in the direction
    /// `from_a` (true when the transmitter is the link's `a` endpoint).
    /// Consumes RNG state only for links with nonzero loss, so loss-free
    /// plans replay the same schedule as no plan at all.
    pub(crate) fn roll_loss(&mut self, link: LinkId, from_a: bool) -> bool {
        if !self.any_loss {
            return false;
        }
        let p = self.loss[link.0 as usize];
        if p <= 0.0 {
            return false;
        }
        let seed = self.seed;
        let rng = self.streams.entry((link.0, from_a)).or_insert_with(|| {
            // Golden-ratio mix of (master seed, link, direction) keeps
            // every stream distinct from each other and from the
            // per-host application streams derived from the same seed.
            let tag = 0xF4A7_0000_0000_0001u64
                ^ ((link.0 as u64) << 1 | from_a as u64);
            SmallRng::seed_from_u64(seed ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        });
        rng.gen_bool(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use crate::topology::LinkParams;

    fn topo() -> (Topology, NodeId, NodeId, NodeId) {
        let mut t = Topology::new();
        let h1 = t.add_host("h1");
        let s1 = t.add_switch("s1");
        let h2 = t.add_host("h2");
        t.add_link(h1, s1, LinkParams::paper_default());
        t.add_link(s1, h2, LinkParams::paper_default());
        (t, h1, s1, h2)
    }

    #[test]
    fn resolves_node_pairs_to_links() {
        let (t, h1, s1, h2) = topo();
        let at = SimTime::ZERO + SimDuration::from_secs(1);
        let plan = FaultPlan::new()
            .link_down(h1, s1, at)
            .link_up(s1, h1, at + SimDuration::from_secs(1))
            .link_loss(s1, h2, 0.25);
        let r = plan.resolve(&t).expect("resolves");
        assert_eq!(r.events[0], (at, FaultAction::LinkDown(LinkId(0))));
        assert_eq!(
            r.events[1],
            (at + SimDuration::from_secs(1), FaultAction::LinkUp(LinkId(0)))
        );
        assert_eq!(r.loss, vec![(LinkId(1), 0.25)]);
    }

    #[test]
    fn rejects_missing_link_and_non_switch() {
        let (t, h1, _s1, h2) = topo();
        let err = FaultPlan::new()
            .link_down(h1, h2, SimTime::ZERO)
            .resolve(&t)
            .unwrap_err();
        assert!(err.contains("no link"), "{err}");
        let err = FaultPlan::new().switch_fail(h1, SimTime::ZERO).resolve(&t).unwrap_err();
        assert!(err.contains("not a switch"), "{err}");
    }

    #[test]
    fn state_tracks_transitions() {
        let (t, _h1, s1, _h2) = topo();
        let plan = FaultPlan::new().resolve(&t).unwrap();
        let mut st = FaultState::new(&t, &plan, 1);
        assert!(st.link_is_up(LinkId(0)));
        assert!(st.node_is_up(s1));
        st.apply(FaultAction::LinkDown(LinkId(0)));
        st.apply(FaultAction::SwitchFail(s1));
        assert!(!st.link_is_up(LinkId(0)));
        assert!(!st.node_is_up(s1));
        st.apply(FaultAction::LinkUp(LinkId(0)));
        st.apply(FaultAction::SwitchRecover(s1));
        assert!(st.link_is_up(LinkId(0)));
        assert!(st.node_is_up(s1));
    }

    #[test]
    fn loss_roll_is_deterministic_and_respects_probability() {
        let (t, h1, s1, _h2) = topo();
        let plan = FaultPlan::new().link_loss(h1, s1, 0.5).resolve(&t).unwrap();
        let rolls = |seed| {
            let mut st = FaultState::new(&t, &plan, seed);
            (0..1000).map(|_| st.roll_loss(LinkId(0), true)).collect::<Vec<_>>()
        };
        let a = rolls(9);
        assert_eq!(a, rolls(9), "same seed, same rolls");
        let hits = a.iter().filter(|&&b| b).count();
        assert!((300..700).contains(&hits), "p=0.5 plausibly honored: {hits}/1000");
        // Lossless link never consumes a roll outcome.
        let mut st = FaultState::new(&t, &plan, 9);
        assert!(!st.roll_loss(LinkId(1), true));
    }

    #[test]
    fn loss_streams_are_independent_per_link_and_direction() {
        let (t, h1, s1, h2) = topo();
        let plan = FaultPlan::new()
            .link_loss(h1, s1, 0.5)
            .link_loss(s1, h2, 0.5)
            .resolve(&t)
            .unwrap();
        // Interleaving rolls on other (link, direction) pairs must not
        // perturb a stream — the property that makes loss outcomes
        // independent of domain partitioning.
        let solo = {
            let mut st = FaultState::new(&t, &plan, 7);
            (0..200).map(|_| st.roll_loss(LinkId(0), true)).collect::<Vec<_>>()
        };
        let interleaved = {
            let mut st = FaultState::new(&t, &plan, 7);
            (0..200)
                .map(|_| {
                    let r = st.roll_loss(LinkId(0), true);
                    st.roll_loss(LinkId(0), false);
                    st.roll_loss(LinkId(1), true);
                    r
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(solo, interleaved, "streams do not perturb each other");
        // And the two directions of one link are distinct streams.
        let mut st = FaultState::new(&t, &plan, 7);
        let fwd: Vec<bool> = (0..200).map(|_| st.roll_loss(LinkId(0), true)).collect();
        let mut st = FaultState::new(&t, &plan, 7);
        let rev: Vec<bool> = (0..200).map(|_| st.roll_loss(LinkId(0), false)).collect();
        assert_ne!(fwd, rev, "directions draw from different streams");
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn loss_probability_validated() {
        let (_t, h1, s1, _h2) = topo();
        let _ = FaultPlan::new().link_loss(h1, s1, 1.5);
    }
}
