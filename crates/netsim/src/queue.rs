//! Drop-tail FIFO egress queues — the congestion mechanism whose occupancy
//! the INT program measures.

use int_dataplane::Frame;
use std::collections::VecDeque;

/// Statistics a queue keeps about itself (ground truth, used to validate
//  what INT *measures* against what actually happened).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Frames accepted.
    pub enqueued: u64,
    /// Frames rejected because the queue was full.
    pub dropped: u64,
    /// Maximum depth ever reached (packets).
    pub max_depth_pkts: u32,
    /// Bytes currently queued.
    pub bytes: u64,
}

/// A bounded FIFO of frames with drop-tail admission.
///
/// Frames are boxed so admission and rejection move one pointer, and so a
/// rejected frame can be handed back to the caller for buffer recycling.
#[derive(Debug, Default)]
pub struct DropTailQueue {
    frames: VecDeque<Box<Frame>>,
    cap_pkts: usize,
    stats: QueueStats,
}

impl DropTailQueue {
    /// Queue holding at most `cap_pkts` packets.
    pub fn new(cap_pkts: usize) -> Self {
        assert!(cap_pkts > 0, "zero-capacity queue");
        DropTailQueue { frames: VecDeque::with_capacity(cap_pkts.min(1024)), cap_pkts, stats: QueueStats::default() }
    }

    /// Try to enqueue. Returns `None` on success; when the queue is full
    /// the drop is counted and the frame comes back to the caller (so its
    /// buffer can be recycled instead of freed). Ignoring the returned
    /// frame silently leaks a pooled buffer, hence `#[must_use]`.
    #[must_use = "a rejected frame must be recycled, not dropped"]
    pub fn enqueue(&mut self, frame: Box<Frame>) -> Option<Box<Frame>> {
        if self.frames.len() >= self.cap_pkts {
            self.stats.dropped += 1;
            return Some(frame);
        }
        self.stats.enqueued += 1;
        self.stats.bytes += frame.wire_len() as u64;
        self.frames.push_back(frame);
        let depth = self.frames.len() as u32;
        if depth > self.stats.max_depth_pkts {
            self.stats.max_depth_pkts = depth;
        }
        None
    }

    /// Remove the head frame.
    pub fn dequeue(&mut self) -> Option<Box<Frame>> {
        let f = self.frames.pop_front()?;
        self.stats.bytes -= f.wire_len() as u64;
        Some(f)
    }

    /// Current depth in packets.
    pub fn depth_pkts(&self) -> usize {
        self.frames.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Capacity in packets.
    pub fn capacity_pkts(&self) -> usize {
        self.cap_pkts
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    fn frame(len: usize) -> Box<Frame> {
        Box::new(Frame::new(BytesMut::from(vec![0u8; len].as_slice())))
    }

    #[test]
    fn fifo_order() {
        let mut q = DropTailQueue::new(10);
        assert!(q.enqueue(frame(1)).is_none());
        assert!(q.enqueue(frame(2)).is_none());
        assert!(q.enqueue(frame(3)).is_none());
        assert_eq!(q.dequeue().unwrap().wire_len(), 1);
        assert_eq!(q.dequeue().unwrap().wire_len(), 2);
        assert_eq!(q.dequeue().unwrap().wire_len(), 3);
        assert!(q.dequeue().is_none());
    }

    #[test]
    fn drop_tail_when_full() {
        let mut q = DropTailQueue::new(2);
        assert!(q.enqueue(frame(10)).is_none());
        assert!(q.enqueue(frame(20)).is_none());
        let rejected = q.enqueue(frame(30)).expect("third frame dropped");
        assert_eq!(rejected.wire_len(), 30, "the rejected frame comes back intact");
        assert_eq!(q.depth_pkts(), 2);
        let s = q.stats();
        assert_eq!(s.enqueued, 2);
        assert_eq!(s.dropped, 1);
        // Head is still the first frame (tail-drop, not head-drop).
        assert_eq!(q.dequeue().unwrap().wire_len(), 10);
    }

    #[test]
    fn stats_track_bytes_and_max_depth() {
        let mut q = DropTailQueue::new(5);
        assert!(q.enqueue(frame(100)).is_none());
        assert!(q.enqueue(frame(50)).is_none());
        assert_eq!(q.stats().bytes, 150);
        assert_eq!(q.stats().max_depth_pkts, 2);
        q.dequeue();
        assert_eq!(q.stats().bytes, 50);
        assert_eq!(q.stats().max_depth_pkts, 2, "max depth is a high-water mark");
    }

    #[test]
    #[should_panic(expected = "zero-capacity")]
    fn zero_capacity_rejected() {
        DropTailQueue::new(0);
    }
}
