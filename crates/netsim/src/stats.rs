//! Ground-truth simulator statistics (what *actually* happened, as opposed
//! to what INT *measured* — the tests compare the two).

use serde::{Deserialize, Serialize};

/// Engine-wide counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetStats {
    /// Events dispatched by the engine.
    pub events_processed: u64,
    /// Frames handed to host applications / transports.
    pub frames_delivered: u64,
    /// Frames forwarded by switches.
    pub frames_forwarded: u64,
    /// Frames dropped because an egress queue was full.
    pub drops_queue_full: u64,
    /// Frames dropped by the data plane (no route, TTL, parse failure).
    pub drops_dataplane: u64,
    /// Frames dropped at a host (wrong address, unbound port).
    pub drops_host: u64,
}

impl NetStats {
    /// Total drops of any kind.
    pub fn total_drops(&self) -> u64 {
        self.drops_queue_full + self.drops_dataplane + self.drops_host
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_drops_sums() {
        let s = NetStats {
            drops_queue_full: 1,
            drops_dataplane: 2,
            drops_host: 3,
            ..Default::default()
        };
        assert_eq!(s.total_drops(), 6);
    }
}
