//! Ground-truth simulator statistics (what *actually* happened, as opposed
//! to what INT *measured* — the tests compare the two).

use serde::{Deserialize, Serialize};

/// Engine-wide counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetStats {
    /// Events dispatched by the engine.
    pub events_processed: u64,
    /// Frames handed to host applications / transports.
    pub frames_delivered: u64,
    /// Frames forwarded by switches.
    pub frames_forwarded: u64,
    /// Frames dropped because an egress queue was full.
    pub drops_queue_full: u64,
    /// Frames dropped by the data plane (no route, TTL, parse failure).
    pub drops_dataplane: u64,
    /// Frames dropped at a host (wrong address, unbound port).
    pub drops_host: u64,
    /// Frames dropped because their link was administratively down
    /// (fault injection): transmitted into the void or lost in flight.
    pub drops_link_down: u64,
    /// Frames dropped at or by a failed switch (fault injection).
    pub drops_switch_down: u64,
    /// Frames lost to probabilistic per-link loss (fault injection).
    pub drops_link_loss: u64,
}

impl NetStats {
    /// Accumulate another domain's counters (saturating: a merged view of
    /// giant runs must clamp, not wrap).
    pub fn merge(&mut self, other: &NetStats) {
        self.events_processed = self.events_processed.saturating_add(other.events_processed);
        self.frames_delivered = self.frames_delivered.saturating_add(other.frames_delivered);
        self.frames_forwarded = self.frames_forwarded.saturating_add(other.frames_forwarded);
        self.drops_queue_full = self.drops_queue_full.saturating_add(other.drops_queue_full);
        self.drops_dataplane = self.drops_dataplane.saturating_add(other.drops_dataplane);
        self.drops_host = self.drops_host.saturating_add(other.drops_host);
        self.drops_link_down = self.drops_link_down.saturating_add(other.drops_link_down);
        self.drops_switch_down = self.drops_switch_down.saturating_add(other.drops_switch_down);
        self.drops_link_loss = self.drops_link_loss.saturating_add(other.drops_link_loss);
    }

    /// Total drops of any kind (saturating: totals over merged giant-run
    /// counters must clamp at `u64::MAX`, not wrap in release builds).
    pub fn total_drops(&self) -> u64 {
        self.drops_queue_full
            .saturating_add(self.drops_dataplane)
            .saturating_add(self.drops_host)
            .saturating_add(self.fault_drops())
    }

    /// Drops attributable to injected faults.
    pub fn fault_drops(&self) -> u64 {
        self.drops_link_down
            .saturating_add(self.drops_switch_down)
            .saturating_add(self.drops_link_loss)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_drops_sums() {
        let s = NetStats {
            drops_queue_full: 1,
            drops_dataplane: 2,
            drops_host: 3,
            drops_link_down: 4,
            drops_switch_down: 5,
            drops_link_loss: 6,
            ..Default::default()
        };
        assert_eq!(s.fault_drops(), 15);
        assert_eq!(s.total_drops(), 21);
    }

    #[test]
    fn totals_saturate_at_u64_max() {
        let s = NetStats {
            drops_queue_full: u64::MAX,
            drops_dataplane: 1,
            drops_link_loss: u64::MAX,
            ..Default::default()
        };
        assert_eq!(s.fault_drops(), u64::MAX);
        assert_eq!(s.total_drops(), u64::MAX);
    }

    #[test]
    fn merge_sums_and_saturates() {
        let mut a = NetStats { events_processed: 3, frames_delivered: u64::MAX, ..Default::default() };
        let b = NetStats { events_processed: 4, frames_delivered: 9, drops_host: 2, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.events_processed, 7);
        assert_eq!(a.frames_delivered, u64::MAX);
        assert_eq!(a.drops_host, 2);
    }
}
