//! Ground-truth simulator statistics (what *actually* happened, as opposed
//! to what INT *measured* — the tests compare the two).

use serde::{Deserialize, Serialize};

/// Engine-wide counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetStats {
    /// Events dispatched by the engine.
    pub events_processed: u64,
    /// Frames handed to host applications / transports.
    pub frames_delivered: u64,
    /// Frames forwarded by switches.
    pub frames_forwarded: u64,
    /// Frames dropped because an egress queue was full.
    pub drops_queue_full: u64,
    /// Frames dropped by the data plane (no route, TTL, parse failure).
    pub drops_dataplane: u64,
    /// Frames dropped at a host (wrong address, unbound port).
    pub drops_host: u64,
    /// Frames dropped because their link was administratively down
    /// (fault injection): transmitted into the void or lost in flight.
    pub drops_link_down: u64,
    /// Frames dropped at or by a failed switch (fault injection).
    pub drops_switch_down: u64,
    /// Frames lost to probabilistic per-link loss (fault injection).
    pub drops_link_loss: u64,
}

impl NetStats {
    /// Total drops of any kind.
    pub fn total_drops(&self) -> u64 {
        self.drops_queue_full
            + self.drops_dataplane
            + self.drops_host
            + self.fault_drops()
    }

    /// Drops attributable to injected faults.
    pub fn fault_drops(&self) -> u64 {
        self.drops_link_down + self.drops_switch_down + self.drops_link_loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_drops_sums() {
        let s = NetStats {
            drops_queue_full: 1,
            drops_dataplane: 2,
            drops_host: 3,
            drops_link_down: 4,
            drops_switch_down: 5,
            drops_link_loss: 6,
            ..Default::default()
        };
        assert_eq!(s.fault_drops(), 15);
        assert_eq!(s.total_drops(), 21);
    }
}
