//! Shortest-path routing over the topology.
//!
//! Routes are computed once at simulation build time with per-source
//! Dijkstra (weight = link propagation delay, deterministic tie-break on
//! node id) and installed into every switch's LPM table as /32 host routes
//! — the control-plane step a real deployment performs via p4runtime.

use crate::time::SimDuration;
use crate::topology::{NodeId, PortId, Topology};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// All-pairs routing state: next hops, distances, and reconstructable paths.
#[derive(Debug, Clone)]
pub struct RouteTable {
    n: usize,
    /// `dist_ns[src][dst]` — shortest-path delay, `u64::MAX` if unreachable.
    dist_ns: Vec<Vec<u64>>,
    /// `prev[src][dst]` — predecessor of `dst` on the shortest path from `src`.
    prev: Vec<Vec<Option<NodeId>>>,
}

impl RouteTable {
    /// Run Dijkstra from every node.
    pub fn compute(topo: &Topology) -> RouteTable {
        let n = topo.nodes.len();
        let mut dist_ns = vec![vec![u64::MAX; n]; n];
        let mut prev = vec![vec![None; n]; n];

        for src in 0..n {
            let (d, p) = dijkstra(topo, NodeId(src as u32));
            dist_ns[src] = d;
            prev[src] = p;
        }
        RouteTable { n, dist_ns, prev }
    }

    /// Shortest-path propagation delay between two nodes.
    pub fn distance(&self, from: NodeId, to: NodeId) -> Option<SimDuration> {
        let d = self.dist_ns[from.0 as usize][to.0 as usize];
        (d != u64::MAX).then_some(SimDuration::from_nanos(d))
    }

    /// Node sequence of the shortest path, inclusive of both endpoints.
    pub fn path(&self, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
        if self.dist_ns[from.0 as usize][to.0 as usize] == u64::MAX {
            return None;
        }
        let mut path = vec![to];
        let mut cur = to;
        while cur != from {
            cur = self.prev[from.0 as usize][cur.0 as usize]?;
            path.push(cur);
            debug_assert!(path.len() <= self.n, "cycle in prev chain");
        }
        path.reverse();
        Some(path)
    }

    /// Number of links on the shortest path (the paper's "hops": a host
    /// pair with two switches between them is 3 hops apart).
    pub fn hop_count(&self, from: NodeId, to: NodeId) -> Option<usize> {
        self.path(from, to).map(|p| p.len() - 1)
    }

    /// First hop from `from` toward `to`.
    pub fn next_hop(&self, from: NodeId, to: NodeId) -> Option<NodeId> {
        let p = self.path(from, to)?;
        p.get(1).copied()
    }

    /// Egress port on `from` toward `to` (next-hop port lookup).
    pub fn egress_port(&self, topo: &Topology, from: NodeId, to: NodeId) -> Option<PortId> {
        let nh = self.next_hop(from, to)?;
        topo.node(from)
            .ports
            .iter()
            .position(|pb| pb.peer == nh)
            .map(|i| i as PortId)
    }

    /// *All* egress ports of `from` that lie on some shortest path to
    /// `to`: port `p` with peer `v` qualifies iff
    /// `w(from,v) + dist(v,to) == dist(from,to)` — the standard ECMP
    /// relaxation test over the all-pairs distance matrix. Ports come out
    /// in creation order, so the set is deterministic; the single-path
    /// [`RouteTable::egress_port`] answer is always a member. Empty when
    /// `to` is unreachable or `from == to`.
    pub fn equal_cost_ports(&self, topo: &Topology, from: NodeId, to: NodeId) -> Vec<PortId> {
        let total = self.dist_ns[from.0 as usize][to.0 as usize];
        if total == u64::MAX || from == to {
            return Vec::new();
        }
        topo.node(from)
            .ports
            .iter()
            .enumerate()
            .filter(|(_, pb)| {
                let w = topo.link(pb.link).params.delay.as_nanos();
                let rest = self.dist_ns[pb.peer.0 as usize][to.0 as usize];
                rest != u64::MAX && w.saturating_add(rest) == total
            })
            .map(|(i, _)| i as PortId)
            .collect()
    }
}

/// What a node is, in the structural Clos layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClosNodeKind {
    /// A host, with its index (= node id).
    Host(u32),
    /// A leaf switch, with its leaf index.
    Leaf(u32),
    /// A spine switch, with its spine index.
    Spine(u32),
}

/// Structural O(1) routing for fabrics built by
/// [`ClosParams::build`](crate::topology::ClosParams::build) (and its
/// tiered-delay variant): next hops, distances and ECMP groups read off
/// the leaf-spine structure instead of an all-pairs Dijkstra.
///
/// The all-pairs [`RouteTable`] costs `O(n²)` memory and `n` Dijkstra
/// runs — ~1.8 GB and minutes of setup for a 10k-host fabric, which is
/// exactly what made giant runs infeasible. A Clos has no routing
/// freedom a table could add: every host-to-host path is
/// host→leaf(→spine→leaf)→host, and all spines are equal-cost. This
/// struct encodes the layout contract of `ClosParams::build`:
///
/// * node ids: hosts `0..H` leaf-major, leaves `H..H+L`, spines
///   `H+L..H+L+S`;
/// * leaf ports: `0..hpl-1` attach the leaf's own hosts in id order,
///   `hpl..hpl+S-1` attach the spines in spine order;
/// * spine ports: port `l` attaches leaf `l`;
/// * host port `0` is the single uplink.
///
/// The parity test below pins this against a Dijkstra [`RouteTable`] on
/// a small fabric.
#[derive(Debug, Clone, Copy)]
pub struct ClosRoutes {
    spines: u32,
    leaves: u32,
    hosts_per_leaf: u32,
    /// Host–leaf attachment delay, ns.
    host_delay_ns: u64,
    /// Leaf–spine uplink delay, ns.
    uplink_delay_ns: u64,
}

impl ClosRoutes {
    /// Structural routes for a fabric with the given tier sizes and
    /// per-tier link delays (equal for `ClosParams::build`, distinct
    /// for the tiered-delay builder).
    pub fn new(
        spines: u32,
        leaves: u32,
        hosts_per_leaf: u32,
        host_delay: SimDuration,
        uplink_delay: SimDuration,
    ) -> Self {
        assert!(spines >= 1 && leaves >= 1 && hosts_per_leaf >= 1, "empty tier");
        Self {
            spines,
            leaves,
            hosts_per_leaf,
            host_delay_ns: host_delay.as_nanos(),
            uplink_delay_ns: uplink_delay.as_nanos(),
        }
    }

    /// Host count.
    pub fn hosts(&self) -> u32 {
        self.leaves * self.hosts_per_leaf
    }

    /// Spine count (the ECMP fan-out every leaf sees).
    pub fn spines(&self) -> u32 {
        self.spines
    }

    /// Leaf count.
    pub fn leaves(&self) -> u32 {
        self.leaves
    }

    /// Hosts attached to each leaf.
    pub fn hosts_per_leaf(&self) -> u32 {
        self.hosts_per_leaf
    }

    /// Classify a node id per the structural layout.
    pub fn kind_of(&self, n: NodeId) -> ClosNodeKind {
        let h = self.hosts();
        if n.0 < h {
            ClosNodeKind::Host(n.0)
        } else if n.0 < h + self.leaves {
            ClosNodeKind::Leaf(n.0 - h)
        } else {
            assert!(n.0 < h + self.leaves + self.spines, "node {n} outside fabric");
            ClosNodeKind::Spine(n.0 - h - self.leaves)
        }
    }

    /// The leaf switch a host attaches to.
    pub fn leaf_of_host(&self, host: u32) -> NodeId {
        NodeId(self.hosts() + host / self.hosts_per_leaf)
    }

    /// The leaf port a host attaches to (hosts are the low ports).
    pub fn leaf_port_of_host(&self, host: u32) -> PortId {
        (host % self.hosts_per_leaf) as PortId
    }

    /// A leaf's uplink ports toward the spines, in spine order — the
    /// equal-cost group for every remote destination.
    pub fn leaf_uplink_ports(&self) -> Vec<PortId> {
        (self.hosts_per_leaf..self.hosts_per_leaf + self.spines)
            .map(|p| p as PortId)
            .collect()
    }

    /// The spine port attaching leaf `l` (spine ports are in leaf order).
    pub fn spine_port_to_leaf(&self, leaf: u32) -> PortId {
        leaf as PortId
    }

    /// Shortest-path propagation delay between two hosts: 0 to self,
    /// two host hops within a leaf, plus two uplink hops across leaves.
    pub fn host_distance(&self, a: u32, b: u32) -> SimDuration {
        let ns = if a == b {
            0
        } else if a / self.hosts_per_leaf == b / self.hosts_per_leaf {
            2 * self.host_delay_ns
        } else {
            2 * self.host_delay_ns + 2 * self.uplink_delay_ns
        };
        SimDuration::from_nanos(ns)
    }

    /// Links on the shortest path between two hosts (the paper's
    /// "hops"): 2 within a leaf, 4 across leaves.
    pub fn host_hop_count(&self, a: u32, b: u32) -> usize {
        if a == b {
            0
        } else if a / self.hosts_per_leaf == b / self.hosts_per_leaf {
            2
        } else {
            4
        }
    }
}

/// The routing mode a simulation was built with: a general all-pairs
/// [`RouteTable`], or structural [`ClosRoutes`] for giant leaf-spine
/// fabrics where the table's `O(n²)` state is the scaling bottleneck.
#[derive(Debug)]
pub enum Routes {
    /// All-pairs Dijkstra (any topology).
    Table(RouteTable),
    /// Structural Clos routing (ClosParams-built fabrics only).
    Clos(ClosRoutes),
}

impl Routes {
    /// The all-pairs table, if this is table mode.
    pub fn table(&self) -> Option<&RouteTable> {
        match self {
            Routes::Table(t) => Some(t),
            Routes::Clos(_) => None,
        }
    }

    /// The structural Clos routes, if this is Clos mode.
    pub fn clos(&self) -> Option<&ClosRoutes> {
        match self {
            Routes::Table(_) => None,
            Routes::Clos(c) => Some(c),
        }
    }
}

fn dijkstra(topo: &Topology, src: NodeId) -> (Vec<u64>, Vec<Option<NodeId>>) {
    let n = topo.nodes.len();
    let mut dist = vec![u64::MAX; n];
    let mut prev: Vec<Option<NodeId>> = vec![None; n];
    let mut done = vec![false; n];
    let mut heap = BinaryHeap::new();

    dist[src.0 as usize] = 0;
    heap.push(Reverse((0u64, src.0)));

    while let Some(Reverse((d, u))) = heap.pop() {
        if done[u as usize] {
            continue;
        }
        done[u as usize] = true;
        let node = topo.node(NodeId(u));
        // Ports in creation order → deterministic relaxations; strict `<`
        // keeps the first-found route among equal-cost alternatives.
        for pb in &node.ports {
            let link = topo.link(pb.link);
            let nd = d.saturating_add(link.params.delay.as_nanos());
            let v = pb.peer.0 as usize;
            if nd < dist[v] {
                dist[v] = nd;
                prev[v] = Some(NodeId(u));
                heap.push(Reverse((nd, v as u32)));
            }
        }
    }
    (dist, prev)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::LinkParams;

    fn params(ms: u64) -> LinkParams {
        LinkParams {
            bandwidth_bps: 20_000_000,
            delay: SimDuration::from_millis(ms),
            queue_cap_pkts: 64,
        }
    }

    /// h1 - s1 - s2 - h2, with a slow detour s1 - s3 - s2.
    fn line_with_detour() -> (Topology, [NodeId; 5]) {
        let mut t = Topology::new();
        let h1 = t.add_host("h1");
        let s1 = t.add_switch("s1");
        let s2 = t.add_switch("s2");
        let s3 = t.add_switch("s3");
        let h2 = t.add_host("h2");
        t.add_link(h1, s1, params(10));
        t.add_link(s1, s2, params(10));
        t.add_link(s2, h2, params(10));
        t.add_link(s1, s3, params(50));
        t.add_link(s3, s2, params(50));
        (t, [h1, s1, s2, s3, h2])
    }

    #[test]
    fn picks_shortest_path() {
        let (t, [h1, s1, s2, _s3, h2]) = line_with_detour();
        let r = RouteTable::compute(&t);
        assert_eq!(r.path(h1, h2).unwrap(), vec![h1, s1, s2, h2]);
        assert_eq!(r.distance(h1, h2).unwrap(), SimDuration::from_millis(30));
        assert_eq!(r.hop_count(h1, h2), Some(3));
        assert_eq!(r.next_hop(s1, h2), Some(s2));
    }

    #[test]
    fn egress_ports_follow_path() {
        let (t, [h1, s1, _s2, _s3, h2]) = line_with_detour();
        let r = RouteTable::compute(&t);
        // s1's ports: 0→h1, 1→s2, 2→s3
        assert_eq!(r.egress_port(&t, s1, h2), Some(1));
        assert_eq!(r.egress_port(&t, s1, h1), Some(0));
        assert_eq!(r.egress_port(&t, h1, h2), Some(0), "host single uplink");
    }

    #[test]
    fn unreachable_is_none() {
        let mut t = Topology::new();
        let a = t.add_host("a");
        let b = t.add_host("b");
        let c = t.add_host("c");
        t.add_link(a, b, params(10));
        // c has a link only to itself-ish world: connect c to nothing else.
        let d = t.add_host("d");
        t.add_link(c, d, params(10));
        let r = RouteTable::compute(&t);
        assert_eq!(r.distance(a, c), None);
        assert_eq!(r.path(a, c), None);
        assert_eq!(r.hop_count(a, b), Some(1));
    }

    #[test]
    fn equal_cost_tiebreak_is_deterministic() {
        // Ring of 4 switches: two equal-cost paths between opposite corners.
        let mut t = Topology::new();
        let h1 = t.add_host("h1");
        let h2 = t.add_host("h2");
        let s: Vec<NodeId> = (0..4).map(|i| t.add_switch(format!("s{i}"))).collect();
        t.add_link(h1, s[0], params(10));
        t.add_link(h2, s[2], params(10));
        t.add_link(s[0], s[1], params(10));
        t.add_link(s[1], s[2], params(10));
        t.add_link(s[0], s[3], params(10));
        t.add_link(s[3], s[2], params(10));
        let r1 = RouteTable::compute(&t);
        let r2 = RouteTable::compute(&t);
        assert_eq!(r1.path(h1, h2), r2.path(h1, h2));
        assert_eq!(r1.path(h1, h2).unwrap().len(), 5, "h1 s0 sX s2 h2");
    }

    #[test]
    fn path_to_self_is_singleton() {
        let (t, [h1, ..]) = line_with_detour();
        let r = RouteTable::compute(&t);
        assert_eq!(r.path(h1, h1).unwrap(), vec![h1]);
        assert_eq!(r.distance(h1, h1).unwrap(), SimDuration::ZERO);
    }

    #[test]
    fn equal_cost_ports_expose_every_tied_next_hop() {
        // Same ring of 4: s0 has two equal-cost egresses toward h2 (via s1
        // and via s3), but only one toward h1 (the direct attachment).
        let mut t = Topology::new();
        let h1 = t.add_host("h1");
        let h2 = t.add_host("h2");
        let s: Vec<NodeId> = (0..4).map(|i| t.add_switch(format!("s{i}"))).collect();
        t.add_link(h1, s[0], params(10));
        t.add_link(h2, s[2], params(10));
        t.add_link(s[0], s[1], params(10));
        t.add_link(s[1], s[2], params(10));
        t.add_link(s[0], s[3], params(10));
        t.add_link(s[3], s[2], params(10));
        let r = RouteTable::compute(&t);

        // s0's ports: 0→h1, 1→s1, 2→s3.
        assert_eq!(r.equal_cost_ports(&t, s[0], h2), vec![1, 2]);
        assert_eq!(r.equal_cost_ports(&t, s[0], h1), vec![0]);
        // The single-path answer is always a member of the set.
        let primary = r.egress_port(&t, s[0], h2).unwrap();
        assert!(r.equal_cost_ports(&t, s[0], h2).contains(&primary));
        // Self targets yield empty sets.
        assert!(r.equal_cost_ports(&t, h1, h1).is_empty());
    }

    #[test]
    fn equal_cost_ports_degrade_to_single_on_asymmetric_costs() {
        let (t, [h1, s1, _s2, _s3, h2]) = line_with_detour();
        let r = RouteTable::compute(&t);
        // The 50 ms detour is not equal-cost with the 10 ms direct hop.
        assert_eq!(r.equal_cost_ports(&t, s1, h2), vec![1]);
        assert_eq!(r.equal_cost_ports(&t, h1, h2), vec![0]);
    }

    #[test]
    fn clos_routes_match_dijkstra_on_a_small_fabric() {
        // The structural layout contract, pinned against the general
        // Dijkstra table on a 3-spine / 4-leaf / 2-hosts-per-leaf Clos.
        use crate::topology::ClosParams;
        let cp = ClosParams { spines: 3, leaves: 4, hosts_per_leaf: 2, link: params(10) };
        let fab = cp.build();
        let t = &fab.topo;
        let table = RouteTable::compute(t);
        let c = ClosRoutes::new(3, 4, 2, cp.link.delay, cp.link.delay);
        let h = c.hosts();
        assert_eq!(h, 8);
        for (i, &hn) in fab.hosts.iter().enumerate() {
            assert_eq!(hn.0, i as u32, "hosts are the low ids, leaf-major");
        }
        for a in 0..h {
            for b in 0..h {
                assert_eq!(
                    table.distance(NodeId(a), NodeId(b)),
                    Some(c.host_distance(a, b)),
                    "distance {a}->{b}"
                );
                if a != b {
                    assert_eq!(
                        table.hop_count(NodeId(a), NodeId(b)),
                        Some(c.host_hop_count(a, b)),
                        "hops {a}->{b}"
                    );
                }
                // Leaf forwarding toward b: exact port for own hosts,
                // the full spine uplink group for remote ones.
                let leaf = c.leaf_of_host(a);
                let ecmp = table.equal_cost_ports(t, leaf, NodeId(b));
                if c.leaf_of_host(b) == leaf {
                    assert_eq!(ecmp, vec![c.leaf_port_of_host(b)], "leaf {leaf}->{b}");
                } else {
                    assert_eq!(ecmp, c.leaf_uplink_ports(), "leaf {leaf}->{b}");
                }
            }
        }
        // Spine forwarding: one port, toward the destination's leaf.
        for s in 0..3u32 {
            let spine = NodeId(h + 4 + s);
            assert_eq!(c.kind_of(spine), ClosNodeKind::Spine(s));
            for b in 0..h {
                let want = c.spine_port_to_leaf(b / 2);
                assert_eq!(table.egress_port(t, spine, NodeId(b)), Some(want));
                assert_eq!(table.equal_cost_ports(t, spine, NodeId(b)), vec![want]);
            }
        }
        // Node classification round-trips the layout.
        assert_eq!(c.kind_of(NodeId(0)), ClosNodeKind::Host(0));
        assert_eq!(c.kind_of(NodeId(7)), ClosNodeKind::Host(7));
        assert_eq!(c.kind_of(NodeId(8)), ClosNodeKind::Leaf(0));
        assert_eq!(c.kind_of(NodeId(11)), ClosNodeKind::Leaf(3));
        assert_eq!(c.kind_of(NodeId(12)), ClosNodeKind::Spine(0));
    }
}
